"""Full Table II run (also warms the dataset cache)."""
import logging, time
logging.getLogger("repro").setLevel(logging.INFO)
from repro.flow import FlowConfig
from repro.ml import build_dataset
from repro.netlist import TRAIN_DESIGNS, TEST_DESIGNS
from repro.eval.experiments import run_table2, format_table2

t0 = time.time()
train = build_dataset(list(TRAIN_DESIGNS), cache_dir="data/cache")
# Seed-augmented copies of the training designs: same RTL, fresh
# placement/floorplan — more layouts for the CNN branch to generalize from.
train += build_dataset(list(TRAIN_DESIGNS),
                       flow_config=FlowConfig(base_seed=1),
                       cache_dir="data/cache", seed=1)
test = build_dataset(list(TEST_DESIGNS), cache_dir="data/cache")
print(f"dataset: {time.time()-t0:.0f}s", flush=True)
t0 = time.time()
res = run_table2(train, test, epochs=120)
print(f"table2: {time.time()-t0:.0f}s", flush=True)
print(format_table2(res))
