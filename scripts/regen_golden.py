#!/usr/bin/env python
"""Regenerate the golden flow-regression file used by
``tests/integration/test_golden_flow.py``.

Run from the repository root after an *intentional* change to flow
numerics (placer, optimizer, router, STA, library characterization)::

    PYTHONPATH=src python scripts/regen_golden.py

then inspect the diff of ``tests/integration/golden_xgate.json`` and
commit it together with the change that moved the numbers.  The test
failing without such an intentional change means a real regression.
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN = Path(__file__).resolve().parent.parent / "tests" / "integration" \
    / "golden_xgate.json"

#: Must match the test exactly.
DESIGN = "xgate"
SCALE = 0.25
SEED = 0
N_SAMPLED = 5


def compute_golden() -> dict:
    from repro.flow import FlowConfig, run_flow

    flow = run_flow(DESIGN, FlowConfig(scale=SCALE, base_seed=SEED))
    sta = flow.signoff_sta
    pins = sorted(sta.endpoint_slack)
    step = max(1, len(pins) // N_SAMPLED)
    sampled = pins[::step][:N_SAMPLED]
    return {
        "design": DESIGN,
        "scale": SCALE,
        "seed": SEED,
        "clock_period": flow.clock_period,
        "n_endpoints": len(pins),
        "wns": sta.wns,
        "tns": sta.tns,
        "sampled_endpoint_slack": {str(p): sta.endpoint_slack[p]
                                   for p in sampled},
    }


def main() -> int:
    golden = compute_golden()
    GOLDEN.write_text(json.dumps(golden, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {GOLDEN}")
    for key in ("clock_period", "wns", "tns"):
        print(f"  {key} = {golden[key]:.6f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
