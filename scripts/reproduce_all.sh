#!/usr/bin/env bash
# Full reproduction pipeline: install, test, regenerate every table/figure.
set -euo pipefail
cd "$(dirname "$0")/.."

python setup.py develop
pytest tests/ 2>&1 | tee test_output.txt
pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

echo "Done. See EXPERIMENTS.md for paper-vs-measured discussion."
