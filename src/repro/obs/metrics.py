"""Process-wide metrics registry: counters, gauges, histograms.

Stdlib-only.  Instruments record *what happened how often / how large*;
the tracer (``repro.obs.trace``) records *when and inside what*.  Metric
names are dotted paths, e.g.::

    sta.runs                       counter   full STA sweeps
    sta.nldm_lookups               counter   NLDM arcs evaluated
    sta.incremental.partial        counter   incremental refreshes
    sta.incremental.full_rebuilds  counter   structural rebuilds
    sta.incremental.start_level    histogram resume level per refresh
    opt.moves.<kind>               counter   accepted moves by kind
    opt.moves.accepted             counter   all accepted moves
    opt.gate.rejected              counter   layout-gate rejections
    trainer.epoch_loss             gauge     latest mean epoch loss
    trainer.steps                  counter   optimizer steps
    gnn.level_width                histogram nodes per GNN level

Histograms keep raw observations (bounded by ``max_samples`` reservoir
truncation) and summarize as count/mean/p50/p95/max.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Union


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: Union[int, float] = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> Union[int, float]:
        return self._value


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Distribution of observations with percentile summaries.

    Keeps at most ``max_samples`` raw values; beyond that, new values
    overwrite a rotating slot (simple reservoir) so memory stays bounded
    on hot paths while count/total stay exact.
    """

    __slots__ = ("name", "max_samples", "_values", "_count", "_total",
                 "_max", "_next", "_lock")

    def __init__(self, name: str, max_samples: int = 4096) -> None:
        self.name = name
        self.max_samples = max_samples
        self._values: List[float] = []
        self._count = 0
        self._total = 0.0
        self._max = float("-inf")
        self._next = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._total += value
            if value > self._max:
                self._max = value
            if len(self._values) < self.max_samples:
                self._values.append(value)
            else:
                self._values[self._next] = value
                self._next = (self._next + 1) % self.max_samples

    @property
    def count(self) -> int:
        return self._count

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over retained samples (q in [0, 100])."""
        with self._lock:
            if not self._values:
                return float("nan")
            ordered = sorted(self._values)
        rank = max(0, min(len(ordered) - 1,
                          int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        """count / total / mean / p50 / p95 / max in one dict."""
        with self._lock:
            count, total, mx = self._count, self._total, self._max
        if count == 0:
            nan = float("nan")
            return {"count": 0, "total": 0.0, "mean": nan,
                    "p50": nan, "p95": nan, "max": nan}
        return {
            "count": count,
            "total": total,
            "mean": total / count,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": mx,
        }


class MetricsRegistry:
    """Name → instrument map with get-or-create accessors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, Any] = {}

    def _get(self, name: str, cls):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = self._instruments[name] = cls(name)
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, not {cls.__name__}")
            return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> Dict[str, Any]:
        """All instruments as plain values (histograms as summaries)."""
        with self._lock:
            items = list(self._instruments.items())
        out: Dict[str, Any] = {}
        for name, inst in sorted(items):
            out[name] = (inst.summary() if isinstance(inst, Histogram)
                         else inst.value)
        return out

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()


_REGISTRY = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _REGISTRY
