"""Trace aggregation: from raw span events to the Table III stage report.

The paper's Table III compares, per design, the reference flow's
opt + route + sign-off-STA wall-clock against the predictor's
preprocess + inference wall-clock.  The instrumented code emits exactly
those stages as spans:

=================  =======================  ===========================
span name          emitted by               Table III column
=================  =======================  ===========================
``flow.place``     ``StageTimer("place")``  (context only)
``flow.opt``       ``StageTimer("opt")``    flow "opt"
``flow.route``     ``StageTimer("route")``  flow "route"
``flow.sta``       ``StageTimer("sta")``    flow "sta"
``model.pre``      ``ml.dataset``           model "pre"
``model.infer``    ``core.predictor``       model "infer"
=================  =======================  ===========================

so a recorded trace — in memory or a JSONL file — is sufficient to
regenerate the runtime table: :func:`aggregate_trace` groups span events
by name and by ``attrs.design``, and :meth:`ProfileReport.format`
renders both the per-stage totals and the per-design flow-vs-model
comparison with speedups.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Union

#: Reference-flow stages that enter the Table III flow total.
FLOW_STAGES = ("place", "opt", "route", "sta")
#: Predictor stages that enter the Table III model total.
MODEL_STAGES = ("pre", "infer")


@dataclass
class StageStat:
    """Aggregate of all spans sharing one name."""

    name: str
    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def add(self, duration: float) -> None:
        self.count += 1
        self.total_s += duration
        if duration > self.max_s:
            self.max_s = duration


@dataclass
class ProfileReport:
    """Per-span-name and per-design runtime aggregation of one trace."""

    stages: Dict[str, StageStat] = field(default_factory=dict)
    #: design → span name → total seconds
    designs: Dict[str, Dict[str, float]] = field(default_factory=dict)
    n_events: int = 0

    # ------------------------------------------------------------------
    def stage_seconds(self, design: str, stage: str) -> float:
        """Seconds spent in flow/model *stage* for *design* (0 if unseen)."""
        per = self.designs.get(design, {})
        return per.get(f"flow.{stage}", 0.0) + per.get(f"model.{stage}", 0.0)

    def table3_rows(self) -> List[Dict[str, Any]]:
        """Per-design Table III rows derived purely from the trace."""
        rows = []
        for design in sorted(self.designs):
            flow_s = {s: self.stage_seconds(design, s) for s in FLOW_STAGES}
            model_s = {s: self.stage_seconds(design, s) for s in MODEL_STAGES}
            flow_total = sum(flow_s[s] for s in ("opt", "route", "sta"))
            model_total = sum(model_s.values())
            rows.append({
                "design": design,
                **{f"flow.{s}": flow_s[s] for s in FLOW_STAGES},
                **{f"model.{s}": model_s[s] for s in MODEL_STAGES},
                "flow_total": flow_total,
                "model_total": model_total,
                "speedup": flow_total / model_total if model_total else 0.0,
            })
        return rows

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable aggregate (for ``repro profile --report-out``)."""
        return {
            "n_events": self.n_events,
            "stages": {
                name: {"count": st.count, "total_s": st.total_s,
                       "mean_s": st.mean_s, "max_s": st.max_s}
                for name, st in sorted(self.stages.items())
            },
            "designs": {d: dict(sorted(per.items()))
                        for d, per in sorted(self.designs.items())},
            "table3": self.table3_rows(),
        }

    # ------------------------------------------------------------------
    def format(self) -> str:
        """Human-readable per-stage + per-design runtime report."""
        lines = ["per-span runtime (aggregated over the trace)",
                 f"{'span':<28}{'count':>7}{'total s':>12}"
                 f"{'mean s':>12}{'max s':>12}"]
        lines.append("-" * len(lines[-1]))
        for name in sorted(self.stages):
            st = self.stages[name]
            lines.append(f"{name:<28}{st.count:>7}{st.total_s:>12.4f}"
                         f"{st.mean_s:>12.4f}{st.max_s:>12.4f}")
        rows = self.table3_rows()
        if rows:
            lines.append("")
            lines.append("per-design runtime, Table III shape "
                         "(flow opt+route+sta vs. model pre+infer)")
            header = (f"{'design':<12}" + "".join(
                f"{s:>9}" for s in FLOW_STAGES)
                + f"{'fl.tot':>9}"
                + "".join(f"{s:>9}" for s in MODEL_STAGES)
                + f"{'md.tot':>9}{'speedup':>9}")
            lines.append(header)
            lines.append("-" * len(header))
            for r in rows:
                lines.append(
                    f"{r['design']:<12}"
                    + "".join(f"{r['flow.' + s]:>9.3f}" for s in FLOW_STAGES)
                    + f"{r['flow_total']:>9.3f}"
                    + "".join(f"{r['model.' + s]:>9.4f}"
                              for s in MODEL_STAGES)
                    + f"{r['model_total']:>9.4f}"
                    + f"{r['speedup']:>8.1f}x")
        return "\n".join(lines)


# ----------------------------------------------------------------------
def load_trace(path: str) -> List[Dict[str, Any]]:
    """Read a JSON-lines trace file back into event dicts."""
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def aggregate_trace(
        events: Union[str, Iterable[Dict[str, Any]]]) -> ProfileReport:
    """Aggregate span events (or a JSONL path) into a :class:`ProfileReport`.

    Only ``type == "span"`` events contribute runtime; instant events
    (logs) are counted in ``n_events`` but carry no duration.
    """
    if isinstance(events, str):
        events = load_trace(events)
    report = ProfileReport()
    for ev in events:
        report.n_events += 1
        if ev.get("type") != "span":
            continue
        name = ev["name"]
        dur = float(ev.get("dur", 0.0))
        stat = report.stages.get(name)
        if stat is None:
            stat = report.stages[name] = StageStat(name)
        stat.add(dur)
        design = (ev.get("attrs") or {}).get("design")
        if design is not None:
            per = report.designs.setdefault(str(design), {})
            per[name] = per.get(name, 0.0) + dur
    return report
