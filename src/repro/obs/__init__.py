"""Observability: span tracing, metrics, and profiling reports.

Zero-dependency (stdlib-only) subsystem with three layers:

``repro.obs.trace``
    A span-based tracer.  ``span("sta.run", design="jpeg")`` is a context
    manager; spans nest (parent ids via a thread-local stack), carry
    attributes, and are emitted as JSON-lines events.  Recording is
    *disabled by default* — a disabled span still measures its own
    duration (two ``perf_counter`` calls) but allocates no event and
    touches no lock, so instrumented hot paths stay fast.

``repro.obs.metrics``
    A process-wide registry of counters, gauges and histograms
    (p50/p95/max summaries) for things like NLDM lookups per STA run,
    optimizer moves accepted/rejected, or trainer epoch loss.

``repro.obs.profile``
    Aggregates a recorded trace into the per-stage runtime table of the
    paper's Table III (flow stages place/opt/route/sta vs. predictor
    stages pre/infer).
"""

from repro.obs.merge import (
    fold_metrics_snapshot,
    merge_worker_traces,
    worker_trace_path,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
)
from repro.obs.profile import ProfileReport, aggregate_trace, load_trace
from repro.obs.trace import (
    Span,
    TraceLogHandler,
    Tracer,
    configure_tracing,
    get_tracer,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "fold_metrics_snapshot",
    "merge_worker_traces",
    "worker_trace_path",
    "ProfileReport",
    "aggregate_trace",
    "load_trace",
    "Span",
    "TraceLogHandler",
    "Tracer",
    "configure_tracing",
    "get_tracer",
    "span",
]
