"""Merging per-worker observability data back into the parent process.

Parallel dataset builds (:mod:`repro.ml.parallel`) fan designs out to
worker processes.  Each worker records its spans to its own JSON-lines
trace file (``worker-<pid>.jsonl``) and periodically appends a
cumulative ``{"type": "metrics", ...}`` snapshot line.  After the batch,
the parent calls :func:`merge_worker_traces` to

* replay every span/event line into the parent tracer (in-memory buffer
  and sinks), so ``repro profile`` still produces the full Table III
  per-stage runtime table with no dropped worker spans, and
* fold each worker's final metrics snapshot into the parent registry
  (counters summed, gauges last-write; histograms folded approximately —
  the mean is re-observed ``count - 1`` times plus the max once, which
  preserves count/total/max but not percentiles).

The reader is deliberately tolerant: a worker killed mid-write leaves a
truncated last line, which is skipped rather than raised on.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Any, Dict, Optional

from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.trace import Tracer, get_tracer

#: Filename pattern of per-worker trace files inside a trace directory.
WORKER_TRACE_GLOB = "worker-*.jsonl"


def worker_trace_path(trace_dir: str, pid: Optional[int] = None) -> str:
    """The per-worker trace file path for *pid* (default: this process)."""
    pid = os.getpid() if pid is None else pid
    return os.path.join(trace_dir, f"worker-{pid}.jsonl")


def iter_trace_lines(path: str):
    """Yield parsed event dicts from *path*, skipping corrupt lines."""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue  # truncated tail of a killed worker
            if isinstance(event, dict):
                yield event


def merge_worker_traces(trace_dir: str,
                        tracer: Optional[Tracer] = None,
                        metrics: Optional[MetricsRegistry] = None) -> int:
    """Merge all ``worker-*.jsonl`` files under *trace_dir* into *tracer*.

    Returns the number of span/event lines ingested.  Metrics snapshot
    lines are not ingested as events; instead the *last* snapshot per
    worker file (cumulative per worker process) is folded into
    *metrics*.
    """
    tracer = tracer if tracer is not None else get_tracer()
    metrics = metrics if metrics is not None else get_metrics()
    ingested = 0
    for path in sorted(glob.glob(os.path.join(trace_dir,
                                              WORKER_TRACE_GLOB))):
        last_snapshot: Optional[Dict[str, Any]] = None
        for event in iter_trace_lines(path):
            if event.get("type") == "metrics":
                snapshot = event.get("snapshot")
                if isinstance(snapshot, dict):
                    last_snapshot = snapshot
                continue
            tracer.ingest(event)
            ingested += 1
        if last_snapshot:
            fold_metrics_snapshot(metrics, last_snapshot)
    return ingested


def fold_metrics_snapshot(metrics: MetricsRegistry,
                          snapshot: Dict[str, Any]) -> None:
    """Fold one worker's cumulative snapshot into the parent registry.

    Counters are summed, ``trainer.epoch_loss`` gauges are last-write,
    histogram summaries are folded approximately (count/total/max exact,
    percentiles not).  Also used by the fleet gateway to merge worker
    ``/metrics`` snapshots fetched in-band over the worker pipes.
    """
    for name, value in snapshot.items():
        try:
            if isinstance(value, dict):  # histogram summary
                count = int(value.get("count", 0))
                if count <= 0:
                    continue
                hist = metrics.histogram(name)
                mean = float(value.get("mean", 0.0))
                mx = float(value.get("max", mean))
                for _ in range(max(0, count - 1)):
                    hist.observe(mean)
                hist.observe(mx)
            elif name.startswith("trainer.epoch_loss"):
                metrics.gauge(name).set(float(value))
            else:
                metrics.counter(name).inc(value)
        except (TypeError, ValueError):
            # A name registered under a different instrument type in the
            # parent; observability must never break the build.
            continue
