"""Span-based tracer emitting JSON-lines events.

Design constraints (see DESIGN.md "Observability"):

* **Cheap when disabled.**  ``Tracer.span`` always returns a real
  :class:`Span` that measures its own wall-clock duration — callers such
  as :class:`repro.utils.timer.StageTimer` rely on ``span.duration`` —
  but when the tracer is disabled the span skips id allocation, the
  thread-local parent stack, event construction and sink fan-out.  The
  residual cost is two ``time.perf_counter`` calls per span.

* **Thread-safe.**  Event emission is serialized by a lock; span nesting
  uses a thread-local stack so concurrent threads build independent
  parent chains.

* **Pluggable sinks.**  Events go to an in-memory buffer (read it back
  with :meth:`Tracer.events`) and to any registered sink callables, e.g.
  :class:`JsonlSink` for on-disk JSON-lines traces.

Event schema (one JSON object per line)::

    {"type": "span", "name": "flow.sta", "span_id": 7, "parent_id": 3,
     "thread": 140213, "ts": 1722950000.123, "dur": 0.0421,
     "attrs": {"stage": "sta", "design": "xgate"}}
    {"type": "event", "name": "log", "span_id": 8, "parent_id": 7,
     "ts": ..., "attrs": {"level": "WARNING", "logger": "repro.flow",
                          "message": "..."}}
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional


class Span:
    """One timed region.  Use through ``tracer.span(...)`` / ``with``."""

    __slots__ = ("_tracer", "name", "attrs", "start", "duration",
                 "span_id", "parent_id", "_recording")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.duration = 0.0
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self._recording = False

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes from inside the ``with`` block."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        if tracer._enabled:
            self._recording = True
            stack = tracer._stack()
            self.parent_id = stack[-1] if stack else None
            self.span_id = next(tracer._ids)
            stack.append(self.span_id)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self.start
        if self._recording:
            stack = self._tracer._stack()
            if stack and stack[-1] == self.span_id:
                stack.pop()
            attrs = self.attrs
            if exc_type is not None:
                attrs = dict(attrs)
                attrs["error"] = exc_type.__name__
            self._tracer._emit({
                "type": "span",
                "name": self.name,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "thread": threading.get_ident(),
                "ts": time.time() - self.duration,
                "dur": self.duration,
                "attrs": attrs,
            })


class JsonlSink:
    """Appends each event as one JSON line to *path*."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")

    def __call__(self, event: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(event, default=str) + "\n")
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()


class Tracer:
    """Collects span/instant events; disabled (and free) by default."""

    def __init__(self, enabled: bool = False) -> None:
        self._enabled = enabled
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._events: List[Dict[str, Any]] = []
        self._sinks: List[Callable[[Dict[str, Any]], None]] = []

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def add_sink(self, sink: Callable[[Dict[str, Any]], None]) -> None:
        with self._lock:
            self._sinks.append(sink)

    def reset(self) -> None:
        """Drop buffered events and detach all sinks (tests, reruns)."""
        with self._lock:
            self._events.clear()
            for sink in self._sinks:
                close = getattr(sink, "close", None)
                if callable(close):
                    close()
            self._sinks.clear()

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        """A context-manager span; times itself even when disabled."""
        return Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record an instant (zero-duration) event."""
        if not self._enabled:
            return
        stack = self._stack()
        self._emit({
            "type": "event",
            "name": name,
            "span_id": next(self._ids),
            "parent_id": stack[-1] if stack else None,
            "thread": threading.get_ident(),
            "ts": time.time(),
            "attrs": attrs,
        })

    def events(self) -> List[Dict[str, Any]]:
        """Snapshot of the in-memory event buffer (completion order)."""
        with self._lock:
            return list(self._events)

    def ingest(self, event: Dict[str, Any]) -> None:
        """Replay an externally recorded event into this tracer.

        Used to merge per-worker trace files back into the parent
        process's tracer (buffer *and* sinks), so aggregation such as
        :func:`repro.obs.profile.aggregate_trace` sees one unified
        stream.  The event keeps its original ids; consumers must not
        assume ingested span ids are unique across processes.  No-op
        when the tracer is disabled.
        """
        if not self._enabled:
            return
        self._emit(dict(event))

    # ------------------------------------------------------------------
    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _emit(self, event: Dict[str, Any]) -> None:
        with self._lock:
            self._events.append(event)
            sinks = list(self._sinks)
        for sink in sinks:
            sink(event)


class TraceLogHandler(logging.Handler):
    """Routes log records into the tracer's event stream.

    Installed by :func:`repro.utils.log.configure_logging`; when tracing
    is enabled every log line becomes a ``log`` event nested under the
    currently open span, so a trace tells you *where in the flow* a
    warning fired.
    """

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        super().__init__()
        self._tracer = tracer

    def emit(self, record: logging.LogRecord) -> None:
        tracer = self._tracer or get_tracer()
        if not tracer.enabled:
            return
        try:
            tracer.event("log", level=record.levelname, logger=record.name,
                         message=record.getMessage())
        except Exception:  # never let tracing break logging
            self.handleError(record)


# ----------------------------------------------------------------------
# Process-global tracer
# ----------------------------------------------------------------------
_TRACER = Tracer(enabled=os.environ.get("REPRO_TRACE", "") not in ("", "0"))


def get_tracer() -> Tracer:
    """The process-global tracer (enable with ``REPRO_TRACE=1``)."""
    return _TRACER


def span(name: str, **attrs: Any) -> Span:
    """Shorthand for ``get_tracer().span(...)``."""
    return _TRACER.span(name, **attrs)


def configure_tracing(enabled: bool = True,
                      jsonl_path: Optional[str] = None) -> Tracer:
    """Enable/disable the global tracer, optionally adding a JSONL sink."""
    if enabled:
        _TRACER.enable()
    else:
        _TRACER.disable()
    if jsonl_path is not None:
        _TRACER.add_sink(JsonlSink(jsonl_path))
    return _TRACER
