"""2-D convolution and pooling layers (NCHW) via im2col."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.init import kaiming_uniform
from repro.nn.module import Module, Parameter, is_inference
from repro.nn.quant import dequantize, quantize_per_channel
from repro.nn.workspace import ws_empty
from repro.utils import require


def _im2col(x: np.ndarray, kh: int, kw: int,
            pad: int) -> Tuple[np.ndarray, Tuple[int, ...]]:
    """(N, C, H, W) → (N, C*kh*kw, H_out*W_out) patch matrix (stride 1)."""
    n, c, h, w = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    h_out = h + 2 * pad - kh + 1
    w_out = w + 2 * pad - kw + 1
    s0, s1, s2, s3 = x.strides
    patches = np.lib.stride_tricks.as_strided(
        x, shape=(n, c, kh, kw, h_out, w_out),
        strides=(s0, s1, s2, s3, s2, s3), writeable=False)
    cols = patches.reshape(n, c * kh * kw, h_out * w_out)
    return np.ascontiguousarray(cols), (n, c, h, w, h_out, w_out)


def _im2col_ws(x: np.ndarray, kh: int, kw: int,
               pad: int) -> Tuple[np.ndarray, Tuple[int, ...]]:
    """Arena-backed :func:`_im2col` for the inference path.

    Same patch matrix bit-for-bit; the zero-padded image and the patch
    buffer both come from the active workspace instead of fresh
    allocations (``np.pad`` + the overlapping-stride reshape copy are
    the two big transient buffers of a conv forward).
    """
    n, c, h, w = x.shape
    if pad:
        padded = ws_empty((n, c, h + 2 * pad, w + 2 * pad), x.dtype)
        padded.fill(0.0)
        padded[:, :, pad:-pad, pad:-pad] = x
        x = padded
    h_out = h + 2 * pad - kh + 1
    w_out = w + 2 * pad - kw + 1
    s0, s1, s2, s3 = x.strides
    patches = np.lib.stride_tricks.as_strided(
        x, shape=(n, c, kh, kw, h_out, w_out),
        strides=(s0, s1, s2, s3, s2, s3), writeable=False)
    cols = ws_empty((n, c * kh * kw, h_out * w_out), x.dtype)
    np.copyto(cols.reshape(n, c, kh, kw, h_out, w_out), patches)
    return cols, (n, c, h, w, h_out, w_out)


def _col2im(cols: np.ndarray, meta: Tuple[int, ...], kh: int, kw: int,
            pad: int) -> np.ndarray:
    """Adjoint of :func:`_im2col` — scatter patch grads back to the image."""
    n, c, h, w, h_out, w_out = meta
    x_grad = np.zeros((n, c, h + 2 * pad, w + 2 * pad))
    cols = cols.reshape(n, c, kh, kw, h_out, w_out)
    for i in range(kh):
        for j in range(kw):
            x_grad[:, :, i:i + h_out, j:j + w_out] += cols[:, :, i, j]
    if pad:
        x_grad = x_grad[:, :, pad:-pad, pad:-pad]
    return x_grad


class Conv2d(Module):
    """Stride-1 2-D convolution with symmetric zero padding."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 padding: int = 0,
                 rng: Optional[np.random.Generator] = None) -> None:
        rng = rng or np.random.default_rng(0)
        self.kernel_size = kernel_size
        self.padding = padding
        self.weight = Parameter(kaiming_uniform(
            rng, (out_channels, in_channels, kernel_size, kernel_size)))
        self.bias = Parameter(np.zeros(out_channels))
        self._cache: List[tuple] = []
        # Flat (O, C*k*k) effective weights for non-fp64 inference tiers.
        self._w_eff: Optional[np.ndarray] = None
        self._b_eff: Optional[np.ndarray] = None
        self._quant = None

    def _set_precision(self, mode: str) -> None:
        self._precision = mode
        if mode == "fp64":
            self._w_eff = self._b_eff = self._quant = None
            return
        if mode == "int8":
            self._quant = quantize_per_channel(self.weight.data)
            w = dequantize(self._quant["q"], self._quant["scale"],
                           dtype=np.float32)
        else:
            self._quant = None
            w = self.weight.data.astype(np.float32)
        self._w_eff = w.reshape(self.weight.shape[0], -1)
        self._b_eff = self.bias.data.astype(np.float32)

    def _install_quant(self, q: np.ndarray, scale: np.ndarray) -> None:
        """Adopt a stored int8 payload verbatim (no requantization drift)."""
        self._precision = "int8"
        self._quant = {"quant": "int8-perchannel", "q": q, "scale": scale}
        self._w_eff = dequantize(q, scale, dtype=np.float32).reshape(
            self.weight.shape[0], -1)
        self._b_eff = self.bias.data.astype(np.float32)

    def forward(self, x: np.ndarray) -> np.ndarray:
        require(x.ndim == 4 and x.shape[1] == self.weight.shape[1],
                f"Conv2d expects (N, {self.weight.shape[1]}, H, W), "
                f"got {x.shape}")
        k = self.kernel_size
        if is_inference():
            if self._w_eff is not None:
                w_flat, bias = self._w_eff, self._b_eff
                if x.dtype != w_flat.dtype:
                    cast = ws_empty(x.shape, w_flat.dtype)
                    np.copyto(cast, x)
                    x = cast
            else:
                w_flat = self.weight.data.reshape(self.weight.shape[0], -1)
                bias = self.bias.data
            cols, meta = _im2col_ws(x, k, k, self.padding)
            n, _, _, _, h_out, w_out = meta
            out = ws_empty((n, w_flat.shape[0], cols.shape[2]), w_flat.dtype)
            np.matmul(w_flat, cols, out=out)
            out += bias[None, :, None]
            return out.reshape(n, self.weight.shape[0], h_out, w_out)
        require(self.precision == "fp64",
                f"training requires fp64 precision, not {self.precision!r}")
        cols, meta = _im2col(x, k, k, self.padding)
        n, _, _, _, h_out, w_out = meta
        w_flat = self.weight.data.reshape(self.weight.shape[0], -1)
        # matmul broadcasts over the batch and hits BLAS; einsum here
        # would fall back to the slow non-BLAS contraction loop.
        out = np.matmul(w_flat, cols)                    # (n, o, p)
        out += self.bias.data[None, :, None]
        self._cache.append((cols, meta))
        return out.reshape(n, self.weight.shape[0], h_out, w_out)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        cols, meta = self._cache.pop()
        n, _, _, _, h_out, w_out = meta
        k = self.kernel_size
        g = grad_output.reshape(n, self.weight.shape[0], h_out * w_out)
        w_flat = self.weight.data.reshape(self.weight.shape[0], -1)
        self.weight.grad += np.tensordot(
            g, cols, axes=([0, 2], [0, 2])).reshape(self.weight.shape)
        self.bias.grad += g.sum(axis=(0, 2))
        cols_grad = np.matmul(w_flat.T, g)               # (n, f, p)
        return _col2im(cols_grad, meta, k, k, self.padding)


class MaxPool2d(Module):
    """Non-overlapping max pooling (kernel = stride)."""

    def __init__(self, kernel_size: int = 2) -> None:
        self.kernel_size = kernel_size
        self._cache: List[tuple] = []

    def forward(self, x: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        n, c, h, w = x.shape
        require(h % k == 0 and w % k == 0,
                f"MaxPool2d({k}) needs H, W divisible by {k}, got {x.shape}")
        if is_inference():
            if k == 2:
                # Three elementwise maxima over strided views beat a
                # ufunc reduce whose reduction axis has length 2 (the
                # reduce pays its per-output overhead on 2 elements).
                half = (n, c, h // 2, w // 2)
                a = np.maximum(x[:, :, ::2, ::2], x[:, :, ::2, 1::2],
                               out=ws_empty(half, x.dtype))
                b = np.maximum(x[:, :, 1::2, ::2], x[:, :, 1::2, 1::2],
                               out=ws_empty(half, x.dtype))
                return np.maximum(a, b, out=a)
            blocks = x.reshape(n, c, h // k, k, w // k, k)
            return blocks.max(axis=5).max(axis=3)
        blocks = x.reshape(n, c, h // k, k, w // k, k)
        flat = blocks.transpose(0, 1, 2, 4, 3, 5).reshape(
            n, c, h // k, w // k, k * k)
        arg = flat.argmax(axis=-1)
        out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
        self._cache.append((arg, x.shape))
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        arg, shape = self._cache.pop()
        k = self.kernel_size
        n, c, h, w = shape
        flat_grad = np.zeros((n, c, h // k, w // k, k * k))
        np.put_along_axis(flat_grad, arg[..., None],
                          grad_output[..., None], axis=-1)
        blocks = flat_grad.reshape(n, c, h // k, w // k, k, k)
        return blocks.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h, w)
