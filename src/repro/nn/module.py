"""Module/Parameter core of the numpy neural-network framework.

PyTorch and DGL are not available in this environment (documented
substitution in DESIGN.md), so the paper's models are built on this small
framework: layers own :class:`Parameter` objects, cache their inputs on a
LIFO stack during ``forward`` and consume it in ``backward``.  The stack
(rather than a single slot) matters for the GNN, which applies the same MLP
once per topological level before any backward runs; backward then unwinds
the levels in reverse order.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, List

import numpy as np

from repro.utils import require

_INFERENCE = threading.local()

#: Inference precision tiers (see DESIGN.md "Precision & memory tiers").
#: ``fp64`` is the bit-exact default; ``fp32`` runs the whole forward in
#: single precision; ``int8`` stores Linear/Conv weights quantized
#: per-channel and computes in fp32.
PRECISIONS = ("fp64", "fp32", "int8")


def is_inference() -> bool:
    """True inside an :func:`inference_mode` block (this thread only)."""
    return getattr(_INFERENCE, "on", False)


@contextmanager
def inference_mode():
    """Skip backward bookkeeping for forwards run inside the block.

    Layers that cache inputs/masks/argmaxes solely for ``backward`` check
    :func:`is_inference` and skip that work — outputs are unchanged, but
    ``backward`` afterwards is invalid (there is nothing to unwind).  The
    flag is thread-local, so a serving worker running inference does not
    disturb a concurrent training thread.
    """
    prev = getattr(_INFERENCE, "on", False)
    _INFERENCE.on = True
    try:
        yield
    finally:
        _INFERENCE.on = prev


class Parameter:
    """A trainable tensor with an accumulated gradient."""

    def __init__(self, data: np.ndarray) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)

    @property
    def shape(self) -> tuple:
        return self.data.shape

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:
        return f"Parameter(shape={self.data.shape})"


class Module:
    """Base class: parameter discovery, gradient reset, cache management."""

    def parameters(self) -> List[Parameter]:
        """All parameters of this module and its sub-modules (depth-first)."""
        params: List[Parameter] = []
        for value in self.__dict__.values():
            params.extend(_collect(value))
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in self.__dict__.values():
            for child in _collect_modules(value):
                yield from child.modules()

    def drain_caches(self) -> None:
        """Clear per-forward cache state on this module and its children.

        Call after an inference-only ``forward`` (no ``backward`` will
        unwind the stacks) so the next pass starts from clean caches and
        captured inputs can be garbage-collected.  This is the public
        replacement for reaching into a module's ``_cache`` directly.
        """
        for module in self.modules():
            module._drain_cache()

    def _drain_cache(self) -> None:
        """Per-module hook for :meth:`drain_caches` (override to extend)."""
        cache = self.__dict__.get("_cache")
        if isinstance(cache, list):
            cache.clear()
        elif cache is not None:
            self._cache = None

    def set_inference_precision(self, mode: str) -> None:
        """Switch this module tree's inference tier (``PRECISIONS``).

        ``fp64`` restores the exact default path; ``fp32``/``int8``
        precompute per-layer effective weights.  Training requires
        ``fp64`` — layers raise from ``forward`` otherwise.  The master
        fp64 parameters are never modified, so switching back is
        lossless.
        """
        require(mode in PRECISIONS,
                f"unknown precision {mode!r} (expected one of {PRECISIONS})")
        for module in self.modules():
            module._set_precision(mode)

    @property
    def precision(self) -> str:
        """This module's active inference precision tier."""
        return self.__dict__.get("_precision", "fp64")

    def _set_precision(self, mode: str) -> None:
        """Per-module hook for :meth:`set_inference_precision`."""
        self._precision = mode

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


def _collect(value) -> List[Parameter]:
    if isinstance(value, Parameter):
        return [value]
    if isinstance(value, Module):
        return value.parameters()
    if isinstance(value, (list, tuple)):
        out: List[Parameter] = []
        for item in value:
            out.extend(_collect(item))
        return out
    return []


def _collect_modules(value) -> List["Module"]:
    if isinstance(value, Module):
        return [value]
    if isinstance(value, (list, tuple)):
        out: List[Module] = []
        for item in value:
            out.extend(_collect_modules(item))
        return out
    return []


class Sequential(Module):
    """Chain of modules; backward unwinds them in reverse."""

    def __init__(self, *layers: Module) -> None:
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]


def state_dict(module: Module) -> List[np.ndarray]:
    """Flat copy of all parameter arrays (save/load helper)."""
    return [p.data.copy() for p in module.parameters()]


def load_state_dict(module: Module, state: List[np.ndarray],
                    copy: bool = True) -> None:
    """Restore parameters saved by :func:`state_dict`.

    With ``copy=False`` matching float64 arrays are **adopted by
    reference** instead of copied — the serving fleet passes read-only
    shared-memory views here so N worker processes share one set of
    weights.  Inference never writes parameter data, so read-only
    backing is safe; training such a module would raise on the first
    optimizer step (the arrays are not writable), which is the intended
    guard.
    """
    params = module.parameters()
    require(len(params) == len(state), "state size mismatch")
    for p, arr in zip(params, state):
        require(p.data.shape == tuple(np.shape(arr)),
                f"parameter shape mismatch: {p.data.shape} vs {np.shape(arr)}")
        if not copy and isinstance(arr, np.ndarray) \
                and arr.dtype == np.float64:
            p.data = arr
        else:
            p.data[...] = arr
