"""Numerical gradient checking for layers and whole models.

Used throughout the test suite: every hand-written backward in this package
is verified against central finite differences.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.module import Module


def numerical_grad(fn: Callable[[], float], array: np.ndarray,
                   eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. *array*.

    *array* is perturbed in place and restored.
    """
    grad = np.zeros_like(array)
    flat = array.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        plus = fn()
        flat[i] = old - eps
        minus = fn()
        flat[i] = old
        gflat[i] = (plus - minus) / (2 * eps)
    return grad


def check_layer_gradients(layer: Module, x: np.ndarray,
                          atol: float = 1e-6, rtol: float = 1e-4) -> None:
    """Assert analytic == numerical gradients for a layer.

    Checks both the input gradient and every parameter gradient against a
    quadratic scalarization ``0.5 * sum(out²)`` (whose output gradient is
    simply ``out``).
    """
    def scalar() -> float:
        out = layer.forward(x)
        value = 0.5 * float((out * out).sum())
        # Unwind the cache so repeated calls do not leak entries.
        layer.backward(out)
        layer.zero_grad()
        return value

    # Analytic pass.
    out = layer.forward(x)
    layer.zero_grad()
    dx = layer.backward(out.copy())

    num_dx = numerical_grad(scalar, x)
    np.testing.assert_allclose(dx, num_dx, atol=atol, rtol=rtol,
                               err_msg="input gradient mismatch")

    for k, p in enumerate(layer.parameters()):
        out = layer.forward(x)
        layer.zero_grad()
        layer.backward(out.copy())
        analytic = p.grad.copy()
        num = numerical_grad(scalar, p.data)
        np.testing.assert_allclose(analytic, num, atol=atol, rtol=rtol,
                                   err_msg=f"parameter {k} gradient mismatch")
