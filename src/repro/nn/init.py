"""Deterministic weight initializers."""

from __future__ import annotations

import numpy as np


def kaiming_uniform(rng: np.random.Generator, shape: tuple) -> np.ndarray:
    """He-uniform init; fan-in is the product of all non-leading dims."""
    fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else shape[0]
    bound = np.sqrt(6.0 / max(1, fan_in))
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(rng: np.random.Generator, shape: tuple) -> np.ndarray:
    """Glorot-uniform init for 2-D weights."""
    fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else shape[0]
    fan_out = shape[0]
    bound = np.sqrt(6.0 / max(1, fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)
