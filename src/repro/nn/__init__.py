"""Numpy neural-network micro-framework (PyTorch/DGL substitution).

Layers cache inputs on a LIFO stack, so a layer may be applied many times
(e.g. once per topological level in the GNN) before gradients flow back in
reverse order.  All backward passes are verified against numerical
gradients in the test suite.
"""

from repro.nn.module import (
    PRECISIONS,
    Module,
    Parameter,
    Sequential,
    inference_mode,
    is_inference,
    load_state_dict,
    state_dict,
)
from repro.nn.layers import Embedding, Flatten, Linear, ReLU, Tanh, mlp
from repro.nn.conv import Conv2d, MaxPool2d
from repro.nn.losses import huber_loss, mse_loss
from repro.nn.optim import SGD, Adam
from repro.nn.init import kaiming_uniform, xavier_uniform
from repro.nn.gradcheck import check_layer_gradients, numerical_grad
from repro.nn.quant import QUANT_SCHEME, dequantize, quantize_per_channel
from repro.nn.workspace import (
    Workspace,
    current_workspace,
    workspace,
    ws_empty,
)

__all__ = [
    "PRECISIONS",
    "Module",
    "Parameter",
    "Sequential",
    "inference_mode",
    "is_inference",
    "load_state_dict",
    "state_dict",
    "QUANT_SCHEME",
    "dequantize",
    "quantize_per_channel",
    "Workspace",
    "current_workspace",
    "workspace",
    "ws_empty",
    "Embedding",
    "Flatten",
    "Linear",
    "ReLU",
    "Tanh",
    "mlp",
    "Conv2d",
    "MaxPool2d",
    "huber_loss",
    "mse_loss",
    "SGD",
    "Adam",
    "kaiming_uniform",
    "xavier_uniform",
    "check_layer_gradients",
    "numerical_grad",
]
