"""Loss functions (value + input gradient in one call)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils import require


def mse_loss(pred: np.ndarray, target: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean squared error — Eq. (2) of the paper.

    Returns ``(loss, dloss/dpred)``.
    """
    require(pred.shape == target.shape,
            f"shape mismatch {pred.shape} vs {target.shape}")
    diff = pred - target
    n = pred.size
    return float((diff * diff).mean()), (2.0 / n) * diff


def huber_loss(pred: np.ndarray, target: np.ndarray,
               delta: float = 1.0) -> Tuple[float, np.ndarray]:
    """Huber loss (used in robustness ablations)."""
    require(pred.shape == target.shape,
            f"shape mismatch {pred.shape} vs {target.shape}")
    diff = pred - target
    absd = np.abs(diff)
    quad = absd <= delta
    value = np.where(quad, 0.5 * diff * diff, delta * (absd - 0.5 * delta))
    grad = np.where(quad, diff, delta * np.sign(diff)) / pred.size
    return float(value.mean()), grad
