"""Dense layers and activations with explicit backward passes."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn.init import kaiming_uniform
from repro.nn.module import Module, Parameter, is_inference
from repro.nn.quant import dequantize, quantize_per_channel
from repro.nn.workspace import ws_empty
from repro.utils import require


def _cast_input(x: np.ndarray, dtype) -> np.ndarray:
    """Arena-backed dtype cast (no-op when dtypes already match)."""
    if x.dtype == dtype:
        return x
    out = ws_empty(x.shape, dtype)
    np.copyto(out, x)
    return out


class Linear(Module):
    """Affine layer ``y = x @ W.T + b`` for inputs of shape (N, in)."""

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None,
                 bias: bool = True) -> None:
        rng = rng or np.random.default_rng(0)
        self.weight = Parameter(kaiming_uniform(rng, (out_features, in_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self._cache: List[np.ndarray] = []
        # Effective inference weights for non-fp64 tiers; the fp64
        # master Parameter is never modified, so tiers are reversible.
        self._w_eff: Optional[np.ndarray] = None
        self._b_eff: Optional[np.ndarray] = None
        self._quant = None

    def _set_precision(self, mode: str) -> None:
        self._precision = mode
        if mode == "fp64":
            self._w_eff = self._b_eff = self._quant = None
            return
        if mode == "int8":
            self._quant = quantize_per_channel(self.weight.data)
            self._w_eff = dequantize(self._quant["q"], self._quant["scale"],
                                     dtype=np.float32)
        else:
            self._quant = None
            self._w_eff = self.weight.data.astype(np.float32)
        self._b_eff = (self.bias.data.astype(np.float32)
                       if self.bias is not None else None)

    def _install_quant(self, q: np.ndarray, scale: np.ndarray) -> None:
        """Adopt a stored int8 payload verbatim (no requantization drift)."""
        self._precision = "int8"
        self._quant = {"quant": "int8-perchannel", "q": q, "scale": scale}
        self._w_eff = dequantize(q, scale, dtype=np.float32)
        self._b_eff = (self.bias.data.astype(np.float32)
                       if self.bias is not None else None)

    def forward(self, x: np.ndarray) -> np.ndarray:
        require(x.ndim == 2 and x.shape[1] == self.weight.shape[1],
                f"Linear expects (N, {self.weight.shape[1]}), got {x.shape}")
        if is_inference():
            w = self._w_eff if self._w_eff is not None else self.weight.data
            x = _cast_input(x, w.dtype)
            out = ws_empty((x.shape[0], w.shape[0]), w.dtype)
            np.matmul(x, w.T, out=out)
            if self.bias is not None:
                out += (self._b_eff if self._b_eff is not None
                        else self.bias.data)
            return out
        require(self.precision == "fp64",
                f"training requires fp64 precision, not {self.precision!r}")
        self._cache.append(x)
        out = x @ self.weight.data.T
        if self.bias is not None:
            out += self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x = self._cache.pop()
        self.weight.grad += grad_output.T @ x
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.data


class Embedding(Module):
    """Row-gather lookup table ``y = W[ids]`` for integer id arrays.

    Backward scatter-adds the output gradient into the selected rows.
    Used for the MMMC corner embedding: each packed sample carries a
    corner index, and the gathered row is concatenated into the fusion
    head (see :mod:`repro.core.fusion`).
    """

    def __init__(self, n_embeddings: int, dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        require(n_embeddings > 0 and dim > 0,
                "Embedding needs positive table dimensions")
        rng = rng or np.random.default_rng(0)
        # Small-normal init: the rows start near zero so a freshly added
        # corner axis perturbs the fused representation only mildly.
        self.weight = Parameter(rng.normal(0.0, 0.1, (n_embeddings, dim)))
        self._cache: List[np.ndarray] = []
        self._w_eff: Optional[np.ndarray] = None

    def _set_precision(self, mode: str) -> None:
        self._precision = mode
        # The table is tiny (corners × dim); fp32/int8 tiers just keep a
        # single-precision copy so gathered rows match the pipeline dtype.
        self._w_eff = (None if mode == "fp64"
                       else self.weight.data.astype(np.float32))

    def forward(self, ids: np.ndarray) -> np.ndarray:
        require(np.issubdtype(np.asarray(ids).dtype, np.integer),
                "Embedding expects integer ids")
        if is_inference():
            w = self._w_eff if self._w_eff is not None else self.weight.data
            return np.take(w, ids, axis=0,
                           out=ws_empty((len(ids), w.shape[1]), w.dtype))
        require(self.precision == "fp64",
                f"training requires fp64 precision, not {self.precision!r}")
        self._cache.append(np.asarray(ids))
        return self.weight.data[ids]

    def backward(self, grad_output: np.ndarray) -> None:
        ids = self._cache.pop()
        np.add.at(self.weight.grad, ids, grad_output)
        return None  # ids are not differentiable


class ReLU(Module):
    """Elementwise rectifier."""

    def __init__(self) -> None:
        self._cache: List[np.ndarray] = []

    def forward(self, x: np.ndarray) -> np.ndarray:
        if is_inference():
            return np.maximum(x, 0.0, out=ws_empty(x.shape, x.dtype))
        mask = x > 0
        self._cache.append(mask)
        return x * mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        mask = self._cache.pop()
        return grad_output * mask


class Tanh(Module):
    """Elementwise hyperbolic tangent."""

    def __init__(self) -> None:
        self._cache: List[np.ndarray] = []

    def forward(self, x: np.ndarray) -> np.ndarray:
        if is_inference():
            return np.tanh(x, out=ws_empty(x.shape, x.dtype))
        out = np.tanh(x)
        self._cache.append(out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        out = self._cache.pop()
        return grad_output * (1.0 - out * out)


class Flatten(Module):
    """Flatten all but the leading (batch) dimension."""

    def __init__(self) -> None:
        self._cache: List[tuple] = []

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not is_inference():
            self._cache.append(x.shape)
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        shape = self._cache.pop()
        return grad_output.reshape(shape)


def mlp(sizes: List[int], rng: np.random.Generator,
        activate_last: bool = False) -> "Sequential":
    """Build an MLP ``Linear → ReLU → … → Linear`` from layer sizes.

    The paper uses 3-layer MLPs throughout (Section VI-A); this helper
    builds them with shared deterministic initialization.
    """
    from repro.nn.module import Sequential

    require(len(sizes) >= 2, "mlp needs at least input and output sizes")
    layers: List[Module] = []
    for i in range(len(sizes) - 1):
        layers.append(Linear(sizes[i], sizes[i + 1], rng=rng))
        if i < len(sizes) - 2 or activate_last:
            layers.append(ReLU())
    return Sequential(*layers)
