"""Dense layers and activations with explicit backward passes."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn.init import kaiming_uniform
from repro.nn.module import Module, Parameter, is_inference
from repro.utils import require


class Linear(Module):
    """Affine layer ``y = x @ W.T + b`` for inputs of shape (N, in)."""

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None,
                 bias: bool = True) -> None:
        rng = rng or np.random.default_rng(0)
        self.weight = Parameter(kaiming_uniform(rng, (out_features, in_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self._cache: List[np.ndarray] = []

    def forward(self, x: np.ndarray) -> np.ndarray:
        require(x.ndim == 2 and x.shape[1] == self.weight.shape[1],
                f"Linear expects (N, {self.weight.shape[1]}), got {x.shape}")
        if not is_inference():
            self._cache.append(x)
        out = x @ self.weight.data.T
        if self.bias is not None:
            out += self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x = self._cache.pop()
        self.weight.grad += grad_output.T @ x
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.data


class ReLU(Module):
    """Elementwise rectifier."""

    def __init__(self) -> None:
        self._cache: List[np.ndarray] = []

    def forward(self, x: np.ndarray) -> np.ndarray:
        if is_inference():
            return np.maximum(x, 0.0)
        mask = x > 0
        self._cache.append(mask)
        return x * mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        mask = self._cache.pop()
        return grad_output * mask


class Tanh(Module):
    """Elementwise hyperbolic tangent."""

    def __init__(self) -> None:
        self._cache: List[np.ndarray] = []

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.tanh(x)
        if not is_inference():
            self._cache.append(out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        out = self._cache.pop()
        return grad_output * (1.0 - out * out)


class Flatten(Module):
    """Flatten all but the leading (batch) dimension."""

    def __init__(self) -> None:
        self._cache: List[tuple] = []

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not is_inference():
            self._cache.append(x.shape)
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        shape = self._cache.pop()
        return grad_output.reshape(shape)


def mlp(sizes: List[int], rng: np.random.Generator,
        activate_last: bool = False) -> "Sequential":
    """Build an MLP ``Linear → ReLU → … → Linear`` from layer sizes.

    The paper uses 3-layer MLPs throughout (Section VI-A); this helper
    builds them with shared deterministic initialization.
    """
    from repro.nn.module import Sequential

    require(len(sizes) >= 2, "mlp needs at least input and output sizes")
    layers: List[Module] = []
    for i in range(len(sizes) - 1):
        layers.append(Linear(sizes[i], sizes[i + 1], rng=rng))
        if i < len(sizes) - 2 or activate_last:
            layers.append(ReLU())
    return Sequential(*layers)
