"""Weight-only int8 quantization with per-output-channel scales.

The int8 inference tier stores Linear/Conv2d weights as int8 plus one
fp64 scale per output channel (symmetric, zero-point-free):

    scale[o] = max(|W[o, :]|) / 127        (0-rows get scale 1.0)
    q[o, :]  = round(W[o, :] / scale[o])   clipped to [-127, 127]

Storage shrinks 8x in artifacts and the fleet's shared-memory segment;
*compute* stays floating point — the dequantized fp32 weights are
materialized once per layer and reused, because numpy has no int8 GEMM
to win anything from.  The accuracy contract is therefore exactly the
round-trip error ``W - q * scale``, guarded against the Table II
metrics in the benchmark suite.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

QUANT_SCHEME = "int8-perchannel"


def quantize_per_channel(weight: np.ndarray) -> Dict[str, np.ndarray]:
    """Quantize ``weight`` along axis 0 (output channels) to int8.

    Returns ``{"quant": QUANT_SCHEME, "q": int8, "scale": fp64}`` with
    ``q.shape == weight.shape`` and ``scale.shape == (weight.shape[0],)``.
    """
    w = np.asarray(weight, dtype=np.float64)
    flat = w.reshape(w.shape[0], -1)
    absmax = np.abs(flat).max(axis=1)
    scale = np.where(absmax > 0.0, absmax / 127.0, 1.0)
    q = np.clip(np.rint(flat / scale[:, None]), -127, 127).astype(np.int8)
    return {"quant": QUANT_SCHEME, "q": q.reshape(w.shape),
            "scale": scale}


def dequantize(q: np.ndarray, scale: np.ndarray,
               dtype=np.float64) -> np.ndarray:
    """Reconstruct the float weights ``q * scale`` (per output channel)."""
    q = np.asarray(q)
    shape = (-1,) + (1,) * (q.ndim - 1)
    return (q.astype(np.float64)
            * np.asarray(scale, dtype=np.float64).reshape(shape)
            ).astype(dtype)
