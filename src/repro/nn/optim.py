"""First-order optimizers."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.nn.module import Parameter
from repro.utils import require_positive


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: List[Parameter], lr: float = 0.01,
                 momentum: float = 0.0) -> None:
        require_positive(lr, "lr")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            v *= self.momentum
            v -= self.lr * p.grad
            p.data += v

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam (Kingma & Ba) — the optimizer the paper trains with."""

    def __init__(self, params: List[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8) -> None:
        require_positive(lr, "lr")
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            m *= b1
            m += (1 - b1) * p.grad
            v *= b2
            v += (1 - b2) * p.grad * p.grad
            p.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()
