"""Buffer-arena workspace: reuse inference scratch buffers across forwards.

Every packed forward allocates the same pyramid of intermediates —
gathers, activations, im2col patch matrices — and throws them away.  In
the serving hot path that is pure allocator churn: the shapes repeat
request after request for a warm design.  A :class:`Workspace` is a pool
of buffers keyed by ``(shape, dtype)`` that a forward *borrows* from and
implicitly returns at the start of the next forward:

* :meth:`Workspace.begin` rewinds every pool's cursor (called when the
  arena is activated for a forward);
* :func:`ws_empty` hands out the next pooled buffer for a shape, growing
  the pool on first sight of a shape — so two same-shape requests within
  one forward get *distinct* buffers, and reuse only happens across
  forwards;
* :meth:`Workspace.release` drops every buffer (session teardown, or
  automatically when the high-water mark exceeds the byte cap).

Lifetime rule (see DESIGN.md "Precision & memory tiers"): a borrowed
buffer is valid only until the next ``begin()`` on the same workspace.
Anything that escapes a forward (predictions returned to a client) must
be a fresh allocation — ``LabelNorm.denormalize`` already copies, which
is what makes arena use safe in the predictor.

Numerical note: filling results via ``np.matmul(..., out=buf)`` /
``np.maximum(..., out=buf)`` is bit-identical to the allocating
spellings — only the destination storage changes, never the operation —
so the default fp64 path stays exactly reproducible with the arena on.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

import numpy as np

# Soft cap on pooled bytes: checked at ``begin()``; exceeding it releases
# the pools so one giant request doesn't pin its high-water mark forever.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

_Key = Tuple[Tuple[int, ...], str]


class Workspace:
    """A grow-on-demand pool of reusable scratch arrays."""

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        self.max_bytes = int(max_bytes)
        #: key -> [cursor, buffers]; one dict lookup per borrow.
        self._pools: Dict[_Key, list] = {}
        self._hits = 0
        self._misses = 0
        self._trims = 0

    def begin(self) -> None:
        """Rewind all cursors; every pooled buffer becomes borrowable."""
        if self.nbytes > self.max_bytes:
            self.release()
            self._trims += 1
        for entry in self._pools.values():
            entry[0] = 0

    def take(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """Borrow a buffer of ``shape``/``dtype`` until the next begin().

        ``shape`` tuples may mix python ints and numpy integers — they
        hash and compare equal, so both spellings share one pool.
        """
        key = (shape, np.dtype(dtype).str)
        entry = self._pools.get(key)
        if entry is None:
            entry = self._pools[key] = [0, []]
        cursor = entry[0]
        entry[0] = cursor + 1
        pool = entry[1]
        if cursor < len(pool):
            self._hits += 1
            return pool[cursor]
        self._misses += 1
        buf = np.empty(shape, dtype=np.dtype(dtype))
        pool.append(buf)
        return buf

    def release(self) -> None:
        """Drop every pooled buffer (session teardown / byte-cap trim)."""
        self._pools.clear()

    @property
    def nbytes(self) -> int:
        return sum(buf.nbytes for _, pool in self._pools.values()
                   for buf in pool)

    def describe(self) -> Dict[str, int]:
        return {
            "buffers": sum(len(pool) for _, pool in self._pools.values()),
            "bytes": self.nbytes,
            "hits": self._hits,
            "misses": self._misses,
            "trims": self._trims,
        }


_ACTIVE = threading.local()


def current_workspace() -> Optional[Workspace]:
    """The workspace active on this thread, or None."""
    return getattr(_ACTIVE, "ws", None)


@contextmanager
def workspace(ws: Optional[Workspace]):
    """Activate ``ws`` for forwards on this thread (None = no-op).

    Entering the block calls ``ws.begin()``, invalidating buffers lent
    out by the previous forward — callers must not hold arena arrays
    across activations.
    """
    prev = getattr(_ACTIVE, "ws", None)
    if ws is not None:
        ws.begin()
    _ACTIVE.ws = ws
    try:
        yield ws
    finally:
        _ACTIVE.ws = prev


def ws_empty(shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
    """An uninitialized array from the active arena, else a fresh one."""
    ws = getattr(_ACTIVE, "ws", None)
    if ws is None:
        return np.empty(shape, dtype=np.dtype(dtype))
    return ws.take(shape, dtype)
