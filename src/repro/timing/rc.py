"""Wire-length providers for net delay calculation.

STA is parameterized by *where the wire lengths come from*:

* :class:`PreRouteEstimator` — Manhattan pin-to-pin distance from the
  placement, the information available before routing (this is what both
  the predictor's features and Elmore's pre-routing STA see);
* :class:`RoutedLengths` — actual routed segment lengths produced by
  :mod:`repro.route`, used for sign-off timing (the labels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.netlist import Netlist
from repro.placement import Placement


class WireLengthProvider:
    """Interface: per (driver pin, sink pin) wire length in µm."""

    def length(self, driver_pin: int, sink_pin: int) -> float:
        raise NotImplementedError


@dataclass
class PreRouteEstimator(WireLengthProvider):
    """Manhattan-distance wire estimate from placement (pre-routing)."""

    netlist: Netlist
    placement: Placement

    def length(self, driver_pin: int, sink_pin: int) -> float:
        xd, yd = self.placement.pin_position(self.netlist, driver_pin)
        xs, ys = self.placement.pin_position(self.netlist, sink_pin)
        return abs(xd - xs) + abs(yd - ys)


@dataclass
class RoutedLengths(WireLengthProvider):
    """Routed wire lengths reported by the global router (sign-off)."""

    lengths: Dict[Tuple[int, int], float] = field(default_factory=dict)

    def length(self, driver_pin: int, sink_pin: int) -> float:
        return self.lengths[(driver_pin, sink_pin)]

    def set_length(self, driver_pin: int, sink_pin: int,
                   value: float) -> None:
        self.lengths[(driver_pin, sink_pin)] = value
