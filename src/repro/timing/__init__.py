"""Static timing analysis substrate: pin graph, NLDM, Elmore, PERT sweep."""

from repro.timing.graph import (
    CELL_OUT,
    NET_SINK,
    SOURCE,
    TimingGraph,
    build_timing_graph,
)
from repro.timing.constraints import TimingConstraints, parse_sdc
from repro.timing.corners import (
    BASE_CORNER,
    STANDARD_CORNERS,
    Corner,
    CornerSet,
    derate_library,
    register_corner,
    resolve_corner,
)
from repro.timing.incremental import IncrementalSTA
from repro.timing.partition import (
    GraphChunk,
    PartitionConfig,
    StreamPlan,
    build_stream_plan,
    partition_graph,
    pins_for_budget,
    stream_plan_for,
)
from repro.timing.nldm import BatchNLDM, batch_nldm_for
from repro.timing.report import (
    PathReport,
    PathStep,
    report_path,
    report_summary,
    report_timing,
)
from repro.timing.rc import PreRouteEstimator, RoutedLengths, WireLengthProvider
from repro.timing.sta import (
    PI_INPUT_SLEW,
    PO_LOAD_FF,
    STAResult,
    run_sta,
)

__all__ = [
    "CELL_OUT",
    "NET_SINK",
    "SOURCE",
    "TimingGraph",
    "build_timing_graph",
    "TimingConstraints",
    "parse_sdc",
    "BASE_CORNER",
    "STANDARD_CORNERS",
    "Corner",
    "CornerSet",
    "derate_library",
    "register_corner",
    "resolve_corner",
    "IncrementalSTA",
    "GraphChunk",
    "PartitionConfig",
    "StreamPlan",
    "build_stream_plan",
    "partition_graph",
    "pins_for_budget",
    "stream_plan_for",
    "BatchNLDM",
    "batch_nldm_for",
    "PathReport",
    "PathStep",
    "report_path",
    "report_summary",
    "report_timing",
    "PreRouteEstimator",
    "RoutedLengths",
    "WireLengthProvider",
    "PI_INPUT_SLEW",
    "PO_LOAD_FF",
    "STAResult",
    "run_sta",
]
