"""Incremental STA for parameter-only edits (sizing, cell moves).

Commercial optimizers re-time after every trial move; re-running full STA
each time wastes work when the edit is local.  For edits that keep the
graph *topology* intact — gate resizing and placement moves —
:class:`IncrementalSTA` updates the static electrical data only where it
changed and re-propagates arrival/slew only from the lowest topological
level an edit can influence, reusing everything above it.  The result is
bit-identical to a fresh :func:`repro.timing.sta.run_sta` (verified in the
test suite).

Structural edits (buffering, decomposition, cloning) change the node set
and require :meth:`IncrementalSTA.rebuild`.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

import numpy as np

from repro.netlist import Netlist
from repro.obs import get_metrics, get_tracer
from repro.placement import Placement
from repro.timing.graph import NET_SINK, TimingGraph, build_timing_graph
from repro.timing.nldm import batch_nldm_for
from repro.timing.rc import PreRouteEstimator, WireLengthProvider
from repro.timing.sta import (
    PI_INPUT_SLEW,
    PO_LOAD_FF,
    SLEW_WIRE_FACTOR,
    STAResult,
    _argmax_per_dst,
)


class IncrementalSTA:
    """Keeps an up-to-date :class:`STAResult` across local edits."""

    def __init__(self, netlist: Netlist, placement: Placement,
                 clock_period: float,
                 wires: Optional[WireLengthProvider] = None) -> None:
        self.netlist = netlist
        self.placement = placement
        self.clock_period = clock_period
        self.wires = wires or PreRouteEstimator(netlist, placement)
        self.partial_updates = 0
        self.full_rebuilds = 0
        self._dirty: Set[int] = set()
        self._build()

    # ------------------------------------------------------------------
    # Construction / static state
    # ------------------------------------------------------------------
    def _build(self) -> None:
        self.graph: TimingGraph = build_timing_graph(self.netlist)
        g = self.graph
        nl = self.netlist
        self._nldm = batch_nldm_for(nl.library)
        n = g.n_nodes
        self._po_pins = {p.pin for p in nl.primary_outputs()}

        self._pin_cap = np.zeros(n)
        self._out_type = np.zeros(n, dtype=np.int64)
        for i in range(n):
            self._refresh_node_static(i)

        e_dst = g.net_edge_dst
        self._edge_of_sink = np.full(n, -1, dtype=np.int64)
        self._edge_of_sink[e_dst] = np.arange(len(e_dst))
        self._wire_len = np.empty(len(g.net_edge_src))
        for k in range(len(g.net_edge_src)):
            self._wire_len[k] = self.wires.length(
                int(g.pin_ids[g.net_edge_src[k]]),
                int(g.pin_ids[e_dst[k]]))
        self._recompute_wire_terms()
        self._cell_delay = np.zeros(len(g.cell_edge_src))
        self._arrival = np.full(n, -np.inf)
        self._slew = np.full(n, PI_INPUT_SLEW)
        self._best_pred = np.full(n, -1, dtype=np.int64)
        self._init_sources()
        self._sweep(start_level=1)
        self.result = self._package()

    def _refresh_node_static(self, node: int) -> None:
        nl = self.netlist
        lib = nl.library
        pin = nl.pins[int(self.graph.pin_ids[node])]
        cap = 0.0
        if pin.cell is not None and pin.direction == "in":
            cap = lib.cell(nl.cells[pin.cell].type_name).input_cap
        elif pin.pid in self._po_pins:
            cap = PO_LOAD_FF
        self._pin_cap[node] = cap
        if pin.cell is not None and pin.direction == "out":
            self._out_type[node] = self._nldm.type_id(
                nl.cells[pin.cell].type_name)

    def _recompute_wire_terms(self) -> None:
        g = self.graph
        w = self.netlist.library.wire
        self._wire_delay = w.resistance(self._wire_len) * (
            0.5 * w.capacitance(self._wire_len)
            + self._pin_cap[g.net_edge_dst])
        self._load = np.zeros(g.n_nodes)
        np.add.at(self._load, g.net_edge_src,
                  self._pin_cap[g.net_edge_dst]
                  + w.capacitance(self._wire_len))

    def _init_sources(self) -> None:
        g, nl = self.graph, self.netlist
        for node in g.startpoints:
            pin = nl.pins[int(g.pin_ids[node])]
            if pin.cell is None:
                self._arrival[node] = 0.0
            else:
                ctype = nl.library.cell(nl.cells[pin.cell].type_name)
                self._arrival[node] = ctype.clk_to_q
            self._slew[node] = PI_INPUT_SLEW
        lonely = (g.level == 0) & (self._arrival == -np.inf)
        self._arrival[lonely] = 0.0

    # ------------------------------------------------------------------
    # Edit notifications
    # ------------------------------------------------------------------
    def resize_cell(self, cid: int, new_type_name: str) -> None:
        """Change a cell's drive in place and mark the affected cone.

        A resize changes (a) the cell's arc delays and (b) its input pin
        caps, which alter the loads and wire delays of the driving nets —
        so the fan-in drivers' arcs change too.
        """
        nl = self.netlist
        inst = nl.cells[cid]
        nl.change_cell_type(cid, new_type_name)
        node_of = self.graph.node_of
        out_node = node_of[inst.output_pin]
        self._refresh_node_static(out_node)
        self._dirty.add(out_node)
        for ip in inst.input_pins:
            in_node = node_of[ip]
            self._refresh_node_static(in_node)
            net_id = nl.pins[ip].net
            if net_id is None:
                continue
            net = nl.nets[net_id]
            self._dirty.add(node_of[net.driver])
            for sp in net.sinks:
                self._dirty.add(node_of[sp])

    def move_cell(self, cid: int, x: float, y: float) -> None:
        """Move a cell; all nets touching it change wire lengths."""
        nl = self.netlist
        self.placement.set_position(cid, x, y)
        node_of = self.graph.node_of
        g = self.graph
        inst = nl.cells[cid]
        for pid in list(inst.input_pins) + [inst.output_pin]:
            net_id = nl.pins[pid].net
            if net_id is None:
                continue
            net = nl.nets[net_id]
            drv_node = node_of[net.driver]
            self._dirty.add(drv_node)
            for sp in net.sinks:
                sink_node = node_of[sp]
                edge = self._edge_of_sink[sink_node]
                self._wire_len[edge] = self.wires.length(net.driver, sp)
                self._dirty.add(sink_node)

    def rebuild(self) -> STAResult:
        """Full rebuild (required after structural netlist edits)."""
        self._dirty.clear()
        self.full_rebuilds += 1
        with get_tracer().span("sta.rebuild", design=self.netlist.name):
            self._build()
        get_metrics().counter("sta.incremental.full_rebuilds").inc()
        return self.result

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------
    def refresh(self) -> STAResult:
        """Re-propagate from the lowest dirty level; returns fresh result."""
        if not self._dirty:
            return self.result
        start = max(1, int(min(self.graph.level[v] for v in self._dirty)))
        with get_tracer().span("sta.refresh", design=self.netlist.name,
                               start_level=start):
            self._recompute_wire_terms()
            self._sweep(start_level=start)
            self.result = self._package()
        self._dirty.clear()
        self.partial_updates += 1
        metrics = get_metrics()
        metrics.counter("sta.incremental.partial").inc()
        metrics.histogram("sta.incremental.start_level").observe(start)
        return self.result

    def _sweep(self, start_level: int) -> None:
        g = self.graph
        e_src = g.net_edge_src
        c_src, c_dst = g.cell_edge_src, g.cell_edge_dst
        for lvl in range(start_level, g.n_levels):
            nodes = g.levels[lvl]
            sinks = nodes[g.kind[nodes] == NET_SINK]
            if len(sinks):
                edges = self._edge_of_sink[sinks]
                src = e_src[edges]
                self._arrival[sinks] = (self._arrival[src]
                                        + self._wire_delay[edges])
                self._slew[sinks] = (self._slew[src] + SLEW_WIRE_FACTOR
                                     * self._wire_delay[edges])
                self._best_pred[sinks] = src
            mask = g.level[c_dst] == lvl
            if mask.any():
                src = c_src[mask]
                dst = c_dst[mask]
                d, s_out = self._nldm.lookup(self._out_type[dst],
                                             self._slew[src],
                                             self._load[dst])
                self._cell_delay[mask] = d
                self._arrival[dst] = -np.inf
                cand = self._arrival[src] + d
                np.maximum.at(self._arrival, dst, cand)
                sel = _argmax_per_dst(cand, dst, self._arrival)
                self._slew[dst[sel]] = s_out[sel]
                self._best_pred[dst[sel]] = src[sel]

    # ------------------------------------------------------------------
    def _package(self) -> STAResult:
        g, nl = self.graph, self.netlist
        endpoint_arrival: Dict[int, float] = {}
        endpoint_slack: Dict[int, float] = {}
        required = np.full(g.n_nodes, np.inf)
        for node in g.endpoints:
            pid = int(g.pin_ids[node])
            pin = nl.pins[pid]
            setup = 0.0
            if pin.cell is not None:
                setup = nl.library.cell(
                    nl.cells[pin.cell].type_name).setup_time
            endpoint_arrival[pid] = float(self._arrival[node])
            endpoint_slack[pid] = float(self.clock_period - setup
                                        - self._arrival[node])
            required[node] = self.clock_period - setup

        e_src, e_dst = g.net_edge_src, g.net_edge_dst
        c_src, c_dst = g.cell_edge_src, g.cell_edge_dst
        for lvl in range(g.n_levels - 1, 0, -1):
            nodes = g.levels[lvl]
            sinks = nodes[g.kind[nodes] == NET_SINK]
            if len(sinks):
                edges = self._edge_of_sink[sinks]
                np.minimum.at(required, e_src[edges],
                              required[sinks] - self._wire_delay[edges])
            mask = g.level[c_dst] == lvl
            if mask.any():
                np.minimum.at(required, c_src[mask],
                              required[c_dst[mask]]
                              - self._cell_delay[mask])

        net_edge_delay = {
            (int(g.pin_ids[e_src[k]]), int(g.pin_ids[e_dst[k]])):
                float(self._wire_delay[k]) for k in range(len(e_src))}
        cell_edge_delay = {
            (int(g.pin_ids[c_src[k]]), int(g.pin_ids[c_dst[k]])):
                float(self._cell_delay[k]) for k in range(len(c_src))}
        return STAResult(
            graph=g,
            clock_period=self.clock_period,
            arrival=self._arrival.copy(),
            slew=self._slew.copy(),
            required=required,
            load=self._load.copy(),
            best_pred=self._best_pred.copy(),
            endpoint_arrival=endpoint_arrival,
            endpoint_slack=endpoint_slack,
            net_edge_delay=net_edge_delay,
            cell_edge_delay=cell_edge_delay,
        )
