"""Commercial-style timing reports (``report_timing`` / ``report_wns``).

Formats STA results the way sign-off tools present them: a per-endpoint
summary table and full path reports with per-arc increments — useful both
for debugging the substrate and as a familiar interface for EDA users.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.timing.graph import NET_SINK
from repro.timing.sta import STAResult
from repro.utils import require


@dataclass(frozen=True)
class PathStep:
    """One pin on a timing path."""

    pin_name: str
    arc: str          # "net" / "cell" / "launch"
    incr: float       # delay increment, ps
    arrival: float    # cumulative arrival, ps
    slew: float       # ps


@dataclass(frozen=True)
class PathReport:
    """A full worst-path report into one endpoint."""

    endpoint_pin: int
    endpoint_name: str
    arrival: float
    required: float
    slack: float
    steps: List[PathStep]

    def format(self) -> str:
        lines = [
            f"Endpoint: {self.endpoint_name} (pin {self.endpoint_pin})",
            f"  arrival {self.arrival:10.1f} ps   required "
            f"{self.required:10.1f} ps   slack {self.slack:10.1f} ps",
            f"  {'pin':<28} {'arc':<6} {'incr':>8} {'arrival':>9} "
            f"{'slew':>7}",
        ]
        for s in self.steps:
            lines.append(f"  {s.pin_name:<28} {s.arc:<6} {s.incr:>8.2f} "
                         f"{s.arrival:>9.1f} {s.slew:>7.1f}")
        return "\n".join(lines)


def report_path(result: STAResult, endpoint_pin: int) -> PathReport:
    """Full worst-path report into *endpoint_pin*."""
    require(endpoint_pin in result.endpoint_arrival,
            f"pin {endpoint_pin} is not a timing endpoint")
    graph = result.graph
    nl = graph.netlist
    pins = result.critical_path(endpoint_pin)
    steps: List[PathStep] = []
    prev_arrival = 0.0
    for i, pid in enumerate(pins):
        node = graph.node_of[pid]
        arrival = float(result.arrival[node])
        if i == 0:
            arc = "launch"
        elif graph.kind[node] == NET_SINK:
            arc = "net"
        else:
            arc = "cell"
        steps.append(PathStep(
            pin_name=nl.pins[pid].name,
            arc=arc,
            incr=arrival - prev_arrival,
            arrival=arrival,
            slew=float(result.slew[node]),
        ))
        prev_arrival = arrival
    setup = 0.0
    pin = nl.pins[endpoint_pin]
    if pin.cell is not None:
        setup = nl.library.cell(nl.cells[pin.cell].type_name).setup_time
    return PathReport(
        endpoint_pin=endpoint_pin,
        endpoint_name=nl.pins[endpoint_pin].name,
        arrival=result.endpoint_arrival[endpoint_pin],
        required=result.clock_period - setup,
        slack=result.endpoint_slack[endpoint_pin],
        steps=steps,
    )


def report_timing(result: STAResult, n_paths: int = 5,
                  slack_below: Optional[float] = None) -> str:
    """Text report of the *n_paths* worst endpoints (like ``report_timing``).

    ``slack_below`` filters to endpoints with slack under the threshold.
    """
    order = sorted(result.endpoint_slack,
                   key=lambda p: result.endpoint_slack[p])
    if slack_below is not None:
        order = [p for p in order
                 if result.endpoint_slack[p] < slack_below]
    blocks = [report_path(result, pid).format() for pid in order[:n_paths]]
    header = (f"clock period {result.clock_period:.1f} ps | "
              f"WNS {result.wns:.1f} ps | TNS {result.tns:.1f} ps | "
              f"{sum(1 for s in result.endpoint_slack.values() if s < 0)} "
              f"violating endpoints")
    return "\n\n".join([header] + blocks)


def report_summary(result: STAResult) -> str:
    """One-line-per-endpoint slack summary, worst first."""
    nl = result.graph.netlist
    lines = [f"{'endpoint':<28} {'arrival':>10} {'slack':>10}"]
    for pid in sorted(result.endpoint_slack,
                      key=lambda p: result.endpoint_slack[p]):
        lines.append(f"{nl.pins[pid].name:<28} "
                     f"{result.endpoint_arrival[pid]:>10.1f} "
                     f"{result.endpoint_slack[pid]:>10.1f}")
    return "\n".join(lines)
