"""Order-preserving, level-respecting partition of the timing graph.

The monolithic execution path materializes whole-graph arrays — an
``(n+1, hidden)`` propagation buffer plus level-ordered feature blocks —
which caps design size well below the paper's 20k–1.3M pins.  This module
splits the level schedule into **chunks**: consecutive runs of whole
topological levels whose combined pin count fits a budget.  Because a
chunk boundary never splits a level, executing chunks in ascending order
replays the exact per-level arithmetic of the unpartitioned path, so
results are **fp64 bit-identical**.  (BLAS results depend on the row
count it blocks over, so "same rows" alone is not enough for the hoisted
feature branches — both paths run them in fixed absolute tiles, see
``repro.core.gnn.FEAT_TILE``; the invariant is enforced by the
differential test battery.)

Terminology:

* **chunk nodes** — the nodes computed by a chunk (all non-source nodes
  of its level range), in ascending node order.
* **halo** — nodes *read* by a chunk but computed by an **earlier** chunk
  (level-respecting order makes "earlier" an invariant, asserted at build
  time).  Level-0 reads are not halo: every level-0 row of the
  propagation buffer holds the shared source embedding, so one local
  source row serves them all.
* **frontier / live store** — after a chunk executes, only embeddings
  still referenced by a later chunk are carried forward, as a dense
  id-sorted block.  Everything else is dropped, which is what bounds
  peak memory.

Memory-budget model (see :class:`PartitionConfig`): a streaming chunk
holds roughly one ``(rows, hidden)`` fp64 propagation buffer plus ~10
chunk-row-sized MLP intermediates, i.e. about ``96 * hidden`` bytes per
resident pin.  ``pins_for_budget`` inverts that to pick a chunk size from
a megabyte budget.

Import discipline: this module sits in ``repro.timing`` but must serve
``repro.ml`` (featurization) and ``repro.core`` (the GNN), so at import
time it depends only on numpy and ``repro.utils``; ``LevelPlan`` and the
nn ``Workspace`` are imported inside functions to avoid package cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils import require

_EMPTY = np.empty(0, dtype=np.int64)

#: Approximate streaming working-set bytes per resident pin, per hidden
#: unit: one fp64 buffer row (8) plus ~11 row-sized MLP/aggregation
#: intermediates alive at once inside a chunk.
STREAM_BYTES_PER_PIN_PER_HIDDEN = 96


def pins_for_budget(memory_budget_mb: float, hidden: int = 64) -> int:
    """Chunk size (pins) whose streaming working set fits *memory_budget_mb*."""
    require(memory_budget_mb > 0, "memory_budget_mb must be positive")
    require(hidden > 0, "hidden must be positive")
    pins = int(memory_budget_mb * 2 ** 20
               // (STREAM_BYTES_PER_PIN_PER_HIDDEN * hidden))
    return max(pins, 256)


@dataclass(frozen=True)
class PartitionConfig:
    """How to pick chunk sizes.

    Exactly one of ``partition_pins`` (explicit chunk size) or
    ``memory_budget_mb`` (derived via the bytes-per-pin model above) is
    needed; both unset means partitioning is disabled.
    """

    partition_pins: Optional[int] = None
    memory_budget_mb: Optional[float] = None
    hidden: int = 64

    def __post_init__(self) -> None:
        if self.partition_pins is not None:
            require(self.partition_pins > 0, "partition_pins must be positive")
        if self.memory_budget_mb is not None:
            require(self.memory_budget_mb > 0,
                    "memory_budget_mb must be positive")
        require(self.hidden > 0, "hidden must be positive")

    def resolve(self) -> Optional[int]:
        """The effective chunk size in pins, or ``None`` when disabled."""
        if self.partition_pins is not None:
            return int(self.partition_pins)
        if self.memory_budget_mb is not None:
            return pins_for_budget(self.memory_budget_mb, self.hidden)
        return None


def resolve_pins(partition: Any) -> Optional[int]:
    """Normalize an int / :class:`PartitionConfig` / ``None`` knob to pins."""
    if partition is None:
        return None
    if isinstance(partition, PartitionConfig):
        return partition.resolve()
    pins = int(partition)
    require(pins > 0, "partition_pins must be positive")
    return pins


def _greedy_ranges(sizes: Sequence[int], pins: int) -> List[Tuple[int, int]]:
    """Split a level-size sequence into contiguous ranges of ≲ *pins* nodes.

    Whole levels only: a level larger than the budget becomes its own
    chunk (correctness never depends on the budget being achievable).
    Deterministic: a pure function of the sizes and the budget.
    """
    ranges: List[Tuple[int, int]] = []
    start, acc = 0, 0
    for i, size in enumerate(sizes):
        if acc and acc + size > pins:
            ranges.append((start, i))
            start, acc = i, 0
        acc += size
    if start < len(sizes):
        ranges.append((start, len(sizes)))
    return ranges


@dataclass(frozen=True)
class GraphChunk:
    """One partition chunk in graph-node terms (featurization + tests)."""

    index: int
    level_start: int           # first topological level (inclusive, >= 1)
    level_stop: int            # last topological level (exclusive)
    nodes: np.ndarray          # computed nodes, ascending
    halo: np.ndarray           # read-only inputs from earlier chunks, ascending

    @property
    def n_pins(self) -> int:
        return len(self.nodes)


def partition_graph(graph: Any, partition: Any) -> List[GraphChunk]:
    """Partition a :class:`~repro.timing.graph.TimingGraph` by levels.

    Chunks cover every node of level >= 1 exactly once, in ascending
    (deterministic) level order; halos are computed from the predecessor
    CSR and exclude level-0 nodes (served by the shared source row).
    """
    pins = resolve_pins(partition)
    require(pins is not None, "partition_graph needs an enabled partition")
    levels = graph.levels
    level = np.asarray(graph.level)
    n = graph.n_nodes
    sizes = [len(levels[l]) for l in range(1, len(levels))]
    ranges = _greedy_ranges(sizes, pins)

    chunk_of = np.full(n, -1, dtype=np.int64)
    node_lists: List[np.ndarray] = []
    for ci, (a, b) in enumerate(ranges):
        parts = [levels[l] for l in range(1 + a, 1 + b)]
        nodes = np.sort(np.concatenate(parts)) if parts else _EMPTY
        node_lists.append(nodes)
        chunk_of[nodes] = ci

    # Vectorized halo scan: expand the predecessor CSR to (edge -> dst).
    pred_ptr = np.asarray(graph.pred_ptr)
    pred_idx = np.asarray(graph.pred_idx)
    dst_of_edge = np.repeat(np.arange(n, dtype=np.int64), np.diff(pred_ptr))

    chunks: List[GraphChunk] = []
    for ci, (a, b) in enumerate(ranges):
        nodes = node_lists[ci]
        in_chunk = np.zeros(n, dtype=bool)
        in_chunk[nodes] = True
        preds = pred_idx[in_chunk[dst_of_edge]]
        halo = np.unique(preds[(level[preds] > 0) & ~in_chunk[preds]])
        require(bool(np.all(chunk_of[halo] >= 0))
                and bool(np.all(chunk_of[halo] < ci)),
                "level-respecting partition produced a forward halo reference")
        chunks.append(GraphChunk(index=ci, level_start=1 + a, level_stop=1 + b,
                                 nodes=nodes, halo=halo))
    return chunks


# ----------------------------------------------------------------------
# Streaming execution plan over LevelPlans (what the GNN consumes).
# ----------------------------------------------------------------------

@dataclass
class ChunkExec:
    """Executable form of one chunk, in **local buffer coordinates**.

    The chunk's propagation buffer has ``n_halo + n_nodes + 2`` rows laid
    out as ``[halo (id-sorted) | shared source row | chunk nodes
    (id-sorted) | -inf sentinel]``; ``-1`` predecessor padding indexes the
    last row, exactly like the whole-graph buffer's sentinel.
    """

    plans: List[Any]               # LevelPlans remapped to local rows
    n_halo: int
    n_nodes: int
    cell_order: np.ndarray         # global rows into x_cell, level order
    net_order: np.ndarray          # global rows into x_net, level order
    halo_from_live: np.ndarray     # halo rows within the previous live store
    endpoint_pos: np.ndarray       # positions on the sample endpoint axis
    endpoint_local: np.ndarray     # matching local buffer rows
    keep_prev: np.ndarray          # surviving rows of the previous live store
    keep_new: np.ndarray           # surviving local buffer rows
    live_order: np.ndarray         # argsort restoring id order after concat

    @property
    def n_rows(self) -> int:
        return self.n_halo + self.n_nodes + 2

    @property
    def source_row(self) -> int:
        return self.n_halo


@dataclass
class StreamPlan:
    """Deterministic chunk schedule for one sample (or packed batch)."""

    partition_pins: int
    chunks: List[ChunkExec]
    max_rows: int                  # widest chunk buffer
    max_live: int                  # widest frontier carried between chunks
    _ws: Any = field(default=None, repr=False, compare=False)

    def scratch_workspace(self, hidden: int) -> Any:
        """A dedicated byte-capped arena reused chunk over chunk.

        It holds exactly two *padded* ``(max_rows, hidden)`` slabs (the
        propagation buffer and the max-reduction destination) that every
        chunk slices down and borrows — entering it per chunk rewinds
        the cursors, so chunk *k+1* (and every later request on this
        plan) reuses chunk *k*'s slabs.  Padding is what makes the reuse
        real: per-chunk true shapes differ, and pooling those would
        retain every chunk's buffers at once.  The cap leaves room for
        the two fp64 slabs plus a reduced-precision pair after a tier
        switch; anything beyond that is trimmed at the next entry.
        """
        if self._ws is None:
            from repro.nn.workspace import Workspace
            cap = 4 * self.max_rows * hidden * 8
            self._ws = Workspace(max_bytes=max(cap, 8 << 20))
        return self._ws


def build_stream_plan(sample: Any, partition: Any) -> StreamPlan:
    """Compile a sample-shaped object into a :class:`StreamPlan`.

    *sample* is anything with the node-level interface the GNN consumes
    (``n_nodes``, ``level``, ``plans``, ``endpoint_nodes``) — a
    ``DesignSample`` or a ``PackedBatch``.  Plan *i* covers topological
    level ``i + 1``; chunks are contiguous plan ranges, so the per-level
    row sets (and hence the arithmetic) match the monolithic path
    exactly.
    """
    from repro.ml.sample import LevelPlan

    pins = resolve_pins(partition)
    require(pins is not None, "build_stream_plan needs an enabled partition")
    plans = sample.plans
    level = np.asarray(sample.level)
    n = sample.n_nodes
    endpoint_nodes = np.asarray(sample.endpoint_nodes)

    sizes = [len(p.net_nodes) + len(p.cell_nodes) for p in plans]
    ranges = _greedy_ranges(sizes, pins)

    chunk_of = np.full(n, -1, dtype=np.int64)
    node_lists: List[np.ndarray] = []
    for ci, (a, b) in enumerate(ranges):
        parts: List[np.ndarray] = []
        for p in plans[a:b]:
            parts.append(p.net_nodes)
            parts.append(p.cell_nodes)
        nodes = np.sort(np.concatenate(parts)) if parts else _EMPTY
        node_lists.append(nodes)
        chunk_of[nodes] = ci

    # Last chunk that reads each node — everything past it is dropped
    # from the live store.
    last_ref = np.full(n, -1, dtype=np.int64)
    for ci, (a, b) in enumerate(ranges):
        for p in plans[a:b]:
            if len(p.net_drivers):
                last_ref[p.net_drivers] = ci
            cp = p.cell_preds
            if cp.size:
                last_ref[cp[cp >= 0]] = ci

    chunks: List[ChunkExec] = []
    live = _EMPTY                      # node ids in the live store, sorted
    max_rows = 0
    max_live = 0
    for ci, (a, b) in enumerate(ranges):
        nodes = node_lists[ci]

        # Halo = external, non-level-0 reads of this chunk's plans.
        refs: List[np.ndarray] = []
        for p in plans[a:b]:
            if len(p.net_drivers):
                refs.append(p.net_drivers)
            cp = p.cell_preds
            if cp.size:
                refs.append(cp[cp >= 0].ravel())
        ref_ids = np.unique(np.concatenate(refs)) if refs else _EMPTY
        halo = ref_ids[(level[ref_ids] > 0) & (chunk_of[ref_ids] != ci)]
        require(bool(np.all(chunk_of[halo] >= 0))
                and bool(np.all(chunk_of[halo] < ci)),
                "level-respecting partition produced a forward halo reference")
        H = len(halo)
        C = len(nodes)
        base = H + 1                   # rows: [halo | source | nodes | sentinel]

        halo_from_live = np.searchsorted(live, halo)
        require(H == 0 or (halo_from_live.max(initial=-1) < len(live)
                           and bool(np.array_equal(live[halo_from_live],
                                                   halo))),
                "halo node missing from the live store")

        def _remap(arr: np.ndarray) -> np.ndarray:
            """Global node ids (-1 padded) -> local buffer rows."""
            # -1 fancy-indexes the last buffer row — the -inf sentinel —
            # exactly like the whole-graph path's padding idiom.
            out = np.full(arr.shape, -1, dtype=np.int64)
            mask = arr >= 0
            vals = arr[mask]
            loc = np.empty(len(vals), dtype=np.int64)
            is0 = level[vals] == 0
            loc[is0] = H                                 # shared source row
            rest = vals[~is0]
            inside = chunk_of[rest] == ci
            sub = np.empty(len(rest), dtype=np.int64)
            sub[inside] = base + np.searchsorted(nodes, rest[inside])
            sub[~inside] = np.searchsorted(halo, rest[~inside])
            loc[~is0] = sub
            out[mask] = loc
            return out

        local_plans: List[LevelPlan] = []
        cell_parts: List[np.ndarray] = []
        net_parts: List[np.ndarray] = []
        for p in plans[a:b]:
            local_plans.append(LevelPlan(
                net_nodes=base + np.searchsorted(nodes, p.net_nodes),
                net_drivers=_remap(p.net_drivers),
                cell_nodes=base + np.searchsorted(nodes, p.cell_nodes),
                cell_preds=_remap(p.cell_preds),
            ))
            if len(p.cell_nodes):
                cell_parts.append(p.cell_nodes)
            if len(p.net_nodes):
                net_parts.append(p.net_nodes)
        cell_order = (np.concatenate(cell_parts) if cell_parts else _EMPTY)
        net_order = (np.concatenate(net_parts) if net_parts else _EMPTY)

        ep_mask = chunk_of[endpoint_nodes] == ci
        endpoint_pos = np.where(ep_mask)[0]
        endpoint_local = base + np.searchsorted(nodes,
                                                endpoint_nodes[ep_mask])

        keep_prev = (np.where(last_ref[live] > ci)[0] if len(live)
                     else _EMPTY)
        new_mask = last_ref[nodes] > ci
        keep_new = base + np.where(new_mask)[0]
        merged = np.concatenate([live[keep_prev], nodes[new_mask]])
        live_order = np.argsort(merged, kind="stable")
        live = merged[live_order]

        chunks.append(ChunkExec(
            plans=local_plans, n_halo=H, n_nodes=C,
            cell_order=cell_order, net_order=net_order,
            halo_from_live=halo_from_live,
            endpoint_pos=endpoint_pos, endpoint_local=endpoint_local,
            keep_prev=keep_prev, keep_new=keep_new, live_order=live_order,
        ))
        max_rows = max(max_rows, H + C + 2)
        max_live = max(max_live, len(live))

    require(len(live) == 0, "live store not drained after the last chunk")
    return StreamPlan(partition_pins=pins, chunks=chunks,
                      max_rows=max_rows, max_live=max_live)


def stream_plan_for(sample: Any) -> Optional[StreamPlan]:
    """The memoized :class:`StreamPlan` for a sample-shaped object.

    Returns ``None`` when the object carries no ``partition_pins`` (the
    monolithic path).  Plans are cached in the object's ``_stream_cache``
    dict, which packed batches share with their plan-cache topology
    entry, so repeated packs of the same designs reuse one plan.
    """
    pins = getattr(sample, "partition_pins", None)
    if not pins:
        return None
    cache = getattr(sample, "_stream_cache", None)
    if cache is None:
        cache = {}
        try:
            sample._stream_cache = cache
        except AttributeError:   # slotted/frozen object: build uncached
            return build_stream_plan(sample, pins)
    plan = cache.get(pins)
    if plan is None:
        plan = build_stream_plan(sample, pins)
        cache[pins] = plan
    return plan
