"""Batched NLDM table evaluation for vectorized STA.

All cells in the synthetic library share the same characterization axes
(:data:`repro.liberty.tables.DEFAULT_SLEW_AXIS` / ``DEFAULT_LOAD_AXIS``), so
the delay/slew tables of the whole library can be stacked into one
``(n_types, S, L)`` tensor and evaluated for thousands of timing arcs in a
single bilinear-interpolation call.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.liberty import CellLibrary


class BatchNLDM:
    """Stacked delay/slew tables for a whole library.

    ``type_id`` values are positions in ``library.cell_names()`` order and
    are exposed through :meth:`type_id`.
    """

    def __init__(self, library: CellLibrary) -> None:
        names = library.cell_names()
        self._type_id: Dict[str, int] = {nm: i for i, nm in enumerate(names)}
        first = library.cell(names[0])
        self.slew_axis = first.delay_table.slew_axis
        self.load_axis = first.delay_table.load_axis
        delay = np.empty((len(names), len(self.slew_axis), len(self.load_axis)))
        slew = np.empty_like(delay)
        for i, nm in enumerate(names):
            cell = library.cell(nm)
            assert np.array_equal(cell.delay_table.slew_axis, self.slew_axis)
            delay[i] = cell.delay_table.values
            slew[i] = cell.slew_table.values
        self.delay_values = delay
        self.slew_values = slew

    def type_id(self, cell_type_name: str) -> int:
        return self._type_id[cell_type_name]

    def lookup(self, type_ids: np.ndarray, slews: np.ndarray,
               loads: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized (delay, output slew) for arrays of arcs."""
        s = np.clip(slews, self.slew_axis[0], self.slew_axis[-1])
        ld = np.clip(loads, self.load_axis[0], self.load_axis[-1])
        i = np.clip(np.searchsorted(self.slew_axis, s) - 1, 0,
                    len(self.slew_axis) - 2)
        j = np.clip(np.searchsorted(self.load_axis, ld) - 1, 0,
                    len(self.load_axis) - 2)
        s0, s1 = self.slew_axis[i], self.slew_axis[i + 1]
        l0, l1 = self.load_axis[j], self.load_axis[j + 1]
        ts = (s - s0) / (s1 - s0)
        tl = (ld - l0) / (l1 - l0)
        t = type_ids

        def interp(tables: np.ndarray) -> np.ndarray:
            v00 = tables[t, i, j]
            v01 = tables[t, i, j + 1]
            v10 = tables[t, i + 1, j]
            v11 = tables[t, i + 1, j + 1]
            return ((1 - ts) * (1 - tl) * v00 + (1 - ts) * tl * v01
                    + ts * (1 - tl) * v10 + ts * tl * v11)

        return interp(self.delay_values), interp(self.slew_values)


_CACHE: Dict[int, BatchNLDM] = {}


def batch_nldm_for(library: CellLibrary) -> BatchNLDM:
    """Per-library cached :class:`BatchNLDM` instance."""
    key = id(library)
    if key not in _CACHE:
        _CACHE[key] = BatchNLDM(library)
    return _CACHE[key]
