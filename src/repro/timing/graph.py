"""Pin-level timing graph with topological levelization.

This is the data representation of the paper's Section IV-A: every pin is a
node; **net edges** connect a net's driver pin to each sink pin, **cell
edges** connect each input pin of a combinational cell to its output pin.
Cell edges of sequential elements are cut, so the graph is a DAG; its
topological levels drive both the STA propagation order and the paper's
GNN message-passing schedule and longest-path masking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.netlist import Netlist
from repro.utils import require

# Node kinds.
SOURCE = 0     # startpoints: primary-input pads and flip-flop Q pins
NET_SINK = 1   # destination of a net edge
CELL_OUT = 2   # destination of cell edges (combinational output pin)


@dataclass
class TimingGraph:
    """Array-form DAG over the pins of a netlist.

    Node order is the sorted pin-id order at build time; ``pin_ids[i]`` maps
    node *i* back to its netlist pin.
    """

    netlist: Netlist
    pin_ids: np.ndarray                 # (n,) node -> pin id
    node_of: Dict[int, int]             # pin id -> node
    kind: np.ndarray                    # (n,) SOURCE / NET_SINK / CELL_OUT
    level: np.ndarray                   # (n,) topological level, sources = 0
    levels: List[np.ndarray]            # nodes grouped by level (ascending)
    net_edge_src: np.ndarray            # (E_n,) driver node per net edge
    net_edge_dst: np.ndarray            # (E_n,) sink node per net edge
    cell_edge_src: np.ndarray           # (E_c,) input node per cell edge
    cell_edge_dst: np.ndarray           # (E_c,) output node per cell edge
    # CSR-style predecessor structure over ALL edges (net + cell):
    pred_ptr: np.ndarray                # (n+1,)
    pred_idx: np.ndarray                # (sum,) predecessor nodes
    pred_is_cell: np.ndarray            # (sum,) True where the edge is a cell edge
    # Populated and validated by :func:`build_timing_graph`; ``None`` only
    # on hand-rolled partial graphs (the annotation is honest about it).
    endpoints: Optional[np.ndarray] = None    # endpoint nodes
    startpoints: Optional[np.ndarray] = None  # source nodes

    @property
    def n_nodes(self) -> int:
        return len(self.pin_ids)

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    def predecessors(self, node: int) -> np.ndarray:
        return self.pred_idx[self.pred_ptr[node]:self.pred_ptr[node + 1]]


def build_timing_graph(netlist: Netlist) -> TimingGraph:
    """Construct the pin-level DAG and its topological levels."""
    pin_ids = np.array(sorted(netlist.pins), dtype=np.int64)
    node_of = {int(p): i for i, p in enumerate(pin_ids)}
    n = len(pin_ids)

    net_src, net_dst = [], []
    for drv, snk in netlist.net_edges():
        net_src.append(node_of[drv])
        net_dst.append(node_of[snk])
    cell_src, cell_dst = [], []
    for ip, op in netlist.cell_edges():
        cell_src.append(node_of[ip])
        cell_dst.append(node_of[op])

    net_edge_src = np.asarray(net_src, dtype=np.int64)
    net_edge_dst = np.asarray(net_dst, dtype=np.int64)
    cell_edge_src = np.asarray(cell_src, dtype=np.int64)
    cell_edge_dst = np.asarray(cell_dst, dtype=np.int64)

    kind = np.full(n, SOURCE, dtype=np.int8)
    kind[net_edge_dst] = NET_SINK
    kind[cell_edge_dst] = CELL_OUT

    # Predecessor CSR over the union of both edge types.
    all_src = np.concatenate([net_edge_src, cell_edge_src])
    all_dst = np.concatenate([net_edge_dst, cell_edge_dst])
    is_cell = np.concatenate([
        np.zeros(len(net_edge_src), dtype=bool),
        np.ones(len(cell_edge_src), dtype=bool),
    ])
    order = np.argsort(all_dst, kind="stable")
    sorted_dst = all_dst[order]
    pred_idx = all_src[order]
    pred_is_cell = is_cell[order]
    pred_ptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(pred_ptr, sorted_dst + 1, 1)
    pred_ptr = np.cumsum(pred_ptr)

    # Kahn levelization.
    indegree = np.zeros(n, dtype=np.int64)
    np.add.at(indegree, all_dst, 1)
    level = np.zeros(n, dtype=np.int64)
    frontier = np.where(indegree == 0)[0]
    levels: List[np.ndarray] = []
    # Successor CSR for the sweep.
    sorder = np.argsort(all_src, kind="stable")
    succ_idx = all_dst[sorder]
    succ_ptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(succ_ptr, all_src[sorder] + 1, 1)
    succ_ptr = np.cumsum(succ_ptr)

    visited = 0
    cur = frontier
    lvl = 0
    indeg = indegree.copy()
    while len(cur):
        levels.append(np.sort(cur))
        level[cur] = lvl
        visited += len(cur)
        nxt: List[int] = []
        for u in cur:
            for v in succ_idx[succ_ptr[u]:succ_ptr[u + 1]]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    nxt.append(int(v))
        cur = np.asarray(nxt, dtype=np.int64)
        lvl += 1
    require(visited == n, "netlist timing graph contains a cycle")

    endpoints = np.array(sorted(node_of[p] for p in netlist.endpoint_pins()),
                         dtype=np.int64)
    startpoints = np.array(sorted(node_of[p] for p in netlist.startpoint_pins()),
                           dtype=np.int64)
    require(len(endpoints) == 0 or
            (endpoints[0] >= 0 and endpoints[-1] < n),
            "endpoint nodes out of range")
    require(len(startpoints) == 0 or
            (startpoints[0] >= 0 and startpoints[-1] < n),
            "startpoint nodes out of range")
    require(bool(np.all(level[startpoints] == 0)),
            "startpoints must sit at topological level 0")
    return TimingGraph(
        netlist=netlist,
        pin_ids=pin_ids,
        node_of=node_of,
        kind=kind,
        level=level,
        levels=levels,
        net_edge_src=net_edge_src,
        net_edge_dst=net_edge_dst,
        cell_edge_src=cell_edge_src,
        cell_edge_dst=cell_edge_dst,
        pred_ptr=pred_ptr,
        pred_idx=pred_idx,
        pred_is_cell=pred_is_cell,
        endpoints=endpoints,
        startpoints=startpoints,
    )
