"""SDC-lite timing constraints.

A small subset of Synopsys Design Constraints sufficient for this flow:

    create_clock -period <ps> [-name <name>]
    set_input_delay <ps> [-port <name>]
    set_output_delay <ps> [-port <name>]

``parse_sdc`` reads the text form; :class:`TimingConstraints` carries the
values into STA (clock period, launch offsets at primary inputs, extra
required-time margin at primary outputs).
"""

from __future__ import annotations

import shlex
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.utils import require, require_positive


@dataclass
class TimingConstraints:
    """Resolved constraint set for one design."""

    clock_period: float
    clock_name: str = "clk"
    #: Extra arrival at primary inputs (port name -> ps; None key = all).
    input_delays: Dict[Optional[str], float] = field(default_factory=dict)
    #: Extra required-time margin at primary outputs.
    output_delays: Dict[Optional[str], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        require_positive(self.clock_period, "clock_period")

    def input_delay(self, port_name: str) -> float:
        if port_name in self.input_delays:
            return self.input_delays[port_name]
        return self.input_delays.get(None, 0.0)

    def output_delay(self, port_name: str) -> float:
        if port_name in self.output_delays:
            return self.output_delays[port_name]
        return self.output_delays.get(None, 0.0)

    def to_sdc(self) -> str:
        """Serialize back to SDC text."""
        lines = [f"create_clock -period {self.clock_period:g} "
                 f"-name {self.clock_name}"]
        for port, delay in sorted(self.input_delays.items(),
                                  key=lambda kv: kv[0] or ""):
            target = f" -port {port}" if port else ""
            lines.append(f"set_input_delay {delay:g}{target}")
        for port, delay in sorted(self.output_delays.items(),
                                  key=lambda kv: kv[0] or ""):
            target = f" -port {port}" if port else ""
            lines.append(f"set_output_delay {delay:g}{target}")
        return "\n".join(lines) + "\n"


def parse_sdc(text: str) -> TimingConstraints:
    """Parse the SDC-lite subset; raises ``ValueError`` on unknown syntax."""
    period: Optional[float] = None
    clock_name = "clk"
    input_delays: Dict[Optional[str], float] = {}
    output_delays: Dict[Optional[str], float] = {}

    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = shlex.split(line)
        cmd = tokens[0]
        if cmd == "create_clock":
            args = _parse_flags(tokens[1:], {"-period", "-name"})
            require("-period" in args, "create_clock needs -period")
            period = float(args["-period"])
            clock_name = args.get("-name", clock_name)
        elif cmd in ("set_input_delay", "set_output_delay"):
            require(len(tokens) >= 2, f"{cmd} needs a delay value")
            delay = float(tokens[1])
            args = _parse_flags(tokens[2:], {"-port"})
            port = args.get("-port")
            (input_delays if cmd == "set_input_delay"
             else output_delays)[port] = delay
        else:
            raise ValueError(f"unsupported SDC command {cmd!r}")
    require(period is not None, "SDC must contain create_clock -period")
    return TimingConstraints(clock_period=period, clock_name=clock_name,
                             input_delays=input_delays,
                             output_delays=output_delays)


def _parse_flags(tokens, allowed) -> Dict[str, str]:
    args: Dict[str, str] = {}
    i = 0
    while i < len(tokens):
        flag = tokens[i]
        require(flag in allowed, f"unsupported SDC flag {flag!r}")
        require(i + 1 < len(tokens), f"flag {flag!r} needs a value")
        args[flag] = tokens[i + 1]
        i += 2
    return args
