"""Vectorized static timing analysis (PERT traversal).

Propagates arrival time and slew through the pin-level DAG in topological
level order — the classic single-pass PERT sweep of [5] in the paper.  Cell
arcs are evaluated through the batched NLDM tables; net arcs use the Elmore
model with wire lengths from a pluggable :class:`WireLengthProvider`, so the
same engine produces both the pre-routing estimate and the sign-off timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.netlist import Netlist
from repro.obs import get_metrics, get_tracer
from repro.timing.constraints import TimingConstraints
from repro.timing.graph import CELL_OUT, NET_SINK, SOURCE, TimingGraph
from repro.timing.nldm import batch_nldm_for
from repro.timing.rc import WireLengthProvider
from repro.utils import require

#: Electrical boundary conditions.
PI_INPUT_SLEW = 10.0   # ps, slew at primary inputs
PO_LOAD_FF = 2.0       # fF, load presented by an output pad
SLEW_WIRE_FACTOR = 0.7  # slew degradation per ps of wire delay


@dataclass
class STAResult:
    """Full result of one STA run."""

    graph: TimingGraph
    clock_period: float
    arrival: np.ndarray            # (n,) per node, ps
    slew: np.ndarray               # (n,) per node, ps
    required: np.ndarray           # (n,) per node required time, ps
    load: np.ndarray               # (n,) capacitive load seen by OUT pins, fF
    best_pred: np.ndarray          # (n,) winning predecessor node (-1 = none)
    endpoint_arrival: Dict[int, float]   # endpoint pin id -> arrival
    endpoint_slack: Dict[int, float]     # endpoint pin id -> slack
    net_edge_delay: Dict[Tuple[int, int], float] = field(default_factory=dict)
    cell_edge_delay: Dict[Tuple[int, int], float] = field(default_factory=dict)

    @property
    def node_slack(self) -> np.ndarray:
        """Per-node slack from the backward required-time sweep."""
        return self.required - self.arrival

    @property
    def wns(self) -> float:
        """Worst negative slack (ps); positive if all endpoints meet timing.

        NaN when the design has no timing endpoints (no flip-flop D pins
        and no primary outputs) — there is no slack to report.
        """
        if not self.endpoint_slack:
            return float("nan")
        return min(self.endpoint_slack.values())

    @property
    def tns(self) -> float:
        """Total negative slack (ps, ≤ 0); 0.0 with no endpoints."""
        return sum(min(0.0, s) for s in self.endpoint_slack.values())

    @property
    def max_arrival(self) -> float:
        """Latest endpoint arrival (ps); NaN when there are no endpoints."""
        if not self.endpoint_arrival:
            return float("nan")
        return max(self.endpoint_arrival.values())

    def critical_path(self, endpoint_pin: int) -> List[int]:
        """Pins on the worst path into *endpoint_pin*, startpoint first."""
        g = self.graph
        node = g.node_of[endpoint_pin]
        path = [node]
        while self.best_pred[node] >= 0:
            node = int(self.best_pred[node])
            path.append(node)
        return [int(g.pin_ids[v]) for v in reversed(path)]


def _argmax_per_dst(cand: np.ndarray, dst: np.ndarray,
                    arrival: np.ndarray) -> np.ndarray:
    """Index of the winning arc per destination: a deterministic argmax.

    ``arrival[dst]`` already holds the per-destination maximum (via
    ``np.maximum.at``), so the winners are the arcs whose candidate
    equals it *exactly*; on exact ties the first arc in edge order wins.
    A tolerance mask here (the old ``cand >= arrival[dst] - 1e-9``)
    could select several rows per destination, making the subsequent
    fancy-indexed slew/best_pred writes depend on edge array order and
    possibly follow a near-tied arc that is not the true maximum.
    """
    exact = np.flatnonzero(cand == arrival[dst])
    _, first = np.unique(dst[exact], return_index=True)
    return exact[first]


def run_sta(graph: TimingGraph, wires: WireLengthProvider,
            clock_period: float,
            constraints: "TimingConstraints" = None,
            corner=None) -> STAResult:
    """Run a full arrival-time propagation over *graph*.

    ``constraints`` optionally adds SDC-style input/output delays; its
    clock period, if provided, must agree with *clock_period* (pass
    ``constraints.clock_period`` explicitly to avoid surprises).

    ``corner`` optionally times the graph at a derated PVT corner (a
    :class:`~repro.timing.corners.Corner` or a registered corner name);
    ``None`` and identity corners use the netlist's nominal library
    unchanged — the same object, so results stay bit-identical to a
    corner-less call.

    Each run emits an ``sta.run`` tracer span and bumps the ``sta.runs``
    / ``sta.nldm_lookups`` counters.  The instrumentation lives in this
    wrapper so :func:`_run_sta_impl` stays an uninstrumented baseline for
    the observability overhead benchmark.
    """
    with get_tracer().span("sta.run", design=graph.netlist.name,
                           n_nodes=graph.n_nodes):
        result = _run_sta_impl(graph, wires, clock_period, constraints,
                               corner=corner)
    metrics = get_metrics()
    metrics.counter("sta.runs").inc()
    metrics.counter("sta.nldm_lookups").inc(len(graph.cell_edge_src))
    return result


def _run_sta_impl(graph: TimingGraph, wires: WireLengthProvider,
                  clock_period: float,
                  constraints: "TimingConstraints" = None,
                  corner=None) -> STAResult:
    nl = graph.netlist
    if corner is None:
        lib = nl.library
    else:
        from repro.timing.corners import derate_library

        lib = derate_library(nl.library, corner)
    nldm = batch_nldm_for(lib)
    n = graph.n_nodes

    # ------------------------------------------------------------------
    # Static per-node electrical data.
    # ------------------------------------------------------------------
    pin_cap = np.zeros(n)
    out_type_id = np.zeros(n, dtype=np.int64)
    po_pins = {p.pin for p in nl.primary_outputs()}
    for i, pid in enumerate(graph.pin_ids):
        pin = nl.pins[int(pid)]
        if pin.cell is not None and pin.direction == "in":
            pin_cap[i] = lib.cell(nl.cells[pin.cell].type_name).input_cap
        elif int(pid) in po_pins:
            pin_cap[i] = PO_LOAD_FF
        if pin.cell is not None and pin.direction == "out":
            out_type_id[i] = nldm.type_id(nl.cells[pin.cell].type_name)

    # Net-edge wire delays and per-driver total loads (star Elmore).
    e_src = graph.net_edge_src
    e_dst = graph.net_edge_dst
    wire_len = np.empty(len(e_src))
    for k in range(len(e_src)):
        wire_len[k] = wires.length(int(graph.pin_ids[e_src[k]]),
                                   int(graph.pin_ids[e_dst[k]]))
    w = lib.wire
    wire_delay = w.resistance(wire_len) * (
        0.5 * w.capacitance(wire_len) + pin_cap[e_dst])

    # Driver load: all sink pin caps + total wire capacitance of the net.
    load = np.zeros(n)
    np.add.at(load, e_src, pin_cap[e_dst] + w.capacitance(wire_len))

    # Map each NET_SINK node to its incoming net edge.
    edge_of_sink = np.full(n, -1, dtype=np.int64)
    edge_of_sink[e_dst] = np.arange(len(e_dst))

    # Group cell edges by the level of their output node.
    c_src = graph.cell_edge_src
    c_dst = graph.cell_edge_dst
    cell_edges_at: Dict[int, np.ndarray] = {}
    if len(c_dst):
        dst_level = graph.level[c_dst]
        order = np.argsort(dst_level, kind="stable")
        bounds = np.searchsorted(dst_level[order],
                                 np.arange(dst_level.max() + 2))
        for lvl in range(len(bounds) - 1):
            chunk = order[bounds[lvl]:bounds[lvl + 1]]
            if len(chunk):
                cell_edges_at[lvl] = chunk

    # ------------------------------------------------------------------
    # Initialize sources.
    # ------------------------------------------------------------------
    arrival = np.full(n, -np.inf)
    slew = np.full(n, PI_INPUT_SLEW)
    best_pred = np.full(n, -1, dtype=np.int64)
    for node in graph.startpoints:
        pid = int(graph.pin_ids[node])
        pin = nl.pins[pid]
        if pin.cell is None:
            arrival[node] = (constraints.input_delay(pin.name)
                             if constraints is not None else 0.0)
            slew[node] = PI_INPUT_SLEW
        else:  # flip-flop Q launch
            ctype = lib.cell(nl.cells[pin.cell].type_name)
            arrival[node] = ctype.clk_to_q
            slew[node] = PI_INPUT_SLEW
    # Isolated nodes (no preds, not startpoints) still get arrival 0.
    lonely = (graph.level == 0) & (arrival == -np.inf)
    arrival[lonely] = 0.0

    cell_delay = np.zeros(len(c_src))

    # ------------------------------------------------------------------
    # Level-by-level propagation.
    # ------------------------------------------------------------------
    for lvl in range(1, graph.n_levels):
        nodes = graph.levels[lvl]
        # Net sinks: single incoming net edge.
        sinks = nodes[graph.kind[nodes] == NET_SINK]
        if len(sinks):
            edges = edge_of_sink[sinks]
            src = e_src[edges]
            arrival[sinks] = arrival[src] + wire_delay[edges]
            slew[sinks] = slew[src] + SLEW_WIRE_FACTOR * wire_delay[edges]
            best_pred[sinks] = src

        # Cell outputs: max over all incoming cell arcs.
        chunk = cell_edges_at.get(lvl)
        if chunk is not None:
            src = c_src[chunk]
            dst = c_dst[chunk]
            d, s_out = nldm.lookup(out_type_id[dst], slew[src], load[dst])
            cell_delay[chunk] = d
            cand = arrival[src] + d
            np.maximum.at(arrival, dst, cand)
            sel = _argmax_per_dst(cand, dst, arrival)
            slew[dst[sel]] = s_out[sel]
            best_pred[dst[sel]] = src[sel]

    require(bool(np.all(np.isfinite(arrival))),
            "arrival propagation left unreachable nodes")

    # ------------------------------------------------------------------
    # Endpoint slacks and per-edge delay reports.
    # ------------------------------------------------------------------
    endpoint_arrival: Dict[int, float] = {}
    endpoint_slack: Dict[int, float] = {}
    required = np.full(n, np.inf)
    for node in graph.endpoints:
        pid = int(graph.pin_ids[node])
        pin = nl.pins[pid]
        setup = 0.0
        if pin.cell is not None:
            setup = lib.cell(nl.cells[pin.cell].type_name).setup_time
        elif constraints is not None:
            setup = constraints.output_delay(pin.name)
        endpoint_arrival[pid] = float(arrival[node])
        endpoint_slack[pid] = float(clock_period - setup - arrival[node])
        required[node] = clock_period - setup

    # Backward required-time sweep (levels in reverse):
    # required[src] = min over out-edges (required[dst] - edge delay).
    for lvl in range(graph.n_levels - 1, 0, -1):
        nodes = graph.levels[lvl]
        sinks = nodes[graph.kind[nodes] == NET_SINK]
        if len(sinks):
            edges = edge_of_sink[sinks]
            np.minimum.at(required, e_src[edges],
                          required[sinks] - wire_delay[edges])
        chunk = cell_edges_at.get(lvl)
        if chunk is not None:
            np.minimum.at(required, c_src[chunk],
                          required[c_dst[chunk]] - cell_delay[chunk])

    net_edge_delay = {
        (int(graph.pin_ids[e_src[k]]), int(graph.pin_ids[e_dst[k]])):
            float(wire_delay[k])
        for k in range(len(e_src))
    }
    cell_edge_delay = {
        (int(graph.pin_ids[c_src[k]]), int(graph.pin_ids[c_dst[k]])):
            float(cell_delay[k])
        for k in range(len(c_src))
    }
    return STAResult(
        graph=graph,
        clock_period=clock_period,
        arrival=arrival,
        slew=slew,
        required=required,
        load=load,
        best_pred=best_pred,
        endpoint_arrival=endpoint_arrival,
        endpoint_slack=endpoint_slack,
        net_edge_delay=net_edge_delay,
        cell_edge_delay=cell_edge_delay,
    )
