"""Multi-mode multi-corner (MMMC) operating corners.

Commercial sign-off runs STA at several PVT corners — each corner is a
Liberty library characterized at a different voltage / temperature point.
We reproduce that structure the way the original libraries were built:
the nominal synthetic library (:mod:`repro.liberty`) is *derated* per
corner by scaling its NLDM delay/slew tables and sequential constraints
with a first-order PVT model.

The derating model
------------------

A :class:`Corner` carries a ``voltage_scale`` and a ``temp_scale``
relative to the nominal point.  Gate delay in a CMOS stage goes roughly
as ``C·V / I_drive`` where drive current improves super-linearly with
voltage and degrades with temperature (positive temperature coefficient
at nominal-and-above voltages), so we fold both into one multiplicative
delay derate::

    delay_factor = temp_scale / voltage_scale ** 2

Fast corners (high V, low T) have ``delay_factor < 1``; slow corners
(low V, high T) have ``delay_factor > 1``.  The factor scales every
delay-flavoured quantity of a cell — NLDM delay *and* slew tables,
intrinsic delay, effective drive resistance, setup time, clock-to-q —
while leaving topology-flavoured ones (input capacitance, area) and the
wire model untouched (cell-only derating; interconnect corners are out
of scope, see DESIGN.md).

The **base corner** is the identity: :func:`derate_library` returns the
*same* library object for it, so single-corner flows keep hitting the
``id(library)``-keyed NLDM batch cache and stay bit-identical to the
pre-corner code path.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Sequence, Tuple, Union

from repro.liberty import CellLibrary, CellType
from repro.utils import require

__all__ = [
    "BASE_CORNER",
    "Corner",
    "CornerSet",
    "STANDARD_CORNERS",
    "derate_library",
    "register_corner",
    "resolve_corner",
]


@dataclass(frozen=True)
class Corner:
    """One PVT operating corner, as a scaling of the nominal point.

    ``voltage_scale`` / ``temp_scale`` are relative to nominal (1.0 each);
    ``delay_factor`` is the derived multiplicative delay derate applied
    to the library (see module docstring).
    """

    name: str
    voltage_scale: float = 1.0
    temp_scale: float = 1.0

    def __post_init__(self) -> None:
        require(bool(self.name) and "," not in self.name,
                f"corner name must be non-empty and comma-free: {self.name!r}")
        require(self.voltage_scale > 0, "voltage_scale must be positive")
        require(self.temp_scale > 0, "temp_scale must be positive")

    @property
    def delay_factor(self) -> float:
        """Multiplicative delay derate: ``temp / voltage²``."""
        return self.temp_scale / self.voltage_scale ** 2

    @property
    def is_identity(self) -> bool:
        """True when derating is a no-op (factor exactly 1.0)."""
        return self.delay_factor == 1.0


#: The implicit corner every pre-MMMC layer of the repo assumed.
BASE_CORNER = Corner("base")

#: Registry of well-known corners.  ``typ`` is numerically identical to
#: ``base`` but is a distinct *identity* — a model trained on
#: ("fast", "typ", "slow") gives it its own embedding row.
STANDARD_CORNERS: Dict[str, Corner] = {
    "base": BASE_CORNER,
    "typ": Corner("typ", 1.0, 1.0),
    "fast": Corner("fast", voltage_scale=1.10, temp_scale=0.90),
    "slow": Corner("slow", voltage_scale=0.90, temp_scale=1.20),
}

# User-defined corners, registered by name when a ``name:V:T`` triple is
# parsed (CLI ``--corners``, ``FlowConfig.corners``).  The registry makes
# the *name* resolvable later — serve requests, pickled configs crossing
# a process boundary, and derating all go through :func:`resolve_corner`
# with just the name in hand.
_CUSTOM_CORNERS: Dict[str, Corner] = {}
_CUSTOM_LOCK = threading.Lock()


def register_corner(corner: Corner) -> Corner:
    """Make *corner* resolvable by name; conflict-checked, idempotent.

    Re-registering the same name with identical scales is a no-op;
    different scales (or shadowing a standard corner with different
    numbers) is an error — one name must mean one PVT point for the
    lifetime of a process, or corner-keyed caches would lie.
    """
    known = STANDARD_CORNERS.get(corner.name)
    if known is not None:
        require(known == corner,
                f"corner {corner.name!r} conflicts with the standard "
                f"corner of the same name "
                f"(V={known.voltage_scale}, T={known.temp_scale})")
        return known
    with _CUSTOM_LOCK:
        prior = _CUSTOM_CORNERS.setdefault(corner.name, corner)
    require(prior == corner,
            f"corner {corner.name!r} already registered with different "
            f"scales (V={prior.voltage_scale}, T={prior.temp_scale})")
    return prior


def _parse_corner_spec(spec: str) -> Corner:
    """One ``name`` or ``name:voltage_scale:temp_scale`` token."""
    if ":" not in spec:
        return resolve_corner(spec)
    parts = spec.split(":")
    require(len(parts) == 3,
            f"corner spec {spec!r} must be 'name:voltage_scale:temp_scale'")
    name, vs, ts = (p.strip() for p in parts)
    try:
        voltage_scale, temp_scale = float(vs), float(ts)
    except ValueError:
        raise ValueError(
            f"corner spec {spec!r}: scales must be numbers") from None
    return register_corner(Corner(name, voltage_scale, temp_scale))


@dataclass(frozen=True)
class CornerSet:
    """An ordered, duplicate-free collection of corners.

    The order is load-bearing: it defines each corner's embedding index
    in a corner-conditioned model (``ModelConfig.corner_names``) and the
    corner axis of datasets built from it.  The first corner is the
    *primary* one — the corner legacy single-corner responses report.
    """

    corners: Tuple[Corner, ...]

    def __post_init__(self) -> None:
        require(len(self.corners) > 0, "a CornerSet needs at least one corner")
        names = [c.name for c in self.corners]
        require(len(set(names)) == len(names),
                f"duplicate corner names: {names}")

    # -- construction ---------------------------------------------------
    @classmethod
    def parse(cls, spec: Union[str, Sequence[str], None]) -> "CornerSet":
        """Build a set from ``"fast,typ,slow"`` or a spec sequence.

        Each comma-separated token is either a registered corner name or
        a user-defined ``name:voltage_scale:temp_scale`` triple — e.g.
        ``"base,ff_0p99v:1.08:0.92"``.  Triples are registered as a side
        effect (see :func:`register_corner`), so parsing the same spec
        string in another process reconstructs identical corners.
        ``None`` or an empty spec yields the single-corner base set.
        """
        if spec is None:
            return cls.base()
        if isinstance(spec, str):
            tokens = [n.strip() for n in spec.split(",") if n.strip()]
        else:
            tokens = [str(n) for n in spec]
        if not tokens:
            return cls.base()
        return cls(tuple(_parse_corner_spec(tok) for tok in tokens))

    @classmethod
    def base(cls) -> "CornerSet":
        return cls((BASE_CORNER,))

    # -- access ---------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.corners)

    @property
    def specs(self) -> Tuple[str, ...]:
        """Spec strings that :meth:`parse` round-trips to this set.

        Standard corners keep their bare name; user-defined ones render
        as ``name:voltage_scale:temp_scale``.  Ship *these* (not just
        ``names``) across process boundaries — parsing them re-registers
        the custom corners on the other side.
        """
        out = []
        for c in self.corners:
            if STANDARD_CORNERS.get(c.name) == c:
                out.append(c.name)
            else:
                out.append(f"{c.name}:{c.voltage_scale:g}:{c.temp_scale:g}")
        return tuple(out)

    @property
    def primary(self) -> Corner:
        return self.corners[0]

    @property
    def is_base_only(self) -> bool:
        """True for the legacy single-corner configuration."""
        return self.names == ("base",)

    def __len__(self) -> int:
        return len(self.corners)

    def __iter__(self) -> Iterator[Corner]:
        return iter(self.corners)

    def __contains__(self, name: object) -> bool:
        return any(c.name == name for c in self.corners)

    def get(self, name: str) -> Corner:
        for c in self.corners:
            if c.name == name:
                return c
        raise KeyError(f"corner {name!r} not in set {self.names}")

    def index(self, name: str) -> int:
        for i, c in enumerate(self.corners):
            if c.name == name:
                return i
        raise KeyError(f"corner {name!r} not in set {self.names}")


def resolve_corner(corner: Union[Corner, str, None]) -> Corner:
    """Coerce a name / ``None`` / :class:`Corner` to a :class:`Corner`.

    Names resolve against the standard registry first, then the
    user-defined one (:func:`register_corner`).
    """
    if corner is None:
        return BASE_CORNER
    if isinstance(corner, Corner):
        return corner
    known = STANDARD_CORNERS.get(corner)
    if known is None:
        with _CUSTOM_LOCK:
            known = _CUSTOM_CORNERS.get(corner)
    require(known is not None,
            f"unknown corner {corner!r} (known: "
            f"{sorted(STANDARD_CORNERS) + sorted(_CUSTOM_CORNERS)})")
    return known


# ---------------------------------------------------------------------------
# Library derating
# ---------------------------------------------------------------------------

def _derate_cell(cell: CellType, factor: float) -> CellType:
    """One cell type with every delay-flavoured quantity scaled."""
    return CellType(
        name=cell.name,
        kind=cell.kind,
        drive=cell.drive,
        input_cap=cell.input_cap,
        drive_resistance=cell.drive_resistance * factor,
        intrinsic_delay=cell.intrinsic_delay * factor,
        area=cell.area,
        delay_table=cell.delay_table.scaled(factor),
        slew_table=cell.slew_table.scaled(factor),
        setup_time=cell.setup_time * factor,
        clk_to_q=cell.clk_to_q * factor,
    )


# Derated libraries are cached per (base library identity, corner) so the
# NLDM batch cache — itself keyed by id(library) — sees one stable object
# per corner instead of a fresh library per STA call.
_DERATED: Dict[Tuple[int, Corner], CellLibrary] = {}
_DERATED_LOCK = threading.Lock()


def derate_library(library: CellLibrary,
                   corner: Union[Corner, str, None]) -> CellLibrary:
    """The *corner* view of *library*.

    Identity corners (``base``, ``typ``, or any corner whose
    ``delay_factor`` is exactly 1.0) return *library* itself — same
    object, same caches, bit-identical timing.  Other corners get a new
    :class:`CellLibrary` of derated cells sharing the wire model, cached
    per (library, corner).
    """
    corner = resolve_corner(corner)
    if corner.is_identity:
        return library
    key = (id(library), corner)
    with _DERATED_LOCK:
        cached = _DERATED.get(key)
        if cached is not None:
            return cached
    factor = corner.delay_factor
    derated = CellLibrary(
        {name: _derate_cell(library.cell(name), factor)
         for name in library.cell_names()},
        wire=library.wire,
    )
    with _DERATED_LOCK:
        # Pin the base library via the values dict is not needed: entries
        # are few (corners × libraries) and libraries live process-long.
        return _DERATED.setdefault(key, derated)
