"""Synthetic 7-nm-flavoured standard-cell library (ASAP7 stand-in).

Provides characterized cell types with NLDM-style delay/slew lookup tables,
drive-strength sizing chains, and a wire RC model.  See DESIGN.md for why
this substitutes for the ASAP7 PDK the paper uses.
"""

from repro.liberty.cells import (
    DRIVE_STRENGTHS,
    GATE_KINDS,
    KIND_INDEX,
    CellType,
    GateKind,
)
from repro.liberty.library import CellLibrary, WireModel
from repro.liberty.tables import LookupTable2D, synthesize_table

__all__ = [
    "DRIVE_STRENGTHS",
    "GATE_KINDS",
    "KIND_INDEX",
    "CellType",
    "GateKind",
    "CellLibrary",
    "WireModel",
    "LookupTable2D",
    "synthesize_table",
]
