"""Cell kinds and characterized cell types of the synthetic 7-nm library.

The library mimics the structure of the ASAP7 PDK used in the paper: each
combinational function (gate *kind*) exists in several drive strengths
(X1/X2/X4/X8); larger drives have lower output resistance but higher input
capacitance and area.  All timing arcs are characterized into NLDM-style
lookup tables (:mod:`repro.liberty.tables`).

Units used throughout the package: time **ps**, capacitance **fF**,
resistance **kΩ** (so ``kΩ × fF = ps``), distance **µm**, area **µm²**.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.liberty.tables import (
    DEFAULT_LOAD_AXIS,
    DEFAULT_SLEW_AXIS,
    LookupTable2D,
    synthesize_table,
)


@dataclass(frozen=True)
class GateKind:
    """A logic function available in the library.

    ``effort`` loosely plays the role of logical effort: it scales both the
    base drive resistance and the intrinsic delay of the kind.
    """

    name: str
    n_inputs: int
    effort: float
    is_sequential: bool = False


#: All gate kinds in the library, in a fixed order.  The order defines the
#: one-hot "gate type" feature used by the ML models (Section IV-A of the
#: paper), so it must stay stable.
GATE_KINDS: Tuple[GateKind, ...] = (
    GateKind("INV", 1, 1.0),
    GateKind("BUF", 1, 1.1),
    GateKind("NAND2", 2, 1.25),
    GateKind("NOR2", 2, 1.45),
    GateKind("AND2", 2, 1.5),
    GateKind("OR2", 2, 1.6),
    GateKind("XOR2", 2, 2.0),
    GateKind("XNOR2", 2, 2.0),
    GateKind("NAND3", 3, 1.6),
    GateKind("NOR3", 3, 1.9),
    GateKind("AND3", 3, 1.8),
    GateKind("OR3", 3, 1.95),
    GateKind("AOI21", 3, 1.7),
    GateKind("OAI21", 3, 1.7),
    GateKind("MUX2", 3, 2.1),
    GateKind("NAND4", 4, 1.9),
    GateKind("AND4", 4, 2.1),
    GateKind("OR4", 4, 2.25),
    GateKind("DFF", 1, 1.6, is_sequential=True),
)

KIND_INDEX: Dict[str, int] = {k.name: i for i, k in enumerate(GATE_KINDS)}
KIND_BY_NAME: Dict[str, GateKind] = {k.name: k for k in GATE_KINDS}

#: Available drive strengths, smallest to largest.
DRIVE_STRENGTHS: Tuple[int, ...] = (1, 2, 4, 8)

# Base electrical parameters of an X1 inverter in this technology flavour.
_R_BASE_KOHM = 2.0        # output resistance of an X1 unit-effort driver
_CIN_BASE_FF = 0.6        # input pin capacitance of an X1 unit-effort gate
_INTRINSIC_BASE_PS = 3.0  # parasitic (unloaded) delay of a unit-effort gate
_AREA_BASE_UM2 = 0.45     # area of an X1 inverter
_SLEW_COEFF = 0.12        # fraction of the input slew added to the delay
_SLEW_OUT_COEFF = 1.9     # output slew per RC time-constant


@dataclass(frozen=True)
class CellType:
    """One characterized library cell, e.g. ``NAND2_X4``.

    ``delay_table`` / ``slew_table`` map ``(input slew, output load)`` to the
    arc delay / output slew at the cell's output pin.
    """

    name: str
    kind: GateKind
    drive: int
    input_cap: float       # per input pin, fF
    drive_resistance: float  # effective output resistance, kΩ
    intrinsic_delay: float   # ps
    area: float              # µm²
    delay_table: LookupTable2D = field(repr=False, compare=False, default=None)
    slew_table: LookupTable2D = field(repr=False, compare=False, default=None)
    setup_time: float = 0.0  # ps, sequential cells only
    clk_to_q: float = 0.0    # ps, sequential cells only

    @property
    def is_sequential(self) -> bool:
        return self.kind.is_sequential

    @property
    def n_inputs(self) -> int:
        return self.kind.n_inputs

    def analytic_delay(self, slew: float, load: float) -> float:
        """The closed-form delay the NLDM tables were sampled from.

        Exposed for tests: table lookups must agree with this model inside
        the characterized range.
        """
        return (self.intrinsic_delay
                + self.drive_resistance * load
                + _SLEW_COEFF * slew)

    def analytic_slew(self, slew: float, load: float) -> float:
        """Closed-form output slew of the characterization model."""
        rc = self.drive_resistance * load
        return self.intrinsic_delay * 0.5 + _SLEW_OUT_COEFF * rc + 0.05 * slew


def _characterize(kind: GateKind, drive: int) -> CellType:
    """Build one fully characterized :class:`CellType`."""
    r_drive = _R_BASE_KOHM * kind.effort / drive
    input_cap = _CIN_BASE_FF * kind.effort * (0.6 + 0.4 * drive)
    intrinsic = _INTRINSIC_BASE_PS * kind.effort * (1.0 + 0.15 * (kind.n_inputs - 1))
    area = _AREA_BASE_UM2 * kind.effort * drive * (1.0 + 0.3 * (kind.n_inputs - 1))
    if kind.is_sequential:
        area *= 3.0

    # Construct a CellType shell first so the analytic model can use its
    # final parameters, then synthesize the tables from that model.
    shell = CellType(
        name=f"{kind.name}_X{drive}",
        kind=kind,
        drive=drive,
        input_cap=input_cap,
        drive_resistance=r_drive,
        intrinsic_delay=intrinsic,
        area=area,
        setup_time=8.0 if kind.is_sequential else 0.0,
        clk_to_q=14.0 / np.sqrt(drive) if kind.is_sequential else 0.0,
    )
    delay_table = synthesize_table(DEFAULT_SLEW_AXIS, DEFAULT_LOAD_AXIS,
                                   shell.analytic_delay)
    slew_table = synthesize_table(DEFAULT_SLEW_AXIS, DEFAULT_LOAD_AXIS,
                                  shell.analytic_slew)
    return CellType(
        name=shell.name,
        kind=kind,
        drive=drive,
        input_cap=input_cap,
        drive_resistance=r_drive,
        intrinsic_delay=intrinsic,
        area=area,
        delay_table=delay_table,
        slew_table=slew_table,
        setup_time=shell.setup_time,
        clk_to_q=shell.clk_to_q,
    )


def characterize_all() -> Dict[str, CellType]:
    """Characterize every (kind, drive) combination in the library."""
    cells: Dict[str, CellType] = {}
    for kind in GATE_KINDS:
        for drive in DRIVE_STRENGTHS:
            cell = _characterize(kind, drive)
            cells[cell.name] = cell
    return cells
