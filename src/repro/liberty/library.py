"""The synthetic 7-nm cell library and interconnect model.

:class:`CellLibrary` is the single source of electrical truth for the whole
flow: netlist generation samples cell types from it, STA looks up delay
tables through it, and the optimizer walks its sizing chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.liberty.cells import (
    DRIVE_STRENGTHS,
    GATE_KINDS,
    KIND_BY_NAME,
    KIND_INDEX,
    CellType,
    GateKind,
    characterize_all,
)
from repro.utils import require


@dataclass(frozen=True)
class WireModel:
    """Per-unit-length interconnect parasitics (7-nm-flavoured defaults).

    ``r_per_um`` is in kΩ/µm and ``c_per_um`` in fF/µm so that
    ``r_per_um * c_per_um * length²`` is directly in ps.
    """

    r_per_um: float = 0.060
    c_per_um: float = 0.25

    def resistance(self, length_um: float) -> float:
        return self.r_per_um * length_um

    def capacitance(self, length_um: float) -> float:
        return self.c_per_um * length_um


class CellLibrary:
    """Characterized standard-cell library with sizing chains.

    >>> lib = CellLibrary.default()
    >>> lib.cell("NAND2_X2").drive
    2
    >>> lib.resize(lib.cell("NAND2_X2"), 4).name
    'NAND2_X4'
    """

    def __init__(self, cells: Dict[str, CellType],
                 wire: Optional[WireModel] = None) -> None:
        self._cells = dict(cells)
        self.wire = wire or WireModel()

    @classmethod
    def default(cls) -> "CellLibrary":
        """The default synthetic 7-nm library (cached per process)."""
        global _DEFAULT
        if _DEFAULT is None:
            _DEFAULT = cls(characterize_all())
        return _DEFAULT

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def cell(self, name: str) -> CellType:
        """Look up a cell type by full name, e.g. ``"INV_X4"``."""
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(f"unknown cell type {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def cell_names(self) -> List[str]:
        return sorted(self._cells)

    def kinds(self) -> List[GateKind]:
        return list(GATE_KINDS)

    def kind_index(self, kind_name: str) -> int:
        """Stable index of a gate kind, used for one-hot features."""
        return KIND_INDEX[kind_name]

    @property
    def n_kinds(self) -> int:
        return len(GATE_KINDS)

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    def sizes_of(self, kind_name: str) -> List[CellType]:
        """All drive strengths of a kind, ascending."""
        require(kind_name in KIND_BY_NAME, f"unknown gate kind {kind_name!r}")
        return [self._cells[f"{kind_name}_X{d}"] for d in DRIVE_STRENGTHS]

    def resize(self, cell: CellType, drive: int) -> CellType:
        """The same logic function at a different drive strength."""
        require(drive in DRIVE_STRENGTHS, f"unsupported drive {drive}")
        return self._cells[f"{cell.kind.name}_X{drive}"]

    def upsize(self, cell: CellType) -> Optional[CellType]:
        """Next larger drive of the same kind, or ``None`` at the maximum."""
        idx = DRIVE_STRENGTHS.index(cell.drive)
        if idx + 1 >= len(DRIVE_STRENGTHS):
            return None
        return self.resize(cell, DRIVE_STRENGTHS[idx + 1])

    def downsize(self, cell: CellType) -> Optional[CellType]:
        """Next smaller drive of the same kind, or ``None`` at the minimum."""
        idx = DRIVE_STRENGTHS.index(cell.drive)
        if idx == 0:
            return None
        return self.resize(cell, DRIVE_STRENGTHS[idx - 1])

    # ------------------------------------------------------------------
    # Convenience pickers used by the generator / optimizer
    # ------------------------------------------------------------------
    def buffer(self, drive: int = 4) -> CellType:
        return self._cells[f"BUF_X{drive}"]

    def flipflop(self, drive: int = 2) -> CellType:
        return self._cells[f"DFF_X{drive}"]

    def combinational_kinds(self) -> List[GateKind]:
        return [k for k in GATE_KINDS if not k.is_sequential]


_DEFAULT: Optional[CellLibrary] = None
