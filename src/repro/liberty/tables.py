"""NLDM-style 2-D lookup tables.

Commercial timing libraries (e.g. the ASAP7 Liberty files the paper uses)
characterize each timing arc as a table of delay / output-slew values indexed
by input slew and output load.  We reproduce that interface: tables here are
*synthesized* from an analytic driver model (see :mod:`repro.liberty.cells`)
but the STA engine only ever sees the table, exercising the same
interpolation code path a real NLDM flow would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils import require


@dataclass(frozen=True)
class LookupTable2D:
    """Bilinear-interpolated lookup table ``value = f(slew, load)``.

    Axes must be strictly increasing.  Queries outside the characterized
    range are clamped to the boundary, matching the common (pessimistic)
    extrapolation mode of commercial STA tools.
    """

    slew_axis: np.ndarray
    load_axis: np.ndarray
    values: np.ndarray  # shape (len(slew_axis), len(load_axis))

    def __post_init__(self) -> None:
        require(self.values.shape == (len(self.slew_axis), len(self.load_axis)),
                "table shape must match axis lengths")
        require(bool(np.all(np.diff(self.slew_axis) > 0)),
                "slew axis must be strictly increasing")
        require(bool(np.all(np.diff(self.load_axis) > 0)),
                "load axis must be strictly increasing")

    def lookup(self, slew: float, load: float) -> float:
        """Bilinear interpolation with clamped extrapolation."""
        return float(self.lookup_many(np.asarray([slew]), np.asarray([load]))[0])

    def lookup_many(self, slews: np.ndarray, loads: np.ndarray) -> np.ndarray:
        """Vectorized bilinear interpolation for arrays of queries."""
        s = np.clip(slews, self.slew_axis[0], self.slew_axis[-1])
        ld = np.clip(loads, self.load_axis[0], self.load_axis[-1])

        i = np.clip(np.searchsorted(self.slew_axis, s) - 1, 0,
                    len(self.slew_axis) - 2)
        j = np.clip(np.searchsorted(self.load_axis, ld) - 1, 0,
                    len(self.load_axis) - 2)

        s0, s1 = self.slew_axis[i], self.slew_axis[i + 1]
        l0, l1 = self.load_axis[j], self.load_axis[j + 1]
        ts = (s - s0) / (s1 - s0)
        tl = (ld - l0) / (l1 - l0)

        v00 = self.values[i, j]
        v01 = self.values[i, j + 1]
        v10 = self.values[i + 1, j]
        v11 = self.values[i + 1, j + 1]
        return ((1 - ts) * (1 - tl) * v00 + (1 - ts) * tl * v01
                + ts * (1 - tl) * v10 + ts * tl * v11)

    def scaled(self, factor: float) -> "LookupTable2D":
        """A derated copy of this table with every value scaled.

        This is the NLDM analogue of a PVT corner: commercial libraries
        ship one table set per corner; we derive them by scaling the
        nominal characterization (see :mod:`repro.timing.corners`).
        ``factor == 1.0`` returns ``self`` so the nominal corner shares
        tables (and their interpolation caches) with the base library.
        """
        require(factor > 0.0, "derating factor must be positive")
        if factor == 1.0:
            return self
        return LookupTable2D(self.slew_axis, self.load_axis,
                             self.values * factor)


def synthesize_table(slew_axis: np.ndarray, load_axis: np.ndarray,
                     fn) -> LookupTable2D:
    """Build a :class:`LookupTable2D` by sampling ``fn(slew, load)``.

    ``fn`` must be vectorizable over numpy arrays.
    """
    ss, ll = np.meshgrid(slew_axis, load_axis, indexing="ij")
    return LookupTable2D(np.asarray(slew_axis, dtype=float),
                         np.asarray(load_axis, dtype=float),
                         np.asarray(fn(ss, ll), dtype=float))


#: Default characterization axes (ps for slew, fF for load).  The ranges are
#: loosely modelled on a 7-nm standard-cell corner.
DEFAULT_SLEW_AXIS = np.array([2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0])
DEFAULT_LOAD_AXIS = np.array([0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0])
