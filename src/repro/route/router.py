"""Congestion-aware global routing (Innovus routing stand-in).

A two-phase pattern router over a GCell grid:

1. **Demand phase** — every driver→sink connection is routed as one of the
   two L-shapes (the one through the currently less-used corner region),
   accumulating horizontal/vertical track usage per GCell.
2. **Detour phase** — with the final usage picture, every connection is
   charged a detour proportional to the overflow it crosses, emulating the
   wirelength growth rip-up-and-reroute produces in congested regions.

The result is a :class:`~repro.timing.rc.RoutedLengths` provider for
sign-off STA: routed lengths equal the Manhattan estimate in empty regions
and stretch where the placement is congested — which is exactly the
pre-route-invisible effect the paper's model must absorb (together with a
small deterministic detailed-routing jitter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.netlist import Netlist
from repro.placement import Placement
from repro.timing import RoutedLengths
from repro.utils import require, seed_from_name


@dataclass(frozen=True)
class RouterConfig:
    """Tuning knobs of the global router."""

    gcell_um: float = 4.0        # GCell edge length
    #: Track capacity per GCell edge, as a multiple of the average demand
    #: (lower → more overflow → more detours).
    capacity_headroom: float = 2.0
    #: Detour wirelength per unit of overflow crossed, in µm per GCell.
    detour_per_overflow: float = 3.0
    #: Amplitude of the deterministic detailed-routing jitter (fraction of
    #: the routed length).
    jitter: float = 0.02
    seed: int = 0


@dataclass
class RoutingResult:
    """Routed lengths plus the congestion picture."""

    lengths: RoutedLengths
    h_usage: np.ndarray          # (gx, gy) horizontal track usage
    v_usage: np.ndarray          # (gx, gy) vertical track usage
    capacity: float              # tracks per GCell edge
    total_wirelength: float = 0.0
    total_detour: float = 0.0

    @property
    def overflow_fraction(self) -> float:
        """Fraction of GCell edges over capacity."""
        over = ((self.h_usage > self.capacity).sum()
                + (self.v_usage > self.capacity).sum())
        return float(over) / (self.h_usage.size + self.v_usage.size)

    def congestion_map(self) -> np.ndarray:
        """Per-GCell max(H, V) utilization."""
        return np.maximum(self.h_usage, self.v_usage) / max(self.capacity, 1e-9)


def route(netlist: Netlist, placement: Placement,
          config: Optional[RouterConfig] = None) -> RoutingResult:
    """Globally route every net of a placed netlist."""
    config = config or RouterConfig()
    die = placement.die
    gx = max(2, int(np.ceil(die.width / config.gcell_um)))
    gy = max(2, int(np.ceil(die.height / config.gcell_um)))
    h_usage = np.zeros((gx, gy))
    v_usage = np.zeros((gx, gy))

    def gbin(x: float, y: float) -> Tuple[int, int]:
        return (int(np.clip(x / config.gcell_um, 0, gx - 1)),
                int(np.clip(y / config.gcell_um, 0, gy - 1)))

    # Collect all (driver, sink) connections with geometry, shortest first
    # (short connections take the direct path; long ones see congestion).
    conns = []
    for net in netlist.nets.values():
        dx, dy = placement.pin_position(netlist, net.driver)
        for sp in net.sinks:
            sx, sy = placement.pin_position(netlist, sp)
            manhattan = abs(dx - sx) + abs(dy - sy)
            conns.append((manhattan, net.driver, sp, dx, dy, sx, sy))
    conns.sort(key=lambda c: (c[0], c[1], c[2]))

    # --- Phase 1: L-shape routing with corner selection by usage.
    paths = []  # (driver, sink, manhattan, h_cells, v_cells)
    for manhattan, drv, snk, x0, y0, x1, y1 in conns:
        (i0, j0), (i1, j1) = gbin(x0, y0), gbin(x1, y1)
        ilo, ihi = min(i0, i1), max(i0, i1)
        jlo, jhi = min(j0, j1), max(j0, j1)
        # Candidate A: horizontal at j0 then vertical at i1.
        # Candidate B: vertical at i0 then horizontal at j1.
        cost_a = h_usage[ilo:ihi + 1, j0].sum() + v_usage[i1, jlo:jhi + 1].sum()
        cost_b = v_usage[i0, jlo:jhi + 1].sum() + h_usage[ilo:ihi + 1, j1].sum()
        if cost_a <= cost_b:
            h_cells = (slice(ilo, ihi + 1), j0)
            v_cells = (i1, slice(jlo, jhi + 1))
        else:
            h_cells = (slice(ilo, ihi + 1), j1)
            v_cells = (i0, slice(jlo, jhi + 1))
        h_usage[h_cells] += 1.0
        v_usage[v_cells] += 1.0
        paths.append((drv, snk, manhattan, h_cells, v_cells))

    # --- Capacity calibration: headroom over the average demand.
    demand = np.concatenate([h_usage.ravel(), v_usage.ravel()])
    mean_demand = float(demand.mean())
    capacity = max(1.0, config.capacity_headroom * mean_demand)

    # --- Phase 2: charge detours where the path crosses overflow.
    h_over = np.maximum(0.0, h_usage / capacity - 1.0)
    v_over = np.maximum(0.0, v_usage / capacity - 1.0)
    rng_base = seed_from_name(f"route/{netlist.name}", config.seed)
    lengths = RoutedLengths()
    total_wl = 0.0
    total_detour = 0.0
    for drv, snk, manhattan, h_cells, v_cells in paths:
        overflow = float(h_over[h_cells].sum() + v_over[v_cells].sum())
        detour = config.detour_per_overflow * overflow * config.gcell_um
        # Deterministic detailed-routing jitter in [-jitter, +jitter].
        h = (rng_base ^ (drv * 0x9E3779B1) ^ (snk * 0x85EBCA77)) & 0xFFFFFFFF
        jit = (h / 0xFFFFFFFF * 2.0 - 1.0) * config.jitter
        routed = (manhattan + detour) * (1.0 + jit)
        lengths.set_length(drv, snk, routed)
        total_wl += routed
        total_detour += detour
    return RoutingResult(lengths=lengths, h_usage=h_usage, v_usage=v_usage,
                         capacity=capacity, total_wirelength=total_wl,
                         total_detour=total_detour)
