"""Congestion-aware global router producing sign-off wire lengths."""

from repro.route.router import RouterConfig, RoutingResult, route

__all__ = ["RouterConfig", "RoutingResult", "route"]
