"""Placement substrate: floorplan, global placer, legalizer, feature maps."""

from repro.placement.die import ROW_HEIGHT, Die, Rect, build_die
from repro.placement.placer import Placement, PlacerConfig, place
from repro.placement.legalize import (
    SITE_WIDTH,
    RowGrid,
    cell_site_width,
    cell_span,
    find_site_near,
    legalize,
    reclaim_sites,
    release_cell_sites,
)
from repro.placement.density import (
    LayoutMaps,
    bin_span,
    cell_extent,
    compute_layout_maps,
    recompute_density_region,
    recompute_rudy_region,
)
from repro.placement.defio import read_def, write_def

__all__ = [
    "ROW_HEIGHT",
    "Die",
    "Rect",
    "build_die",
    "Placement",
    "PlacerConfig",
    "place",
    "SITE_WIDTH",
    "RowGrid",
    "cell_site_width",
    "cell_span",
    "find_site_near",
    "reclaim_sites",
    "release_cell_sites",
    "legalize",
    "LayoutMaps",
    "bin_span",
    "cell_extent",
    "compute_layout_maps",
    "recompute_density_region",
    "recompute_rudy_region",
    "read_def",
    "write_def",
]
