"""Row legalization (Tetris-style) for global placement results.

Snaps every standard cell onto a row/site grid, avoiding macro blockages and
cell overlaps while minimizing displacement from the global-placement
location.  Runs in-place on a :class:`~repro.placement.placer.Placement`.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.netlist import Netlist
from repro.placement.die import ROW_HEIGHT, Die
from repro.placement.placer import Placement
from repro.utils import require

__all__ = [
    "SITE_WIDTH",
    "RowGrid",
    "cell_site_width",
    "cell_span",
    "release_cell_sites",
    "reclaim_sites",
    "legalize",
    "find_site_near",
]

SITE_WIDTH = 1.0


class RowGrid:
    """Occupancy grid of placement sites; macros are pre-blocked."""

    def __init__(self, die: Die) -> None:
        self.n_rows = die.n_rows
        self.n_sites = int(die.width / SITE_WIDTH)
        require(self.n_rows > 0 and self.n_sites > 0, "die too small")
        self.occupied = np.zeros((self.n_rows, self.n_sites), dtype=bool)
        for m in die.macros:
            r0 = max(0, int(m.y0 / ROW_HEIGHT))
            r1 = min(self.n_rows, int(np.ceil(m.y1 / ROW_HEIGHT)))
            s0 = max(0, int(m.x0 / SITE_WIDTH))
            s1 = min(self.n_sites, int(np.ceil(m.x1 / SITE_WIDTH)))
            self.occupied[r0:r1, s0:s1] = True

    @classmethod
    def from_placement(cls, netlist: Netlist,
                       placement: "Placement") -> "RowGrid":
        """Occupancy grid of an already-legalized placement.

        Used by the incremental optimizer so inserted cells claim real free
        sites instead of overlapping existing logic.
        """
        grid = cls(placement.die)
        for cid, (x, y) in placement.cell_xy.items():
            width = cell_site_width(netlist, cid)
            row = int(np.clip(y / ROW_HEIGHT, 0, grid.n_rows - 1))
            start = int(np.clip(round(x / SITE_WIDTH - width / 2.0), 0,
                                grid.n_sites - width))
            # Tolerate overlap with blockages rather than fail: the grid is
            # advisory for incremental insertion.
            grid.occupied[row, start:start + width] = True
        return grid

    def free_run_near(self, row: int, col: int, width: int) -> int:
        """Leftmost site of the free run of *width* nearest *col*, or -1."""
        occ = self.occupied[row]
        if width > len(occ):
            return -1
        # window_sum[s] = number of occupied sites in occ[s : s + width]
        csum = np.concatenate([[0], np.cumsum(occ)])
        window_sum = csum[width:] - csum[:-width]
        free = np.where(window_sum == 0)[0]
        if len(free) == 0:
            return -1
        target = np.clip(col - width // 2, 0, len(occ) - width)
        return int(free[np.argmin(np.abs(free - target))])

    def claim(self, row: int, start: int, width: int) -> None:
        require(not self.occupied[row, start:start + width].any(),
                "claiming occupied sites")
        self.occupied[row, start:start + width] = True


def cell_span(netlist: Netlist, placement: "Placement", grid: RowGrid,
              cid: int) -> tuple:
    """(row, start, width) of a placed cell on the grid."""
    x, y = placement.cell_xy[cid]
    width = cell_site_width(netlist, cid)
    row = int(np.clip(y / ROW_HEIGHT, 0, grid.n_rows - 1))
    start = int(np.clip(round(x / SITE_WIDTH - width / 2.0), 0,
                        grid.n_sites - width))
    return row, start, width


def release_cell_sites(netlist: Netlist, placement: "Placement",
                       grid: RowGrid, cid: int) -> tuple:
    """Free a cell's sites (before removing/rewriting it in place).

    Returns the released span so the caller can re-claim it on rollback.
    """
    row, start, width = cell_span(netlist, placement, grid, cid)
    grid.occupied[row, start:start + width] = False
    return row, start, width


def reclaim_sites(grid: RowGrid, span: tuple) -> None:
    """Re-occupy a span previously freed by :func:`release_cell_sites`."""
    row, start, width = span
    grid.occupied[row, start:start + width] = True


def cell_site_width(netlist: Netlist, cid: int) -> int:
    """Number of sites a cell occupies (area / row height, ≥ 1)."""
    area = netlist.cell_type(cid).area
    return max(1, int(round(area / ROW_HEIGHT / SITE_WIDTH)))


def legalize(netlist: Netlist, placement: Placement) -> float:
    """Legalize all cells; returns the mean displacement in µm."""
    die = placement.die
    grid = RowGrid(die)
    # Large cells first: they are hardest to fit.
    order: List[int] = sorted(
        placement.cell_xy,
        key=lambda cid: (-cell_site_width(netlist, cid),
                         placement.cell_xy[cid][0]))
    total_disp = 0.0
    for cid in order:
        x, y = placement.cell_xy[cid]
        width = cell_site_width(netlist, cid)
        want_row = int(np.clip(y / ROW_HEIGHT, 0, grid.n_rows - 1))
        want_col = int(np.clip(x / SITE_WIDTH, 0, grid.n_sites - 1))
        best = None  # (cost, row, start)
        for dr in range(grid.n_rows):
            candidates = {want_row - dr, want_row + dr}
            for row in candidates:
                if not 0 <= row < grid.n_rows:
                    continue
                start = grid.free_run_near(row, want_col, width)
                if start < 0:
                    continue
                nx = (start + width / 2.0) * SITE_WIDTH
                ny = (row + 0.5) * ROW_HEIGHT
                cost = abs(nx - x) + abs(ny - y)
                if best is None or cost < best[0]:
                    best = (cost, row, start)
            # Any solution within dr rows beats anything further away in y
            # by at least (dr+1 - dr) row heights only if its x-cost is
            # small; allow a one-row slack before stopping the search.
            if best is not None and best[0] <= (dr - 1) * ROW_HEIGHT:
                break
        require(best is not None, f"no legal site for cell {cid} "
                "(utilization too high?)")
        _, row, start = best
        grid.claim(row, start, width)
        nx = (start + width / 2.0) * SITE_WIDTH
        ny = (row + 0.5) * ROW_HEIGHT
        total_disp += abs(nx - x) + abs(ny - y)
        placement.cell_xy[cid] = (nx, ny)
    return total_disp / max(1, len(order))


def find_site_near(netlist: Netlist, placement: Placement, grid: RowGrid,
                   cid: int, x: float, y: float,
                   max_disp: float = 25.0) -> bool:
    """Place a newly created cell near (x, y) on an existing grid.

    Used by the incremental optimizer when it inserts buffers or decomposed
    gates.  Scans rows outward from the target and keeps the cheapest
    (Manhattan-displacement) free run.  Returns False when nothing exists
    within *max_disp* µm — a placement this far from the work site would
    defeat the optimization, so the caller rejects the move instead.
    """
    width = cell_site_width(netlist, cid)
    want_row = int(np.clip(y / ROW_HEIGHT, 0, grid.n_rows - 1))
    want_col = int(np.clip(x / SITE_WIDTH, 0, grid.n_sites - 1))
    best = None  # (cost, row, start)
    for dr in range(grid.n_rows):
        if best is not None and best[0] <= (dr - 1) * ROW_HEIGHT:
            break
        if dr * ROW_HEIGHT > max_disp:
            break
        for row in {want_row - dr, want_row + dr}:
            if not 0 <= row < grid.n_rows:
                continue
            start = grid.free_run_near(row, want_col, width)
            if start < 0:
                continue
            nx = (start + width / 2.0) * SITE_WIDTH
            ny = (row + 0.5) * ROW_HEIGHT
            cost = abs(nx - x) + abs(ny - y)
            if best is None or cost < best[0]:
                best = (cost, row, start)
    if best is None or best[0] > max_disp:
        return False
    _, row, start = best
    grid.claim(row, start, width)
    nx = (start + width / 2.0) * SITE_WIDTH
    ny = (row + 0.5) * ROW_HEIGHT
    placement.cell_xy[cid] = (nx, ny)
    return True
