"""Die floorplan: outline, hard macros and I/O pad ring.

The floorplan substitutes for the Innovus floorplanning step: it derives a
die outline from total cell area and a target utilization, places the hard
macros of the design spec (non-overlapping, biased to the die edges, as a
human floorplanner would), and distributes port pads around the periphery.
Macros matter to the reproduction because the paper's layout branch uses a
"macro cells region" feature map — macro area is unusable for timing
optimization (Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.netlist import DesignSpec, Netlist
from repro.utils import require, spawn_rng

#: Height of a placement row in µm (all standard cells are row-height).
ROW_HEIGHT = 1.0


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle (µm)."""

    x0: float
    y0: float
    x1: float
    y1: float

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        return (0.5 * (self.x0 + self.x1), 0.5 * (self.y0 + self.y1))

    def contains(self, x: float, y: float) -> bool:
        return self.x0 <= x <= self.x1 and self.y0 <= y <= self.y1

    def overlaps(self, other: "Rect") -> bool:
        return not (self.x1 <= other.x0 or other.x1 <= self.x0
                    or self.y1 <= other.y0 or other.y1 <= self.y0)


@dataclass
class Die:
    """Die outline with placed macros and port pad locations."""

    width: float
    height: float
    macros: List[Rect] = field(default_factory=list)
    port_positions: Dict[int, Tuple[float, float]] = field(default_factory=dict)

    @property
    def outline(self) -> Rect:
        return Rect(0.0, 0.0, self.width, self.height)

    @property
    def n_rows(self) -> int:
        return int(self.height / ROW_HEIGHT)

    def in_macro(self, x: float, y: float) -> bool:
        return any(m.contains(x, y) for m in self.macros)

    def clamp(self, x: float, y: float,
              margin: float = 0.5) -> Tuple[float, float]:
        """Clamp a point into the placeable area (inside the outline)."""
        return (float(np.clip(x, margin, self.width - margin)),
                float(np.clip(y, margin, self.height - margin)))


def build_die(netlist: Netlist, spec: DesignSpec, base_seed: int = 0) -> Die:
    """Derive a floorplan for *netlist* per *spec*.

    The die is square, sized so that standard cells reach the spec's target
    utilization of the non-macro area.  Macros go to edge positions picked
    deterministically; ports are spread evenly around the periphery.
    """
    cell_area = netlist.total_cell_area()
    require(cell_area > 0, "netlist has no cells")
    # Solve for die area: util * (die_area - macro_area) = cell_area with
    # macro_area a fixed fraction of die area.
    macro_frac = sum(m.width_frac * m.height_frac for m in spec.macros)
    require(macro_frac < 0.6, "macros occupy too much of the die")
    die_area = cell_area / (spec.utilization * (1.0 - macro_frac))
    side = float(np.ceil(np.sqrt(die_area) / ROW_HEIGHT) * ROW_HEIGHT)
    die = Die(width=side, height=side)

    rng = spawn_rng(f"floorplan/{spec.name}", base_seed)
    _place_macros(die, spec, rng)
    _place_ports(die, netlist)
    return die


def _place_macros(die: Die, spec: DesignSpec,
                  rng: np.random.Generator) -> None:
    """Greedy edge-biased macro placement (corners first, no overlap)."""
    anchors = [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0),
               (0.5, 0.0), (0.0, 0.5), (1.0, 0.5), (0.5, 1.0)]
    order = rng.permutation(len(anchors))
    used = 0
    for mspec in spec.macros:
        w = mspec.width_frac * die.width
        h = mspec.height_frac * die.height
        placed = False
        for k in range(used, len(anchors)):
            ax, ay = anchors[order[k]]
            x0 = ax * (die.width - w)
            y0 = ay * (die.height - h)
            # Snap to row grid so legalization stays simple.
            y0 = round(y0 / ROW_HEIGHT) * ROW_HEIGHT
            cand = Rect(x0, y0, x0 + w, y0 + h)
            if not any(cand.overlaps(m) for m in die.macros):
                die.macros.append(cand)
                used = k + 1
                placed = True
                break
        require(placed, f"could not place macro {mspec} without overlap")


def _place_ports(die: Die, netlist: Netlist) -> None:
    """Distribute port pads evenly around the die periphery."""
    ports = sorted(netlist.ports.values(), key=lambda p: p.name)
    n = len(ports)
    if n == 0:
        return
    perimeter = 2.0 * (die.width + die.height)
    for i, port in enumerate(ports):
        t = (i + 0.5) / n * perimeter
        if t < die.width:
            x, y = t, 0.0
        elif t < die.width + die.height:
            x, y = die.width, t - die.width
        elif t < 2 * die.width + die.height:
            x, y = 2 * die.width + die.height - t, die.height
        else:
            x, y = 0.0, perimeter - t
        die.port_positions[port.pin] = (float(x), float(y))
