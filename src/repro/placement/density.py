"""Layout feature maps: cell density, RUDY and macro region.

These are the three input channels of the paper's CNN branch (Section V-A,
Fig. 5).  The layout is divided into M×N bins (the paper uses 512×512; we
default to a configurable, smaller grid for CPU-scale experiments — the
paper value remains supported).

Map convention: ``map[i, j]`` covers x-bin ``i`` and y-bin ``j``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netlist import Netlist
from repro.placement.placer import Placement
from repro.utils import require


@dataclass(frozen=True)
class LayoutMaps:
    """The stacked layout feature maps of one placed design."""

    cell_density: np.ndarray  # (M, N), utilization in [0, ~1]
    rudy: np.ndarray          # (M, N), wire density estimate
    macro: np.ndarray         # (M, N), macro coverage fraction in [0, 1]
    bin_w: float
    bin_h: float

    @property
    def shape(self) -> tuple:
        return self.cell_density.shape

    def stacked(self) -> np.ndarray:
        """(3, M, N) channel stack fed to the CNN."""
        return np.stack([self.cell_density, self.rudy, self.macro])

    def free_space(self) -> np.ndarray:
        """Fraction of each bin usable by the optimizer (Section V-A):
        high density and macro coverage both remove optimization headroom."""
        free = (1.0 - np.clip(self.cell_density, 0.0, 1.0)) * (1.0 - self.macro)
        return np.clip(free, 0.0, 1.0)


def _axis_overlap(lo: float, hi: float, n_bins: int,
                  bin_size: float) -> tuple:
    """Clipped per-bin overlap lengths of the interval [lo, hi]."""
    lo = max(0.0, lo)
    hi = max(lo, hi)
    b0 = int(np.clip(lo / bin_size, 0, n_bins - 1))
    b1 = int(np.clip(np.ceil(hi / bin_size) - 1, b0, n_bins - 1))
    edges = np.arange(b0, b1 + 2) * bin_size
    overlaps = np.minimum(edges[1:], hi) - np.maximum(edges[:-1], lo)
    return b0, np.clip(overlaps, 0.0, None)


def compute_layout_maps(netlist: Netlist, placement: Placement,
                        m: int = 64, n: int = 64) -> LayoutMaps:
    """Compute the three feature maps for a placed netlist."""
    require(m > 0 and n > 0, "bin counts must be positive")
    die = placement.die
    bin_w = die.width / m
    bin_h = die.height / n
    bin_area = bin_w * bin_h

    # --- Cell density: each cell's row-height footprint is spread over the
    # bins it overlaps, so the map stays meaningful even when bins are
    # smaller than the largest cells.
    density = np.zeros((m, n))
    for cid, (x, y) in placement.cell_xy.items():
        area = netlist.cell_type(cid).area
        half_w = 0.5 * max(area / 1.0, 1.0)  # width at row height 1 µm
        i0, wx = _axis_overlap(x - half_w, x + half_w, m, bin_w)
        j0, wy = _axis_overlap(y - 0.5, y + 0.5, n, bin_h)
        patch = np.outer(wx, wy)
        total = patch.sum()
        if total > 0:
            density[i0:i0 + len(wx), j0:j0 + len(wy)] += area * patch / total
    density /= bin_area

    # --- RUDY: per net, spread (w + h) / (w * h) over its bounding box,
    # weighted by the exact bin-overlap fractions.
    rudy = np.zeros((m, n))
    eps = 1e-6
    for nid, net in netlist.nets.items():
        pts = placement.pin_positions(netlist, [net.driver] + list(net.sinks))
        x0, y0 = pts.min(axis=0)
        x1, y1 = pts.max(axis=0)
        w = max(x1 - x0, eps)
        h = max(y1 - y0, eps)
        wire_density = (w + h) / (w * h)
        i0, wx = _axis_overlap(x0, x1, m, bin_w)
        j0, wy = _axis_overlap(y0, y1, n, bin_h)
        patch = np.outer(wx, wy) / bin_area  # overlap area fraction
        rudy[i0:i0 + len(wx), j0:j0 + len(wy)] += wire_density * patch

    # --- Macro map: exact coverage fraction per bin.
    macro = np.zeros((m, n))
    for rect in die.macros:
        i0, wx = _axis_overlap(rect.x0, rect.x1, m, bin_w)
        j0, wy = _axis_overlap(rect.y0, rect.y1, n, bin_h)
        macro[i0:i0 + len(wx), j0:j0 + len(wy)] += np.outer(wx, wy) / bin_area
    macro = np.clip(macro, 0.0, 1.0)

    return LayoutMaps(cell_density=density, rudy=rudy, macro=macro,
                      bin_w=bin_w, bin_h=bin_h)
