"""Layout feature maps: cell density, RUDY and macro region.

These are the three input channels of the paper's CNN branch (Section V-A,
Fig. 5).  The layout is divided into M×N bins (the paper uses 512×512; we
default to a configurable, smaller grid for CPU-scale experiments — the
paper value remains supported).

Map convention: ``map[i, j]`` covers x-bin ``i`` and y-bin ``j``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.netlist import Netlist
from repro.placement.placer import Placement
from repro.utils import require


@dataclass(frozen=True)
class LayoutMaps:
    """The stacked layout feature maps of one placed design."""

    cell_density: np.ndarray  # (M, N), utilization in [0, ~1]
    rudy: np.ndarray          # (M, N), wire density estimate
    macro: np.ndarray         # (M, N), macro coverage fraction in [0, 1]
    bin_w: float
    bin_h: float

    @property
    def shape(self) -> tuple:
        return self.cell_density.shape

    def stacked(self) -> np.ndarray:
        """(3, M, N) channel stack fed to the CNN."""
        return np.stack([self.cell_density, self.rudy, self.macro])

    def free_space(self) -> np.ndarray:
        """Fraction of each bin usable by the optimizer (Section V-A):
        high density and macro coverage both remove optimization headroom."""
        free = (1.0 - np.clip(self.cell_density, 0.0, 1.0)) * (1.0 - self.macro)
        return np.clip(free, 0.0, 1.0)


def _axis_overlap(lo: float, hi: float, n_bins: int,
                  bin_size: float) -> tuple:
    """Clipped per-bin overlap lengths of the interval [lo, hi]."""
    lo = max(0.0, lo)
    hi = max(lo, hi)
    b0 = int(np.clip(lo / bin_size, 0, n_bins - 1))
    b1 = int(np.clip(np.ceil(hi / bin_size) - 1, b0, n_bins - 1))
    edges = np.arange(b0, b1 + 2) * bin_size
    overlaps = np.minimum(edges[1:], hi) - np.maximum(edges[:-1], lo)
    return b0, np.clip(overlaps, 0.0, None)


def bin_span(lo: float, hi: float, n_bins: int, bin_size: float) -> tuple:
    """Inclusive (first, last) bin indices covered by [lo, hi].

    Pure-scalar fast path that agrees exactly with the bin range
    :func:`_axis_overlap` produces (cheap enough to run as a prefilter
    for every cell/net during a region recompute).
    """
    if lo < 0.0:
        lo = 0.0
    if hi < lo:
        hi = lo
    b0 = int(lo / bin_size)
    if b0 > n_bins - 1:
        b0 = n_bins - 1
    b1 = int(math.ceil(hi / bin_size)) - 1
    if b1 < b0:
        b1 = b0
    elif b1 > n_bins - 1:
        b1 = n_bins - 1
    return b0, b1


def cell_extent(netlist: Netlist, placement: Placement,
                cid: int) -> tuple:
    """(x0, x1, y0, y1) footprint a cell contributes to the density map."""
    x, y = placement.cell_xy[cid]
    area = netlist.cell_type(cid).area
    half_w = 0.5 * max(area / 1.0, 1.0)
    return x - half_w, x + half_w, y - 0.5, y + 0.5


def compute_layout_maps(netlist: Netlist, placement: Placement,
                        m: int = 64, n: int = 64) -> LayoutMaps:
    """Compute the three feature maps for a placed netlist."""
    require(m > 0 and n > 0, "bin counts must be positive")
    die = placement.die
    bin_w = die.width / m
    bin_h = die.height / n
    bin_area = bin_w * bin_h

    # --- Cell density: each cell's row-height footprint is spread over the
    # bins it overlaps, so the map stays meaningful even when bins are
    # smaller than the largest cells.
    density = np.zeros((m, n))
    for cid, (x, y) in placement.cell_xy.items():
        area = netlist.cell_type(cid).area
        half_w = 0.5 * max(area / 1.0, 1.0)  # width at row height 1 µm
        i0, wx = _axis_overlap(x - half_w, x + half_w, m, bin_w)
        j0, wy = _axis_overlap(y - 0.5, y + 0.5, n, bin_h)
        patch = np.outer(wx, wy)
        total = patch.sum()
        if total > 0:
            density[i0:i0 + len(wx), j0:j0 + len(wy)] += area * patch / total
    density /= bin_area

    # --- RUDY: per net, spread (w + h) / (w * h) over its bounding box,
    # weighted by the exact bin-overlap fractions.
    rudy = np.zeros((m, n))
    eps = 1e-6
    for nid, net in netlist.nets.items():
        pts = placement.pin_positions(netlist, [net.driver] + list(net.sinks))
        x0, y0 = pts.min(axis=0)
        x1, y1 = pts.max(axis=0)
        w = max(x1 - x0, eps)
        h = max(y1 - y0, eps)
        wire_density = (w + h) / (w * h)
        i0, wx = _axis_overlap(x0, x1, m, bin_w)
        j0, wy = _axis_overlap(y0, y1, n, bin_h)
        patch = np.outer(wx, wy) / bin_area  # overlap area fraction
        rudy[i0:i0 + len(wx), j0:j0 + len(wy)] += wire_density * patch

    # --- Macro map: exact coverage fraction per bin.
    macro = np.zeros((m, n))
    for rect in die.macros:
        i0, wx = _axis_overlap(rect.x0, rect.x1, m, bin_w)
        j0, wy = _axis_overlap(rect.y0, rect.y1, n, bin_h)
        macro[i0:i0 + len(wx), j0:j0 + len(wy)] += np.outer(wx, wy) / bin_area
    macro = np.clip(macro, 0.0, 1.0)

    return LayoutMaps(cell_density=density, rudy=rudy, macro=macro,
                      bin_w=bin_w, bin_h=bin_h)


def _net_bbox(netlist: Netlist, placement: Placement, net) -> tuple:
    """(x0, y0, x1, y1) of a net's pins — scalar min/max, identical
    values to the array reduction in :func:`compute_layout_maps`."""
    x0 = y0 = math.inf
    x1 = y1 = -math.inf
    for pid in (net.driver, *net.sinks):
        x, y = placement.pin_position(netlist, pid)
        if x < x0:
            x0 = x
        if x > x1:
            x1 = x
        if y < y0:
            y0 = y
        if y > y1:
            y1 = y
    return x0, y0, x1, y1


def _slice_add(acc: np.ndarray, i0: int, j0: int, patch: np.ndarray,
               r0: int, r1: int, c0: int, c1: int) -> None:
    """Add the part of *patch* (whose [0,0] sits at global bin (i0, j0))
    that falls inside the global bin window rows [r0, r1] / cols [c0, c1]
    into *acc* (whose [0,0] sits at (r0, c0))."""
    pi0 = max(r0 - i0, 0)
    pi1 = min(r1 - i0, patch.shape[0] - 1)
    pj0 = max(c0 - j0, 0)
    pj1 = min(c1 - j0, patch.shape[1] - 1)
    if pi0 > pi1 or pj0 > pj1:
        return
    acc[i0 + pi0 - r0:i0 + pi1 - r0 + 1,
        j0 + pj0 - c0:j0 + pj1 - c0 + 1] += patch[pi0:pi1 + 1, pj0:pj1 + 1]


def recompute_density_region(netlist: Netlist, placement: Placement,
                             density: np.ndarray, r0: int, r1: int,
                             c0: int, c1: int) -> None:
    """Recompute the density bins [r0..r1] × [c0..c1] in place.

    The recomputed bins are **bit-identical** to a full
    :func:`compute_layout_maps` pass: cells are visited in the same
    order, each contribution patch is computed by the same arithmetic,
    and the bin-area division is applied once after accumulation —
    exactly as in the full pass.  Used by the incremental what-if
    featurizer (:mod:`repro.serve`) to refresh only touched bins.
    """
    m, n = density.shape
    die = placement.die
    bin_w = die.width / m
    bin_h = die.height / n
    acc = np.zeros((r1 - r0 + 1, c1 - c0 + 1))
    for cid, (x, y) in placement.cell_xy.items():
        area = netlist.cell_type(cid).area
        half_w = 0.5 * max(area / 1.0, 1.0)
        # Cheap scalar span test first; _axis_overlap (array math) only
        # runs for the few cells actually intersecting the region.
        i0, i1 = bin_span(x - half_w, x + half_w, m, bin_w)
        j0, j1 = bin_span(y - 0.5, y + 0.5, n, bin_h)
        if i0 > r1 or i1 < r0 or j0 > c1 or j1 < c0:
            continue
        i0, wx = _axis_overlap(x - half_w, x + half_w, m, bin_w)
        j0, wy = _axis_overlap(y - 0.5, y + 0.5, n, bin_h)
        patch = np.outer(wx, wy)
        total = patch.sum()
        if total > 0:
            _slice_add(acc, i0, j0, area * patch / total, r0, r1, c0, c1)
    density[r0:r1 + 1, c0:c1 + 1] = acc / (bin_w * bin_h)


def recompute_rudy_region(netlist: Netlist, placement: Placement,
                          rudy: np.ndarray, r0: int, r1: int,
                          c0: int, c1: int) -> None:
    """Recompute the RUDY bins [r0..r1] × [c0..c1] in place.

    Bit-identical to the full pass for the same reason as
    :func:`recompute_density_region` (same net order, same per-net
    patch arithmetic including the per-contribution bin-area division).
    """
    m, n = rudy.shape
    die = placement.die
    bin_w = die.width / m
    bin_h = die.height / n
    bin_area = bin_w * bin_h
    eps = 1e-6
    acc = np.zeros((r1 - r0 + 1, c1 - c0 + 1))
    for nid, net in netlist.nets.items():
        x0, y0, x1, y1 = _net_bbox(netlist, placement, net)
        w = max(x1 - x0, eps)
        h = max(y1 - y0, eps)
        i0, i1 = bin_span(x0, x1, m, bin_w)
        j0, j1 = bin_span(y0, y1, n, bin_h)
        if i0 > r1 or i1 < r0 or j0 > c1 or j1 < c0:
            continue
        i0, wx = _axis_overlap(x0, x1, m, bin_w)
        j0, wy = _axis_overlap(y0, y1, n, bin_h)
        wire_density = (w + h) / (w * h)
        patch = np.outer(wx, wy) / bin_area
        _slice_add(acc, i0, j0, wire_density * patch, r0, r1, c0, c1)
    rudy[r0:r1 + 1, c0:c1 + 1] = acc
