"""DEF-lite placement interchange (writer + parser).

A minimal subset of the DEF format sufficient to hand placements between
tools: DESIGN/DIEAREA/COMPONENTS(+PLACED coordinates)/PINS/END.  Distances
use a DEF database unit of 1000 units per µm.
"""

from __future__ import annotations

import re
from typing import TextIO

from repro.netlist import Netlist
from repro.placement.die import Die
from repro.placement.placer import Placement
from repro.utils import require

DBU_PER_UM = 1000


def write_def(netlist: Netlist, placement: Placement, fh: TextIO) -> None:
    """Write the placement as DEF-lite."""
    die = placement.die
    fh.write("VERSION 5.8 ;\n")
    fh.write(f"DESIGN {netlist.name} ;\n")
    fh.write(f"UNITS DISTANCE MICRONS {DBU_PER_UM} ;\n")
    fh.write(f"DIEAREA ( 0 0 ) ( {_dbu(die.width)} {_dbu(die.height)} ) ;\n")

    fh.write(f"COMPONENTS {len(netlist.cells)} ;\n")
    for cid in sorted(netlist.cells):
        inst = netlist.cells[cid]
        x, y = placement.cell_xy[cid]
        fh.write(f"- {inst.name} {inst.type_name} + PLACED "
                 f"( {_dbu(x)} {_dbu(y)} ) N ;\n")
    fh.write("END COMPONENTS\n")

    ports = sorted(netlist.ports.values(), key=lambda p: p.name)
    fh.write(f"PINS {len(ports)} ;\n")
    for port in ports:
        x, y = die.port_positions[port.pin]
        direction = "INPUT" if port.direction == "in" else "OUTPUT"
        fh.write(f"- {port.name} + DIRECTION {direction} + PLACED "
                 f"( {_dbu(x)} {_dbu(y)} ) N ;\n")
    fh.write("END PINS\n")
    fh.write("END DESIGN\n")


def read_def(netlist: Netlist, text: str) -> Placement:
    """Parse DEF-lite back into a :class:`Placement` for *netlist*.

    Component/pin names must match the netlist; unknown names raise.
    """
    m = re.search(r"DIEAREA \( 0 0 \) \( (\d+) (\d+) \)", text)
    require(m is not None, "DEF missing DIEAREA")
    die = Die(width=int(m.group(1)) / DBU_PER_UM,
              height=int(m.group(2)) / DBU_PER_UM)
    placement = Placement(die=die)

    by_name = {inst.name: inst for inst in netlist.cells.values()}
    comp_re = re.compile(
        r"- (\S+) (\S+) \+ PLACED \( (-?\d+) (-?\d+) \) \w+ ;")
    pin_re = re.compile(
        r"- (\S+) \+ DIRECTION (\w+) \+ PLACED \( (-?\d+) (-?\d+) \) \w+ ;")

    in_components = in_pins = False
    for line in text.splitlines():
        line = line.strip()
        if line.startswith("COMPONENTS"):
            in_components = True
            continue
        if line.startswith("END COMPONENTS"):
            in_components = False
            continue
        if line.startswith("PINS"):
            in_pins = True
            continue
        if line.startswith("END PINS"):
            in_pins = False
            continue
        if in_components and line.startswith("-"):
            m = comp_re.match(line)
            require(m is not None, f"bad COMPONENTS line: {line!r}")
            name, type_name, x, y = m.groups()
            require(name in by_name, f"unknown component {name!r}")
            inst = by_name[name]
            require(inst.type_name == type_name,
                    f"component {name!r} type mismatch")
            placement.cell_xy[inst.cid] = (int(x) / DBU_PER_UM,
                                           int(y) / DBU_PER_UM)
        elif in_pins and line.startswith("-"):
            m = pin_re.match(line)
            require(m is not None, f"bad PINS line: {line!r}")
            name, _, x, y = m.groups()
            require(name in netlist.ports, f"unknown pin {name!r}")
            die.port_positions[netlist.ports[name].pin] = (
                int(x) / DBU_PER_UM, int(y) / DBU_PER_UM)
    require(set(placement.cell_xy) == set(netlist.cells),
            "DEF does not place every component")
    return placement


def _dbu(um: float) -> int:
    return int(round(um * DBU_PER_UM))
