"""Global placement: iterative net-centroid optimization with spreading.

Substitutes for Innovus placement.  The algorithm is a classic
quadratic-style placer: alternating net-centroid / cell-centroid updates
(equivalent to damped Jacobi sweeps on the star-model Laplacian, anchored by
the fixed I/O pads), interleaved with density-gradient spreading passes, a
macro push-out, and finally row legalization (:mod:`repro.placement.legalize`).

The output :class:`Placement` is the coordinate source for everything
downstream: wire-length estimation, the density/RUDY/macro feature maps, the
layout-gated optimizer, and the router.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.netlist import Netlist
from repro.placement.die import Die
from repro.utils import require, spawn_rng


@dataclass
class Placement:
    """Cell coordinates on a die (cell centers, µm)."""

    die: Die
    cell_xy: Dict[int, Tuple[float, float]] = field(default_factory=dict)

    def position(self, cid: int) -> Tuple[float, float]:
        return self.cell_xy[cid]

    def set_position(self, cid: int, x: float, y: float) -> None:
        """Place (or move) a cell, clamped into the die."""
        self.cell_xy[cid] = self.die.clamp(x, y)

    def pin_position(self, netlist: Netlist, pid: int) -> Tuple[float, float]:
        """Position of a pin: its cell's center, or its pad for port pins."""
        pin = netlist.pins[pid]
        if pin.cell is None:
            return self.die.port_positions[pid]
        return self.cell_xy[pin.cell]

    def pin_positions(self, netlist: Netlist,
                      pids: List[int]) -> np.ndarray:
        """Positions of many pins as an (n, 2) array."""
        return np.array([self.pin_position(netlist, p) for p in pids],
                        dtype=float)

    def net_hpwl(self, netlist: Netlist, nid: int) -> float:
        """Half-perimeter wirelength of one net."""
        net = netlist.nets[nid]
        pts = self.pin_positions(netlist, [net.driver] + list(net.sinks))
        return float((pts[:, 0].max() - pts[:, 0].min())
                     + (pts[:, 1].max() - pts[:, 1].min()))

    def total_hpwl(self, netlist: Netlist) -> float:
        return sum(self.net_hpwl(netlist, nid) for nid in netlist.nets)


@dataclass(frozen=True)
class PlacerConfig:
    """Tuning knobs of the global placer."""

    n_iterations: int = 60
    damping: float = 0.55
    spread_every: int = 8
    spread_strength: float = 1.4
    spread_bins: int = 32
    seed: int = 0


def place(netlist: Netlist, die: Die,
          config: Optional[PlacerConfig] = None) -> Placement:
    """Run global placement + legalization for *netlist* on *die*."""
    config = config or PlacerConfig()
    require(len(netlist.cells) > 0, "cannot place an empty netlist")
    rng = spawn_rng(f"place/{netlist.name}", config.seed)

    cell_ids = sorted(netlist.cells)
    index = {cid: i for i, cid in enumerate(cell_ids)}
    n_cells = len(cell_ids)

    # Star-model incidence: (cell, net) membership pairs plus fixed-pad
    # contributions per net.
    net_ids = sorted(netlist.nets)
    net_index = {nid: j for j, nid in enumerate(net_ids)}
    pair_cell: List[int] = []
    pair_net: List[int] = []
    fixed_sum = np.zeros((len(net_ids), 2))
    fixed_cnt = np.zeros(len(net_ids))
    for nid in net_ids:
        net = netlist.nets[nid]
        j = net_index[nid]
        members = set()
        for pid in [net.driver] + list(net.sinks):
            pin = netlist.pins[pid]
            if pin.cell is None:
                fixed_sum[j] += die.port_positions[pid]
                fixed_cnt[j] += 1
            else:
                members.add(index[pin.cell])
        for ci in members:
            pair_cell.append(ci)
            pair_net.append(j)
    pair_cell_arr = np.asarray(pair_cell, dtype=np.int64)
    pair_net_arr = np.asarray(pair_net, dtype=np.int64)
    net_members = np.bincount(pair_net_arr, minlength=len(net_ids)) + fixed_cnt
    cell_degree = np.bincount(pair_cell_arr, minlength=n_cells).astype(float)
    cell_degree[cell_degree == 0] = 1.0

    xy = np.column_stack([
        rng.uniform(0.1 * die.width, 0.9 * die.width, n_cells),
        rng.uniform(0.1 * die.height, 0.9 * die.height, n_cells),
    ])

    for it in range(config.n_iterations):
        # Net centroids from current cell positions and fixed pads.
        net_sum = fixed_sum.copy()
        np.add.at(net_sum, pair_net_arr, xy[pair_cell_arr])
        centroid = net_sum / net_members[:, None]
        # Cell update: mean of incident-net centroids, damped.
        cell_sum = np.zeros_like(xy)
        np.add.at(cell_sum, pair_cell_arr, centroid[pair_net_arr])
        target = cell_sum / cell_degree[:, None]
        xy = (1 - config.damping) * xy + config.damping * target
        if (it + 1) % config.spread_every == 0:
            # Spreading strength ramps up: early iterations favour the
            # wirelength objective, late iterations favour legality.
            blend = 0.25 + 0.45 * (it + 1) / config.n_iterations
            xy = _spread_by_ranks(xy, die, blend)
        xy[:, 0] = np.clip(xy[:, 0], 0.5, die.width - 0.5)
        xy[:, 1] = np.clip(xy[:, 1], 0.5, die.height - 0.5)

    # Finish with a spreading step: ending on quadratic pulls would re-clump
    # the cells and leave no room for the timing optimizer to work with
    # (placement must reserve space for optimization - Section II-A).
    xy = _spread_by_ranks(xy, die, blend=0.6)
    xy = _density_warp(xy, die, netlist.name, config.seed)
    xy = _push_out_of_macros(xy, die)
    placement = Placement(die=die)
    for cid, pos in zip(cell_ids, xy):
        placement.set_position(cid, float(pos[0]), float(pos[1]))
    return placement


def _spread_by_ranks(xy: np.ndarray, die: Die, blend: float) -> np.ndarray:
    """Rank-based spreading: map cells to a uniform grid by coordinate rank.

    Cells are sorted into equal-count columns by x, then into equal-count
    rows by y within each column.  The resulting target positions cover the
    die uniformly while preserving the relative ordering (and hence the
    neighbourhoods) found by the quadratic iterations.  ``blend`` mixes the
    uniform target into the current position.
    """
    n = len(xy)
    n_cols = max(1, int(np.ceil(np.sqrt(n))))
    per_col = int(np.ceil(n / n_cols))
    target = np.empty_like(xy)
    order_x = np.argsort(xy[:, 0], kind="stable")
    for c in range(n_cols):
        members = order_x[c * per_col:(c + 1) * per_col]
        if len(members) == 0:
            continue
        tx = (c + 0.5) / n_cols * die.width
        rows = members[np.argsort(xy[members, 1], kind="stable")]
        ty = (np.arange(len(rows)) + 0.5) / len(rows) * die.height
        target[rows, 0] = tx
        target[rows, 1] = ty
    return (1 - blend) * xy + blend * target


def _density_warp(xy: np.ndarray, die: Die, name: str,
                  seed: int) -> np.ndarray:
    """Warp coordinates through a smooth random density profile.

    Real floorplans pack some regions much more tightly than others (hard
    IP neighbourhoods, channel regions, ...), and regional utilization is
    what decides how much room the timing optimizer has (Section II-A).
    Uniform spreading erases that structure, so we reintroduce it with a
    deterministic, design-seeded monotone warp per axis: cells in
    "compressed" intervals end up locally dense, cells in "stretched"
    intervals get generous whitespace.  The warp is order-preserving, so
    module locality from the quadratic iterations is retained.
    """
    rng = spawn_rng(f"density-warp/{name}", seed)
    out = xy.copy()
    for axis, span in ((0, die.width), (1, die.height)):
        k = 6
        weights = rng.uniform(0.45, 2.2, size=k)
        edges = np.linspace(0.0, span, k + 1)
        # CDF of the density profile: warped = F^{-1}(u) compresses where
        # the weight is high.
        cum = np.concatenate([[0.0], np.cumsum(1.0 / weights)])
        cum = cum / cum[-1] * span
        u = np.clip(out[:, axis] / span, 0.0, 1.0)
        out[:, axis] = np.interp(u * span, edges, cum)
    return out


def _push_out_of_macros(xy: np.ndarray, die: Die) -> np.ndarray:
    """Project any cell inside a macro to the nearest macro edge."""
    out = xy.copy()
    for m in die.macros:
        inside = ((out[:, 0] > m.x0) & (out[:, 0] < m.x1)
                  & (out[:, 1] > m.y0) & (out[:, 1] < m.y1))
        if not inside.any():
            continue
        idx = np.where(inside)[0]
        for i in idx:
            x, y = out[i]
            # Try the four edges nearest-first; skip targets that the die
            # boundary would clamp straight back into the macro (macros
            # flush with the die edge).
            candidates = sorted([
                (x - m.x0, (m.x0 - 0.5, y)),
                (m.x1 - x, (m.x1 + 0.5, y)),
                (y - m.y0, (x, m.y0 - 0.5)),
                (m.y1 - y, (x, m.y1 + 0.5)),
            ])
            for _, (nx, ny) in candidates:
                cx, cy = die.clamp(nx, ny)
                if not m.contains(cx, cy):
                    out[i] = (cx, cy)
                    break
    return out
