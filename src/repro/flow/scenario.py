"""Scenario axes over the staged flow: clock sweeps and ECO rounds.

A *scenario* is one variant of a design's flow, named by a file-safe id
and expanded from two axis kinds:

* **sweep axes** — numeric :class:`~repro.netlist.DesignSpec` fields
  overridden per variant, e.g. ``clock_frac=0.6,0.7,0.8``.  The staged
  engine's chained fingerprints (:mod:`repro.flow.stages`) make sharing
  automatic: a ``clock_frac`` sweep forks at the constrain stage and
  reuses generation/placement across every point, while an axis that
  reshapes the netlist (say ``utilization``) forks at the root — the
  keys track data dependence, not wishful thinking.
* **ECO rounds** — ``eco_rounds=N`` re-enters the opt stage *N* times on
  the routed netlist, each round starting from the previous round's
  sign-off STA.  Round ``r`` is its own scenario (its own sample): the
  labels shift, the features shift only where the round touched them —
  exactly the restructure-tolerance axis the paper's Table IV probes.

Scenario ids mirror the corner naming convention: the default scenario
is ``""`` (no tag anywhere — cache paths, sample fields and serve
responses are byte-identical to a scenario-less build), and a variant
gets a tag like ``"clock_frac0.7+eco2"`` used as the ``@scenario``
suffix of dataset cache files, next to the ``@corner`` suffix.

Sweep points always *resolve* against the concrete spec they run on:
an axis override equal to the spec's current value is dropped, so a
one-point sweep at the preset default collapses to the default scenario
(same untagged cache file, same bytes) — pinned by the sweep-collapse
test.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass, fields, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.flow.flow import FlowConfig, FlowResult, run_flow  # noqa: F401
from repro.flow.stages import StagedFlow
from repro.flow.store import StageStore
from repro.netlist import DESIGN_PRESETS, DesignSpec
from repro.utils import get_logger, require

logger = get_logger("flow.scenario")

__all__ = [
    "ScenarioSpec",
    "expand_scenarios",
    "parse_sweep",
    "run_scenarios",
    "run_scenario_flow",
]

#: Grammar of one compact axis token inside a scenario id:
#: ``clock_frac0.7`` → (``clock_frac``, ``0.7``).
_ID_TOKEN = re.compile(r"^([A-Za-z_]+?)(-?\d+(?:\.\d+)?(?:e-?\d+)?)$")


@dataclass(frozen=True)
class ScenarioSpec:
    """One flow variant: spec-field overrides plus ECO re-opt rounds.

    ``axes`` is a name-sorted tuple of ``(field, value)`` overrides on
    the design's :class:`DesignSpec`; ``eco_rounds`` selects which ECO
    round's implementation this scenario is (0 = the freshly optimized
    flow).  The default ``ScenarioSpec()`` is *the* default flow.
    """

    axes: Tuple[Tuple[str, float], ...] = ()
    eco_rounds: int = 0

    def __post_init__(self) -> None:
        require(self.eco_rounds >= 0, "eco_rounds must be >= 0")
        object.__setattr__(
            self, "axes", tuple(sorted(tuple(self.axes))))
        names = [a for a, _ in self.axes]
        require(len(set(names)) == len(names),
                f"duplicate scenario axes: {names}")

    # -- identity ------------------------------------------------------
    @property
    def scenario_id(self) -> str:
        """File-safe id: ``""`` for the default, else axis tokens joined
        with ``+`` (``clock_frac0.7+eco2``)."""
        parts = [f"{name}{value:g}" for name, value in self.axes]
        if self.eco_rounds:
            parts.append(f"eco{self.eco_rounds}")
        return "+".join(parts)

    @property
    def is_default(self) -> bool:
        return not self.axes and not self.eco_rounds

    def __str__(self) -> str:
        return self.scenario_id or "<default>"

    # -- parsing -------------------------------------------------------
    @classmethod
    def parse(cls, text: Optional[str]) -> "ScenarioSpec":
        """Parse a scenario from its id or the explicit ``=`` form.

        Accepts both ``clock_frac0.7+eco2`` (the id emitted by
        :attr:`scenario_id`) and ``clock_frac=0.7+eco=2`` (what a human
        types on ``repro serve --scenario``); ``None``/empty is the
        default scenario.
        """
        if not text:
            return cls()
        axes: List[Tuple[str, float]] = []
        eco = 0
        for token in text.split("+"):
            token = token.strip()
            if not token:
                continue
            if "=" in token:
                name, _, value = token.partition("=")
                name, value = name.strip(), value.strip()
            else:
                m = _ID_TOKEN.match(token)
                require(m is not None,
                        f"unparseable scenario token {token!r} "
                        f"(expected 'axis=value' or 'axis<value>')")
                name, value = m.group(1), m.group(2)
            if name == "eco":
                eco = int(float(value))
            else:
                axes.append((name, float(value)))
        return cls(axes=tuple(axes), eco_rounds=eco)

    # -- application to a concrete spec --------------------------------
    def resolve(self, spec: DesignSpec) -> "ScenarioSpec":
        """Canonicalize against *spec*: drop axes already at the spec's
        value (a one-point sweep at the default collapses to the default
        scenario — same id, same untagged cache path)."""
        kept = tuple((name, value) for name, value in self.axes
                     if _coerce(spec, name, value) != getattr(spec, name))
        if kept == self.axes:
            return self
        return ScenarioSpec(axes=kept, eco_rounds=self.eco_rounds)

    def apply(self, spec: DesignSpec) -> DesignSpec:
        """The variant spec this scenario runs the flow on."""
        if not self.axes:
            return spec
        return replace(spec, **{name: _coerce(spec, name, value)
                                for name, value in self.axes})


_NUMERIC_FIELDS = None


def _coerce(spec: DesignSpec, name: str, value: float):
    """Validate *name* as a numeric spec axis; match the field's type."""
    global _NUMERIC_FIELDS
    if _NUMERIC_FIELDS is None:
        _NUMERIC_FIELDS = {
            f.name for f in fields(DesignSpec)
            if isinstance(getattr(DESIGN_PRESETS["xgate"], f.name),
                          (int, float))
            and not isinstance(getattr(DESIGN_PRESETS["xgate"], f.name),
                               bool)}
    require(name in _NUMERIC_FIELDS,
            f"unknown scenario axis {name!r} "
            f"(numeric DesignSpec fields: {sorted(_NUMERIC_FIELDS)})")
    current = getattr(spec, name)
    if isinstance(current, int):
        require(float(value).is_integer(),
                f"axis {name!r} is integral; got {value!r}")
        return int(value)
    return float(value)


def parse_sweep(arg: str) -> Tuple[str, List[float]]:
    """Parse one ``--sweep`` argument: ``axis=v1,v2,...``."""
    name, sep, values = arg.partition("=")
    require(bool(name.strip()) and bool(sep) and bool(values.strip()),
            f"--sweep expects 'axis=v1,v2,...', got {arg!r}")
    points = [float(v) for v in values.split(",") if v.strip()]
    require(len(points) > 0, f"--sweep {arg!r} has no values")
    return name.strip(), points


def expand_scenarios(sweeps: Sequence[str] = (),
                     eco_rounds: int = 0) -> List[ScenarioSpec]:
    """Expand CLI axis arguments into the scenario list.

    ``sweeps`` are ``axis=v1,v2,...`` strings (multiple axes form their
    cartesian product); ``eco_rounds=N`` appends rounds ``1..N`` *per
    sweep point* — each round is its own scenario/sample.  No arguments
    yield the single default scenario.
    """
    require(eco_rounds >= 0, "eco_rounds must be >= 0")
    axes: Dict[str, List[float]] = {}
    for arg in sweeps or ():
        name, points = parse_sweep(arg)
        require(name not in axes, f"duplicate --sweep axis {name!r}")
        axes[name] = points
    names = sorted(axes)
    points = [ScenarioSpec(axes=tuple(zip(names, combo)))
              for combo in itertools.product(*(axes[n] for n in names))
              ] if names else [ScenarioSpec()]
    out: List[ScenarioSpec] = []
    for point in points:
        out.append(point)
        out.extend(ScenarioSpec(axes=point.axes, eco_rounds=r)
                   for r in range(1, eco_rounds + 1))
    return out


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def run_scenarios(design: Union[str, DesignSpec],
                  config: Optional[FlowConfig] = None,
                  scenarios: Optional[Sequence[ScenarioSpec]] = None,
                  store: Optional[StageStore] = None,
                  ) -> List[FlowResult]:
    """Run every scenario variant of one design through a shared store.

    Returns one :class:`FlowResult` per input scenario, in order, each
    stamped with its resolved ``scenario`` id.  All variants share one
    :class:`StageStore` (an in-memory one by default), so each runs only
    the stages its axes actually change; ECO rounds chain within their
    sweep point, and intermediate rounds that no scenario asked for are
    computed (they are the chain) but not returned.
    """
    config = config or FlowConfig()
    spec = _resolve_spec(design, config)
    scenarios = list(scenarios) if scenarios else [ScenarioSpec()]
    store = store if store is not None else StageStore()

    resolved = [s.resolve(spec) for s in scenarios]
    # Group by sweep point; ECO rounds chain off their point's base flow.
    by_axes: Dict[Tuple[Tuple[str, float], ...], List[int]] = {}
    for i, scen in enumerate(resolved):
        by_axes.setdefault(scen.axes, []).append(i)

    results: List[Optional[FlowResult]] = [None] * len(scenarios)
    for axes, indices in by_axes.items():
        variant_spec = ScenarioSpec(axes=axes).apply(spec)
        rounds: Dict[int, List[int]] = {}
        for i in indices:
            rounds.setdefault(resolved[i].eco_rounds, []).append(i)
        max_round = max(rounds)
        sf = StagedFlow(variant_spec, config, store=store)
        flow = sf.run()
        flow.scenario = ScenarioSpec(axes=axes).scenario_id
        for i in rounds.get(0, ()):
            results[i] = flow
        constrain = sf.last["constrain"]
        prev_opt, prev_signoff = sf.last["opt"], sf.last["signoff"]
        for r in range(1, max_round + 1):
            sf_r = StagedFlow(variant_spec, config, store=store)
            eco_flow = sf_r.run_eco(r, constrain, prev_opt, prev_signoff)
            eco_flow.scenario = ScenarioSpec(
                axes=axes, eco_rounds=r).scenario_id
            for i in rounds.get(r, ()):
                results[i] = eco_flow
            prev_opt = sf_r.last["opt"]
            prev_signoff = sf_r.last["signoff"]
    logger.info("ran %d scenario(s) of %s: %s", len(scenarios), spec.name,
                store.stats())
    return list(results)


def run_scenario_flow(design: Union[str, DesignSpec],
                      config: Optional[FlowConfig] = None,
                      scenario: Union[ScenarioSpec, str, None] = None,
                      store: Optional[StageStore] = None) -> FlowResult:
    """Run one design at one scenario (the serve entry point).

    The default scenario routes through the plain store-less
    :func:`run_flow` path — byte-identical behavior for every existing
    caller; a non-default scenario runs the staged engine (ECO rounds
    chain through an in-memory store).
    """
    config = config or FlowConfig()
    if isinstance(scenario, str) or scenario is None:
        scenario = ScenarioSpec.parse(scenario)
    spec = _resolve_spec(design, config)
    scenario = scenario.resolve(spec)
    if scenario.is_default and store is None:
        from repro.flow.flow import run_flow_on_spec
        return run_flow_on_spec(spec, config)
    return run_scenarios(spec, config, [scenario], store=store)[0]


def _resolve_spec(design: Union[str, DesignSpec],
                  config: FlowConfig) -> DesignSpec:
    """Mirror ``run_flow``'s name → (scaled) spec resolution."""
    if isinstance(design, DesignSpec):
        return design
    require(design in DESIGN_PRESETS, f"unknown design {design!r}")
    spec = DESIGN_PRESETS[design]
    if config.scale is not None:
        spec = spec.scaled(config.scale)
    return spec
