"""Per-stage artifact store for the staged flow engine.

One :class:`StageStore` holds the typed artifacts produced by the stages
of :mod:`repro.flow.stages`, keyed by their chained content fingerprints.
It has two layers:

* an **in-memory layer** (always on): scenario variants of one design
  built in the same process — a clock-constraint sweep, an ECO loop —
  share generate/place/constrain artifacts by reference with zero
  serialization cost;
* an optional **disk layer** (same guarantees as the dataset cache of
  :mod:`repro.utils.atomic`): writes are atomic (temp file +
  ``os.replace``), corrupt or truncated pickles are misses that warn and
  rebuild, and an artifact whose recorded key does not match its file
  name is discarded — a later run, or a crashed-and-restarted build,
  resumes from the deepest stage that survived.

The default single-scenario flow (`run_flow` with no store) never touches
this module, so the pre-refactor path stays free of new I/O.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.utils import (
    atomic_pickle_dump,
    get_logger,
    load_pickle_or_none,
    require,
)

logger = get_logger("flow.store")

__all__ = ["StageStore"]


class StageStore:
    """Memory + optional-disk store of staged-flow artifacts.

    Parameters
    ----------
    directory:
        Optional disk layer.  ``None`` (default) keeps artifacts
        in-memory only — the right choice for one sweep/ECO batch; a
        directory makes later processes resume from the deepest stage
        already on disk (e.g. parallel dataset workers sharing
        ``<cache>/stages``).
    """

    def __init__(self, directory: Optional[Union[str, Path]] = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._memory: Dict[str, Any] = {}
        self.hits = 0          # in-memory hits
        self.disk_hits = 0     # disk-layer hits (promoted to memory)
        self.misses = 0

    # ------------------------------------------------------------------
    def path(self, key: str) -> Optional[Path]:
        """Disk location for *key* (``None`` without a disk layer)."""
        if self.directory is None:
            return None
        return self.directory / f"stage_{key}.pkl"

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        p = self.path(key)
        return p is not None and p.exists()

    def get(self, key: str) -> Optional[Any]:
        """The artifact stored under *key*, or ``None`` (a miss).

        Disk reads validate that the unpickled artifact carries the key
        it was filed under; a mismatch (e.g. a file copied between
        stores, or a partial write that still unpickled) is treated as
        corruption: warn, unlink, miss.
        """
        art = self._memory.get(key)
        if art is not None:
            self.hits += 1
            return art
        p = self.path(key)
        if p is not None:
            art = load_pickle_or_none(p, logger)
            if art is not None:
                if getattr(art, "key", None) != key:
                    logger.warning(
                        "discarding stage artifact %s: recorded key %r "
                        "does not match", p, getattr(art, "key", None))
                    try:
                        p.unlink()
                    except OSError:
                        pass
                else:
                    self.disk_hits += 1
                    self._memory[key] = art
                    return art
        self.misses += 1
        return None

    def put(self, key: str, artifact: Any) -> None:
        """Publish *artifact* under *key* (memory, then atomically disk)."""
        require(getattr(artifact, "key", None) == key,
                f"artifact key {getattr(artifact, 'key', None)!r} does "
                f"not match store key {key!r}")
        self._memory[key] = artifact
        p = self.path(key)
        if p is not None:
            atomic_pickle_dump(artifact, p)

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "disk_hits": self.disk_hits,
                "misses": self.misses, "entries": len(self._memory)}
