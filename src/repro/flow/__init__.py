"""End-to-end reference flow and dataset builder."""

from repro.flow.flow import FlowConfig, FlowResult, run_flow, run_flow_on_spec

__all__ = ["FlowConfig", "FlowResult", "run_flow", "run_flow_on_spec"]
