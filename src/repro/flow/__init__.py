"""End-to-end reference flow, staged pipeline and scenario engine."""

from repro.flow.flow import FlowConfig, FlowResult, run_flow, run_flow_on_spec
from repro.flow.scenario import (
    ScenarioSpec,
    expand_scenarios,
    run_scenario_flow,
    run_scenarios,
)
from repro.flow.stages import StagedFlow, run_staged_flow, stage_fingerprint
from repro.flow.store import StageStore

__all__ = [
    "FlowConfig",
    "FlowResult",
    "ScenarioSpec",
    "StageStore",
    "StagedFlow",
    "expand_scenarios",
    "run_flow",
    "run_flow_on_spec",
    "run_scenario_flow",
    "run_scenarios",
    "run_staged_flow",
    "stage_fingerprint",
]
