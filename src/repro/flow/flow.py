"""The reference data-generation flow (Genus/Innovus stand-in).

``run_flow`` reproduces the paper's dataset-generation pipeline on one
design:

    generate netlist → floorplan → place → legalize
        → [timing optimization]  (the step the paper is about)
        → global route → sign-off STA

Run with ``with_opt=False`` to get the "flow without timing optimization"
column of Table I.  Per-stage wall-clock times are recorded for the runtime
comparison of Table III.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Tuple

from repro.netlist import DESIGN_PRESETS, DesignSpec, Netlist
from repro.opt import OptimizerConfig, OptReport
from repro.placement import Placement, PlacerConfig
from repro.placement.density import LayoutMaps
from repro.route import RouterConfig, RoutingResult
from repro.timing import CornerSet, STAResult
from repro.utils import StageTimer, require


@dataclass(frozen=True)
class FlowConfig:
    """End-to-end flow configuration."""

    base_seed: int = 0
    with_opt: bool = True
    scale: Optional[float] = None      # shrink preset designs (fast tests)
    placer: PlacerConfig = field(default_factory=PlacerConfig)
    optimizer: OptimizerConfig = field(default_factory=OptimizerConfig)
    router: RouterConfig = field(default_factory=RouterConfig)
    map_bins: int = 64                 # layout feature map resolution
    #: Sign-off corners, by spec string (a registered name, or a custom
    #: ``name:voltage_scale:temp_scale`` triple — see
    #: repro.timing.corners).  The first corner is primary; the default
    #: is the legacy single implicit corner.
    corners: Tuple[str, ...] = ("base",)
    #: Streaming chunk-size hint for featurization and inference (see
    #: :mod:`repro.timing.partition`).  ``None`` = monolithic execution.
    partition_pins: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.corners, tuple):
            object.__setattr__(self, "corners", tuple(self.corners))

    def corner_set(self) -> CornerSet:
        """The configured corners, resolved against the registry."""
        return CornerSet.parse(self.corners)

    def fingerprint(self) -> str:
        """Stable content hash over the *full* configuration.

        Every field — including all placer/optimizer/router sub-config
        knobs, ``with_opt``, ``scale``, seeds and ``map_bins`` — enters
        the hash, so anything keyed on it (notably the dataset cache,
        see :mod:`repro.ml.dataset`) is invalidated by any change that
        could alter the flow's outputs or labels.

        ``corners`` is deliberately *excluded*: corners change labels,
        not the flow's physical outputs, and per-corner labels are keyed
        per corner downstream (:func:`repro.ml.dataset.sample_cache_path`).
        Excluding it keeps every pre-MMMC cache key byte-identical and
        lets corner configs share the physical flow cache.

        ``partition_pins`` is excluded for the same reason: partitioning
        changes *how* featurization/inference execute, never their
        outputs (bit-identical by construction), so partitioned and
        monolithic runs share every cache entry.
        """
        payload = asdict(self)
        payload.pop("corners", None)
        payload.pop("partition_pins", None)
        text = json.dumps(payload, sort_keys=True, default=repr)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


@dataclass
class FlowResult:
    """Everything the flow produced for one design."""

    spec: DesignSpec
    clock_period: float
    # Pre-routing inputs (what the predictor is allowed to see):
    input_netlist: Netlist
    input_placement: Placement
    input_maps: LayoutMaps
    pre_route_sta: STAResult
    # Post-optimization implementation (None when with_opt=False):
    opt_netlist: Netlist
    opt_placement: Placement
    opt_report: Optional[OptReport]
    # Sign-off:
    routing: RoutingResult
    signoff_sta: STAResult
    timer: StageTimer
    #: Sign-off STA per configured corner name.  ``"base"`` aliases
    #: ``signoff_sta`` (same object); single-corner flows carry only
    #: that alias, so pre-MMMC behavior is unchanged.
    corner_signoff: Dict[str, STAResult] = field(default_factory=dict)
    #: Scenario id this flow variant belongs to (``""`` = the default
    #: single-scenario flow; see :mod:`repro.flow.scenario`).  A
    #: class-level default, so pre-scenario pickles resolve cleanly.
    scenario: str = ""

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def corner_names(self) -> Tuple[str, ...]:
        """Corners this flow was signed off at (primary first)."""
        if not self.corner_signoff:
            return ("base",)
        return tuple(self.corner_signoff)

    def signoff_at(self, corner: str = "base") -> STAResult:
        """Sign-off STA for one corner; ``"base"`` always resolves."""
        if corner == "base" and not self.corner_signoff:
            return self.signoff_sta
        require(corner in self.corner_signoff,
                f"flow was not signed off at corner {corner!r} "
                f"(have: {list(self.corner_signoff) or ['base']})")
        return self.corner_signoff[corner]

    @property
    def endpoint_pin_set(self) -> frozenset:
        """The input netlist's endpoint pin ids, computed once.

        Label extraction calls :meth:`endpoint_labels` once per corner
        per scenario; walking every pin of the netlist each time was
        pure rework, so the set is cached on first use (plain
        ``__dict__`` memo — survives nothing, costs nothing).
        """
        cached = self.__dict__.get("_endpoint_pin_set")
        if cached is None:
            cached = frozenset(self.input_netlist.endpoint_pins())
            self.__dict__["_endpoint_pin_set"] = cached
        return cached

    def endpoint_labels(self, corner: str = "base") -> dict:
        """Sign-off arrival time per endpoint pin of the *input* netlist.

        Endpoints (flip-flop D pins, primary outputs) are never replaced by
        the optimizer, so their pin ids are shared between the input and the
        optimized netlists — the anchor the paper's formulation relies on.

        ``corner`` selects which sign-off run the labels come from.
        """
        endpoints = self.endpoint_pin_set
        sta = self.signoff_at(corner)
        labels = {pid: arr for pid, arr in
                  sta.endpoint_arrival.items()
                  if pid in endpoints}
        require(len(labels) == len(endpoints),
                "optimizer must never replace a timing endpoint")
        return labels


def run_flow(design: str,
             config: Optional[FlowConfig] = None) -> FlowResult:
    """Run the full reference flow on a named preset design."""
    config = config or FlowConfig()
    require(design in DESIGN_PRESETS, f"unknown design {design!r}")
    spec = DESIGN_PRESETS[design]
    if config.scale is not None:
        spec = spec.scaled(config.scale)
    return run_flow_on_spec(spec, config)


def run_flow_on_spec(spec: DesignSpec,
                     config: Optional[FlowConfig] = None) -> FlowResult:
    """Run the full reference flow on an explicit :class:`DesignSpec`.

    The flow body lives in :mod:`repro.flow.stages` as a composable
    staged pipeline (generate → place → constrain → opt → route →
    signoff).  Run store-less — this entry point — the stages execute
    back-to-back and are bit-identical to the historic monolith (pinned
    by ``tests/flow/test_staged_differential.py``); scenario engines
    pass a :class:`~repro.flow.store.StageStore` to fork variants from
    the deepest shared stage instead.
    """
    from repro.flow.stages import run_staged_flow

    config = config or FlowConfig()
    return run_staged_flow(spec, config)
