"""The reference flow as a composable staged pipeline.

``run_flow`` used to be a monolith: any variant of a design — a
different clock constraint, a re-optimization pass — re-ran netlist
generation, placement, routing and sign-off STA from scratch.  This
module decomposes it into typed stages

    generate → place (floorplan/place/legalize) → constrain
        → opt → route → signoff        (+ optional ECO re-opt rounds)

with one artifact dataclass per stage and a **chained content
fingerprint** per artifact: each stage's key hashes its own
configuration plus its parent stage's key, so two flow variants share a
stage's artifact exactly when everything upstream of that stage is
identical.  Keys deliberately track *actual* data dependence, not the
textual stage order:

* ``clock_frac`` is excluded from the generate/place chain (the clock
  constraint does not shape the netlist or the placement), so a
  clock-constraint sweep forks at the constrain stage and reuses
  generation + placement (+ the unconstrained STA that derives the
  period) across every point;
* with ``with_opt=False`` the opt stage is a pure clone of the placed
  netlist, so its key chains from *place* rather than *constrain* — a
  no-opt sweep then shares routing too, and only re-runs the two STAs
  that actually depend on the clock.

Artifacts live in a :class:`~repro.flow.store.StageStore` (in-memory
always; optionally disk-backed with the same atomic/corrupt-tolerant
guarantees as the dataset cache).  A variant flow resumes from the
deepest stage whose key hits.

Run *without* a store (the default ``run_flow`` path) the stages execute
back-to-back with zero extra I/O and are bit-identical to the historic
monolithic flow — same RNG streams, same call order, same
``StageTimer`` stages — which the differential battery in
``tests/flow/test_staged_differential.py`` pins per preset.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.netlist import DesignSpec, Netlist, generate_netlist
from repro.obs import get_metrics
from repro.opt import OptReport, TimingOptimizer
from repro.placement import (
    Placement,
    build_die,
    compute_layout_maps,
    legalize,
    place,
)
from repro.placement.density import LayoutMaps
from repro.placement.die import Die
from repro.route import RoutingResult, route
from repro.timing import (
    PreRouteEstimator,
    STAResult,
    build_timing_graph,
    run_sta,
)
from repro.utils import StageTimer
from repro.flow.store import StageStore

__all__ = [
    "GenerateArtifact",
    "PlaceArtifact",
    "UnconstrainedArtifact",
    "ConstrainArtifact",
    "OptArtifact",
    "RouteArtifact",
    "SignoffArtifact",
    "EcoBaseArtifact",
    "EcoRound",
    "StagedFlow",
    "run_staged_flow",
    "stage_fingerprint",
]


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def stage_fingerprint(stage: str, parent: str, payload: Dict) -> str:
    """Chained content hash of one stage invocation.

    ``parent`` is the upstream stage's fingerprint (``""`` for the
    root), so a key transitively covers every configuration knob that
    could alter this stage's inputs; *payload* adds the stage's own
    knobs.  Uses the same 16-hex-digit sha256 convention as
    :meth:`repro.flow.FlowConfig.fingerprint`.
    """
    text = json.dumps(payload, sort_keys=True, default=repr)
    raw = f"{stage}|{parent}|{text}"
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]


def _spec_payload(spec: DesignSpec) -> Dict:
    """The physical-shape payload of a spec: everything but the clock.

    ``clock_frac`` only enters at the constrain stage, so sweep variants
    that differ in nothing else share every upstream artifact.
    """
    payload = asdict(spec)
    payload.pop("clock_frac", None)
    return payload


# ----------------------------------------------------------------------
# Stage artifacts (typed inputs/outputs, one dataclass per stage)
# ----------------------------------------------------------------------
@dataclass
class GenerateArtifact:
    """Netlist generation + floorplan: the physical starting point."""

    key: str
    netlist: Netlist
    die: Die
    duration_s: float = 0.0


@dataclass
class PlaceArtifact:
    """Global placement + legalization + layout feature maps."""

    key: str
    placement: Placement
    input_maps: LayoutMaps
    duration_s: float = 0.0


@dataclass
class UnconstrainedArtifact:
    """The unconstrained pre-route STA, reduced to what downstream
    stages actually consume: the critical delay the clock constraint is
    derived from.  Clock-fraction sweeps share this artifact, so the
    expensive unconstrained propagation runs once per placement, not
    once per sweep point."""

    key: str
    max_arrival: float
    duration_s: float = 0.0


@dataclass
class ConstrainArtifact:
    """Clock constraint derivation + constrained pre-route STA."""

    key: str
    clock_period: float
    pre_route_sta: STAResult
    duration_s: float = 0.0


@dataclass
class OptArtifact:
    """Timing optimization on clones of the placed netlist."""

    key: str
    opt_netlist: Netlist
    opt_placement: Placement
    opt_report: Optional[OptReport]
    duration_s: float = 0.0


@dataclass
class RouteArtifact:
    """Global routing of the optimized implementation."""

    key: str
    routing: RoutingResult
    duration_s: float = 0.0


@dataclass
class SignoffArtifact:
    """Sign-off STA at one corner of one routed implementation."""

    key: str
    corner: str
    sta: STAResult
    duration_s: float = 0.0


@dataclass
class EcoBaseArtifact:
    """The pre-ECO inputs of one re-optimization round: the routed
    netlist's layout maps.  The round's *timing* starting point is the
    previous sign-off STA itself (shared by reference), per the ECO
    framing: re-enter opt on the routed netlist with sign-off timing."""

    key: str
    input_maps: LayoutMaps
    duration_s: float = 0.0


@dataclass
class EcoRound:
    """All artifacts of one ECO re-optimization round."""

    round_no: int
    base: EcoBaseArtifact
    opt: OptArtifact
    route: RouteArtifact
    signoff: Dict[str, SignoffArtifact] = field(default_factory=dict)


# ----------------------------------------------------------------------
# The staged pipeline driver
# ----------------------------------------------------------------------
class StagedFlow:
    """Executes the staged pipeline for one (spec, config) variant.

    With ``store=None`` every stage computes inline (the default
    ``run_flow`` path — no artifact I/O at all).  With a store, each
    stage first looks its chained key up and reuses a hit; reuse is
    counted in the ``flow.stage_reuse.<stage>`` metrics and the stored
    stage's original duration is folded into this flow's
    :class:`~repro.utils.StageTimer` so downstream Table III numbers
    keep reflecting what the stage cost to produce.
    """

    def __init__(self, spec: DesignSpec, config,
                 store: Optional[StageStore] = None,
                 timer: Optional[StageTimer] = None) -> None:
        self.spec = spec
        self.config = config
        self.store = store
        self.timer = timer if timer is not None else StageTimer(
            design=spec.name)
        #: Stage artifacts of the most recent :meth:`run`/:meth:`run_eco`.
        self.last: Dict[str, object] = {}

    # -- plumbing ------------------------------------------------------
    def _through(self, stage: str, key: str, build):
        """Store-aware execution of one stage: reuse or build+publish."""
        if self.store is not None:
            art = self.store.get(key)
            if art is not None:
                get_metrics().counter(f"flow.stage_reuse.{stage}").inc()
                return art, True
        art = build(key)
        if self.store is not None:
            self.store.put(key, art)
        return art, False

    def _timed(self, name: str, reused: bool, duration_s: float) -> None:
        """Fold a reused stage's stored cost into the flow timer.

        Computed stages time themselves through ``timer.stage`` (which
        also emits the ``flow.<name>`` span); reused ones contribute
        their recorded production cost without a span.
        """
        if reused:
            self.timer.stages[name] = (self.timer.stages.get(name, 0.0)
                                       + duration_s)

    # -- stages --------------------------------------------------------
    def generate(self) -> GenerateArtifact:
        key = stage_fingerprint(
            "generate", "",
            dict(_spec_payload(self.spec), base_seed=self.config.base_seed))

        def build(key: str) -> GenerateArtifact:
            t0 = time.perf_counter()
            netlist = generate_netlist(self.spec, self.config.base_seed)
            die = build_die(netlist, self.spec, self.config.base_seed)
            return GenerateArtifact(key=key, netlist=netlist, die=die,
                                    duration_s=time.perf_counter() - t0)

        art, _ = self._through("generate", key, build)
        return art

    def place(self, gen: GenerateArtifact) -> PlaceArtifact:
        key = stage_fingerprint(
            "place", gen.key,
            dict(placer=asdict(self.config.placer),
                 map_bins=self.config.map_bins))

        def build(key: str) -> PlaceArtifact:
            before = self.timer.stages.get("place", 0.0)
            with self.timer.stage("place"):
                placement = place(gen.netlist, gen.die, self.config.placer)
                legalize(gen.netlist, placement)
            duration = self.timer.stages["place"] - before
            input_maps = compute_layout_maps(
                gen.netlist, placement,
                m=self.config.map_bins, n=self.config.map_bins)
            return PlaceArtifact(key=key, placement=placement,
                                 input_maps=input_maps, duration_s=duration)

        art, reused = self._through("place", key, build)
        self._timed("place", reused, art.duration_s)
        return art

    def unconstrained(self, gen: GenerateArtifact, placed: PlaceArtifact,
                      graph=None) -> UnconstrainedArtifact:
        key = stage_fingerprint("constrain.unconstrained", placed.key, {})

        def build(key: str) -> UnconstrainedArtifact:
            t0 = time.perf_counter()
            g = graph if graph is not None else build_timing_graph(
                gen.netlist)
            sta = run_sta(g,
                          PreRouteEstimator(gen.netlist, placed.placement),
                          clock_period=1.0)
            return UnconstrainedArtifact(
                key=key, max_arrival=float(sta.max_arrival),
                duration_s=time.perf_counter() - t0)

        art, _ = self._through("constrain.unconstrained", key, build)
        return art

    def constrain(self, gen: GenerateArtifact,
                  placed: PlaceArtifact) -> ConstrainArtifact:
        """Derive the clock constraint; run the constrained pre-route STA.

        The clock period is a fixed fraction of the *unconstrained*
        pre-route critical delay (so every design starts with real
        violations); that delay comes from the clock-independent
        :meth:`unconstrained` sub-artifact, so a clock sweep derives
        every point's period from one cached propagation instead of
        re-running it per variant.
        """
        key = stage_fingerprint(
            "constrain", placed.key,
            dict(clock_frac=self.spec.clock_frac))

        def build(key: str) -> ConstrainArtifact:
            t0 = time.perf_counter()
            graph = build_timing_graph(gen.netlist)
            unconstrained = self.unconstrained(gen, placed, graph=graph)
            clock_period = self.spec.clock_frac * unconstrained.max_arrival
            pre_route_sta = run_sta(
                graph, PreRouteEstimator(gen.netlist, placed.placement),
                clock_period)
            return ConstrainArtifact(
                key=key, clock_period=clock_period,
                pre_route_sta=pre_route_sta,
                duration_s=time.perf_counter() - t0)

        art, _ = self._through("constrain", key, build)
        return art

    def opt(self, gen: GenerateArtifact, placed: PlaceArtifact,
            constrain: ConstrainArtifact) -> OptArtifact:
        # A no-opt "optimization" is a pure clone of the placed netlist:
        # it does not depend on the clock, so its key chains from the
        # place stage and a no-opt clock sweep shares it (and routing).
        if self.config.with_opt:
            key = stage_fingerprint(
                "opt", constrain.key,
                dict(optimizer=asdict(self.config.optimizer)))
        else:
            key = stage_fingerprint("opt", placed.key,
                                    dict(with_opt=False))

        def build(key: str) -> OptArtifact:
            opt_netlist = gen.netlist.clone()
            opt_placement = Placement(
                die=gen.die, cell_xy=dict(placed.placement.cell_xy))
            opt_report: Optional[OptReport] = None
            duration = 0.0
            if self.config.with_opt:
                before = self.timer.stages.get("opt", 0.0)
                with self.timer.stage("opt"):
                    optimizer = TimingOptimizer(opt_netlist, opt_placement,
                                                self.config.optimizer)
                    opt_report = optimizer.run(constrain.clock_period)
                duration = self.timer.stages["opt"] - before
            return OptArtifact(key=key, opt_netlist=opt_netlist,
                               opt_placement=opt_placement,
                               opt_report=opt_report, duration_s=duration)

        art, reused = self._through("opt", key, build)
        if self.config.with_opt:
            self._timed("opt", reused, art.duration_s)
        return art

    def route(self, opt: OptArtifact) -> RouteArtifact:
        key = stage_fingerprint("route", opt.key,
                                dict(router=asdict(self.config.router)))

        def build(key: str) -> RouteArtifact:
            before = self.timer.stages.get("route", 0.0)
            with self.timer.stage("route"):
                routing = route(opt.opt_netlist, opt.opt_placement,
                                self.config.router)
            duration = self.timer.stages["route"] - before
            return RouteArtifact(key=key, routing=routing,
                                 duration_s=duration)

        art, reused = self._through("route", key, build)
        self._timed("route", reused, art.duration_s)
        return art

    def signoff(self, opt: OptArtifact, routed: RouteArtifact,
                constrain: ConstrainArtifact) -> Dict[str, SignoffArtifact]:
        """Sign-off STA per configured corner, keyed per corner.

        The routed graph is built once and shared by every corner run
        (as the monolith did); each corner's artifact has its own
        chained key, so adding a corner to the config later reuses the
        corners already signed off.
        """
        corners = self.config.corner_set()
        keys = {
            c.name: stage_fingerprint(
                "signoff", routed.key,
                dict(constrain=constrain.key, corner=asdict(c)))
            for c in corners}
        out: Dict[str, SignoffArtifact] = {}
        graph = None
        for corner in corners:
            key = keys[corner.name]

            def build(key: str, corner=corner) -> SignoffArtifact:
                nonlocal graph
                before = self.timer.stages.get("sta", 0.0)
                with self.timer.stage("sta"):
                    if graph is None:
                        graph = build_timing_graph(opt.opt_netlist)
                    sta = run_sta(
                        graph, routed.routing.lengths,
                        constrain.clock_period,
                        corner=None if corner.name == "base" else corner)
                duration = self.timer.stages["sta"] - before
                return SignoffArtifact(key=key, corner=corner.name,
                                       sta=sta, duration_s=duration)

            art, reused = self._through("signoff", key, build)
            self._timed("sta", reused, art.duration_s)
            out[corner.name] = art
        return out

    # -- ECO re-optimization rounds ------------------------------------
    def eco_round(self, round_no: int, prev_opt: OptArtifact,
                  prev_signoff: Dict[str, SignoffArtifact],
                  constrain: ConstrainArtifact) -> EcoRound:
        """One ECO round: re-enter opt on the routed netlist.

        The round's inputs are the previous round's optimized/routed
        implementation; its timing starting point is the previous
        sign-off STA (endpoint pin ids survive — the optimizer never
        replaces timing endpoints, the anchor the paper's formulation
        and the scenario axis both rely on).
        """
        anchor = self._primary_signoff(prev_signoff).key
        base_key = stage_fingerprint(
            "eco.base", anchor,
            dict(round=round_no, map_bins=self.config.map_bins))

        def build_base(key: str) -> EcoBaseArtifact:
            t0 = time.perf_counter()
            maps = compute_layout_maps(
                prev_opt.opt_netlist, prev_opt.opt_placement,
                m=self.config.map_bins, n=self.config.map_bins)
            return EcoBaseArtifact(key=key, input_maps=maps,
                                   duration_s=time.perf_counter() - t0)

        base, _ = self._through("eco.base", base_key, build_base)

        opt_key = stage_fingerprint(
            "opt", anchor,
            dict(optimizer=asdict(self.config.optimizer),
                 eco_round=round_no))

        def build_opt(key: str) -> OptArtifact:
            opt_netlist = prev_opt.opt_netlist.clone()
            opt_placement = Placement(
                die=prev_opt.opt_placement.die,
                cell_xy=dict(prev_opt.opt_placement.cell_xy))
            before = self.timer.stages.get("opt", 0.0)
            with self.timer.stage("opt"):
                optimizer = TimingOptimizer(opt_netlist, opt_placement,
                                            self.config.optimizer)
                report = optimizer.run(constrain.clock_period)
            duration = self.timer.stages["opt"] - before
            return OptArtifact(key=key, opt_netlist=opt_netlist,
                               opt_placement=opt_placement,
                               opt_report=report, duration_s=duration)

        opt_art, reused = self._through("opt", opt_key, build_opt)
        self._timed("opt", reused, opt_art.duration_s)

        route_art = self.route(opt_art)
        signoff = self.signoff(opt_art, route_art, constrain)
        return EcoRound(round_no=round_no, base=base, opt=opt_art,
                        route=route_art, signoff=signoff)

    # -- end-to-end runs -----------------------------------------------
    def run(self):
        """Execute every stage in order; assemble a ``FlowResult``.

        With ``store=None`` this is the historic monolithic flow,
        bit-for-bit: same functions, same arguments, same relative
        order, same timer stages.  The stage artifacts of the run stay
        on :attr:`last` so callers (the scenario engine's ECO loop) can
        chain follow-on stages without re-deriving them.
        """
        from repro.flow.flow import FlowResult

        gen = self.generate()
        placed = self.place(gen)
        constrain = self.constrain(gen, placed)
        opt = self.opt(gen, placed, constrain)
        routed = self.route(opt)
        signoff = self.signoff(opt, routed, constrain)
        nominal = self._nominal_sta(opt, routed, constrain, signoff)
        self.last = {"generate": gen, "place": placed,
                     "constrain": constrain, "opt": opt, "route": routed,
                     "signoff": signoff}
        return FlowResult(
            spec=self.spec,
            clock_period=constrain.clock_period,
            input_netlist=gen.netlist,
            input_placement=placed.placement,
            input_maps=placed.input_maps,
            pre_route_sta=constrain.pre_route_sta,
            opt_netlist=opt.opt_netlist,
            opt_placement=opt.opt_placement,
            opt_report=opt.opt_report,
            routing=routed.routing,
            signoff_sta=nominal,
            timer=self.timer,
            corner_signoff={name: art.sta
                            for name, art in signoff.items()},
        )

    def run_eco(self, round_no: int, constrain: ConstrainArtifact,
                prev_opt: OptArtifact,
                prev_signoff: Dict[str, SignoffArtifact]):
        """Execute ECO round *round_no*; assemble its ``FlowResult``.

        The result's pre-routing inputs are the previous round's
        *optimized, routed* implementation, and its ``pre_route_sta`` is
        the previous sign-off STA — the ECO framing: the variant starts
        where the last implementation signed off.  Artifacts stay on
        :attr:`last` for the next round to chain from.
        """
        from repro.flow.flow import FlowResult

        rnd = self.eco_round(round_no, prev_opt, prev_signoff, constrain)
        nominal = self._primary_signoff(rnd.signoff).sta
        self.last = {"constrain": constrain, "opt": rnd.opt,
                     "route": rnd.route, "signoff": rnd.signoff,
                     "eco_base": rnd.base}
        return FlowResult(
            spec=self.spec,
            clock_period=constrain.clock_period,
            input_netlist=prev_opt.opt_netlist,
            input_placement=prev_opt.opt_placement,
            input_maps=rnd.base.input_maps,
            pre_route_sta=self._primary_signoff(prev_signoff).sta,
            opt_netlist=rnd.opt.opt_netlist,
            opt_placement=rnd.opt.opt_placement,
            opt_report=rnd.opt.opt_report,
            routing=rnd.route.routing,
            signoff_sta=nominal,
            timer=self.timer,
            corner_signoff={name: art.sta
                            for name, art in rnd.signoff.items()},
        )

    def _nominal_sta(self, opt: OptArtifact, routed: RouteArtifact,
                     constrain: ConstrainArtifact,
                     signoff: Dict[str, SignoffArtifact]) -> STAResult:
        """The nominal (corner-free) sign-off STA.

        When ``"base"`` is configured (the default and every supported
        preset) it *is* the base corner's run — same object, preserving
        the historic ``corner_signoff["base"] is signoff_sta`` alias.
        For the exotic base-less corner set the monolith still computed
        a nominal run; key it as its own pseudo-corner artifact.
        """
        if "base" in signoff:
            return signoff["base"].sta
        key = stage_fingerprint(
            "signoff", routed.key,
            dict(constrain=constrain.key, corner="__nominal__"))

        def build(key: str) -> SignoffArtifact:
            before = self.timer.stages.get("sta", 0.0)
            with self.timer.stage("sta"):
                graph = build_timing_graph(opt.opt_netlist)
                sta = run_sta(graph, routed.routing.lengths,
                              constrain.clock_period)
            duration = self.timer.stages["sta"] - before
            return SignoffArtifact(key=key, corner="__nominal__",
                                   sta=sta, duration_s=duration)

        art, reused = self._through("signoff", key, build)
        self._timed("sta", reused, art.duration_s)
        return art.sta

    # -- helpers -------------------------------------------------------
    def _primary_signoff(
            self, signoff: Dict[str, SignoffArtifact]) -> SignoffArtifact:
        """The nominal (base/primary-corner) sign-off artifact."""
        if "base" in signoff:
            return signoff["base"]
        return next(iter(signoff.values()))

    def stage_keys(self) -> Dict[str, str]:
        """The chained fingerprints of every (non-ECO) stage, without
        executing anything — the introspection hook tests and tools use
        to reason about sharing."""
        gen = stage_fingerprint(
            "generate", "",
            dict(_spec_payload(self.spec), base_seed=self.config.base_seed))
        placed = stage_fingerprint(
            "place", gen, dict(placer=asdict(self.config.placer),
                               map_bins=self.config.map_bins))
        unconstrained = stage_fingerprint(
            "constrain.unconstrained", placed, {})
        constrain = stage_fingerprint(
            "constrain", placed, dict(clock_frac=self.spec.clock_frac))
        if self.config.with_opt:
            opt = stage_fingerprint(
                "opt", constrain,
                dict(optimizer=asdict(self.config.optimizer)))
        else:
            opt = stage_fingerprint("opt", placed, dict(with_opt=False))
        routed = stage_fingerprint(
            "route", opt, dict(router=asdict(self.config.router)))
        signoff = {
            c.name: stage_fingerprint(
                "signoff", routed, dict(constrain=constrain, corner=asdict(c)))
            for c in self.config.corner_set()}
        return {"generate": gen, "place": placed,
                "constrain.unconstrained": unconstrained,
                "constrain": constrain, "opt": opt, "route": routed,
                **{f"signoff@{k}": v for k, v in signoff.items()}}


def run_staged_flow(spec: DesignSpec, config,
                    store: Optional[StageStore] = None,
                    timer: Optional[StageTimer] = None):
    """Run the staged pipeline end to end on one spec.

    The ``store=None`` default is the drop-in replacement for the
    historic monolithic ``run_flow_on_spec`` body (bit-identical, zero
    artifact I/O); pass a :class:`~repro.flow.store.StageStore` to share
    stages across flow variants.
    """
    return StagedFlow(spec, config, store=store, timer=timer).run()
