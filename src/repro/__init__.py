"""Restructure-tolerant timing prediction (DAC'23 reproduction).

Public façade.  Everything a downstream user needs lives here; the
submodule layout is an implementation detail that may move between
releases.  Imports are lazy (PEP 562), so ``import repro`` is cheap and
pulling one symbol does not drag in the whole model stack:

>>> import repro
>>> flow = repro.run_flow("xgate", repro.FlowConfig(scale=0.25))
>>> predictor = repro.TimingPredictor.load("data/predictor.pkl")
>>> session = repro.DesignSession(flow, predictor)
"""

from typing import TYPE_CHECKING

#: symbol -> defining submodule, the single source of truth for the façade.
_EXPORTS = {
    # Model + training
    "TimingPredictor": "repro.core",
    "ModelConfig": "repro.core",
    "TrainerConfig": "repro.core",
    "ARTIFACT_SCHEMA_VERSION": "repro.core",
    # Reference flow (staged pipeline + scenarios)
    "run_flow": "repro.flow",
    "FlowConfig": "repro.flow",
    "FlowResult": "repro.flow",
    "StagedFlow": "repro.flow",
    "StageStore": "repro.flow",
    "ScenarioSpec": "repro.flow",
    "expand_scenarios": "repro.flow",
    "run_scenarios": "repro.flow",
    "run_scenario_flow": "repro.flow",
    "run_staged_flow": "repro.flow",
    # Designs + data
    "DESIGN_PRESETS": "repro.netlist",
    "build_dataset": "repro.ml",
    "build_sample": "repro.ml",
    "DesignSample": "repro.ml",
    "PackedBatch": "repro.ml",
    "EndpointBatchSampler": "repro.ml",
    # Timing
    "run_sta": "repro.timing",
    "IncrementalSTA": "repro.timing",
    "Corner": "repro.timing",
    "CornerSet": "repro.timing",
    # Serving
    "DesignSession": "repro.serve",
    "SessionFactory": "repro.serve",
    "Edit": "repro.serve",
    "MicroBatcher": "repro.serve",
    "PredictorRegistry": "repro.serve",
    "TimingServer": "repro.serve",
    "ServerConfig": "repro.serve",
    # Observability
    "configure_tracing": "repro.obs",
    "get_metrics": "repro.obs",
    "get_tracer": "repro.obs",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro' has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))


if TYPE_CHECKING:  # let static analyzers resolve the façade eagerly
    from repro.core import (  # noqa: F401
        ARTIFACT_SCHEMA_VERSION,
        ModelConfig,
        TimingPredictor,
        TrainerConfig,
    )
    from repro.flow import (  # noqa: F401
        FlowConfig,
        FlowResult,
        ScenarioSpec,
        StagedFlow,
        StageStore,
        expand_scenarios,
        run_flow,
        run_scenario_flow,
        run_scenarios,
        run_staged_flow,
    )
    from repro.ml import (  # noqa: F401
        DesignSample,
        EndpointBatchSampler,
        PackedBatch,
        build_dataset,
        build_sample,
    )
    from repro.netlist import DESIGN_PRESETS  # noqa: F401
    from repro.obs import (  # noqa: F401
        configure_tracing,
        get_metrics,
        get_tracer,
    )
    from repro.serve import (  # noqa: F401
        DesignSession,
        Edit,
        MicroBatcher,
        PredictorRegistry,
        ServerConfig,
        SessionFactory,
        TimingServer,
    )
    from repro.timing import (  # noqa: F401
        Corner,
        CornerSet,
        IncrementalSTA,
        run_sta,
    )
