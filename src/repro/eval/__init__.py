"""Evaluation utilities: metrics, tables, and experiment runners."""

from repro.eval.metrics import mape, r2_score
from repro.eval.tables import format_table

__all__ = ["mape", "r2_score", "format_table"]
