"""Plain-text table formatting for the benchmark reports."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: List[Sequence],
                 title: str = "") -> str:
    """Render an aligned monospace table (floats to 4 decimals)."""
    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.4f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
