"""Reusable experiment runners behind the benchmark harness.

One function per paper table; the ``benchmarks/`` directory wraps these in
pytest-benchmark entries and prints the regenerated tables.  Examples reuse
them too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines import (
    GuoBaseline,
    GuoConfig,
    TwoStageBaseline,
    TwoStageConfig,
)
from repro.core import ModelConfig, TimingPredictor, TrainerConfig
from repro.eval.metrics import r2_score
from repro.eval.tables import format_table
from repro.flow import FlowConfig, run_flow
from repro.ml.sample import DesignSample
from repro.netlist import compute_stats
from repro.utils import get_logger

logger = get_logger("eval.experiments")


# ----------------------------------------------------------------------
# Table I — dataset statistics and the impact of timing optimization
# ----------------------------------------------------------------------
@dataclass
class Table1Row:
    design: str
    split: str
    n_pins: int
    n_endpoints: int
    n_net_edges: int
    n_cell_edges: int
    d_wns: float          # |Δwns| ratio between flows with/without opt
    d_tns: float
    net_replaced: float
    net_d_delay: float    # mean |Δdelay| ratio on unreplaced net edges
    cell_replaced: float
    cell_d_delay: float


def run_table1(designs: List[str],
               flow_config: Optional[FlowConfig] = None) -> List[Table1Row]:
    """Regenerate Table I: run each design with and without optimization."""
    base = flow_config or FlowConfig()
    rows: List[Table1Row] = []
    for name in designs:
        cfg_opt = _with(base, with_opt=True)
        cfg_no = _with(base, with_opt=False)
        f_opt = run_flow(name, cfg_opt)
        f_no = run_flow(name, cfg_no)
        stats = compute_stats(f_opt.input_netlist)
        report = f_opt.opt_report

        wns_o, wns_n = f_opt.signoff_sta.wns, f_no.signoff_sta.wns
        tns_o, tns_n = f_opt.signoff_sta.tns, f_no.signoff_sta.tns
        d_wns = abs(wns_o - wns_n) / max(abs(wns_n), 1e-9)
        d_tns = abs(tns_o - tns_n) / max(abs(tns_n), 1e-9)

        net_dd = _delay_change(f_no.signoff_sta.net_edge_delay,
                               f_opt.signoff_sta.net_edge_delay,
                               report.replaced_net_edges)
        cell_dd = _delay_change(f_no.signoff_sta.cell_edge_delay,
                                f_opt.signoff_sta.cell_edge_delay,
                                report.replaced_cell_edges)
        rows.append(Table1Row(
            design=name,
            split=f_opt.spec.split,
            n_pins=stats.n_pins,
            n_endpoints=stats.n_endpoints,
            n_net_edges=stats.n_net_edges,
            n_cell_edges=stats.n_cell_edges,
            d_wns=d_wns,
            d_tns=d_tns,
            net_replaced=report.net_replaced_ratio,
            net_d_delay=net_dd,
            cell_replaced=report.cell_replaced_ratio,
            cell_d_delay=cell_dd,
        ))
        logger.info("table1 %s done", name)
    return rows


def _delay_change(no_opt: Dict, with_opt: Dict, replaced) -> float:
    """Mean |Δdelay| / delay on unreplaced edges between the two flows."""
    ratios = []
    for edge, d_no in no_opt.items():
        if edge in replaced or edge not in with_opt:
            continue
        if d_no > 1e-6:
            ratios.append(abs(with_opt[edge] - d_no) / d_no)
    return float(np.mean(ratios)) if ratios else 0.0


def format_table1(rows: List[Table1Row]) -> str:
    headers = ["design", "split", "#pin", "#edp", "#e_n", "#e_c",
               "Δwns", "Δtns", "net repl", "net Δdelay",
               "cell repl", "cell Δdelay"]
    data = [[r.design, r.split, r.n_pins, r.n_endpoints, r.n_net_edges,
             r.n_cell_edges, f"{r.d_wns:.1%}", f"{r.d_tns:.1%}",
             f"{r.net_replaced:.1%}", f"{r.net_d_delay:.1%}",
             f"{r.cell_replaced:.1%}", f"{r.cell_d_delay:.1%}"]
            for r in rows]
    return format_table(headers, data, title="Table I (reproduced)")


# ----------------------------------------------------------------------
# Table II — accuracy comparison
# ----------------------------------------------------------------------
@dataclass
class Table2Result:
    """All Table II numbers, per test design."""

    local_r2: Dict[str, Dict[str, object]] = field(default_factory=dict)
    endpoint_r2: Dict[str, Dict[str, float]] = field(default_factory=dict)
    models: Dict[str, object] = field(default_factory=dict)

    def averages(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        designs = list(self.endpoint_r2)
        for column in next(iter(self.endpoint_r2.values())):
            out[column] = float(np.mean(
                [self.endpoint_r2[d][column] for d in designs]))
        return out


def run_table2(train: List[DesignSample], test: List[DesignSample],
               epochs: int = 60,
               baseline_epochs: Optional[int] = None,
               seed: int = 0) -> Table2Result:
    """Regenerate Table II: train all baselines and all our variants."""
    baseline_epochs = baseline_epochs or epochs
    result = Table2Result()

    logger.info("training DAC19 baseline")
    dac19 = TwoStageBaseline(TwoStageConfig(lookahead=False,
                                            epochs=baseline_epochs * 3,
                                            seed=seed))
    dac19.fit(train)
    logger.info("training DAC22-he baseline")
    dac22he = TwoStageBaseline(TwoStageConfig(lookahead=True,
                                              epochs=baseline_epochs * 3,
                                              seed=seed))
    dac22he.fit(train)
    logger.info("training DAC22-guo baseline")
    guo = GuoBaseline(GuoConfig(epochs=baseline_epochs, seed=seed))
    guo.fit(train)

    ours: Dict[str, TimingPredictor] = {}
    map_bins = train[0].mask_side() * 4  # model must match the samples
    for variant in ("cnn", "gnn", "full"):
        logger.info("training our %s model", variant)
        predictor = TimingPredictor(
            model_config=ModelConfig(variant=variant, seed=seed,
                                     map_bins=map_bins),
            trainer_config=TrainerConfig(epochs=epochs, seed=seed))
        predictor.fit(train)
        ours[variant] = predictor

    for s in test:
        result.local_r2[s.name] = {
            "DAC19": dac19.local_r2(s),
            "DAC22-he": dac22he.local_r2(s),
            "DAC22-guo": guo.local_r2(s),   # (net, cell) tuple
        }
        result.endpoint_r2[s.name] = {
            "DAC19": dac19.endpoint_r2(s),
            "DAC22-he": dac22he.endpoint_r2(s),
            "DAC22-guo": guo.endpoint_r2(s),
            "our CNN-only": r2_score(s.y, ours["cnn"].predict_array(s)),
            "our GNN-only": r2_score(s.y, ours["gnn"].predict_array(s)),
            "our full": r2_score(s.y, ours["full"].predict_array(s)),
        }
    result.models = {"DAC19": dac19, "DAC22-he": dac22he, "DAC22-guo": guo,
                     **{f"our-{k}": v for k, v in ours.items()}}
    return result


def format_table2(result: Table2Result) -> str:
    headers = ["design", "DAC19", "DAC22-he", "DAC22-guo(n/c)",
               "| DAC19", "DAC22-he", "DAC22-guo", "CNN-only", "GNN-only",
               "full"]
    data = []
    for design, locals_ in result.local_r2.items():
        ep = result.endpoint_r2[design]
        guo_local = locals_["DAC22-guo"]
        data.append([
            design,
            f"{locals_['DAC19']:.4f}",
            f"{locals_['DAC22-he']:.4f}",
            f"{guo_local[0]:.2f}/{guo_local[1]:.2f}",
            f"| {ep['DAC19']:.4f}",
            f"{ep['DAC22-he']:.4f}",
            f"{ep['DAC22-guo']:.4f}",
            f"{ep['our CNN-only']:.4f}",
            f"{ep['our GNN-only']:.4f}",
            f"{ep['our full']:.4f}",
        ])
    avg = result.averages()
    data.append(["avg", "", "", "",
                 f"| {avg['DAC19']:.4f}", f"{avg['DAC22-he']:.4f}",
                 f"{avg['DAC22-guo']:.4f}", f"{avg['our CNN-only']:.4f}",
                 f"{avg['our GNN-only']:.4f}", f"{avg['our full']:.4f}"])
    return format_table(
        headers, data,
        title="Table II (reproduced): local R² | endpoint arrival R²")


# ----------------------------------------------------------------------
# Table III — runtime comparison
# ----------------------------------------------------------------------
@dataclass
class Table3Row:
    design: str
    opt_s: float
    route_s: float
    sta_s: float
    flow_total_s: float
    pre_s: float
    infer_s: float
    model_total_s: float

    @property
    def speedup(self) -> float:
        return self.flow_total_s / max(self.model_total_s, 1e-9)


def run_table3(samples: List[DesignSample],
               predictor: TimingPredictor) -> List[Table3Row]:
    """Regenerate Table III from recorded flow times + fresh inference."""
    rows = []
    for s in samples:
        predictor.predict_array(s)   # records infer time
        infer = predictor.infer_times[s.name]
        opt_s = s.flow_times.get("opt", 0.0)
        route_s = s.flow_times.get("route", 0.0)
        sta_s = s.flow_times.get("sta", 0.0)
        rows.append(Table3Row(
            design=s.name,
            opt_s=opt_s,
            route_s=route_s,
            sta_s=sta_s,
            flow_total_s=opt_s + route_s + sta_s,
            pre_s=s.preprocess_time,
            infer_s=infer,
            model_total_s=s.preprocess_time + infer,
        ))
    return rows


def format_table3(rows: List[Table3Row]) -> str:
    headers = ["design", "opt", "route", "sta", "total",
               "pre", "infer", "total", "speedup"]
    data = []
    for r in rows:
        data.append([r.design, f"{r.opt_s:.2f}", f"{r.route_s:.2f}",
                     f"{r.sta_s:.2f}", f"{r.flow_total_s:.2f}",
                     f"{r.pre_s:.3f}", f"{r.infer_s:.3f}",
                     f"{r.model_total_s:.3f}", f"{r.speedup:.0f}x"])
    avg_flow = float(np.mean([r.flow_total_s for r in rows]))
    avg_model = float(np.mean([r.model_total_s for r in rows]))
    data.append(["avg", "", "", "", f"{avg_flow:.2f}", "", "",
                 f"{avg_model:.3f}", f"{avg_flow / avg_model:.0f}x"])
    return format_table(headers, data,
                        title="Table III (reproduced): runtime (s)")


def _with(config: FlowConfig, **overrides) -> FlowConfig:
    from dataclasses import replace
    return replace(config, **overrides)
