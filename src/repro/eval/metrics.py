"""Evaluation metrics (the paper evaluates with the R² score)."""

from __future__ import annotations

import numpy as np

from repro.utils import require


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination.

    1.0 is perfect; 0.0 matches the mean predictor; negative is worse than
    the mean predictor (the paper's baselines go negative on local delays).
    """
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    require(y_true.shape == y_pred.shape, "shape mismatch")
    require(y_true.size >= 2, "R² needs at least two samples")
    ss_res = float(((y_true - y_pred) ** 2).sum())
    ss_tot = float(((y_true - y_true.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def mape(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute percentage error (ignores near-zero targets)."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    keep = np.abs(y_true) > 1e-9
    require(keep.any(), "all targets are ~0")
    return float(np.mean(np.abs((y_pred[keep] - y_true[keep]) / y_true[keep])))
