"""Lightweight logging configuration shared across the package.

Invariants (locked down in ``tests/utils/test_log.py``):

* Repeated configuration — any number of ``get_logger`` /
  ``configure_logging`` calls, including under test runners that attach
  their own handlers to the ``repro`` logger — never duplicates the
  package's handler.  Our handler is tagged (``_repro_managed``) and
  de-duplicated on every call.
* The level defaults to ``WARNING`` and is overridable with the
  ``REPRO_LOG_LEVEL`` environment variable (or an explicit ``level=``).
* Every record is also routed into the tracer's event sink
  (:class:`repro.obs.trace.TraceLogHandler`), so enabled traces carry
  the log lines nested under the spans that produced them.
"""

from __future__ import annotations

import logging
import os
from typing import Optional, Union

from repro.obs.trace import TraceLogHandler

_FORMAT = "%(asctime)s %(name)s %(levelname)s: %(message)s"


class _ReproLogHandler(logging.StreamHandler):
    """Stream handler that also forwards records to the tracer."""

    _repro_managed = True

    def __init__(self) -> None:
        super().__init__()
        self.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
        self._trace = TraceLogHandler()

    def emit(self, record: logging.LogRecord) -> None:
        super().emit(record)
        self._trace.emit(record)


def _resolve_level(level: Optional[Union[int, str]]) -> int:
    if level is None:
        level = os.environ.get("REPRO_LOG_LEVEL", "WARNING")
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):  # unknown name → safe default
            resolved = logging.WARNING
        return resolved
    return int(level)


def configure_logging(level: Optional[Union[int, str]] = None,
                      force: bool = False) -> logging.Logger:
    """(Re)configure the ``repro`` root logger; idempotent.

    Keeps exactly one managed handler no matter how often it is called.
    ``force=True`` recreates the handler and re-resolves the level (used
    by tests exercising ``REPRO_LOG_LEVEL``); otherwise an existing
    handler and level are left untouched.
    """
    root = logging.getLogger("repro")
    managed = [h for h in root.handlers
               if getattr(h, "_repro_managed", False)]
    if force:
        for h in managed:
            root.removeHandler(h)
        managed = []
    elif len(managed) > 1:          # never keep duplicates
        for h in managed[1:]:
            root.removeHandler(h)
        managed = managed[:1]
    if not managed:
        root.addHandler(_ReproLogHandler())
        root.setLevel(_resolve_level(level))
    elif level is not None:
        root.setLevel(_resolve_level(level))
    return root


def get_logger(name: str) -> logging.Logger:
    """Return a package logger; configures the shared handler once."""
    configure_logging()
    return logging.getLogger(name if name.startswith("repro")
                             else f"repro.{name}")
