"""Lightweight logging configuration shared across the package."""

from __future__ import annotations

import logging

_FORMAT = "%(asctime)s %(name)s %(levelname)s: %(message)s"


def get_logger(name: str) -> logging.Logger:
    """Return a package logger; configures a stream handler once."""
    root = logging.getLogger("repro")
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
        root.addHandler(handler)
        root.setLevel(logging.WARNING)
    return logging.getLogger(name if name.startswith("repro") else f"repro.{name}")
