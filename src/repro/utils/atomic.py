"""Atomic, crash-tolerant pickle/JSON persistence for on-disk caches.

Two invariants for every cache file written through this module:

* **Atomic visibility.**  Writes go to a unique temp file in the target
  directory and are published with :func:`os.replace`, so a reader can
  never observe a half-written file — even if the writer is killed
  mid-dump, the destination either holds the previous complete version
  or nothing.

* **Corruption is a miss, not a crash.**  :func:`load_pickle_or_none`
  treats an unreadable or truncated file (e.g. left behind by a pre-
  atomic writer, a disk-full event, or a version skew) as a cache miss:
  it logs, removes the bad file, and returns ``None`` so the caller
  rebuilds.
"""

from __future__ import annotations

import json
import logging
import os
import pickle
import tempfile
from typing import Any, Optional, Union

PathLike = Union[str, "os.PathLike[str]"]


def atomic_pickle_dump(obj: Any, path: PathLike) -> None:
    """Pickle *obj* to *path* via a same-directory temp file + ``os.replace``.

    The temp name embeds the pid so concurrent writers (e.g. two dataset
    builds sharing a cache directory) never clobber each other's
    in-progress files; the final ``os.replace`` is atomic on POSIX, so
    the last completed writer wins with a complete file.
    """
    path = str(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + f".{os.getpid()}.",
        suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(obj, fh)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_pickle_or_none(path: PathLike,
                        logger: Optional[logging.Logger] = None) -> Any:
    """Unpickle *path*; any failure is a cache miss returning ``None``.

    A corrupt/truncated/unreadable file is logged as a warning and
    unlinked so the subsequent rebuild replaces it with a good copy.
    """
    path = str(path)
    try:
        with open(path, "rb") as fh:
            return pickle.load(fh)
    except FileNotFoundError:
        return None
    except Exception as exc:  # truncated pickle, EOFError, version skew, ...
        if logger is not None:
            logger.warning("discarding corrupt cache file %s (%s: %s)",
                           path, type(exc).__name__, exc)
        try:
            os.unlink(path)
        except OSError:
            pass
        return None


def atomic_json_dump(obj: Any, path: PathLike, indent: int = 2,
                     sort_keys: bool = True) -> None:
    """JSON counterpart of :func:`atomic_pickle_dump` (same guarantees)."""
    path = str(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + f".{os.getpid()}.",
        suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(obj, fh, indent=indent, sort_keys=sort_keys)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_json_or_none(path: PathLike,
                      logger: Optional[logging.Logger] = None) -> Any:
    """JSON counterpart of :func:`load_pickle_or_none`.

    A corrupt/truncated/undecodable file is logged as a warning and
    unlinked so the next write starts from a clean slate.
    """
    path = str(path)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except FileNotFoundError:
        return None
    except Exception as exc:  # truncated write, bad encoding, ...
        if logger is not None:
            logger.warning("discarding corrupt cache file %s (%s: %s)",
                           path, type(exc).__name__, exc)
        try:
            os.unlink(path)
        except OSError:
            pass
        return None
