"""Shared utilities: seeded RNG helpers, stopwatches, logging, validation."""

from repro.utils.atomic import (
    atomic_json_dump,
    atomic_pickle_dump,
    load_json_or_none,
    load_pickle_or_none,
)
from repro.utils.rng import seed_from_name, spawn_rng
from repro.utils.timer import Stopwatch, StageTimer
from repro.utils.log import configure_logging, get_logger
from repro.utils.validation import require, require_positive

__all__ = [
    "atomic_json_dump",
    "atomic_pickle_dump",
    "load_json_or_none",
    "load_pickle_or_none",
    "seed_from_name",
    "spawn_rng",
    "Stopwatch",
    "StageTimer",
    "configure_logging",
    "get_logger",
    "require",
    "require_positive",
]
