"""Wall-clock stopwatches used for the runtime comparison (Table III)."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class Stopwatch:
    """A simple cumulative stopwatch.

    >>> sw = Stopwatch()
    >>> with sw.running():
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0

    @contextmanager
    def running(self) -> Iterator["Stopwatch"]:
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.elapsed += time.perf_counter() - start


@dataclass
class StageTimer:
    """Accumulates wall-clock time per named flow stage.

    The reference flow records ``place``, ``opt``, ``route`` and ``sta``
    stages; the predictor records ``pre`` (preprocessing) and ``infer``.
    """

    stages: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.stages[name] = self.stages.get(name, 0.0) + (
                time.perf_counter() - start
            )

    def total(self) -> float:
        """Total time across all recorded stages."""
        return sum(self.stages.values())

    def get(self, name: str) -> float:
        """Time recorded for one stage (0.0 if the stage never ran)."""
        return self.stages.get(name, 0.0)
