"""Wall-clock stopwatches used for the runtime comparison (Table III).

Since the observability layer landed, :class:`StageTimer` is a thin
adapter over :mod:`repro.obs.trace`: each ``stage(...)`` block opens a
``flow.<name>`` span (carrying ``stage`` and optional ``design`` attrs)
and accumulates the span's measured duration into the legacy ``stages``
dict.  Callers keep the old API; traces gain the stage structure.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from repro.obs.trace import get_tracer


@dataclass
class Stopwatch:
    """A simple cumulative stopwatch.

    >>> sw = Stopwatch()
    >>> with sw.running():
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0

    @contextmanager
    def running(self) -> Iterator["Stopwatch"]:
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.elapsed += time.perf_counter() - start


@dataclass
class StageTimer:
    """Accumulates wall-clock time per named flow stage.

    The reference flow records ``place``, ``opt``, ``route`` and ``sta``
    stages; the predictor records ``pre`` (preprocessing) and ``infer``.
    Each stage block is also emitted as a ``flow.<name>`` tracer span, so
    a recorded trace can regenerate Table III (see ``repro.obs.profile``).
    """

    stages: Dict[str, float] = field(default_factory=dict)
    design: Optional[str] = None   # tagged onto every emitted span

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        attrs = {"stage": name}
        if self.design is not None:
            attrs["design"] = self.design
        sp = get_tracer().span(f"flow.{name}", **attrs)
        sp.__enter__()
        try:
            yield
        finally:
            sp.__exit__(None, None, None)
            self.stages[name] = self.stages.get(name, 0.0) + sp.duration

    def total(self) -> float:
        """Total time across all recorded stages."""
        return sum(self.stages.values())

    def get(self, name: str) -> float:
        """Time recorded for one stage (0.0 if the stage never ran)."""
        return self.stages.get(name, 0.0)
