"""Small argument-validation helpers used at public API boundaries."""

from __future__ import annotations

from typing import Any


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError`` with *message* unless *condition* holds."""
    if not condition:
        raise ValueError(message)


def require_positive(value: Any, name: str) -> None:
    """Raise ``ValueError`` unless *value* is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
