"""Deterministic random-number helpers.

Every stochastic component in the flow (netlist generation, placement,
optimization, routing noise, model initialization) draws from a
``numpy.random.Generator`` seeded through these helpers, so the whole
pipeline is reproducible from a design name and a base seed.
"""

from __future__ import annotations

import hashlib

import numpy as np


def seed_from_name(name: str, base_seed: int = 0) -> int:
    """Derive a stable 63-bit seed from a string name and a base seed.

    Uses sha256 rather than ``hash()`` so results are stable across
    interpreter runs and machines.
    """
    digest = hashlib.sha256(f"{base_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)


def spawn_rng(name: str, base_seed: int = 0) -> np.random.Generator:
    """Create an independent, reproducible generator for a named component."""
    return np.random.default_rng(seed_from_name(name, base_seed))
