"""High-level predictor API: fit / predict / save / load.

This is the library's front door for the paper's use case: train once on a
set of completed flows, then evaluate fresh placements in milliseconds
instead of running optimization + routing + sign-off STA (Table III).
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.core.fusion import ModelConfig, RestructureTolerantModel
from repro.core.trainer import LabelNorm, Trainer, TrainerConfig
from repro.flow import FlowResult
from repro.ml.sample import DesignSample
from repro.nn import load_state_dict, state_dict
from repro.obs import get_metrics, get_tracer
from repro.utils import require


class TimingPredictor:
    """Restructure-tolerant pre-routing timing predictor."""

    def __init__(self, model_config: ModelConfig = ModelConfig(),
                 trainer_config: TrainerConfig = TrainerConfig()) -> None:
        self.model_config = model_config
        self.model = RestructureTolerantModel(model_config)
        self.trainer = Trainer(self.model, trainer_config)
        self.infer_times: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def fit(self, train_samples: List[DesignSample]) -> None:
        """Train on prepared samples (see :func:`repro.ml.build_dataset`)."""
        self.trainer.fit(train_samples)

    def preprocess(self, flow: FlowResult, seed: int = 0) -> DesignSample:
        """Flow result → sample (timed into ``sample.preprocess_time``)."""
        # Local import: repro.ml.dataset itself imports repro.core.masking.
        from repro.ml.dataset import build_sample

        return build_sample(flow, map_bins=self.model_config.map_bins,
                            seed=seed)

    def predict(self, sample: DesignSample) -> Dict[int, float]:
        """Sign-off endpoint arrival prediction, keyed by endpoint pin id.

        Inference wall-clock is recorded in ``infer_times[sample.name]``
        (the "infer" column of Table III) via a ``model.infer`` span.
        """
        pred = self._timed_infer(sample)
        return {int(p): float(v)
                for p, v in zip(sample.endpoint_pins, pred)}

    def predict_array(self, sample: DesignSample) -> np.ndarray:
        """Prediction aligned with ``sample.y`` (evaluation convenience)."""
        return self._timed_infer(sample)

    def _timed_infer(self, sample: DesignSample) -> np.ndarray:
        sp = get_tracer().span("model.infer", stage="infer",
                               design=sample.name)
        with sp:
            pred = self.trainer.predict(sample)
        self.infer_times[sample.name] = sp.duration
        get_metrics().counter("model.inferences").inc()
        return pred

    # ------------------------------------------------------------------
    def save(self, path: Path) -> None:
        """Persist config, weights and label normalization."""
        require(self.trainer.norm is not None, "fit() before save()")
        payload = {
            "model_config": self.model_config,
            "state": state_dict(self.model),
            "norm": (self.trainer.norm.mean, self.trainer.norm.std),
        }
        with open(path, "wb") as fh:
            pickle.dump(payload, fh)

    @classmethod
    def load(cls, path: Path) -> "TimingPredictor":
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        predictor = cls(model_config=payload["model_config"])
        load_state_dict(predictor.model, payload["state"])
        mean, std = payload["norm"]
        predictor.trainer.norm = LabelNorm(mean=mean, std=std)
        return predictor
