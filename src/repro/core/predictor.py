"""High-level predictor API: fit / predict / save / load.

This is the library's front door for the paper's use case: train once on a
set of completed flows, then evaluate fresh placements in milliseconds
instead of running optimization + routing + sign-off STA (Table III).
"""

from __future__ import annotations

import pickle
import warnings
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.fusion import ModelConfig, RestructureTolerantModel
from repro.core.trainer import LabelNorm, Trainer, TrainerConfig
from repro.flow import FlowResult
from repro.ml.batch import PackedBatch
from repro.ml.sample import DesignSample
from repro.nn import (
    PRECISIONS,
    Conv2d,
    Linear,
    Workspace,
    dequantize,
    load_state_dict,
    quantize_per_channel,
    state_dict,
    workspace,
)
from repro.obs import get_metrics, get_tracer
from repro.utils import require

#: Version of the on-disk predictor artifact.  v1 was an implicit,
#: unversioned pickle of a :class:`ModelConfig` instance; v2 stores a
#: plain-dict payload so artifacts survive dataclass refactors; v3 adds
#: a ``precision`` field and allows int8-quantized weight entries
#: (``{"quant", "q", "scale"}`` dicts) in ``state``; v4 adds MMMC
#: corner conditioning (``model_config`` may carry ``corner_names`` /
#: ``corner_embed`` and ``state`` the corner-embedding table).  Bump on
#: any payload layout change and teach
#: :meth:`TimingPredictor.from_artifact` the migration.
ARTIFACT_SCHEMA_VERSION = 4
ARTIFACT_FORMAT = "repro.timing-predictor"

#: Declared differential-tolerance budget of the fp32 inference tier
#: against the bit-exact fp64 default, on denormalized arrival times
#: (ps).  Measured headroom on the golden flows is ~10× tighter; the
#: budget is enforced in ``tests/nn/test_precision.py`` and the
#: ``precision-smoke`` CI job (see DESIGN.md "Precision & memory tiers").
FP32_TOLERANCE = {"rtol": 1e-4, "atol": 5e-2}

#: Maximum allowed degradation of the endpoint-arrival R² (the Table II
#: accuracy metric) when serving int8-quantized weights instead of fp64.
INT8_R2_BUDGET = 0.05


class TimingPredictor:
    """Restructure-tolerant pre-routing timing predictor."""

    def __init__(self, model_config: Optional[ModelConfig] = None,
                 trainer_config: Optional[TrainerConfig] = None) -> None:
        # Defaults are constructed per instance (a `= ModelConfig()`
        # default would be evaluated once at definition time and shared
        # by every default-constructed predictor).
        self.model_config = model_config or ModelConfig()
        self.model = RestructureTolerantModel(self.model_config)
        self.trainer = Trainer(self.model, trainer_config or TrainerConfig())
        self.infer_times: Dict[str, float] = {}
        self.precision = "fp64"
        # Inference scratch arena: reused across forwards, released via
        # :meth:`release_workspace` (session teardown) or the arena's
        # own byte cap.  ``use_workspace=False`` restores per-request
        # allocation (the pre-arena behavior) for A/B benchmarking.
        self.use_workspace = True
        self._workspace = Workspace()
        # Streaming chunk-size hint: when set, inference over samples that
        # carry no hint of their own streams chunk-by-chunk (see
        # repro.timing.partition).  Bit-identical outputs either way.
        self.partition_pins: Optional[int] = None

    def _scope(self):
        """Workspace activation for one inference call (or a no-op)."""
        return workspace(self._workspace if self.use_workspace else None)

    def set_partition(self, partition_pins: Optional[int]) -> None:
        """Set (or clear) the streaming chunk-size hint for inference."""
        if partition_pins is not None:
            require(partition_pins > 0, "partition_pins must be positive")
        self.partition_pins = partition_pins

    def _stamp_partition(self, sample_or_batch) -> None:
        """Propagate the predictor-level hint unless the object has one."""
        if (self.partition_pins is not None
                and getattr(sample_or_batch, "partition_pins", None) is None):
            sample_or_batch.partition_pins = self.partition_pins

    def set_precision(self, mode: str) -> None:
        """Switch the inference tier: ``fp64`` (bit-exact default),
        ``fp32`` (single-precision end to end, tolerance-budgeted) or
        ``int8`` (per-channel weight quantization, fp32 compute)."""
        require(mode in PRECISIONS,
                f"unknown precision {mode!r} (expected one of {PRECISIONS})")
        self.model.set_inference_precision(mode)
        self.precision = mode
        get_metrics().gauge("model.precision_bits").set(
            {"fp64": 64, "fp32": 32, "int8": 8}[mode])

    def release_workspace(self) -> None:
        """Drop pooled inference buffers (e.g. on session teardown)."""
        self._workspace.release()

    # ------------------------------------------------------------------
    def fit(self, train_samples: List[DesignSample]) -> None:
        """Train on prepared samples (see :func:`repro.ml.build_dataset`)."""
        self.trainer.fit(train_samples)

    def preprocess(self, flow: FlowResult, seed: int = 0) -> DesignSample:
        """Flow result → sample (timed into ``sample.preprocess_time``)."""
        # Local import: repro.ml.dataset itself imports repro.core.masking.
        from repro.ml.dataset import build_sample

        return build_sample(flow, map_bins=self.model_config.map_bins,
                            seed=seed, partition_pins=self.partition_pins)

    def predict(self, sample: DesignSample) -> Dict[int, float]:
        """Sign-off endpoint arrival prediction, keyed by endpoint pin id.

        Inference wall-clock is recorded in ``infer_times[sample.name]``
        (the "infer" column of Table III) via a ``model.infer`` span.
        """
        pred = self._timed_infer(sample)
        return {int(p): float(v)
                for p, v in zip(sample.endpoint_pins, pred)}

    def predict_array(self, sample: DesignSample) -> np.ndarray:
        """Prediction aligned with ``sample.y`` (evaluation convenience)."""
        return self._timed_infer(sample)

    def predict_batch(self, samples: Sequence[DesignSample]
                      ) -> List[Dict[int, float]]:
        """Batched inference: N designs through ONE packed forward pass.

        Returns one ``{endpoint pin id: predicted arrival (ps)}`` dict per
        input sample, in order.  Equivalent to calling :meth:`predict`
        per design (to fp round-off — see ``tests/ml/test_batch.py``) but
        substantially faster: the designs are disjoint-unioned into a
        :class:`~repro.ml.batch.PackedBatch`, so the per-level GNN sweep,
        the CNN convolutions and the regressor all run once on wide
        tensors instead of once per design.
        """
        arrays = self.predict_batch_arrays(samples)
        return [{int(p): float(v)
                 for p, v in zip(s.endpoint_pins, a)}
                for s, a in zip(samples, arrays)]

    def predict_batch_arrays(self, samples: Sequence[DesignSample]
                             ) -> List[np.ndarray]:
        """Like :meth:`predict_batch`, returning ``sample.y``-aligned arrays."""
        samples = list(samples)
        with self._scope():
            batch = PackedBatch.pack(samples)
            self._stamp_partition(batch)
            sp = get_tracer().span("model.infer_batch", stage="infer",
                                   designs=batch.n_samples,
                                   endpoints=batch.n_endpoints)
            with sp:
                preds = self.trainer.predict_packed(batch)
        # Amortized per-design wall clock (the "infer" column of Table
        # III still gets one number per design).
        share = sp.duration / max(batch.n_samples, 1)
        for s in samples:
            self.infer_times[s.name] = share
        metrics = get_metrics()
        metrics.counter("model.inferences").inc(batch.n_samples)
        metrics.counter("model.batch_inferences").inc()
        metrics.histogram("model.batch.designs").observe(batch.n_samples)
        metrics.histogram("model.batch.endpoints").observe(
            batch.n_endpoints)
        if sp.duration > 0:
            metrics.gauge("model.batch.endpoints_per_s").set(
                batch.n_endpoints / sp.duration)
        return preds

    def _timed_infer(self, sample: DesignSample) -> np.ndarray:
        sp = get_tracer().span("model.infer", stage="infer",
                               design=sample.name)
        self._stamp_partition(sample)
        with sp, self._scope():
            pred = self.trainer.predict(sample)
        self.infer_times[sample.name] = sp.duration
        get_metrics().counter("model.inferences").inc()
        return pred

    # ------------------------------------------------------------------
    def to_artifact(self, precision: Optional[str] = None) -> Dict[str, Any]:
        """The versioned, plain-data artifact payload (schema v4).

        Everything is stdlib/numpy data — no repro classes are pickled,
        so saved artifacts keep loading across dataclass refactors.

        *precision* defaults to the predictor's active tier.  ``int8``
        stores every Linear/Conv2d weight as a per-channel-quantized
        ``{"quant", "q", "scale"}`` entry (8× smaller weight storage in
        the artifact and the fleet's shared-memory segment); ``fp64`` /
        ``fp32`` store the full fp64 master weights — fp32 is a serving
        tier, not a storage format, so switching back stays lossless.
        """
        require(self.trainer.norm is not None, "fit() before save()")
        precision = precision or self.precision
        require(precision in PRECISIONS,
                f"unknown precision {precision!r} "
                f"(expected one of {PRECISIONS})")
        if precision == "int8":
            state = self._quantized_state()
        else:
            state = state_dict(self.model)
        return {
            "format": ARTIFACT_FORMAT,
            "schema_version": ARTIFACT_SCHEMA_VERSION,
            "model_config": asdict(self.model_config),
            "state": state,
            "norm": {"mean": self.trainer.norm.mean,
                     "std": self.trainer.norm.std},
            "precision": precision,
        }

    def _quantized_state(self) -> List[Any]:
        """``state_dict`` with Linear/Conv2d weights quantized to int8.

        An already-active int8 tier re-exports its installed payloads
        verbatim, so artifact round-trips never re-quantize.
        """
        layer_of = {id(m.weight): m for m in self.model.modules()
                    if isinstance(m, (Linear, Conv2d))}
        state: List[Any] = []
        for p in self.model.parameters():
            layer = layer_of.get(id(p))
            if layer is None:
                state.append(p.data.copy())
            elif getattr(layer, "_quant", None) is not None:
                q = layer._quant
                state.append({"quant": q["quant"], "q": q["q"].copy(),
                              "scale": np.asarray(q["scale"]).copy()})
            else:
                state.append(quantize_per_channel(p.data))
        return state

    def save(self, path: Path, precision: Optional[str] = None) -> None:
        """Persist config, weights and label normalization (schema v4)."""
        with open(path, "wb") as fh:
            pickle.dump(self.to_artifact(precision=precision), fh)

    @classmethod
    def from_artifact(cls, payload: Any,
                      source: str = "<memory>",
                      share_state: bool = False) -> "TimingPredictor":
        """Reconstruct a predictor from an artifact payload.

        Accepts the current schema (v4), the previous v3 and v2 (whose
        ``model_config`` dicts lack ``corner_names`` and default to the
        single implicit base corner), or the legacy unversioned format
        (a pickled ``ModelConfig`` + ``(mean, std)`` tuple) with a
        :class:`DeprecationWarning`.  Unknown newer versions are
        rejected with an actionable error instead of mis-loading
        silently.

        A payload carrying int8-quantized weight entries is restored
        with the stored ``q``/``scale`` payloads installed **verbatim**
        (re-quantizing the dequantized weights could drift the scales by
        an ulp), and the predictor comes back with its ``precision``
        tier already applied.

        ``share_state=True`` adopts the payload's weight arrays by
        reference instead of copying (inference-only; used by the
        serving fleet to back every worker process's model with one
        read-only shared-memory segment — see :mod:`repro.serve.shm`).
        """
        if not isinstance(payload, dict) or "model_config" not in payload:
            raise ValueError(
                f"{source} is not a repro predictor artifact "
                "(expected a dict payload with a 'model_config' entry)")
        version = payload.get("schema_version")
        if version is None:
            warnings.warn(
                f"{source} uses the legacy unversioned predictor format; "
                "re-save it with TimingPredictor.save() to upgrade to "
                f"schema v{ARTIFACT_SCHEMA_VERSION}",
                DeprecationWarning, stacklevel=2)
            model_config = payload["model_config"]
            mean, std = payload["norm"]
        elif version in (2, 3, ARTIFACT_SCHEMA_VERSION):
            model_config = ModelConfig(**payload["model_config"])
            mean, std = payload["norm"]["mean"], payload["norm"]["std"]
        else:
            raise ValueError(
                f"{source} has predictor artifact schema_version "
                f"{version!r}, but this build only supports "
                f"{ARTIFACT_SCHEMA_VERSION} (and the legacy unversioned "
                "format). Upgrade repro to load it, or re-train and "
                "re-save the predictor with this version.")
        predictor = cls(model_config=model_config)
        state = payload["state"]
        has_quant = any(isinstance(e, dict) for e in state)
        dense = [dequantize(e["q"], e["scale"]) if isinstance(e, dict)
                 else e for e in state]
        load_state_dict(predictor.model, dense, copy=not share_state)
        predictor.trainer.norm = LabelNorm(mean=mean, std=std)
        precision = "int8" if has_quant else payload.get("precision",
                                                         "fp64")
        if precision != "fp64":
            predictor.set_precision(precision)
        if has_quant:
            layer_of = {id(m.weight): m for m in predictor.model.modules()
                        if isinstance(m, (Linear, Conv2d))}
            for p, entry in zip(predictor.model.parameters(), state):
                if isinstance(entry, dict):
                    layer_of[id(p)]._install_quant(
                        np.asarray(entry["q"]), np.asarray(entry["scale"]))
        return predictor

    @classmethod
    def load(cls, path: Path) -> "TimingPredictor":
        """Load a saved artifact (current or legacy schema, see above)."""
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        return cls.from_artifact(payload, source=str(path))
