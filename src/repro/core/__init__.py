"""The paper's contribution: endpoint-embedding multimodal timing predictor."""

from repro.core.cnn import LayoutEncoder
from repro.core.fusion import VARIANTS, ModelConfig, RestructureTolerantModel
from repro.core.gnn import EndpointGNN
from repro.core.masking import (
    build_endpoint_masks,
    build_endpoint_paths,
    longest_level_path,
    path_net_edges,
    rasterize_endpoint_masks,
    rasterize_region,
    stack_endpoint_masks,
)
from repro.core.predictor import (
    ARTIFACT_SCHEMA_VERSION,
    TimingPredictor,
)
from repro.core.trainer import LabelNorm, Trainer, TrainerConfig

__all__ = [
    "LayoutEncoder",
    "VARIANTS",
    "ModelConfig",
    "RestructureTolerantModel",
    "EndpointGNN",
    "build_endpoint_masks",
    "build_endpoint_paths",
    "longest_level_path",
    "path_net_edges",
    "rasterize_endpoint_masks",
    "rasterize_region",
    "stack_endpoint_masks",
    "ARTIFACT_SCHEMA_VERSION",
    "TimingPredictor",
    "LabelNorm",
    "Trainer",
    "TrainerConfig",
]
