"""The multimodal endpoint-embedding model (paper Fig. 2, Section III).

Per endpoint *e*:

* netlist embedding ``v_n``: the customized GNN's embedding at the
  endpoint node (Section IV);
* layout embedding ``v_l``: the CNN's global layout map, masked by the
  endpoint's critical region (``M^e ⊙ M^L``, Eq. (6)) and passed through a
  shared fully connected layer (Section V);
* final embedding: concatenation, consumed by an MLP regressor that
  predicts the sign-off arrival time, trained with MSE (Eq. (2)).

``variant`` selects the ablations of Table II: ``"full"``, ``"gnn"``
(netlist-only, paper's "our GNN-only") and ``"cnn"`` (layout-only).

The native execution shape is a :class:`~repro.ml.batch.PackedBatch` —
N designs disjoint-unioned into one graph, their layout stacks batched
through one CNN pass, and every endpoint's mask applied to *its* design's
global map via the pack's endpoint→sample index.  ``forward(sample)`` /
``backward(grad)`` remain the one-design API and simply run a pack of
one, so baselines, tests and existing callers keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.cnn import LayoutEncoder
from repro.core.gnn import EndpointGNN
from repro.ml.batch import PackedBatch
from repro.ml.features import CELL_FEATURE_DIM, NET_FEATURE_DIM
from repro.ml.sample import DesignSample
from repro.nn import (
    Embedding,
    Linear,
    Module,
    ReLU,
    Sequential,
    inference_mode,
    mlp,
    ws_empty,
)
from repro.timing.partition import stream_plan_for
from repro.utils import require, spawn_rng

VARIANTS = ("full", "gnn", "cnn")


@dataclass(frozen=True)
class ModelConfig:
    """Hyper-parameters (paper values in Section VI-A; scaled defaults)."""

    variant: str = "full"
    hidden: int = 64            # GNN embedding width (paper: 128, MLPs 256)
    layout_embed: int = 64      # layout embedding width (paper: 128)
    regressor_hidden: int = 128  # regressor MLP width (paper: 512)
    map_bins: int = 64          # layout map M = N (paper: 512)
    mlp_layers: int = 3
    #: Residual identity path in the GNN cell update (see EndpointGNN).
    gnn_residual: bool = True
    seed: int = 0
    #: Sign-off corners the model is conditioned on, in embedding-index
    #: order.  A single corner (the legacy implicit one) creates no
    #: embedding at all — parameters, rng stream and outputs are
    #: bit-identical to a pre-MMMC model.
    corner_names: Tuple[str, ...] = ("base",)
    corner_embed: int = 8            # corner embedding width

    def __post_init__(self) -> None:
        require(self.variant in VARIANTS,
                f"variant must be one of {VARIANTS}")
        if not isinstance(self.corner_names, tuple):
            object.__setattr__(self, "corner_names",
                               tuple(self.corner_names))
        require(len(self.corner_names) >= 1, "need at least one corner")
        require(len(set(self.corner_names)) == len(self.corner_names),
                f"duplicate corner names: {self.corner_names}")
        require(self.corner_embed > 0, "corner_embed must be positive")

    @property
    def n_corners(self) -> int:
        return len(self.corner_names)


class RestructureTolerantModel(Module):
    """End-to-end endpoint arrival-time predictor."""

    def __init__(self, config: Optional[ModelConfig] = None) -> None:
        config = config or ModelConfig()
        self.config = config
        rng = spawn_rng(f"model/{config.variant}", config.seed)
        map_flat = (config.map_bins // 4) ** 2

        self.gnn: Optional[EndpointGNN] = None
        self.cnn: Optional[LayoutEncoder] = None
        self.layout_fc: Optional[Sequential] = None
        reg_in = 0
        if config.variant in ("full", "gnn"):
            self.gnn = EndpointGNN(config.hidden, CELL_FEATURE_DIM,
                                   NET_FEATURE_DIM, rng,
                                   n_layers=config.mlp_layers,
                                   residual=config.gnn_residual)
            reg_in += config.hidden
        if config.variant in ("full", "cnn"):
            self.cnn = LayoutEncoder(rng)
            self.layout_fc = Sequential(
                Linear(map_flat, config.layout_embed, rng=rng), ReLU())
            reg_in += config.layout_embed

        # MMMC conditioning: one learned row per corner, concatenated
        # into the fusion head.  Created ONLY for multi-corner configs so
        # the single-corner parameter list and rng stream stay exactly
        # the pre-MMMC ones (bit-identity for existing artifacts).
        self.corner_embedding: Optional[Embedding] = None
        if config.n_corners > 1:
            self.corner_embedding = Embedding(config.n_corners,
                                              config.corner_embed, rng=rng)
            reg_in += config.corner_embed

        sizes = ([reg_in]
                 + [config.regressor_hidden] * (config.mlp_layers - 1) + [1])
        self.regressor = mlp(sizes, rng)
        self._cache = None

    # ------------------------------------------------------------------
    def forward_batch(self, batch: PackedBatch,
                      training: bool = True) -> np.ndarray:
        """Predict normalized arrival for every endpoint of *batch*.

        One GNN pass over the union graph, one CNN pass over the stacked
        layout maps; returns the packed ``(E,)`` prediction vector in the
        batch's endpoint order.  ``training=False`` lets the GNN skip its
        backward bookkeeping (same output, no backward afterwards).
        """
        require(batch.masks.shape[1] == (self.config.map_bins // 4) ** 2
                or self.cnn is None,
                "batch mask resolution does not match the model config")
        if not training:
            with inference_mode():
                return self._forward_batch(batch, training=False)
        return self._forward_batch(batch, training=True)

    def _forward_batch(self, batch: PackedBatch,
                       training: bool) -> np.ndarray:
        inference = not training
        parts = []
        if self.gnn is not None:
            stream = stream_plan_for(batch) if inference else None
            if stream is not None:
                # Partitioned path: chunk-streamed level execution that
                # returns endpoint rows directly (bit-identical to the
                # monolithic forward; never builds the (n, h) table).
                parts.append(self.gnn.forward_stream(batch, stream))
            elif inference:
                h = self.gnn.forward(batch, training=training)
                # Plain np.take: the out= variant goes through numpy's
                # buffered copy path and is ~2x slower than allocating.
                parts.append(np.take(h, batch.endpoint_nodes, axis=0))
            else:
                h = self.gnn.forward(batch, training=training)
                parts.append(h[batch.endpoint_nodes])
        masks = None
        if self.cnn is not None:
            global_maps = self.cnn.forward_batch(batch.layout_stacks)
            # (E, P4): each endpoint masks ITS design's map, Eq. (6).
            if inference:
                # float * bool equals bool.astype(float) * float bit for
                # bit; skipping the astype drops an (E, P4) allocation.
                masked = np.take(global_maps, batch.endpoint_sample,
                                 axis=0)
                masked *= batch.masks
            else:
                masks = batch.masks.astype(float)
                masked = masks * global_maps[batch.endpoint_sample]
            parts.append(self.layout_fc.forward(masked))
        if self.corner_embedding is not None:
            parts.append(self.corner_embedding.forward(
                batch.endpoint_corner))
        if inference:
            width = sum(p.shape[1] for p in parts)
            z = np.concatenate(parts, axis=1,
                               out=ws_empty((parts[0].shape[0], width),
                                            parts[0].dtype))
        else:
            z = np.concatenate(parts, axis=1)
        pred = self.regressor.forward(z).ravel()
        if training:
            self._cache = (batch, masks)
        return pred

    def backward_batch(self, grad_pred: np.ndarray) -> None:
        """Backprop d(loss)/d(pred) of shape (E,) through the pack."""
        batch, masks = self._cache
        gz = self.regressor.backward(grad_pred[:, None])
        offset = 0
        if self.gnn is not None:
            gn = gz[:, offset:offset + self.config.hidden]
            offset += self.config.hidden
            grad_h = np.zeros((batch.n_nodes, self.config.hidden))
            grad_h[batch.endpoint_nodes] = gn
            self.gnn.backward(grad_h)
        if self.cnn is not None:
            gl = gz[:, offset:offset + self.config.layout_embed]
            offset += self.config.layout_embed
            gm = self.layout_fc.backward(gl) * masks    # (E, P4)
            # Per-design map gradients: endpoints are grouped contiguously
            # by sample, so the segment sum reduces straight to (B, P4).
            if np.all(batch.endpoints_per_sample > 0):
                gmaps = np.add.reduceat(gm, batch.endpoint_offsets[:-1],
                                        axis=0)
            else:  # reduceat mishandles empty segments
                gmaps = np.zeros((batch.n_samples, gm.shape[1]))
                np.add.at(gmaps, batch.endpoint_sample, gm)
            self.cnn.backward_batch(gmaps)
        if self.corner_embedding is not None:
            self.corner_embedding.backward(gz[:, offset:])
        self._cache = None

    # ------------------------------------------------------------------
    def forward(self, sample: DesignSample) -> np.ndarray:
        """Predict normalized arrival for every endpoint of *sample*.

        The one-design API: runs :meth:`forward_batch` on a pack of one
        (array reuse makes the wrapping free).
        """
        return self.forward_batch(PackedBatch.pack([sample]))

    def backward(self, grad_pred: np.ndarray) -> None:
        """Backprop d(loss)/d(pred) of shape (E,)."""
        self.backward_batch(grad_pred)
