"""Endpoint-wise critical-region masking (paper Section V-B, Fig. 6).

For each timing endpoint we find **the longest path by topological level**
(not by delay — levels are available before any timing run, which is what
makes the masking cheap) with a reverse walk that always steps to a
predecessor one level up, then rasterize the union of the bounding boxes of
the *net edges* along that path (Eqs. (4)–(5)) into a mask at one quarter of
the layout-map resolution — the resolution of the CNN's output map
``M^L`` (Eq. (6) applies the mask via Hadamard product).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.netlist import Netlist
from repro.placement import Placement
from repro.timing import NET_SINK, TimingGraph
from repro.utils import require, spawn_rng


def longest_level_path(graph: TimingGraph, endpoint_node: int,
                       rng: np.random.Generator) -> List[int]:
    """Longest path (by level) from the sources into *endpoint_node*.

    Implements the paper's reverse DFS: from a node at level *i*, step to a
    predecessor at level *i − 1* (one always exists because levels are
    longest-path depths); ties are broken randomly.  Returns node indices,
    source first.
    """
    path = [endpoint_node]
    node = endpoint_node
    while graph.level[node] > 0:
        preds = graph.predecessors(node)
        require(len(preds) > 0, "non-source node without predecessors")
        want = graph.level[node] - 1
        candidates = preds[graph.level[preds] == want]
        if len(candidates) == 0:
            # Defensive: fall back to the deepest predecessor.
            candidates = preds[graph.level[preds] == graph.level[preds].max()]
        node = int(candidates[rng.integers(len(candidates))]) \
            if len(candidates) > 1 else int(candidates[0])
        path.append(node)
    path.reverse()
    return path


def path_net_edges(graph: TimingGraph, path: List[int]) -> List[tuple]:
    """The (driver pin, sink pin) net edges along a node path."""
    edges = []
    for u, v in zip(path, path[1:]):
        if graph.kind[v] == NET_SINK:
            edges.append((int(graph.pin_ids[u]), int(graph.pin_ids[v])))
    return edges


def rasterize_region(netlist: Netlist, placement: Placement,
                     net_edges: List[tuple], side_x: int,
                     side_y: int) -> np.ndarray:
    """Union of net-edge bounding boxes as a (side_x, side_y) boolean mask."""
    die = placement.die
    mask = np.zeros((side_x, side_y), dtype=bool)
    bw = die.width / side_x
    bh = die.height / side_y
    for drv, snk in net_edges:
        xd, yd = placement.pin_position(netlist, drv)
        xs, ys = placement.pin_position(netlist, snk)
        i0 = int(np.clip(min(xd, xs) / bw, 0, side_x - 1))
        i1 = int(np.clip(max(xd, xs) / bw, 0, side_x - 1))
        j0 = int(np.clip(min(yd, ys) / bh, 0, side_y - 1))
        j1 = int(np.clip(max(yd, ys) / bh, 0, side_y - 1))
        mask[i0:i1 + 1, j0:j1 + 1] = True
    return mask


def build_endpoint_paths(name: str, graph: TimingGraph,
                         seed: int = 0) -> List[List[tuple]]:
    """Per-endpoint critical-path net edges, in endpoint order.

    The paths depend only on graph *topology* (plus the seeded tie-break
    rng), not on placement, so callers that edit positions — notably
    :class:`repro.serve.DesignSession` — can compute them once and
    re-rasterize only the endpoints an edit touches.  The rng is spawned
    and consumed exactly as :func:`build_endpoint_masks` always did, so
    cached paths and a from-scratch mask build agree bit-for-bit.
    """
    rng = spawn_rng(f"mask/{name}", seed)
    return [path_net_edges(graph, longest_level_path(graph, int(ep), rng))
            for ep in graph.endpoints]


def rasterize_endpoint_masks(netlist: Netlist, placement: Placement,
                             paths: List[List[tuple]],
                             map_bins: int) -> np.ndarray:
    """Rasterize per-endpoint path edges into flattened boolean masks."""
    require(map_bins % 4 == 0, "map_bins must be divisible by 4")
    side = map_bins // 4
    masks = np.zeros((len(paths), side * side), dtype=bool)
    for k, edges in enumerate(paths):
        masks[k] = rasterize_region(netlist, placement, edges,
                                    side, side).ravel()
    return masks


def stack_endpoint_masks(samples) -> np.ndarray:
    """Stack per-design endpoint masks along one batched endpoint axis.

    The masked-layout product (Eq. (6)) is per-endpoint, so masks of
    several designs batch by simple concatenation — provided every design
    was rasterized at the same resolution (one CNN output map serves the
    whole batch).  Returns a ``(sum_E, P4)`` boolean array.
    """
    require(len(samples) > 0, "need at least one sample to stack")
    p4 = samples[0].masks.shape[1]
    for s in samples[1:]:
        require(s.masks.shape[1] == p4,
                f"cannot stack masks of widths {p4} and "
                f"{s.masks.shape[1]} ({s.name}): designs were rasterized "
                "at different map resolutions")
    if len(samples) == 1:
        return samples[0].masks
    return np.concatenate([s.masks for s in samples], axis=0)


def build_endpoint_masks(netlist: Netlist, placement: Placement,
                         graph: TimingGraph, map_bins: int,
                         seed: int = 0) -> np.ndarray:
    """Critical-region masks for every endpoint.

    Returns a boolean array of shape ``(E, (map_bins // 4) ** 2)`` — one
    flattened mask per endpoint, at the resolution of the CNN output map
    (M/4 × N/4 for an M×N input, Section V-A).
    """
    paths = build_endpoint_paths(netlist.name, graph, seed)
    return rasterize_endpoint_masks(netlist, placement, paths, map_bins)
