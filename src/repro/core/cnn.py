"""The layout CNN branch (paper Section V-A, Fig. 4).

Consumes the stacked (cell density, RUDY, macro) maps of shape
``3 × M × N`` and produces the fused global layout information map
``M^L ∈ R^(M/4 × N/4)`` through convolution + pooling stages.  The paper
uses M = N = 512; the architecture below is resolution-agnostic (two
2× poolings) so the CPU-scale default of 64 and the paper value both work.
"""

from __future__ import annotations

import numpy as np

from repro.nn import Conv2d, MaxPool2d, Module, ReLU, Sequential
from repro.utils import require


class LayoutEncoder(Module):
    """3×M×N layout stack → (M/4 · N/4) global layout map, flattened."""

    def __init__(self, rng: np.random.Generator,
                 channels: int = 8) -> None:
        self.net = Sequential(
            Conv2d(3, channels, 3, padding=1, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Conv2d(channels, 2 * channels, 3, padding=1, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Conv2d(2 * channels, 1, 1, rng=rng),
        )
        self._shape = None

    def forward(self, layout_stack: np.ndarray) -> np.ndarray:
        """(3, M, N) → flattened global map of length (M//4) * (N//4)."""
        require(layout_stack.ndim == 3 and layout_stack.shape[0] == 3,
                f"expected (3, M, N), got {layout_stack.shape}")
        m, n = layout_stack.shape[1:]
        require(m % 4 == 0 and n % 4 == 0, "map size must be divisible by 4")
        out = self.net.forward(layout_stack[None])   # (1, 1, M/4, N/4)
        self._shape = out.shape
        return out.ravel()

    def backward(self, grad_flat: np.ndarray) -> None:
        """Backprop a gradient w.r.t. the flattened global map."""
        self.net.backward(grad_flat.reshape(self._shape))
