"""The layout CNN branch (paper Section V-A, Fig. 4).

Consumes the stacked (cell density, RUDY, macro) maps of shape
``3 × M × N`` and produces the fused global layout information map
``M^L ∈ R^(M/4 × N/4)`` through convolution + pooling stages.  The paper
uses M = N = 512; the architecture below is resolution-agnostic (two
2× poolings) so the CPU-scale default of 64 and the paper value both work.

The native execution shape is **batched**: :meth:`LayoutEncoder.
forward_batch` runs B designs' map stacks through one convolution pass
(the conv/pool layers are NCHW and batch along N for free).  The legacy
single-design ``forward``/``backward`` are kept as a batch of one.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.nn import Conv2d, MaxPool2d, Module, ReLU, Sequential, is_inference
from repro.utils import require


class LayoutEncoder(Module):
    """(B, 3, M, N) layout stacks → (B, M/4 · N/4) global layout maps."""

    def __init__(self, rng: np.random.Generator,
                 channels: int = 8) -> None:
        self.net = Sequential(
            Conv2d(3, channels, 3, padding=1, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Conv2d(channels, 2 * channels, 3, padding=1, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Conv2d(2 * channels, 1, 1, rng=rng),
        )
        self._shapes: List[tuple] = []

    # ------------------------------------------------------------------
    def forward_batch(self, stacks: np.ndarray) -> np.ndarray:
        """(B, 3, M, N) → (B, (M//4) * (N//4)) flattened global maps."""
        require(stacks.ndim == 4 and stacks.shape[1] == 3,
                f"expected (B, 3, M, N), got {stacks.shape}")
        m, n = stacks.shape[2:]
        require(m % 4 == 0 and n % 4 == 0, "map size must be divisible by 4")
        out = self.net.forward(stacks)               # (B, 1, M/4, N/4)
        if not is_inference():
            self._shapes.append(out.shape)
        return out.reshape(out.shape[0], -1)

    def backward_batch(self, grad_flat: np.ndarray) -> None:
        """Backprop a (B, P4) gradient w.r.t. the flattened global maps."""
        shape = self._shapes.pop()
        self.net.backward(grad_flat.reshape(shape))

    # ------------------------------------------------------------------
    def forward(self, layout_stack: np.ndarray) -> np.ndarray:
        """(3, M, N) → flattened global map; a batch of one."""
        require(layout_stack.ndim == 3 and layout_stack.shape[0] == 3,
                f"expected (3, M, N), got {layout_stack.shape}")
        return self.forward_batch(layout_stack[None])[0]

    def backward(self, grad_flat: np.ndarray) -> None:
        """Backprop a gradient w.r.t. one flattened global map."""
        self.backward_batch(grad_flat[None])

    def _drain_cache(self) -> None:
        self._shapes.clear()
