"""The customized endpoint-embedding GNN (paper Section IV-B, Eq. (3)).

Message passing runs once, level by level in topological order (Fig. 3):

* **cell nodes** aggregate their predecessors with an elementwise **max**
  (delay at an output pin is set by the latest input), transformed by MLP
  ``f_c1``, plus MLP ``f_c2`` of the cell features;
* **net nodes** receive their single driver's embedding directly, plus MLP
  ``f_n`` of the net features;

followed by a ReLU.  Because each MLP is applied once per level, the layer
cache stacks (see :mod:`repro.nn.module`) unwind naturally when
``backward`` sweeps the levels in reverse, routing max-gradients through
the cached argmax winners.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ml.sample import DesignSample
from repro.nn import Module, Parameter, mlp
from repro.utils import require


class EndpointGNN(Module):
    """Level-wise heterograph GNN producing one embedding per node."""

    def __init__(self, hidden: int, cell_feat_dim: int, net_feat_dim: int,
                 rng: np.random.Generator, n_layers: int = 3,
                 residual: bool = True) -> None:
        """``residual=True`` adds an identity path through the cell update:
        ``h = relu(max_pred + f_c1(max_pred) + f_c2(x))``.  Eq. (3) of the
        paper has no identity term, but endpoint cones here are up to ~60
        cell stages deep and the plain form must push every embedding
        through ~60 stacked MLPs — numerically untrainable at our scale.
        The net-node update is already residual in the paper (``h_d`` enters
        unchanged), so this extends the same idea to cell nodes; the
        ablation benchmark compares both forms.
        """
        require(n_layers >= 2, "paper uses 3-layer MLPs; need at least 2")
        self.hidden = hidden
        self.residual = residual
        init_scale = 0.0 if residual else 1.0
        sizes_h = [hidden] + [hidden] * (n_layers - 1) + [hidden]
        self.f_c1 = mlp(sizes_h, rng)
        self.f_c2 = mlp([cell_feat_dim] + [hidden] * (n_layers - 1) + [hidden],
                        rng)
        self.f_n = mlp([net_feat_dim] + [hidden] * (n_layers - 1) + [hidden],
                       rng)
        if residual:
            # Zero-init the output layer of every branch MLP: at t=0 the
            # network is a pure identity propagation and training grows the
            # per-stage contributions from zero — the standard recipe for
            # very deep residual stacks (here: one stack level per
            # topological level, up to ~120).
            for branch in (self.f_c1, self.f_c2, self.f_n):
                last = branch.layers[-1]
                last.weight.data[...] = 0.0
                if last.bias is not None:
                    last.bias.data[...] = 0.0
        self.source_emb = Parameter(rng.normal(0.0, 0.1, hidden))
        self._cache: List[dict] = []
        self._sample: Optional[DesignSample] = None

    # ------------------------------------------------------------------
    def forward(self, sample: DesignSample) -> np.ndarray:
        """Propagate through all levels; returns the (n, hidden) embeddings."""
        h = self.hidden
        n = sample.n_nodes
        # Sentinel row at index -1 carries -inf so padded predecessor slots
        # never win the max.
        big = np.full((n + 1, h), -np.inf)
        big[sample.source_nodes] = self.source_emb.data
        # Unreachable isolated nodes would poison downstream levels; give
        # every level-0 node the source embedding.
        level0 = np.where(sample.level == 0)[0]
        big[level0] = self.source_emb.data

        caches: List[dict] = []
        for plan in sample.plans:
            entry: dict = {}
            if len(plan.cell_nodes):
                gathered = big[plan.cell_preds]          # (m, K, h)
                maxv = gathered.max(axis=1)
                arg = gathered.argmax(axis=1)            # (m, h)
                pre = (self.f_c1.forward(maxv)
                       + self.f_c2.forward(sample.x_cell[plan.cell_nodes]))
                if self.residual:
                    pre = pre + maxv
                mask = pre > 0
                big[plan.cell_nodes] = pre * mask
                entry["cell_mask"] = mask
                entry["cell_winner"] = np.take_along_axis(
                    plan.cell_preds, arg, axis=1)        # (m, h) node ids
            if len(plan.net_nodes):
                pre = (big[plan.net_drivers]
                       + self.f_n.forward(sample.x_net[plan.net_nodes]))
                mask = pre > 0
                big[plan.net_nodes] = pre * mask
                entry["net_mask"] = mask
            caches.append(entry)
        self._cache.append(caches)
        self._sample = sample
        return big[:n]

    # ------------------------------------------------------------------
    def backward(self, grad_h: np.ndarray) -> None:
        """Backpropagate a (n, hidden) gradient w.r.t. the embeddings.

        Feature gradients are discarded (features are inputs); parameter
        gradients accumulate into the MLPs and the source embedding.
        """
        sample = self._sample
        caches = self._cache.pop()
        dh = np.zeros((sample.n_nodes, self.hidden))
        dh += grad_h
        for plan, entry in zip(reversed(sample.plans), reversed(caches)):
            # Net nodes were written after cell nodes in forward, so their
            # MLP cache must unwind first.
            if len(plan.net_nodes):
                g = dh[plan.net_nodes] * entry["net_mask"]
                self.f_n.backward(g)
                np.add.at(dh, plan.net_drivers, g)
            if len(plan.cell_nodes):
                g = dh[plan.cell_nodes] * entry["cell_mask"]
                self.f_c2.backward(g)
                ga = self.f_c1.backward(g)               # grad w.r.t. maxv
                if self.residual:
                    ga = ga + g                          # identity path
                winner = entry["cell_winner"]            # (m, h) node ids
                dims = np.broadcast_to(np.arange(self.hidden), winner.shape)
                np.add.at(dh, (winner.ravel(), dims.ravel()), ga.ravel())
        level0 = np.where(sample.level == 0)[0]
        self.source_emb.grad += dh[level0].sum(axis=0)
        self._sample = None
