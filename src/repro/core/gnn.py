"""The customized endpoint-embedding GNN (paper Section IV-B, Eq. (3)).

Message passing runs once, level by level in topological order (Fig. 3):

* **cell nodes** aggregate their predecessors with an elementwise **max**
  (delay at an output pin is set by the latest input), transformed by MLP
  ``f_c1``, plus MLP ``f_c2`` of the cell features;
* **net nodes** receive their single driver's embedding directly, plus MLP
  ``f_n`` of the net features;

followed by a ReLU.  Because each MLP is applied once per level, the layer
cache stacks (see :mod:`repro.nn.module`) unwind naturally when
``backward`` sweeps the levels in reverse, routing max-gradients through
the cached argmax winners.

The forward/backward passes are **batch-shaped**: they consume anything
presenting the node-level sample interface — a single
:class:`~repro.ml.sample.DesignSample` or a
:class:`~repro.ml.batch.PackedBatch` (the disjoint union of several
designs).  Level-wise message passing over a pack is the same loop with
wider levels: the merged :class:`~repro.ml.sample.LevelPlan`\\ s carry the
offset node ids, and the ``-1`` predecessor padding keeps pointing at the
single shared sentinel row.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Union

import numpy as np

from repro.ml.batch import plan_orders
from repro.ml.sample import DesignSample
from repro.nn import (
    Module,
    Parameter,
    inference_mode,
    mlp,
    workspace,
    ws_empty,
)
from repro.timing.partition import StreamPlan
from repro.utils import require

if TYPE_CHECKING:  # import cycle guard: repro.ml.batch imports repro.core
    from repro.ml.batch import PackedBatch

#: Anything with the node-level sample interface the GNN consumes.
SampleLike = Union[DesignSample, "PackedBatch"]

#: The feature branches run in fixed tiles of the level-ordered row block,
#: at *absolute* row offsets.  BLAS blocks a GEMM on the row count, so
#: slicing rows out of a different-m call is not ulp-stable — tiling both
#: execution paths at the same absolute boundaries means every feature row
#: comes from an identical call no matter how the level schedule is
#: chunked, which is what makes streamed execution bit-identical.
FEAT_TILE = 4096


def _feat_rows(branch: Module, x: np.ndarray, order: np.ndarray,
               begin: int, end: int) -> np.ndarray:
    """Rows ``[begin:end)`` of ``branch(x[order])``, in absolute tiles.

    A caller that needs a sub-range (a stream chunk) recomputes at most
    one boundary tile on each side — the price of exactness, bounded by
    ``2 * FEAT_TILE`` rows per chunk.
    """
    if begin >= end:
        return np.zeros((0, 0))
    n = len(order)
    parts = []
    tb = (begin // FEAT_TILE) * FEAT_TILE
    while tb < end:
        te = min(tb + FEAT_TILE, n)
        rows = branch.forward(np.take(x, order[tb:te], axis=0))
        parts.append(rows[max(begin, tb) - tb:min(end, te) - tb])
        tb += FEAT_TILE
    return parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)


class EndpointGNN(Module):
    """Level-wise heterograph GNN producing one embedding per node."""

    def __init__(self, hidden: int, cell_feat_dim: int, net_feat_dim: int,
                 rng: np.random.Generator, n_layers: int = 3,
                 residual: bool = True) -> None:
        """``residual=True`` adds an identity path through the cell update:
        ``h = relu(max_pred + f_c1(max_pred) + f_c2(x))``.  Eq. (3) of the
        paper has no identity term, but endpoint cones here are up to ~60
        cell stages deep and the plain form must push every embedding
        through ~60 stacked MLPs — numerically untrainable at our scale.
        The net-node update is already residual in the paper (``h_d`` enters
        unchanged), so this extends the same idea to cell nodes; the
        ablation benchmark compares both forms.
        """
        require(n_layers >= 2, "paper uses 3-layer MLPs; need at least 2")
        self.hidden = hidden
        self.residual = residual
        init_scale = 0.0 if residual else 1.0
        sizes_h = [hidden] + [hidden] * (n_layers - 1) + [hidden]
        self.f_c1 = mlp(sizes_h, rng)
        self.f_c2 = mlp([cell_feat_dim] + [hidden] * (n_layers - 1) + [hidden],
                        rng)
        self.f_n = mlp([net_feat_dim] + [hidden] * (n_layers - 1) + [hidden],
                       rng)
        if residual:
            # Zero-init the output layer of every branch MLP: at t=0 the
            # network is a pure identity propagation and training grows the
            # per-stage contributions from zero — the standard recipe for
            # very deep residual stacks (here: one stack level per
            # topological level, up to ~120).
            for branch in (self.f_c1, self.f_c2, self.f_n):
                last = branch.layers[-1]
                last.weight.data[...] = 0.0
                if last.bias is not None:
                    last.bias.data[...] = 0.0
        self.source_emb = Parameter(rng.normal(0.0, 0.1, hidden))
        self._cache: List[dict] = []
        self._sample: Optional[SampleLike] = None

    def _drain_cache(self) -> None:
        self._cache.clear()
        self._sample = None

    # ------------------------------------------------------------------
    def forward(self, sample: SampleLike,
                training: bool = True) -> np.ndarray:
        """Propagate through all levels; returns the (n, hidden) embeddings.

        *sample* may be a single design or a :class:`PackedBatch`; a pack
        runs the identical per-level arithmetic on the union graph, so
        the result rows equal the per-design rows up to fp round-off.

        ``training=False`` skips everything that exists only for
        :meth:`backward` — argmax winner routing, ReLU masks, the cache
        push — with bit-identical output (``max`` equals the argmax
        gather; ``maximum(pre, 0)`` equals ``pre * (pre > 0)`` for the
        finite values that reach it).
        """
        h = self.hidden
        n = sample.n_nodes
        inference = not training
        # Sentinel row at index -1 carries -inf so padded predecessor slots
        # never win the max.  Inference borrows the propagation buffer
        # from the active workspace arena, and runs in fp32 when a
        # reduced-precision tier is set — both leave the default fp64
        # values bit-identical (same ops, pooled destinations).  Gathers
        # stay allocating on purpose: ``np.take`` without ``out=`` is
        # ~2x faster than take-into-a-buffer (numpy routes the out=
        # variant through a buffered copy path).
        cell_order, net_order, level0 = plan_orders(sample)
        if inference:
            dt = np.float64 if self.precision == "fp64" else np.float32
            big = ws_empty((n + 1, h), dt)
            big.fill(-np.inf)
        else:
            big = np.full((n + 1, h), -np.inf)
        big[sample.source_nodes] = self.source_emb.data
        # Unreachable isolated nodes would poison downstream levels; give
        # every level-0 node the source embedding.
        big[level0] = self.source_emb.data

        # The feature branches f_c2/f_n see only node features, never the
        # propagated state, so they run hoisted over the level-ordered
        # rows — in FEAT_TILE-row tiles (not one whole-block call, see
        # :func:`_feat_rows`) so the streamed path can reproduce any
        # chunk's rows bit for bit.  The level loop then just slices the
        # precomputed rows.
        feat_c = _feat_rows(self.f_c2, sample.x_cell, cell_order,
                            0, len(cell_order))
        feat_n = _feat_rows(self.f_n, sample.x_net, net_order,
                            0, len(net_order))

        caches: List[dict] = []
        c_off = n_off = 0
        for plan in sample.plans:
            entry: dict = {}
            mc = len(plan.cell_nodes)
            if mc:
                if training:
                    gathered = big[plan.cell_preds]      # (m, K, h)
                    arg = gathered.argmax(axis=1)        # (m, h)
                    maxv = np.take_along_axis(gathered, arg[:, None, :],
                                              axis=1)[:, 0]
                else:
                    # np.take treats the -1 padding exactly like fancy
                    # indexing: it selects the last (sentinel) row.
                    gathered = np.take(big, plan.cell_preds, axis=0)
                    maxv = gathered.max(axis=1,
                                        out=ws_empty((mc, h), big.dtype))
                if training:
                    pre = self.f_c1.forward(maxv) + feat_c[c_off:c_off + mc]
                    if self.residual:
                        pre = pre + maxv
                    mask = pre > 0
                    big[plan.cell_nodes] = pre * mask
                    entry["cell_mask"] = mask
                    entry["cell_winner"] = np.take_along_axis(
                        plan.cell_preds, arg, axis=1)    # (m, h) node ids
                else:
                    pre = self.f_c1.forward(maxv)
                    pre += feat_c[c_off:c_off + mc]
                    if self.residual:
                        pre += maxv
                    big[plan.cell_nodes] = np.maximum(pre, 0.0, out=pre)
                c_off += mc
            mn = len(plan.net_nodes)
            if mn:
                if training:
                    pre = big[plan.net_drivers] + feat_n[n_off:n_off + mn]
                    mask = pre > 0
                    big[plan.net_nodes] = pre * mask
                    entry["net_mask"] = mask
                else:
                    pre = np.take(big, plan.net_drivers, axis=0)
                    pre += feat_n[n_off:n_off + mn]
                    big[plan.net_nodes] = np.maximum(pre, 0.0, out=pre)
                n_off += mn
            caches.append(entry)
        if training:
            self._cache.append(caches)
            self._sample = sample
        return big[:n]

    # ------------------------------------------------------------------
    def forward_stream(self, sample: SampleLike,
                       stream: StreamPlan) -> np.ndarray:
        """Inference forward streamed chunk-by-chunk; endpoint rows only.

        Executes the level schedule in :class:`StreamPlan` chunk order,
        holding one chunk-local propagation buffer at a time and carrying
        only frontier activations between chunks — never the ``(n+1, h)``
        whole-graph buffer.  Chunks are whole-level-aligned, so every
        per-level op sees the identical row sets as :meth:`forward`; the
        hoisted ``f_c2``/``f_n`` feature branches re-run the same
        absolute ``FEAT_TILE`` tiles of the level-ordered block (see
        :func:`_feat_rows` for why same-rows is not enough).  Result
        equals
        ``forward(sample, training=False)[sample.endpoint_nodes]`` bit
        for bit, without ever materializing the ``(n, h)`` table.

        Per-chunk buffers come from the plan's dedicated byte-capped
        workspace (entered anew each chunk, so cursors rewind and chunk
        *k+1* reuses chunk *k*'s arena); only the endpoint output and the
        frontier live store are plain allocations that survive the arena
        rewind.
        """
        require(not self._cache, "forward_stream is inference-only")
        h = self.hidden
        dt = np.float64 if self.precision == "fp64" else np.float32
        endpoint_nodes = sample.endpoint_nodes
        out = ws_empty((len(endpoint_nodes), h), dt)
        src = np.empty(h, dtype=dt)
        src[...] = self.source_emb.data
        # Level-0 endpoints (degenerate but legal) never pass through a
        # chunk buffer; they take the source embedding directly, exactly
        # like the whole-graph buffer's level-0 rows.
        lvl0_ep = np.asarray(sample.level)[endpoint_nodes] == 0
        if lvl0_ep.any():
            out[lvl0_ep] = src

        # The per-plan scratch arena holds exactly two *padded* slabs —
        # the propagation buffer and the max-reduction destination, both
        # (max_rows, h) and sliced down per chunk/level — so every chunk
        # (and every later request on the same plan) borrows the same
        # two allocations.  Everything else per chunk (feature-branch
        # MLP intermediates, predecessor gathers) deliberately runs with
        # NO active arena: those shapes differ chunk to chunk, so a pool
        # would retain every chunk's set and the working set would creep
        # back toward whole-graph scale; as plain allocations they are
        # freed the moment the chunk (or level) drops them.
        # inference_mode is part of the memory contract, not an
        # optimization: without it every Linear caches its input
        # activations for a backward that will never come, and the
        # retained caches grow right back to whole-graph scale.
        scratch = stream.scratch_workspace(h)
        live = np.empty((0, h), dtype=dt)
        cell_order_all, net_order_all, _ = plan_orders(sample)
        c_base = n_base = 0
        with inference_mode():
            for chunk in stream.chunks:
                with workspace(scratch):
                    buf = ws_empty((stream.max_rows, h), dt)[:chunk.n_rows]
                    maxv_slab = ws_empty((stream.max_rows, h), dt)
                buf.fill(-np.inf)
                buf[chunk.source_row] = src
                if chunk.n_halo:
                    buf[:chunk.n_halo] = live[chunk.halo_from_live]
                with workspace(None):
                    # Chunk rows are a contiguous [base, base+len) slice
                    # of the global level-ordered block; _feat_rows
                    # re-runs the same absolute tiles the monolithic
                    # forward runs, so the rows match it bit for bit.
                    feat_c = _feat_rows(self.f_c2, sample.x_cell,
                                        cell_order_all, c_base,
                                        c_base + len(chunk.cell_order))
                    feat_n = _feat_rows(self.f_n, sample.x_net,
                                        net_order_all, n_base,
                                        n_base + len(chunk.net_order))
                    c_base += len(chunk.cell_order)
                    n_base += len(chunk.net_order)
                    c_off = n_off = 0
                    for plan in chunk.plans:
                        mc = len(plan.cell_nodes)
                        if mc:
                            gathered = np.take(buf, plan.cell_preds, axis=0)
                            maxv = gathered.max(axis=1, out=maxv_slab[:mc])
                            pre = self.f_c1.forward(maxv)
                            pre += feat_c[c_off:c_off + mc]
                            if self.residual:
                                pre += maxv
                            buf[plan.cell_nodes] = np.maximum(pre, 0.0,
                                                              out=pre)
                            c_off += mc
                        mn = len(plan.net_nodes)
                        if mn:
                            pre = np.take(buf, plan.net_drivers, axis=0)
                            pre += feat_n[n_off:n_off + mn]
                            buf[plan.net_nodes] = np.maximum(pre, 0.0,
                                                             out=pre)
                            n_off += mn
                if len(chunk.endpoint_pos):
                    out[chunk.endpoint_pos] = buf[chunk.endpoint_local]
                # Frontier carry: plain allocations on purpose — the
                # next chunk's workspace entry rewinds the arena the
                # slabs live in, so nothing borrowed may cross the
                # chunk boundary.
                merged = np.concatenate([live[chunk.keep_prev],
                                         buf[chunk.keep_new]], axis=0)
                live = merged[chunk.live_order]
        return out

    # ------------------------------------------------------------------
    def backward(self, grad_h: np.ndarray) -> None:
        """Backpropagate a (n, hidden) gradient w.r.t. the embeddings.

        Feature gradients are discarded (features are inputs); parameter
        gradients accumulate into the MLPs and the source embedding.
        """
        sample = self._sample
        caches = self._cache.pop()
        dh = np.zeros((sample.n_nodes, self.hidden))
        dh += grad_h
        # Mirror of the forward's hoisting: collect the per-level f_c2/f_n
        # input gradients into level-ordered buffers, then run each branch
        # backward tile by tile.  dh[nodes of level L] is final by the
        # time the reverse sweep reaches level L, so the collected rows
        # equal the per-level calls'.
        cell_order, net_order, level0 = plan_orders(sample)
        gc_all = np.zeros((len(cell_order), self.hidden))
        gn_all = np.zeros((len(net_order), self.hidden))
        c_off, n_off = len(cell_order), len(net_order)
        for plan, entry in zip(reversed(sample.plans), reversed(caches)):
            # Net nodes were written after cell nodes in forward, so their
            # gradient must resolve first.
            mn = len(plan.net_nodes)
            if mn:
                g = dh[plan.net_nodes] * entry["net_mask"]
                n_off -= mn
                gn_all[n_off:n_off + mn] = g
                np.add.at(dh, plan.net_drivers, g)
            mc = len(plan.cell_nodes)
            if mc:
                g = dh[plan.cell_nodes] * entry["cell_mask"]
                c_off -= mc
                gc_all[c_off:c_off + mc] = g
                ga = self.f_c1.backward(g)               # grad w.r.t. maxv
                if self.residual:
                    ga = ga + g                          # identity path
                winner = entry["cell_winner"]            # (m, h) node ids
                dims = np.broadcast_to(np.arange(self.hidden), winner.shape)
                np.add.at(dh, (winner.ravel(), dims.ravel()), ga.ravel())
        # The forward ran each branch once per FEAT_TILE-row tile, pushing
        # one cache entry per tile — unwind them LIFO.
        for tb in reversed(range(0, len(gc_all), FEAT_TILE)):
            self.f_c2.backward(gc_all[tb:tb + FEAT_TILE])
        for tb in reversed(range(0, len(gn_all), FEAT_TILE)):
            self.f_n.backward(gn_all[tb:tb + FEAT_TILE])
        self.source_emb.grad += dh[level0].sum(axis=0)
        self._sample = None
