"""The customized endpoint-embedding GNN (paper Section IV-B, Eq. (3)).

Message passing runs once, level by level in topological order (Fig. 3):

* **cell nodes** aggregate their predecessors with an elementwise **max**
  (delay at an output pin is set by the latest input), transformed by MLP
  ``f_c1``, plus MLP ``f_c2`` of the cell features;
* **net nodes** receive their single driver's embedding directly, plus MLP
  ``f_n`` of the net features;

followed by a ReLU.  Because each MLP is applied once per level, the layer
cache stacks (see :mod:`repro.nn.module`) unwind naturally when
``backward`` sweeps the levels in reverse, routing max-gradients through
the cached argmax winners.

The forward/backward passes are **batch-shaped**: they consume anything
presenting the node-level sample interface — a single
:class:`~repro.ml.sample.DesignSample` or a
:class:`~repro.ml.batch.PackedBatch` (the disjoint union of several
designs).  Level-wise message passing over a pack is the same loop with
wider levels: the merged :class:`~repro.ml.sample.LevelPlan`\\ s carry the
offset node ids, and the ``-1`` predecessor padding keeps pointing at the
single shared sentinel row.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Union

import numpy as np

from repro.ml.batch import plan_orders
from repro.ml.sample import DesignSample
from repro.nn import Module, Parameter, mlp, ws_empty
from repro.utils import require

if TYPE_CHECKING:  # import cycle guard: repro.ml.batch imports repro.core
    from repro.ml.batch import PackedBatch

#: Anything with the node-level sample interface the GNN consumes.
SampleLike = Union[DesignSample, "PackedBatch"]


class EndpointGNN(Module):
    """Level-wise heterograph GNN producing one embedding per node."""

    def __init__(self, hidden: int, cell_feat_dim: int, net_feat_dim: int,
                 rng: np.random.Generator, n_layers: int = 3,
                 residual: bool = True) -> None:
        """``residual=True`` adds an identity path through the cell update:
        ``h = relu(max_pred + f_c1(max_pred) + f_c2(x))``.  Eq. (3) of the
        paper has no identity term, but endpoint cones here are up to ~60
        cell stages deep and the plain form must push every embedding
        through ~60 stacked MLPs — numerically untrainable at our scale.
        The net-node update is already residual in the paper (``h_d`` enters
        unchanged), so this extends the same idea to cell nodes; the
        ablation benchmark compares both forms.
        """
        require(n_layers >= 2, "paper uses 3-layer MLPs; need at least 2")
        self.hidden = hidden
        self.residual = residual
        init_scale = 0.0 if residual else 1.0
        sizes_h = [hidden] + [hidden] * (n_layers - 1) + [hidden]
        self.f_c1 = mlp(sizes_h, rng)
        self.f_c2 = mlp([cell_feat_dim] + [hidden] * (n_layers - 1) + [hidden],
                        rng)
        self.f_n = mlp([net_feat_dim] + [hidden] * (n_layers - 1) + [hidden],
                       rng)
        if residual:
            # Zero-init the output layer of every branch MLP: at t=0 the
            # network is a pure identity propagation and training grows the
            # per-stage contributions from zero — the standard recipe for
            # very deep residual stacks (here: one stack level per
            # topological level, up to ~120).
            for branch in (self.f_c1, self.f_c2, self.f_n):
                last = branch.layers[-1]
                last.weight.data[...] = 0.0
                if last.bias is not None:
                    last.bias.data[...] = 0.0
        self.source_emb = Parameter(rng.normal(0.0, 0.1, hidden))
        self._cache: List[dict] = []
        self._sample: Optional[SampleLike] = None

    def _drain_cache(self) -> None:
        self._cache.clear()
        self._sample = None

    # ------------------------------------------------------------------
    def forward(self, sample: SampleLike,
                training: bool = True) -> np.ndarray:
        """Propagate through all levels; returns the (n, hidden) embeddings.

        *sample* may be a single design or a :class:`PackedBatch`; a pack
        runs the identical per-level arithmetic on the union graph, so
        the result rows equal the per-design rows up to fp round-off.

        ``training=False`` skips everything that exists only for
        :meth:`backward` — argmax winner routing, ReLU masks, the cache
        push — with bit-identical output (``max`` equals the argmax
        gather; ``maximum(pre, 0)`` equals ``pre * (pre > 0)`` for the
        finite values that reach it).
        """
        h = self.hidden
        n = sample.n_nodes
        inference = not training
        # Sentinel row at index -1 carries -inf so padded predecessor slots
        # never win the max.  Inference borrows the propagation buffer
        # from the active workspace arena, and runs in fp32 when a
        # reduced-precision tier is set — both leave the default fp64
        # values bit-identical (same ops, pooled destinations).  Gathers
        # stay allocating on purpose: ``np.take`` without ``out=`` is
        # ~2x faster than take-into-a-buffer (numpy routes the out=
        # variant through a buffered copy path).
        cell_order, net_order, level0 = plan_orders(sample)
        if inference:
            dt = np.float64 if self.precision == "fp64" else np.float32
            big = ws_empty((n + 1, h), dt)
            big.fill(-np.inf)
        else:
            big = np.full((n + 1, h), -np.inf)
        big[sample.source_nodes] = self.source_emb.data
        # Unreachable isolated nodes would poison downstream levels; give
        # every level-0 node the source embedding.
        big[level0] = self.source_emb.data

        # The feature branches f_c2/f_n see only node features, never the
        # propagated state, so they run **once** over every level's rows
        # in level order — one batched MLP call each instead of one small
        # call per level.  Same per-row arithmetic; the level loop then
        # just slices the precomputed rows.
        if inference:
            x_c = np.take(sample.x_cell, cell_order, axis=0)
            x_n = np.take(sample.x_net, net_order, axis=0)
        else:
            x_c = sample.x_cell[cell_order]
            x_n = sample.x_net[net_order]
        feat_c = self.f_c2.forward(x_c)
        feat_n = self.f_n.forward(x_n)

        caches: List[dict] = []
        c_off = n_off = 0
        for plan in sample.plans:
            entry: dict = {}
            mc = len(plan.cell_nodes)
            if mc:
                if training:
                    gathered = big[plan.cell_preds]      # (m, K, h)
                    arg = gathered.argmax(axis=1)        # (m, h)
                    maxv = np.take_along_axis(gathered, arg[:, None, :],
                                              axis=1)[:, 0]
                else:
                    # np.take treats the -1 padding exactly like fancy
                    # indexing: it selects the last (sentinel) row.
                    gathered = np.take(big, plan.cell_preds, axis=0)
                    maxv = gathered.max(axis=1,
                                        out=ws_empty((mc, h), big.dtype))
                if training:
                    pre = self.f_c1.forward(maxv) + feat_c[c_off:c_off + mc]
                    if self.residual:
                        pre = pre + maxv
                    mask = pre > 0
                    big[plan.cell_nodes] = pre * mask
                    entry["cell_mask"] = mask
                    entry["cell_winner"] = np.take_along_axis(
                        plan.cell_preds, arg, axis=1)    # (m, h) node ids
                else:
                    pre = self.f_c1.forward(maxv)
                    pre += feat_c[c_off:c_off + mc]
                    if self.residual:
                        pre += maxv
                    big[plan.cell_nodes] = np.maximum(pre, 0.0, out=pre)
                c_off += mc
            mn = len(plan.net_nodes)
            if mn:
                if training:
                    pre = big[plan.net_drivers] + feat_n[n_off:n_off + mn]
                    mask = pre > 0
                    big[plan.net_nodes] = pre * mask
                    entry["net_mask"] = mask
                else:
                    pre = np.take(big, plan.net_drivers, axis=0)
                    pre += feat_n[n_off:n_off + mn]
                    big[plan.net_nodes] = np.maximum(pre, 0.0, out=pre)
                n_off += mn
            caches.append(entry)
        if training:
            self._cache.append(caches)
            self._sample = sample
        return big[:n]

    # ------------------------------------------------------------------
    def backward(self, grad_h: np.ndarray) -> None:
        """Backpropagate a (n, hidden) gradient w.r.t. the embeddings.

        Feature gradients are discarded (features are inputs); parameter
        gradients accumulate into the MLPs and the source embedding.
        """
        sample = self._sample
        caches = self._cache.pop()
        dh = np.zeros((sample.n_nodes, self.hidden))
        dh += grad_h
        # Mirror of the forward's hoisting: collect the per-level f_c2/f_n
        # input gradients into level-ordered buffers and run each branch
        # backward once.  dh[nodes of level L] is final by the time the
        # reverse sweep reaches level L, so the collected rows equal the
        # per-level calls'.
        cell_order, net_order, level0 = plan_orders(sample)
        gc_all = np.zeros((len(cell_order), self.hidden))
        gn_all = np.zeros((len(net_order), self.hidden))
        c_off, n_off = len(cell_order), len(net_order)
        for plan, entry in zip(reversed(sample.plans), reversed(caches)):
            # Net nodes were written after cell nodes in forward, so their
            # gradient must resolve first.
            mn = len(plan.net_nodes)
            if mn:
                g = dh[plan.net_nodes] * entry["net_mask"]
                n_off -= mn
                gn_all[n_off:n_off + mn] = g
                np.add.at(dh, plan.net_drivers, g)
            mc = len(plan.cell_nodes)
            if mc:
                g = dh[plan.cell_nodes] * entry["cell_mask"]
                c_off -= mc
                gc_all[c_off:c_off + mc] = g
                ga = self.f_c1.backward(g)               # grad w.r.t. maxv
                if self.residual:
                    ga = ga + g                          # identity path
                winner = entry["cell_winner"]            # (m, h) node ids
                dims = np.broadcast_to(np.arange(self.hidden), winner.shape)
                np.add.at(dh, (winner.ravel(), dims.ravel()), ga.ravel())
        self.f_c2.backward(gc_all)
        self.f_n.backward(gn_all)
        self.source_emb.grad += dh[level0].sum(axis=0)
        self._sample = None
