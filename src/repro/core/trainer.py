"""Training loop for the multimodal model (paper Section VI-A).

The paper trains with MSE on endpoint arrival time, Adam, lr = 1e-3, on
batches of **1024 endpoints**.  We do the same: the training designs are
disjoint-unioned into one :class:`~repro.ml.batch.PackedBatch` and each
epoch walks seeded, shuffled **cross-design endpoint mini-batches**
(:class:`~repro.ml.batch.EndpointBatchSampler`, default 1024) — one
packed forward/backward and one Adam step per mini-batch.  Labels are
z-scored over the training set so one normalization serves all designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.fusion import RestructureTolerantModel
from repro.ml.batch import DEFAULT_ENDPOINT_BATCH, EndpointBatchSampler, PackedBatch
from repro.ml.sample import DesignSample
from repro.nn import Adam, mse_loss
from repro.obs import get_metrics, get_tracer
from repro.utils import get_logger, require, spawn_rng

logger = get_logger("core.trainer")


@dataclass(frozen=True)
class TrainerConfig:
    """Optimization hyper-parameters."""

    epochs: int = 60
    lr: float = 1e-3
    seed: int = 0
    log_every: int = 10
    #: Endpoints per cross-design mini-batch (paper Section VI-A: 1024).
    endpoint_batch: int = DEFAULT_ENDPOINT_BATCH


@dataclass
class LabelNorm:
    """Clock-relative label normalization.

    Designs differ in logic depth and clock period by large factors, so raw
    arrival times do not share a scale across designs.  The clock period is
    a *known constraint* at inference time, so we regress the ratio
    ``arrival / clock_period`` (z-scored over the training set) — the model
    stays identical, only the target's units change.
    """

    mean: float
    std: float

    @classmethod
    def fit(cls, samples: List[DesignSample]) -> "LabelNorm":
        r = np.concatenate([s.y / s.clock_period for s in samples])
        return cls(mean=float(r.mean()), std=float(max(r.std(), 1e-9)))

    def normalize(self, y: np.ndarray, clock_period: float) -> np.ndarray:
        return (y / clock_period - self.mean) / self.std

    def denormalize(self, z: np.ndarray, clock_period: float) -> np.ndarray:
        return (z * self.std + self.mean) * clock_period

    def normalize_packed(self, batch: PackedBatch) -> np.ndarray:
        """Normalized targets along the packed endpoint axis."""
        return ((batch.y / batch.endpoint_clock_periods - self.mean)
                / self.std)

    def denormalize_packed(self, z: np.ndarray,
                           batch: PackedBatch) -> np.ndarray:
        """Invert :meth:`normalize_packed` (per-endpoint clock periods).

        Preserves ``z``'s dtype: the fp32 inference tier must not be
        silently upcast by the fp64 clock-period vector on its way out
        (for fp64 ``z`` the cast is a no-op on the same array).
        """
        cp = batch.endpoint_clock_periods.astype(z.dtype, copy=False)
        return (z * self.std + self.mean) * cp


class Trainer:
    """Fits a :class:`RestructureTolerantModel` on design samples."""

    def __init__(self, model: RestructureTolerantModel,
                 config: Optional[TrainerConfig] = None) -> None:
        self.model = model
        self.config = config or TrainerConfig()
        self.norm: Optional[LabelNorm] = None
        self.history: List[float] = []

    def fit(self, train_samples: List[DesignSample]
            ) -> Dict[Tuple[str, int], float]:
        """Train on the given samples.

        Returns the final-epoch loss per sample, keyed by ``(design name,
        position in train_samples)`` — augmented datasets may contain
        several placements of the same named design, so the name alone
        would collide and silently drop losses.
        """
        require(len(train_samples) > 0, "need at least one training sample")
        self.norm = LabelNorm.fit(train_samples)
        optimizer = Adam(self.model.parameters(), lr=self.config.lr)
        rng = spawn_rng("trainer", self.config.seed)

        batch = PackedBatch.pack(train_samples)
        targets = self.norm.normalize_packed(batch)
        # ``endpoint_batch`` caps the mini-batch; the effective size also
        # guarantees at least one optimizer step per packed design each
        # epoch, so packing N tiny designs never takes *fewer* Adam steps
        # than the per-design full-batch loop it replaced.
        effective_batch = min(self.config.endpoint_batch,
                              -(-batch.n_endpoints // batch.n_samples))
        sampler = EndpointBatchSampler(batch.n_endpoints, effective_batch)
        metrics = get_metrics()
        metrics.gauge("trainer.endpoint_batch").set(sampler.batch_size)
        metrics.gauge("trainer.packed_designs").set(batch.n_samples)
        per_sample = np.zeros(batch.n_samples)
        for epoch in range(self.config.epochs):
            with get_tracer().span("trainer.epoch", epoch=epoch) as sp:
                sq_sum = np.zeros(batch.n_samples)
                for idx in sampler.batches(rng):
                    pred = self.model.forward_batch(batch)
                    loss, grad_sel = mse_loss(pred[idx], targets[idx])
                    grad = np.zeros(batch.n_endpoints)
                    grad[idx] = grad_sel
                    optimizer.zero_grad()
                    self.model.backward_batch(grad)
                    optimizer.step()
                    err = pred[idx] - targets[idx]
                    np.add.at(sq_sum, batch.endpoint_sample[idx], err * err)
                    metrics.histogram("trainer.batch_endpoints").observe(
                        len(idx))
                    metrics.histogram("trainer.batch_loss").observe(loss)
                per_sample = sq_sum / np.maximum(
                    batch.endpoints_per_sample, 1)
                self.history.append(float(sq_sum.sum()
                                          / batch.n_endpoints))
                sp.set(loss=self.history[-1])
            metrics.counter("trainer.steps").inc(sampler.n_batches)
            if sp.duration > 0:
                metrics.gauge("trainer.endpoints_per_s").set(
                    sampler.n_batches * len(targets) / sp.duration)
            metrics.gauge("trainer.epoch_loss").set(self.history[-1])
            metrics.histogram("trainer.epoch_loss_hist").observe(
                self.history[-1])
            if (epoch + 1) % self.config.log_every == 0:
                logger.info("epoch %d: mean loss %.4f", epoch + 1,
                            self.history[-1])
        return {(s.name, i): float(per_sample[i])
                for i, s in enumerate(train_samples)}

    def predict(self, sample: DesignSample) -> np.ndarray:
        """Predicted sign-off endpoint arrival times in ps."""
        require(self.norm is not None, "call fit() before predict()")
        pred = self.model.forward_batch(PackedBatch.pack([sample]),
                                        training=False)
        self.model.drain_caches()  # inference: no backward will unwind
        return self.norm.denormalize(pred, sample.clock_period)

    def predict_packed(self, batch: PackedBatch) -> List[np.ndarray]:
        """One packed forward over *batch*; per-sample arrival arrays (ps)."""
        require(self.norm is not None, "call fit() before predict()")
        pred = self.model.forward_batch(batch, training=False)
        self.model.drain_caches()
        return batch.split_endpoint_array(
            self.norm.denormalize_packed(pred, batch))

    def predict_batch(self, samples: Sequence[DesignSample]
                      ) -> List[np.ndarray]:
        """Predict several designs in one packed forward pass."""
        return self.predict_packed(PackedBatch.pack(samples))
