"""Training loop for the multimodal model (paper Section VI-A).

The paper trains with MSE on endpoint arrival time, Adam, lr = 1e-3.  We
train full-batch per design (a design's endpoints form one batch; the paper
batches 1024 endpoints, same order of magnitude).  Labels are z-scored over
the training set so one normalization serves all designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.fusion import RestructureTolerantModel
from repro.ml.sample import DesignSample
from repro.nn import Adam, mse_loss
from repro.obs import get_metrics, get_tracer
from repro.utils import get_logger, require, spawn_rng

logger = get_logger("core.trainer")


@dataclass(frozen=True)
class TrainerConfig:
    """Optimization hyper-parameters."""

    epochs: int = 60
    lr: float = 1e-3
    seed: int = 0
    log_every: int = 10


@dataclass
class LabelNorm:
    """Clock-relative label normalization.

    Designs differ in logic depth and clock period by large factors, so raw
    arrival times do not share a scale across designs.  The clock period is
    a *known constraint* at inference time, so we regress the ratio
    ``arrival / clock_period`` (z-scored over the training set) — the model
    stays identical, only the target's units change.
    """

    mean: float
    std: float

    @classmethod
    def fit(cls, samples: List[DesignSample]) -> "LabelNorm":
        r = np.concatenate([s.y / s.clock_period for s in samples])
        return cls(mean=float(r.mean()), std=float(max(r.std(), 1e-9)))

    def normalize(self, y: np.ndarray, clock_period: float) -> np.ndarray:
        return (y / clock_period - self.mean) / self.std

    def denormalize(self, z: np.ndarray, clock_period: float) -> np.ndarray:
        return (z * self.std + self.mean) * clock_period


class Trainer:
    """Fits a :class:`RestructureTolerantModel` on design samples."""

    def __init__(self, model: RestructureTolerantModel,
                 config: Optional[TrainerConfig] = None) -> None:
        self.model = model
        self.config = config or TrainerConfig()
        self.norm: Optional[LabelNorm] = None
        self.history: List[float] = []

    def fit(self, train_samples: List[DesignSample]
            ) -> Dict[Tuple[str, int], float]:
        """Train on the given samples.

        Returns the final loss per sample, keyed by ``(design name,
        position in train_samples)`` — augmented datasets may contain
        several placements of the same named design, so the name alone
        would collide and silently drop losses.
        """
        require(len(train_samples) > 0, "need at least one training sample")
        self.norm = LabelNorm.fit(train_samples)
        optimizer = Adam(self.model.parameters(), lr=self.config.lr)
        rng = spawn_rng("trainer", self.config.seed)

        targets = [self.norm.normalize(s.y, s.clock_period)
                   for s in train_samples]
        final: Dict[Tuple[str, int], float] = {}
        metrics = get_metrics()
        for epoch in range(self.config.epochs):
            with get_tracer().span("trainer.epoch", epoch=epoch) as sp:
                order = rng.permutation(len(train_samples))
                epoch_loss = 0.0
                for idx in order:
                    sample = train_samples[idx]
                    pred = self.model.forward(sample)
                    loss, grad = mse_loss(pred, targets[idx])
                    optimizer.zero_grad()
                    self.model.backward(grad)
                    optimizer.step()
                    epoch_loss += loss
                    final[(sample.name, int(idx))] = loss
                self.history.append(epoch_loss / len(train_samples))
                sp.set(loss=self.history[-1])
            metrics.counter("trainer.steps").inc(len(train_samples))
            metrics.gauge("trainer.epoch_loss").set(self.history[-1])
            metrics.histogram("trainer.epoch_loss_hist").observe(
                self.history[-1])
            if (epoch + 1) % self.config.log_every == 0:
                logger.info("epoch %d: mean loss %.4f", epoch + 1,
                            self.history[-1])
        return final

    def predict(self, sample: DesignSample) -> np.ndarray:
        """Predicted sign-off endpoint arrival times in ps."""
        require(self.norm is not None, "call fit() before predict()")
        pred = self.model.forward(sample)
        self.model._cache = None  # inference: drop the backward cache
        _drain_caches(self.model)
        return self.norm.denormalize(pred, sample.clock_period)


def _drain_caches(model: RestructureTolerantModel) -> None:
    """Clear all layer cache stacks after an inference-only forward."""
    for module in model.modules():
        cache = getattr(module, "_cache", None)
        if isinstance(cache, list):
            cache.clear()
