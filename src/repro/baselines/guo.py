"""End-to-end GNN baseline: DAC'22-Guo [4] (TimingGCN-style).

Propagates embeddings through the pin heterograph in topological order and
reads predictions from per-node heads.  Following the paper's adaptation,
it is supervised by **net delay, cell delay, pin slew and pin arrival time**
on surviving elements (auxiliary tasks) with endpoint arrival read from the
arrival head — so, unlike our model, its training signal leans on local
quantities that restructuring renders inconsistent with the sign-off
labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.gnn import EndpointGNN
from repro.eval import r2_score
from repro.ml.features import CELL_FEATURE_DIM, NET_FEATURE_DIM
from repro.ml.sample import DesignSample
from repro.nn import Adam, mlp, mse_loss
from repro.utils import require, spawn_rng

#: The auxiliary supervision tasks: (name, per-node label attribute).
AUX_TASKS: Tuple[Tuple[str, str], ...] = (
    ("arrival", "aux_arrival"),
    ("slew", "aux_slew"),
    ("net_delay", "aux_net_delay"),
    ("cell_delay", "aux_cell_delay"),
)


@dataclass(frozen=True)
class GuoConfig:
    """Hyper-parameters of the end-to-end baseline."""

    hidden: int = 64
    head_hidden: int = 64
    epochs: int = 60
    lr: float = 1e-3
    aux_weight: float = 1.0
    seed: int = 0


class GuoBaseline:
    """Multi-task end-to-end GNN timing predictor."""

    def __init__(self, config: Optional[GuoConfig] = None) -> None:
        config = config or GuoConfig()
        self.config = config
        rng = spawn_rng("baseline/guo", config.seed)
        self.gnn = EndpointGNN(config.hidden, CELL_FEATURE_DIM,
                               NET_FEATURE_DIM, rng)
        self.heads = {name: mlp([config.hidden, config.head_hidden, 1], rng)
                      for name, _ in AUX_TASKS}
        self._norm: Dict[str, Tuple[float, float]] = {}

    def _parameters(self):
        params = list(self.gnn.parameters())
        for head in self.heads.values():
            params.extend(head.parameters())
        return params

    # ------------------------------------------------------------------
    def fit(self, train_samples: List[DesignSample]) -> None:
        """Multi-task training over the training designs."""
        # Per-task z-normalization over all finite labels.
        for name, attr in AUX_TASKS:
            vals = np.concatenate([
                getattr(s, attr)[np.isfinite(getattr(s, attr))]
                for s in train_samples])
            require(len(vals) > 10, f"task {name} has too few labels")
            self._norm[name] = (float(vals.mean()),
                                float(max(vals.std(), 1e-9)))

        optimizer = Adam(self._parameters(), lr=self.config.lr)
        rng = spawn_rng("baseline/guo/train", self.config.seed)
        for _ in range(self.config.epochs):
            order = rng.permutation(len(train_samples))
            for idx in order:
                sample = train_samples[idx]
                h = self.gnn.forward(sample)
                grad_h = np.zeros_like(h)
                optimizer.zero_grad()
                for name, attr in AUX_TASKS:
                    labels = getattr(sample, attr)
                    nodes = np.where(np.isfinite(labels))[0]
                    if len(nodes) < 2:
                        continue
                    mean, std = self._norm[name]
                    target = (labels[nodes] - mean) / std
                    pred = self.heads[name].forward(h[nodes]).ravel()
                    _, grad = mse_loss(pred, target)
                    grad = grad * self.config.aux_weight
                    gx = self.heads[name].backward(grad[:, None])
                    np.add.at(grad_h, nodes, gx)
                self.gnn.backward(grad_h)
                optimizer.step()

    # ------------------------------------------------------------------
    def _head_prediction(self, sample: DesignSample, name: str,
                         nodes: np.ndarray) -> np.ndarray:
        h = self.gnn.forward(sample)
        _drain(self.gnn)  # inference only: discard level caches
        pred = self.heads[name].forward(h[nodes]).ravel()
        _drain(self.heads[name])
        mean, std = self._norm[name]
        return pred * std + mean

    def predict_endpoint_arrival(self, sample: DesignSample) -> np.ndarray:
        """Arrival-head prediction at the endpoint nodes."""
        return self._head_prediction(sample, "arrival",
                                     sample.endpoint_nodes)

    def endpoint_r2(self, sample: DesignSample) -> float:
        return r2_score(sample.y, self.predict_endpoint_arrival(sample))

    def local_r2(self, sample: DesignSample) -> Tuple[float, float]:
        """(net delay R², cell delay R²) on surviving elements."""
        out = []
        for name in ("net_delay", "cell_delay"):
            attr = dict(AUX_TASKS)[name]
            labels = getattr(sample, attr)
            nodes = np.where(np.isfinite(labels))[0]
            pred = self._head_prediction(sample, name, nodes)
            out.append(r2_score(labels[nodes], pred))
        return tuple(out)


def _drain(module) -> None:
    for m in module.modules():
        cache = getattr(m, "_cache", None)
        if isinstance(cache, list):
            cache.clear()
