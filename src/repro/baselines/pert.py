"""PERT traversal over predicted local stage delays.

The two-stage baselines ([2] DAC'19, [3] DAC'22-He) predict a *stage*
delay per net edge — the driver cell's arc plus the net arc, as the paper
notes ("[2], [3] incorporate driver cell delay and net delay") — and then
propagate endpoint arrival times with a PERT (longest-path) traversal.
"""

from __future__ import annotations

import numpy as np

from repro.ml.sample import DesignSample


def pert_arrival(sample: DesignSample,
                 stage_delay_by_sink: np.ndarray,
                 source_arrival: float = 0.0) -> np.ndarray:
    """Arrival per node given per-net-sink stage delays.

    ``stage_delay_by_sink[v]`` is the predicted stage delay of the net edge
    ending at net-sink node ``v`` (covering the driving cell arc and the
    wire).  Cell-output nodes take the max of their inputs; sources start
    at *source_arrival*.
    """
    arrival = np.full(sample.n_nodes, -np.inf)
    arrival[sample.level == 0] = source_arrival
    for plan in sample.plans:
        if len(plan.cell_nodes):
            big = np.concatenate([arrival, [-np.inf]])
            arrival[plan.cell_nodes] = big[plan.cell_preds].max(axis=1)
        if len(plan.net_nodes):
            arrival[plan.net_nodes] = (arrival[plan.net_drivers]
                                       + stage_delay_by_sink[plan.net_nodes])
    return arrival


def endpoint_arrival(sample: DesignSample,
                     stage_delay_by_sink: np.ndarray) -> np.ndarray:
    """Endpoint slice of :func:`pert_arrival`, aligned with ``sample.y``."""
    return pert_arrival(sample, stage_delay_by_sink)[sample.endpoint_nodes]
