"""Prior-work baselines: DAC'19, DAC'22-He, DAC'22-Guo, Elmore STA."""

from repro.baselines.elmore import elmore_endpoint_arrival, elmore_endpoint_r2
from repro.baselines.guo import AUX_TASKS, GuoBaseline, GuoConfig
from repro.baselines.local_features import (
    DAC19_DIM,
    DAC22HE_DIM,
    stage_features,
    stage_labels,
)
from repro.baselines.pert import endpoint_arrival, pert_arrival
from repro.baselines.two_stage import TwoStageBaseline, TwoStageConfig

__all__ = [
    "elmore_endpoint_arrival",
    "elmore_endpoint_r2",
    "AUX_TASKS",
    "GuoBaseline",
    "GuoConfig",
    "DAC19_DIM",
    "DAC22HE_DIM",
    "stage_features",
    "stage_labels",
    "endpoint_arrival",
    "pert_arrival",
    "TwoStageBaseline",
    "TwoStageConfig",
]
