"""Analytical pre-routing baseline: Elmore-model STA arrival.

Not a learned model — the classic quick evaluation the paper's introduction
describes ([1]): run STA on the placement with Elmore wire estimates and no
knowledge of the optimizer.  Used as a reference point in the examples and
the ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.eval import r2_score
from repro.ml.sample import DesignSample


def elmore_endpoint_arrival(sample: DesignSample) -> np.ndarray:
    """Pre-routing STA arrival at the endpoints (already in the sample)."""
    return sample.pre_route_arrival[sample.endpoint_nodes]


def elmore_endpoint_r2(sample: DesignSample) -> float:
    """R² of the raw pre-routing estimate against sign-off arrival."""
    return r2_score(sample.y, elmore_endpoint_arrival(sample))
