"""Per-stage (net edge) features and labels for the local-view baselines.

A *stage* is one net edge (driver pin → sink pin) together with the cell
arc that produces the driver's signal.  DAC'19 [2] uses placement-stage
features; DAC'22-He [3] adds "look-ahead RC network" features (estimated
wire RC, Elmore delay, load, slew), which is what made it more accurate on
un-optimized flows.

Stage labels come from sign-off timing and only exist where *both* the net
edge and the driving cell survived optimization — the semi-supervised
adaptation the paper applies to these baselines (Section VI-B).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.liberty import GATE_KINDS
from repro.ml.sample import DesignSample
from repro.netlist import Netlist
from repro.placement import Placement
from repro.timing import TimingGraph

DAC19_DIM = 5 + len(GATE_KINDS)
LOOKAHEAD_EXTRA = 6
DAC22HE_DIM = DAC19_DIM + LOOKAHEAD_EXTRA


def stage_features(netlist: Netlist, placement: Placement,
                   graph: TimingGraph,
                   lookahead: bool) -> Tuple[np.ndarray, np.ndarray]:
    """Features per net edge, plus the sink-node index of each edge.

    Returns ``(features (E, D), sink_nodes (E,))`` where E is the number of
    net edges of the netlist and D depends on *lookahead*.
    """
    lib = netlist.library
    wire = lib.wire
    rows: List[np.ndarray] = []
    sink_nodes: List[int] = []
    dim = DAC22HE_DIM if lookahead else DAC19_DIM
    for net in netlist.nets.values():
        drv_pin = netlist.pins[net.driver]
        xd, yd = placement.pin_position(netlist, net.driver)
        fanout = len(net.sinks)
        # Driver cell electrical data (zeros for port-driven nets).
        if drv_pin.cell is not None:
            ctype = lib.cell(netlist.cells[drv_pin.cell].type_name)
            drive = ctype.drive / 8.0
            r_drive = ctype.drive_resistance
            kind_idx = lib.kind_index(ctype.kind.name)
            is_port = 0.0
        else:
            drive, r_drive, kind_idx, is_port = 0.0, 1.0, -1, 1.0
        # Total load the driver sees (needed by the look-ahead features).
        total_cap = 0.0
        for sp in net.sinks:
            spin = netlist.pins[sp]
            if spin.cell is not None:
                total_cap += lib.cell(
                    netlist.cells[spin.cell].type_name).input_cap
            dxs, dys = placement.pin_position(netlist, sp)
            total_cap += wire.capacitance(abs(xd - dxs) + abs(yd - dys))

        for sp in net.sinks:
            spin = netlist.pins[sp]
            xs, ys = placement.pin_position(netlist, sp)
            dist = abs(xd - xs) + abs(yd - ys)
            sink_cap = (lib.cell(netlist.cells[spin.cell].type_name).input_cap
                        if spin.cell is not None else 2.0)
            feats = np.zeros(dim)
            feats[0] = dist / 50.0
            feats[1] = fanout / 10.0
            feats[2] = drive
            feats[3] = sink_cap / 5.0
            feats[4] = is_port
            if kind_idx >= 0:
                feats[5 + kind_idx] = 1.0
            if lookahead:
                r_wire = wire.resistance(dist)
                c_wire = wire.capacitance(dist)
                elmore = r_wire * (0.5 * c_wire + sink_cap)
                cell_est = r_drive * total_cap
                base = DAC19_DIM
                feats[base + 0] = r_wire / 5.0
                feats[base + 1] = c_wire / 10.0
                feats[base + 2] = elmore / 20.0
                feats[base + 3] = total_cap / 20.0
                feats[base + 4] = cell_est / 100.0
                feats[base + 5] = (cell_est + elmore) / 100.0
            rows.append(feats)
            sink_nodes.append(graph.node_of[sp])
    return np.asarray(rows), np.asarray(sink_nodes, dtype=np.int64)


def stage_labels(netlist: Netlist,
                 sample: DesignSample) -> Dict[int, float]:
    """Sign-off stage delay per surviving net edge, keyed by sink node.

    Stage delay = (max surviving cell arc into the driver) + net edge
    delay.  Edges whose net arc or whose driver cell arcs were replaced are
    unlabeled (the paper's restructuring gap).
    """
    # Max surviving cell-arc delay per driver output pin.
    cell_delay_at: Dict[int, float] = {}
    for (ip, op), d in sample.local_cell_delay.items():
        cell_delay_at[op] = max(cell_delay_at.get(op, 0.0), d)

    labels: Dict[int, float] = {}
    for (drv, snk), net_d in sample.local_net_delay.items():
        drv_pin = netlist.pins.get(drv)
        if drv_pin is None:
            continue
        if drv_pin.cell is not None:
            # Skip stages whose cell arcs were all replaced, except
            # flip-flop Q drivers (no combinational arc to label).
            is_ff = netlist.library.cell(
                netlist.cells[drv_pin.cell].type_name).is_sequential
            if not is_ff and drv not in cell_delay_at:
                continue
            cell_d = cell_delay_at.get(drv, 0.0)
        else:
            cell_d = 0.0
        labels[sample.node_of[snk]] = cell_d + net_d
    return labels
