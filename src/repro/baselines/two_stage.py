"""Two-stage local-view baselines: DAC'19 [2] and DAC'22-He [3].

Both predict per-stage (cell + net) delays with an MLP over handcrafted
features and run a PERT traversal for endpoint arrival times.  They differ
in the feature set: [3] adds look-ahead RC-network features.  Training is
semi-supervised on *surviving* (unreplaced) stages only, exactly as the
paper adapts them (Section VI-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.baselines.pert import endpoint_arrival
from repro.eval import r2_score
from repro.ml.sample import DesignSample
from repro.nn import Adam, mlp, mse_loss
from repro.utils import require, spawn_rng


@dataclass(frozen=True)
class TwoStageConfig:
    """Hyper-parameters of a two-stage baseline."""

    lookahead: bool = False      # False → DAC'19, True → DAC'22-He
    hidden: int = 64
    epochs: int = 200
    lr: float = 1e-3
    batch: int = 4096
    seed: int = 0

    @property
    def name(self) -> str:
        return "DAC22-he" if self.lookahead else "DAC19"


class TwoStageBaseline:
    """Stage-delay MLP + PERT endpoint evaluation."""

    def __init__(self, config: Optional[TwoStageConfig] = None) -> None:
        self.config = config or TwoStageConfig()
        self._model = None
        self._mean = 0.0
        self._std = 1.0

    def _features(self, sample: DesignSample) -> np.ndarray:
        return (sample.stage_features_lookahead if self.config.lookahead
                else sample.stage_features_basic)

    # ------------------------------------------------------------------
    def fit(self, train_samples: List[DesignSample]) -> None:
        """Train on surviving stage delays across the training designs."""
        xs, ys = [], []
        for s in train_samples:
            feats = self._features(s)
            for row, node in enumerate(s.stage_sink_nodes):
                label = s.stage_label_by_sink.get(int(node))
                if label is not None:
                    xs.append(feats[row])
                    ys.append(label)
        require(len(ys) > 10, "too few labeled stages to train on")
        x = np.asarray(xs)
        y = np.asarray(ys)
        self._mean = float(y.mean())
        self._std = float(max(y.std(), 1e-9))
        yz = (y - self._mean) / self._std

        rng = spawn_rng(f"baseline/{self.config.name}", self.config.seed)
        self._model = mlp([x.shape[1], self.config.hidden,
                           self.config.hidden, 1], rng)
        optimizer = Adam(self._model.parameters(), lr=self.config.lr)
        n = len(y)
        for _ in range(self.config.epochs):
            order = rng.permutation(n)
            for lo in range(0, n, self.config.batch):
                idx = order[lo:lo + self.config.batch]
                pred = self._model.forward(x[idx]).ravel()
                _, grad = mse_loss(pred, yz[idx])
                optimizer.zero_grad()
                self._model.backward(grad[:, None])
                optimizer.step()

    # ------------------------------------------------------------------
    def predict_stage_delays(self, sample: DesignSample) -> np.ndarray:
        """Predicted stage delay per node (indexed by net-sink node)."""
        require(self._model is not None, "fit() first")
        feats = self._features(sample)
        pred = self._model.forward(feats).ravel() * self._std + self._mean
        by_sink = np.zeros(sample.n_nodes)
        by_sink[sample.stage_sink_nodes] = pred
        return by_sink

    def predict_endpoint_arrival(self, sample: DesignSample) -> np.ndarray:
        """Endpoint arrival via PERT over predicted stages (paper flow)."""
        return endpoint_arrival(sample, self.predict_stage_delays(sample))

    def local_r2(self, sample: DesignSample) -> float:
        """R² of stage-delay prediction on surviving stages (Table II left)."""
        feats = self._features(sample)
        pred = self._model.forward(feats).ravel() * self._std + self._mean
        ys, ps = [], []
        for row, node in enumerate(sample.stage_sink_nodes):
            label = sample.stage_label_by_sink.get(int(node))
            if label is not None:
                ys.append(label)
                ps.append(pred[row])
        return r2_score(np.asarray(ys), np.asarray(ps))

    def endpoint_r2(self, sample: DesignSample) -> float:
        """R² of endpoint arrival prediction (Table II right)."""
        return r2_score(sample.y, self.predict_endpoint_arrival(sample))
