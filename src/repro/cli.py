"""Command-line interface: ``python -m repro <command>``.

Commands
--------
flow      run the reference flow on a design and print its reports
report    sign-off timing report (report_timing style)
dataset   build / refresh the cached dataset
train     train a predictor and save it
predict   load a predictor and rank a design's endpoints
serve     persistent what-if timing sessions over HTTP
profile   trace one design end-to-end; per-stage runtime report
table1/2/3  regenerate a paper table
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

DEFAULT_CACHE = Path("data/cache")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Restructure-tolerant timing prediction (DAC'23 repro)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_flow = sub.add_parser("flow", help="run the reference flow")
    p_flow.add_argument("design")
    p_flow.add_argument("--no-opt", action="store_true",
                        help="skip timing optimization")
    p_flow.add_argument("--scale", type=float, default=None,
                        help="shrink the preset design (e.g. 0.25)")
    p_flow.add_argument("--seed", type=int, default=0)

    p_rep = sub.add_parser("report", help="sign-off timing report")
    p_rep.add_argument("design")
    p_rep.add_argument("--paths", type=int, default=3)
    p_rep.add_argument("--scale", type=float, default=None)

    p_ds = sub.add_parser("dataset", help="build the cached dataset")
    p_ds.add_argument("--designs", nargs="*", default=None)
    p_ds.add_argument("--cache", type=Path, default=DEFAULT_CACHE)
    p_ds.add_argument("--seed", type=int, default=0)
    p_ds.add_argument("--scale", type=float, default=None,
                      help="shrink the preset designs (e.g. 0.25)")
    p_ds.add_argument("--jobs", type=int, default=None,
                      help="build designs in N parallel worker processes")
    p_ds.add_argument("--corners", default=None,
                      help="comma-separated sign-off corners (e.g. "
                           "fast,typ,slow or a custom name:V:T triple "
                           "like ff_0p99v:1.08:0.92); each design "
                           "contributes one sample per corner "
                           "(default: base only)")
    p_ds.add_argument("--partition-pins", type=int, default=None,
                      help="stream featurization over graph chunks of "
                           "at most N pins (default: whole-graph)")
    p_ds.add_argument("--sweep", action="append", default=None,
                      metavar="AXIS=V1,V2,...",
                      help="sweep a numeric DesignSpec axis across flow "
                           "variants (e.g. clock_frac=0.6,0.7,0.8); "
                           "repeatable — multiple axes form their "
                           "cartesian product; variants share flow "
                           "stages through the staged engine")
    p_ds.add_argument("--eco-rounds", type=int, default=0,
                      help="append N ECO re-optimization rounds per "
                           "sweep point (each round re-enters the opt "
                           "stage on the routed netlist and is its own "
                           "scenario/sample)")

    p_tr = sub.add_parser("train", help="train and save a predictor")
    p_tr.add_argument("--variant", choices=("full", "gnn", "cnn"),
                      default="full")
    p_tr.add_argument("--epochs", type=int, default=60)
    p_tr.add_argument("--augment", type=int, default=0,
                      help="extra placement seeds per training design")
    p_tr.add_argument("--endpoint-batch", type=int, default=1024,
                      help="cross-design endpoint mini-batch size "
                           "(paper Section VI-A uses 1024)")
    p_tr.add_argument("--out", type=Path, default=Path("data/predictor.pkl"))
    p_tr.add_argument("--cache", type=Path, default=DEFAULT_CACHE)
    p_tr.add_argument("--corners", default=None,
                      help="train a corner-conditioned model on these "
                           "sign-off corners (names or name:V:T "
                           "triples); the model learns one embedding "
                           "per corner")
    p_tr.add_argument("--partition-pins", type=int, default=None,
                      help="stream dataset featurization over graph "
                           "chunks of at most N pins")
    p_tr.add_argument("--sweep", action="append", default=None,
                      metavar="AXIS=V1,V2,...",
                      help="train across flow-variant scenarios (see "
                           "'repro dataset --sweep'); scenario id is a "
                           "dataset dimension, not a model input")
    p_tr.add_argument("--eco-rounds", type=int, default=0,
                      help="include N ECO re-optimization rounds per "
                           "sweep point in the training set")

    p_pr = sub.add_parser("predict", help="predict a design's endpoints")
    p_pr.add_argument("design")
    p_pr.add_argument("--model", type=Path,
                      default=Path("data/predictor.pkl"))
    p_pr.add_argument("--top", type=int, default=10)
    p_pr.add_argument("--cache", type=Path, default=DEFAULT_CACHE)
    p_pr.add_argument("--corners", default=None,
                      help="predict at these sign-off corners in one "
                           "packed forward (must be a subset of the "
                           "model's corners)")
    p_pr.add_argument("--partition-pins", type=int, default=None,
                      help="stream featurization and inference over "
                           "graph chunks of at most N pins "
                           "(bit-identical to whole-graph)")

    p_srv = sub.add_parser(
        "serve",
        help="serve persistent what-if timing sessions over HTTP")
    p_srv.add_argument("--designs", nargs="*", default=["xgate"],
                       help="preset designs to load as sessions "
                            "(default: xgate)")
    p_srv.add_argument("--scale", type=float, default=None,
                       help="shrink the preset designs (e.g. 0.25)")
    p_srv.add_argument("--seed", type=int, default=0)
    p_srv.add_argument("--model", type=Path,
                       default=Path("data/predictor.pkl"),
                       help="predictor artifact; when missing, a small "
                            "bootstrap predictor is trained in-process")
    p_srv.add_argument("--bootstrap-epochs", type=int, default=2,
                       help="epochs for the bootstrap predictor "
                            "(used only when --model is missing)")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=8787,
                       help="listen port (0 picks a free one)")
    p_srv.add_argument("--workers", type=int, default=0,
                       help="worker *processes* for the sharded fleet; "
                            "0 (default) serves in-process")
    p_srv.add_argument("--threads", type=int, default=4,
                       help="max concurrently executing requests "
                            "(per worker process when --workers > 0)")
    p_srv.add_argument("--queue-depth", type=int, default=32,
                       help="fleet only: max in-flight requests per "
                            "worker before load-shedding with 503")
    p_srv.add_argument("--deadline", type=float, default=30.0,
                       help="per-request deadline in seconds")
    p_srv.add_argument("--microbatch", type=int, default=8,
                       help="max designs coalesced into one packed "
                            "forward pass (1 disables micro-batching)")
    p_srv.add_argument("--microbatch-wait-ms", type=float, default=2.0,
                       help="how long a micro-batch waits for company "
                            "after its first request arrives")
    p_srv.add_argument("--precision", choices=("fp64", "fp32", "int8"),
                       default="fp64",
                       help="inference tier: fp64 (bit-exact default), "
                            "fp32 (toleranced), or int8 (per-channel "
                            "weight quantization)")
    p_srv.add_argument("--plan-cache", type=Path, default=None,
                       help="directory for the persistent packed-plan "
                            "cache (workers warm-start merged level "
                            "plans from here)")
    p_srv.add_argument("--session-ttl", type=float, default=None,
                       help="evict design sessions idle longer than "
                            "this many seconds (default: never)")
    p_srv.add_argument("--corners", default=None,
                       help="serve these sign-off corners (names or "
                            "custom name:V:T triples, e.g. "
                            "base,ff_0p99v:1.08:0.92); one /whatif then "
                            "answers every corner in a single packed "
                            "forward")
    p_srv.add_argument("--partition-pins", type=int, default=None,
                       help="stream session featurization and inference "
                            "over graph chunks of at most N pins "
                            "(bit-identical to whole-graph)")
    p_srv.add_argument("--scenario", default=None,
                       help="serve every design at this flow scenario "
                            "(e.g. clock_frac=0.7+eco=1, or a scenario "
                            "id like clock_frac0.7+eco1): what-ifs are "
                            "then asked at the swept clock / post-ECO "
                            "implementation (default: the plain flow)")

    p_prof = sub.add_parser(
        "profile",
        help="run one design end-to-end with tracing on; report per-stage "
             "runtime (Table III shape)")
    p_prof.add_argument("--design", default="xgate",
                        help="preset design to profile (default: xgate, "
                             "the smallest)")
    p_prof.add_argument("--designs", nargs="*", default=None,
                        help="profile several designs (with --jobs: built "
                             "in parallel, worker traces merged)")
    p_prof.add_argument("--jobs", type=int, default=None,
                        help="build the profiled designs in N parallel "
                             "worker processes")
    p_prof.add_argument("--scale", type=float, default=None,
                        help="shrink the preset design (e.g. 0.25)")
    p_prof.add_argument("--seed", type=int, default=0)
    p_prof.add_argument("--epochs", type=int, default=2,
                        help="tiny training run so inference is realistic")
    p_prof.add_argument("--trace-out", type=Path,
                        default=Path("data/trace.jsonl"),
                        help="JSON-lines trace output path")
    p_prof.add_argument("--report-out", type=Path, default=None,
                        help="also write the aggregated report as JSON")

    for table in ("table1", "table2", "table3"):
        p_t = sub.add_parser(table, help=f"regenerate paper {table}")
        p_t.add_argument("--cache", type=Path, default=DEFAULT_CACHE)
        if table == "table2":
            p_t.add_argument("--epochs", type=int, default=120)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


# ----------------------------------------------------------------------
def cmd_flow(args) -> int:
    from repro.flow import FlowConfig, run_flow
    from repro.netlist import compute_stats

    flow = run_flow(args.design, FlowConfig(
        with_opt=not args.no_opt, scale=args.scale, base_seed=args.seed))
    stats = compute_stats(flow.input_netlist)
    print(f"{stats.name}: {stats.n_cells} cells / {stats.n_pins} pins / "
          f"{stats.n_endpoints} endpoints, clock {flow.clock_period:.0f} ps")
    if flow.opt_report is not None:
        rep = flow.opt_report
        print(f"optimizer: {dict(sorted(rep.moves.items()))}")
        print(f"replaced: {rep.net_replaced_ratio:.1%} nets, "
              f"{rep.cell_replaced_ratio:.1%} cells")
    s = flow.signoff_sta
    print(f"sign-off: wns {s.wns:.0f} ps, tns {s.tns:.0f} ps")
    print(f"stage times: "
          f"{ {k: round(v, 2) for k, v in flow.timer.stages.items()} }")
    return 0


def cmd_report(args) -> int:
    from repro.flow import FlowConfig, run_flow
    from repro.timing import report_timing

    flow = run_flow(args.design, FlowConfig(scale=args.scale))
    print(report_timing(flow.signoff_sta, n_paths=args.paths))
    return 0


def cmd_dataset(args) -> int:
    from repro.flow import FlowConfig, expand_scenarios
    from repro.ml import build_dataset_report
    from repro.netlist import PAPER_DESIGNS

    from repro.timing import CornerSet

    # Scale-tier presets (``large``) are bench-only: opt in by naming
    # them explicitly (``--designs large``).
    designs = args.designs or sorted(PAPER_DESIGNS)
    config = FlowConfig(base_seed=args.seed, scale=args.scale,
                        corners=CornerSet.parse(args.corners).specs,
                        partition_pins=args.partition_pins)
    scenarios = (expand_scenarios(args.sweep or (), args.eco_rounds)
                 if args.sweep or args.eco_rounds else None)
    samples, report = build_dataset_report(
        designs, flow_config=config, cache_dir=args.cache, seed=args.seed,
        jobs=args.jobs, scenarios=scenarios)
    for s in samples:
        if s is not None:
            label = s.name if s.corner == "base" else f"{s.name}@{s.corner}"
            if s.scenario:
                label = f"{label}@{s.scenario}"
            print(f"{label:<10} endpoints {s.n_endpoints:>5}  "
                  f"nodes {s.n_nodes:>7}  pre {s.preprocess_time:.2f}s")
    print()
    print(report.format())
    return 0 if report.ok else 1


def cmd_train(args) -> int:
    from repro.core import ModelConfig, TimingPredictor, TrainerConfig
    from repro.flow import FlowConfig, expand_scenarios
    from repro.ml import build_dataset
    from repro.netlist import TRAIN_DESIGNS
    from repro.timing import CornerSet

    corner_set = CornerSet.parse(args.corners)
    corner_names = corner_set.names
    scenarios = (expand_scenarios(args.sweep or (), args.eco_rounds)
                 if args.sweep or args.eco_rounds else None)
    train = build_dataset(list(TRAIN_DESIGNS),
                          flow_config=FlowConfig(
                              corners=corner_set.specs,
                              partition_pins=args.partition_pins),
                          cache_dir=args.cache, scenarios=scenarios)
    for seed in range(1, args.augment + 1):
        train += build_dataset(list(TRAIN_DESIGNS),
                               flow_config=FlowConfig(
                                   base_seed=seed, corners=corner_set.specs,
                                   partition_pins=args.partition_pins),
                               cache_dir=args.cache, seed=seed,
                               scenarios=scenarios)
    predictor = TimingPredictor(
        model_config=ModelConfig(variant=args.variant,
                                 corner_names=corner_names),
        trainer_config=TrainerConfig(epochs=args.epochs,
                                     endpoint_batch=args.endpoint_batch))
    predictor.fit(train)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    predictor.save(args.out)
    corner_note = (f", corners {','.join(corner_names)}"
                   if len(corner_names) > 1 else "")
    print(f"trained {args.variant} on {len(train)} samples "
          f"({args.epochs} epochs, {args.endpoint_batch}-endpoint "
          f"batches{corner_note}) -> {args.out}")
    return 0


def cmd_predict(args) -> int:
    import time as _time

    from repro.core import TimingPredictor
    from repro.flow import FlowConfig
    from repro.ml import build_dataset
    from repro.timing import CornerSet

    predictor = TimingPredictor.load(args.model)
    predictor.set_partition(args.partition_pins)
    corner_set = CornerSet.parse(args.corners)
    corner_names = corner_set.names
    if len(corner_names) > 1:
        model_corners = predictor.model_config.corner_names
        unknown = [c for c in corner_names if c not in model_corners]
        if unknown:
            print(f"error: corner(s) {unknown} not in the model "
                  f"(trained on: {list(model_corners)})", file=sys.stderr)
            return 1
        samples = build_dataset(
            [args.design],
            flow_config=FlowConfig(corners=corner_set.specs,
                                   partition_pins=args.partition_pins),
            cache_dir=args.cache)
        # The dataset's corner indices follow the flow's corner order;
        # remap to the model's embedding indices before the forward.
        views = [s.corner_view(s.corner, model_corners.index(s.corner),
                               y=s.y) for s in samples]
        t0 = _time.perf_counter()
        arrays = predictor.predict_batch_arrays(views)
        ms = (_time.perf_counter() - t0) * 1e3
        print(f"{args.design}: {samples[0].n_endpoints} endpoints x "
              f"{len(corner_names)} corners, one packed forward "
              f"{ms:.0f} ms")
        for sample, pred in zip(samples, arrays):
            by_pin = dict(zip((int(p) for p in sample.endpoint_pins),
                              pred))
            ranked = sorted(by_pin.items(), key=lambda kv: -kv[1])
            ranked = ranked[:args.top]
            print(f"\n[{sample.corner}] "
                  f"{'endpoint pin':>12}  {'predicted arrival (ps)':>22}")
            for pin, val in ranked:
                print(f"{pin:>12}  {val:>22.1f}")
        return 0
    sample = build_dataset(
        [args.design],
        flow_config=FlowConfig(partition_pins=args.partition_pins),
        cache_dir=args.cache)[0]
    by_pin = predictor.predict(sample)
    print(f"{args.design}: {len(by_pin)} endpoints, inference "
          f"{predictor.infer_times[args.design] * 1e3:.0f} ms")
    ranked = sorted(by_pin.items(), key=lambda kv: -kv[1])[:args.top]
    print(f"{'endpoint pin':>12}  {'predicted arrival (ps)':>22}")
    for pin, val in ranked:
        print(f"{pin:>12}  {val:>22.1f}")
    return 0


def cmd_serve(args) -> int:
    """Load (or bootstrap) a predictor, open sessions, serve HTTP.

    ``--workers 0`` (default) serves in-process, exactly as before;
    ``--workers N`` starts the sharded fleet: N worker processes mapping
    one shared-memory model artifact behind an async gateway, with
    graceful drain on SIGTERM.
    """
    import signal

    from repro.core import ModelConfig, TimingPredictor, TrainerConfig
    from repro.flow import FlowConfig, run_scenario_flow
    from repro.ml.dataset import build_corner_samples, build_sample
    from repro.serve import (
        FleetConfig,
        MicroBatcher,
        PredictorRegistry,
        ServerConfig,
        SessionFactory,
        TimingFleet,
        TimingGateway,
        TimingServer,
    )
    from repro.timing import CornerSet

    corner_set = CornerSet.parse(args.corners)
    corner_names = corner_set.names
    flow_config = FlowConfig(scale=args.scale, base_seed=args.seed,
                             corners=corner_set.specs,
                             partition_pins=args.partition_pins)
    # The default (no --scenario) routes through the plain run_flow path
    # inside run_scenario_flow; scenario-tagged FlowResults pickle over
    # the fleet's worker pipes unchanged.
    flows = {d: run_scenario_flow(d, flow_config, scenario=args.scenario)
             for d in args.designs}

    if args.plan_cache is not None:
        from repro.ml.plancache import configure_plan_cache

        configure_plan_cache(args.plan_cache)

    registry = PredictorRegistry()
    if args.model.exists():
        registry.register("default", args.model)
        meta = registry.describe("default")
        map_bins = meta["map_bins"]
        model_corners = meta.get("corners", ["base"])
        missing = [c for c in corner_names if c not in model_corners]
        if missing:
            print(f"error: corner(s) {missing} not in model "
                  f"{args.model} (trained on: {model_corners})",
                  file=sys.stderr)
            return 1
    else:
        print(f"model {args.model} not found; bootstrapping a "
              f"{args.bootstrap_epochs}-epoch predictor on "
              f"{sorted(flows)}")
        predictor = TimingPredictor(
            model_config=ModelConfig(corner_names=corner_names),
            trainer_config=TrainerConfig(epochs=args.bootstrap_epochs))
        map_bins = predictor.model_config.map_bins
        boot_samples = [s for f in flows.values()
                        for s in build_corner_samples(
                            f, map_bins=map_bins, seed=args.seed,
                            partition_pins=args.partition_pins)]
        predictor.fit(boot_samples)
        registry.register_predictor("default", predictor)

    if args.workers > 0:
        fleet = TimingFleet(
            registry.payload("default"), flows,
            FleetConfig(workers=args.workers, threads=args.threads,
                        microbatch=args.microbatch,
                        microbatch_wait_ms=args.microbatch_wait_ms,
                        deadline_s=args.deadline,
                        queue_depth=args.queue_depth,
                        precision=args.precision,
                        plan_cache_dir=(str(args.plan_cache)
                                        if args.plan_cache else None),
                        session_ttl_s=args.session_ttl,
                        # Ship *specs*: workers re-parse them, which
                        # re-registers any custom corners over there.
                        corners=corner_set.specs,
                        partition_pins=args.partition_pins),
            seeds={d: args.seed for d in flows}).start()
        gateway = TimingGateway(
            fleet, host=args.host, port=args.port,
            # The registry captured the artifact's own tier; report the
            # tier the workers actually serve at.
            model_info=dict(registry.describe("default"),
                            precision=args.precision))
        host, port = gateway.bind()
        signal.signal(signal.SIGTERM,
                      lambda signum, frame: gateway.request_drain())
        print(f"serving {sorted(flows)} on http://{host}:{port} "
              f"({args.workers} workers)", flush=True)
        gateway.serve_forever()
        return 0

    samples = {d: build_sample(f, map_bins=map_bins, seed=args.seed,
                               partition_pins=args.partition_pins)
               for d, f in flows.items()}

    def acquire():
        predictor = registry.acquire("default")
        if args.precision != predictor.precision:
            predictor.set_precision(args.precision)
        return predictor

    batcher = None
    if args.microbatch > 1:
        # One shared predictor behind the batcher: only its worker
        # thread touches the model, so sessions need no private copies.
        batcher = MicroBatcher(acquire(),
                               max_batch=args.microbatch,
                               max_wait_s=args.microbatch_wait_ms * 1e-3)
    factory = SessionFactory(acquire, batcher=batcher,
                             flow_config=flow_config,
                             corners=corner_names,
                             default_seed=args.seed,
                             scenario=args.scenario)
    sessions = {d: factory.open(flows[d], sample=samples[d])
                for d in args.designs}
    server = TimingServer(
        sessions,
        ServerConfig(host=args.host, port=args.port,
                     max_workers=args.threads, deadline_s=args.deadline,
                     microbatch=args.microbatch,
                     microbatch_wait_ms=args.microbatch_wait_ms,
                     session_ttl_s=args.session_ttl),
        model_info=dict(registry.describe("default"),
                        precision=args.precision),
        batcher=batcher)
    host, port = server.bind()
    print(f"serving {sorted(sessions)} on http://{host}:{port}",
          flush=True)
    server.serve_forever()
    return 0


def cmd_profile(args) -> int:
    """End-to-end flow + predictor under tracing; aggregated stage report.

    Covers every reference-flow stage (place, opt, route, sta) and both
    predictor stages (pre, infer); the printed table is the trace-derived
    Table III for the profiled design(s).  With ``--jobs N`` the designs
    are built in parallel worker processes and the per-worker traces are
    merged back, so the table still covers every stage of every design.
    """
    import json

    from repro.core import ModelConfig, TimingPredictor, TrainerConfig
    from repro.flow import FlowConfig, run_flow
    from repro.obs import aggregate_trace, configure_tracing, get_metrics

    tracer = configure_tracing(enabled=True, jsonl_path=str(args.trace_out))
    predictor = TimingPredictor(
        model_config=ModelConfig(variant="full"),
        trainer_config=TrainerConfig(epochs=args.epochs))
    if args.jobs is not None and args.jobs > 1:
        from repro.ml import build_dataset

        designs = args.designs or [args.design]
        samples = build_dataset(
            designs,
            flow_config=FlowConfig(scale=args.scale, base_seed=args.seed),
            seed=args.seed, jobs=args.jobs)
        predictor.fit([samples[0]])
        for sample in samples:
            predictor.predict(sample)
    else:
        flow = run_flow(args.design, FlowConfig(
            scale=args.scale, base_seed=args.seed))
        sample = predictor.preprocess(flow, seed=args.seed)
        predictor.fit([sample])
        predictor.predict(sample)

    report = aggregate_trace(tracer.events())
    print(report.format())
    print()
    print("metrics snapshot:")
    for name, value in get_metrics().snapshot().items():
        print(f"  {name} = {value}")
    print(f"\ntrace: {args.trace_out} ({report.n_events} events)")
    if args.report_out is not None:
        args.report_out.parent.mkdir(parents=True, exist_ok=True)
        with open(args.report_out, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"report: {args.report_out}")
    return 0


def cmd_table1(args) -> int:
    from repro.eval.experiments import format_table1, run_table1
    from repro.netlist import PAPER_DESIGNS

    print(format_table1(run_table1(sorted(PAPER_DESIGNS))))
    return 0


def cmd_table2(args) -> int:
    from repro.eval.experiments import format_table2, run_table2
    from repro.flow import FlowConfig
    from repro.ml import build_dataset
    from repro.netlist import TEST_DESIGNS, TRAIN_DESIGNS

    train = build_dataset(list(TRAIN_DESIGNS), cache_dir=args.cache)
    train += build_dataset(list(TRAIN_DESIGNS),
                           flow_config=FlowConfig(base_seed=1),
                           cache_dir=args.cache, seed=1)
    test = build_dataset(list(TEST_DESIGNS), cache_dir=args.cache)
    print(format_table2(run_table2(train, test, epochs=args.epochs)))
    return 0


def cmd_table3(args) -> int:
    from repro.core import ModelConfig, TimingPredictor, TrainerConfig
    from repro.eval.experiments import format_table3, run_table3
    from repro.ml import build_dataset
    from repro.netlist import TEST_DESIGNS, TRAIN_DESIGNS

    train = build_dataset(list(TRAIN_DESIGNS), cache_dir=args.cache)
    everything = train + build_dataset(list(TEST_DESIGNS),
                                       cache_dir=args.cache)
    predictor = TimingPredictor(
        model_config=ModelConfig(variant="full"),
        trainer_config=TrainerConfig(epochs=20))
    predictor.fit(train)
    print(format_table3(run_table3(everything, predictor)))
    return 0


COMMANDS = {
    "flow": cmd_flow,
    "report": cmd_report,
    "dataset": cmd_dataset,
    "train": cmd_train,
    "predict": cmd_predict,
    "serve": cmd_serve,
    "profile": cmd_profile,
    "table1": cmd_table1,
    "table2": cmd_table2,
    "table3": cmd_table3,
}


if __name__ == "__main__":
    sys.exit(main())
