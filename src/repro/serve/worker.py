"""Fleet worker process: sessions + micro-batching behind a pipe.

One worker owns a disjoint subset of the fleet's designs (the gateway
routes by design-session affinity, so a design's session lives in
exactly one process at a time).  The process layout mirrors the
in-process server so the two paths stay bit-identical:

* the model is rebuilt from the **shared-memory artifact** with
  ``share_state=True`` — parameters are read-only views into the one
  fleet-wide segment (see :mod:`repro.serve.shm`);
* per-design :class:`~repro.serve.session.DesignSession` objects are
  materialized from pickled flow artifacts sent over the pipe (and
  *re*-materialized the same way on a replacement worker after a crash,
  with the committed-edit journal replayed to restore revisions);
* concurrent requests run on a small thread pool and funnel their
  inferences through one :class:`~repro.serve.MicroBatcher`, so a burst
  within a worker coalesces into a single packed forward;
* request handling is the same
  :class:`~repro.serve.dispatch.RequestDispatcher` the threaded server
  uses.

Wire protocol (tuples over a ``multiprocessing`` duplex pipe; the
gateway end lives in :mod:`repro.serve.fleet`):

====================================  =================================
parent → worker                       worker → parent
====================================  =================================
``("open", design, flow, seed,        ``("ready", design, info)``
``  replay_edits)``
``("request", rid, method, path,      ``("response", rid, status,
``  body)``                           ``  payload)``
``("metrics", rid)``                  ``("metrics_reply", rid, snap)``
``("describe", rid)``                 ``("describe_reply", rid, info)``
``("drain",)``                        ``("drained",)`` after in-flight
                                      requests finish; then exit
``("stop",)``                         (exit immediately)
(unsolicited)                         ``("evicted", design)`` after a
                                      DELETE or idle-TTL eviction — the
                                      fleet drops its routing entry
====================================  =================================
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional

from repro.obs import get_metrics, get_tracer
from repro.obs.merge import worker_trace_path
from repro.obs.trace import configure_tracing


def worker_main(conn, worker_id: int, config: Dict[str, Any],
                shm_meta, trace_dir: Optional[str],
                tracing: bool) -> None:
    """Process entry point (importable top-level for any start method)."""
    # Local imports keep module import light for the parent process.
    from repro.core.predictor import TimingPredictor
    from repro.ml.plancache import configure_plan_cache
    from repro.serve.batcher import MicroBatcher
    from repro.serve.dispatch import RequestDispatcher
    from repro.serve.factory import SessionFactory
    from repro.serve.session import DesignSession
    from repro.serve.shm import attach_artifact

    # The parent coordinates shutdown over the pipe (drain → stop).
    # SIGTERM/SIGINT aimed at the process *group* (systemd, ``timeout``,
    # a terminal ^C) must not kill workers out from under an in-flight
    # drain — that would read as a crash and trigger a pointless respawn.
    import signal

    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    # Fresh observability state: with fork the child inherits the parent
    # registry/tracer including open sinks — reset, then open a private
    # per-worker trace sink so the parent can merge spans back later.
    tracer = get_tracer()
    tracer.reset()
    if tracing and trace_dir:
        configure_tracing(enabled=True,
                          jsonl_path=worker_trace_path(trace_dir))
    else:
        tracer.disable()
    get_metrics().reset()
    get_metrics().gauge("serve.worker.id").set(worker_id)

    shm, payload = attach_artifact(shm_meta)
    predictor = TimingPredictor.from_artifact(payload, source="<shm>",
                                              share_state=True)
    precision = str(config.get("precision") or "fp64")
    if precision != predictor.precision:
        predictor.set_precision(precision)
    if config.get("plan_cache_dir"):
        configure_plan_cache(config["plan_cache_dir"])
    microbatch = int(config.get("microbatch", 8))
    threads = int(config.get("threads", 4))
    batcher = None
    if microbatch > 1:
        batcher = MicroBatcher(
            predictor, max_batch=microbatch,
            max_wait_s=float(config.get("microbatch_wait_ms", 2.0)) * 1e-3)

    sessions: Dict[str, DesignSession] = {}
    dispatcher = RequestDispatcher(
        sessions,
        max_concurrent=threads,
        deadline_s=float(config.get("deadline_s", 30.0)),
        batcher=batcher,
        fault_injection=bool(config.get("fault_injection", False)),
        session_ttl_s=config.get("session_ttl_s"),
        # ``send`` is defined below; the closure resolves it at call time
        # (evictions only happen while requests are being served).
        on_evict=lambda design: send(("evicted", design)))

    pool = ThreadPoolExecutor(max_workers=threads,
                              thread_name_prefix=f"repro-w{worker_id}")
    send_lock = threading.Lock()

    def send(msg) -> None:
        with send_lock:
            conn.send(msg)

    def run_request(rid: int, method: str, path: str,
                    body: Optional[Dict[str, Any]]) -> None:
        sp = tracer.span("serve.worker.request", worker=worker_id,
                         route=f"{method} {path}",
                         design=(body or {}).get("design"))
        with sp:
            status, payload = dispatcher.handle_to_wire(method, path, body)
            sp.set(status=status)
        metrics = get_metrics()
        metrics.counter("serve.worker.requests").inc()
        metrics.histogram("serve.worker.latency_ms").observe(
            sp.duration * 1e3)
        if status >= 400:
            metrics.counter("serve.worker.errors").inc()
        send(("response", rid, status, payload))

    # Shared read-only weights need no per-session model copies: the
    # batcher serializes access when batching is on; otherwise each
    # session gets its own module instances (caches are per-module,
    # weights still alias the shared segment).
    def acquire_predictor() -> TimingPredictor:
        own = TimingPredictor.from_artifact(payload, source="<shm>",
                                            share_state=True)
        if precision != own.precision:
            own.set_precision(precision)
        return own

    # The gateway ships corner *specs* (names or ``name:V:T`` triples);
    # parsing them here re-registers any custom corners in this process,
    # and the factory then only needs the resolved names.
    corner_specs = config.get("corners")
    corner_names = None
    if corner_specs:
        from repro.timing import CornerSet

        corner_names = CornerSet.parse(corner_specs).names
    factory = SessionFactory(acquire_predictor, batcher=batcher,
                             corners=corner_names,
                             partition_pins=config.get("partition_pins"))

    def open_design(design: str, flow, seed: int, replay) -> None:
        session = factory.open(flow, seed=seed, replay=replay)
        # Publish only once fully materialized (journal replayed).
        dispatcher.sessions[design] = session
        sessions[design] = session
        send(("ready", design, session.describe()))

    def describe() -> Dict[str, Any]:
        params = predictor.model.parameters()
        return {
            "worker_id": worker_id,
            "pid": os.getpid(),
            "designs": sorted(sessions),
            "shm_read_only": bool(params) and all(
                not p.data.flags.writeable for p in params),
            "microbatch": batcher.describe() if batcher else None,
        }

    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break  # gateway went away; nothing left to serve
            kind = msg[0]
            if kind == "open":
                _, design, flow, seed, replay = msg
                open_design(design, flow, seed, replay)
            elif kind == "request":
                _, rid, method, path, body = msg
                pool.submit(run_request, rid, method, path, body)
            elif kind == "metrics":
                send(("metrics_reply", msg[1], get_metrics().snapshot()))
            elif kind == "describe":
                send(("describe_reply", msg[1], describe()))
            elif kind == "drain":
                # Everything sent before the drain marker has already
                # been read (pipe ordering) and queued on the pool;
                # shutdown(wait=True) finishes it all.
                pool.shutdown(wait=True)
                _flush_final_metrics(tracer)
                send(("drained",))
                break
            elif kind == "stop":
                pool.shutdown(wait=False, cancel_futures=True)
                break
    finally:
        if batcher is not None:
            batcher.stop()
        try:
            shm.close()
        except (OSError, BufferError):  # pragma: no cover
            pass
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


def _flush_final_metrics(tracer) -> None:
    """Append a cumulative metrics snapshot to the worker trace file.

    The parent folds the last snapshot per worker into its registry via
    :func:`repro.obs.merge.merge_worker_traces` — same contract as the
    parallel dataset build workers.
    """
    if tracer.enabled:
        tracer.ingest({"type": "metrics", "pid": os.getpid(),
                       "ts": time.time(),
                       "snapshot": get_metrics().snapshot()})
