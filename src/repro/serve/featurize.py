"""Incremental re-featurization for what-if edits.

A what-if edit (gate resize, cell move) invalidates a *small, local* part
of the model's inputs:

* the feature rows of the touched nodes (``x_cell`` / ``x_net``),
* the critical-region masks of endpoints whose cached longest-level path
  passes through a pin of the touched cell,
* the density / RUDY map bins the cell's footprint and its nets' bounding
  boxes overlap (the macro channel never changes).

:class:`IncrementalFeaturizer` tracks that dirty set across edits and
refreshes only it, mutating the sample's arrays in place.  Every refresh
routes through the *same* helpers the full featurization uses
(:func:`repro.ml.features.cell_feature_row` /
:func:`repro.placement.density.recompute_density_region` / ...), in the
same accumulation order, so an incrementally maintained sample is
**bit-for-bit identical** to one rebuilt from scratch — the invariant the
serve test-suite's differential test locks down.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

from repro.core.masking import rasterize_region
from repro.ml.features import cell_feature_row, net_feature_row
from repro.netlist import Netlist
from repro.obs import get_metrics
from repro.placement import (
    Placement,
    bin_span,
    cell_extent,
    recompute_density_region,
    recompute_rudy_region,
)
from repro.timing import CELL_OUT, NET_SINK, TimingGraph


class _DirtyRects:
    """A set of dirty bin rectangles (inclusive indices).

    Kept as a *list* of disjoint-ish rects rather than one grow-only
    union: a move across the die dirties two small footprints, and the
    union rect would cover (and force recomputing) everything between
    them.  Rects that touch or overlap are merged, so the list stays
    bounded by the edit count.  Region recomputes assign absolute
    values, so an occasional overlap between rects is just redundant
    work, never wrong.
    """

    __slots__ = ("rects",)

    def __init__(self) -> None:
        self.rects: List[Tuple[int, int, int, int]] = []

    def add(self, r0: int, r1: int, c0: int, c1: int) -> None:
        merged = (r0, r1, c0, c1)
        keep = []
        for rect in self.rects:
            if (merged[0] <= rect[1] + 1 and rect[0] <= merged[1] + 1
                    and merged[2] <= rect[3] + 1
                    and rect[2] <= merged[3] + 1):
                merged = (min(merged[0], rect[0]), max(merged[1], rect[1]),
                          min(merged[2], rect[2]), max(merged[3], rect[3]))
            else:
                keep.append(rect)
        keep.append(merged)
        self.rects = keep

    @property
    def empty(self) -> bool:
        return not self.rects

    def n_bins(self) -> int:
        return sum((r1 - r0 + 1) * (c1 - c0 + 1)
                   for r0, r1, c0, c1 in self.rects)

    def clear(self) -> None:
        self.rects = []


class IncrementalFeaturizer:
    """Keeps a sample's model inputs current across local edits.

    Owns *views* into the sample's arrays (``x_cell``, ``x_net``,
    ``masks`` and the ``layout_stack`` channels) and mutates them in
    place, so the attached :class:`~repro.ml.sample.DesignSample` is
    always up to date after :meth:`refresh`.
    """

    def __init__(self, netlist: Netlist, placement: Placement,
                 graph: TimingGraph, x_cell: np.ndarray, x_net: np.ndarray,
                 masks: np.ndarray, paths: List[List[Tuple[int, int]]],
                 layout_stack: np.ndarray, map_bins: int) -> None:
        self.netlist = netlist
        self.placement = placement
        self.graph = graph
        self.x_cell = x_cell
        self.x_net = x_net
        self.masks = masks
        self.paths = paths
        self.map_bins = map_bins
        # layout_stack is (3, M, N); rows are views, so writing through
        # density/rudy below updates the sample's stack directly.
        self.density = layout_stack[0]
        self.rudy = layout_stack[1]
        self.mask_side = int(round(np.sqrt(masks.shape[1])))

        #: pin id -> endpoint indices whose cached path touches that pin.
        self._endpoints_of_pin: Dict[int, Set[int]] = {}
        for k, edges in enumerate(paths):
            for drv, snk in edges:
                self._endpoints_of_pin.setdefault(drv, set()).add(k)
                self._endpoints_of_pin.setdefault(snk, set()).add(k)

        self._dirty_cell_nodes: Set[int] = set()
        self._dirty_net_nodes: Set[int] = set()
        self._dirty_endpoints: Set[int] = set()
        self._dirty_density = _DirtyRects()
        self._dirty_rudy = _DirtyRects()

    # ------------------------------------------------------------------
    # Dirty marking.  mark_cell_region must be called both BEFORE and
    # AFTER the mutation, so old and new geometry are both invalidated.
    # ------------------------------------------------------------------
    def mark_cell_region(self, cid: int, moved: bool = False) -> None:
        """Mark the map bins covered by a cell's current geometry."""
        m = self.map_bins
        die = self.placement.die
        bin_w = die.width / m
        bin_h = die.height / m
        x0, x1, y0, y1 = cell_extent(self.netlist, self.placement, cid)
        r0, r1 = bin_span(x0, x1, m, bin_w)
        c0, c1 = bin_span(y0, y1, m, bin_h)
        self._dirty_density.add(r0, r1, c0, c1)
        if not moved:
            return
        # RUDY: the bounding boxes of every net touching the cell.
        nl = self.netlist
        inst = nl.cells[cid]
        for pid in list(inst.input_pins) + [inst.output_pin]:
            nid = nl.pins[pid].net
            if nid is None:
                continue
            net = nl.nets[nid]
            pts = self.placement.pin_positions(
                nl, [net.driver] + list(net.sinks))
            bx0, by0 = pts.min(axis=0)
            bx1, by1 = pts.max(axis=0)
            r0, r1 = bin_span(bx0, bx1, m, bin_w)
            c0, c1 = bin_span(by0, by1, m, bin_h)
            self._dirty_rudy.add(r0, r1, c0, c1)

    def mark_resize(self, cid: int) -> None:
        """Feature rows invalidated by resizing *cid* (geometry aside).

        The cell's own x_cell row changes (drive, caps, est. delay); its
        input pin caps change, which alters the loads — and therefore the
        x_cell rows — of the cells driving it, plus the x_net rows (sink
        cap, wire delay) of the resized cell's own input-pin nodes.
        """
        nl = self.netlist
        node_of = self.graph.node_of
        inst = nl.cells[cid]
        out_node = node_of[inst.output_pin]
        # Sequential outputs are SOURCE nodes: their x_cell row stays
        # zero in the full featurization, so it must stay zero here too.
        if self.graph.kind[out_node] == CELL_OUT:
            self._dirty_cell_nodes.add(out_node)
        for ip in inst.input_pins:
            self._dirty_net_nodes.add(node_of[ip])
            nid = nl.pins[ip].net
            if nid is None:
                continue
            drv_node = node_of[nl.nets[nid].driver]
            if self.graph.kind[drv_node] == CELL_OUT:
                self._dirty_cell_nodes.add(drv_node)

    def mark_move(self, cid: int) -> None:
        """Feature rows and masks invalidated by moving *cid*.

        Every net touching the cell changes geometry: the driven net's
        sinks all see a new distance (x_net rows), the feeding nets only
        at the moved cell's own input pins; each such net's driver sees a
        new estimated load (x_cell row).  Endpoint masks are dirty where
        the cached critical path crosses one of the cell's pins.
        """
        nl = self.netlist
        node_of = self.graph.node_of
        inst = nl.cells[cid]
        for pid in list(inst.input_pins) + [inst.output_pin]:
            self._dirty_endpoints.update(self._endpoints_of_pin.get(pid, ()))
            nid = nl.pins[pid].net
            if nid is None:
                continue
            net = nl.nets[nid]
            drv_node = node_of[net.driver]
            if self.graph.kind[drv_node] == CELL_OUT:
                self._dirty_cell_nodes.add(drv_node)
            if pid == inst.output_pin:
                for sp in net.sinks:
                    self._dirty_net_nodes.add(node_of[sp])
            else:
                self._dirty_net_nodes.add(node_of[pid])

    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Recompute everything marked dirty, in place, then clear."""
        nl, pl, g = self.netlist, self.placement, self.graph
        for node in self._dirty_cell_nodes:
            self.x_cell[node] = cell_feature_row(nl, pl,
                                                 int(g.pin_ids[node]))
        for node in self._dirty_net_nodes:
            assert g.kind[node] == NET_SINK
            self.x_net[node] = net_feature_row(nl, pl,
                                               int(g.pin_ids[node]))
        for k in self._dirty_endpoints:
            self.masks[k] = rasterize_region(
                nl, pl, self.paths[k], self.mask_side, self.mask_side
            ).ravel()
        for r0, r1, c0, c1 in self._dirty_density.rects:
            recompute_density_region(nl, pl, self.density, r0, r1, c0, c1)
        for r0, r1, c0, c1 in self._dirty_rudy.rects:
            recompute_rudy_region(nl, pl, self.rudy, r0, r1, c0, c1)

        metrics = get_metrics()
        metrics.histogram("serve.featurize.dirty_rows").observe(
            len(self._dirty_cell_nodes) + len(self._dirty_net_nodes))
        metrics.histogram("serve.featurize.dirty_masks").observe(
            len(self._dirty_endpoints))
        metrics.histogram("serve.featurize.dirty_bins").observe(
            self._dirty_density.n_bins() + self._dirty_rudy.n_bins())
        self._dirty_cell_nodes.clear()
        self._dirty_net_nodes.clear()
        self._dirty_endpoints.clear()
        self._dirty_density.clear()
        self._dirty_rudy.clear()
