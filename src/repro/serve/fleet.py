"""Sharded serving fleet: worker processes, routing, crash recovery.

The fleet is the dispatch fabric between the async HTTP gateway
(:mod:`repro.serve.gateway`) and N worker processes
(:mod:`repro.serve.worker`):

* **Sharding / affinity.**  Each design's session lives in exactly one
  worker (round-robin assignment at startup, sticky thereafter), so a
  design's committed state has a single home and no cross-process
  session coherence is needed.
* **Shared weights.**  The predictor artifact is published once into
  shared memory (:mod:`repro.serve.shm`); every worker maps the same
  read-only segment.
* **Backpressure.**  Per-worker in-flight queues are bounded
  (``queue_depth``); :meth:`TimingFleet.submit` raises
  :class:`FleetOverloaded` when a shard is full and the gateway turns
  that into a 503 with ``Retry-After``.
* **Crash recovery.**  Every worker's process sentinel is watched by the
  gateway's selector loop; on death the fleet spawns a replacement,
  re-opens the dead worker's sessions (replaying the committed-edit
  journal so revisions are restored), transparently resubmits *pure*
  in-flight requests (reads, predictions, uncommitted what-ifs) and
  fails committed what-ifs with a retryable 503 — a commit that was
  in-flight on a dying worker may or may not have been applied there,
  but the journal only ever contains acknowledged commits, so the
  replacement's state is unambiguous.
* **Drain.**  :meth:`TimingFleet.drain_begin` sends each worker a drain
  marker; pipe ordering guarantees all previously submitted requests
  are answered before the worker's ``("drained",)`` acknowledgement.

The fleet is single-threaded by design: every method is called from the
gateway's selector loop (or from a test driving :meth:`pump` directly);
there is no internal locking to reason about.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.flow import FlowResult
from repro.serve.dispatch import ApiError, unknown_design_error
from repro.serve.shm import SharedArtifact
from repro.serve.worker import worker_main
from repro.utils import get_logger, require

logger = get_logger("serve.fleet")

#: Routes whose retry is always safe: they do not mutate session state.
#: ``POST /whatif`` is pure too *unless* the body asks to commit.
_PURE_POSTS = ("/predict", "/whatif")


class FleetOverloaded(ApiError):
    """A shard's bounded queue is full; the client should retry."""

    def __init__(self, design: str, depth: int) -> None:
        super().__init__(503, "overloaded",
                         f"shard serving {design!r} has {depth} requests "
                         "in flight; retry later")
        self.retry_after_s = 1


@dataclass(frozen=True)
class FleetConfig:
    """Fleet sizing and per-worker serving knobs."""

    workers: int = 2
    threads: int = 4                 # request threads per worker
    microbatch: int = 8
    microbatch_wait_ms: float = 2.0
    deadline_s: float = 30.0
    queue_depth: int = 32            # max in-flight per worker (bounded)
    fault_injection: bool = False
    trace_dir: Optional[str] = None  # per-worker span files land here
    tracing: bool = False
    start_timeout_s: float = 120.0   # worker boot + session open budget
    precision: str = "fp64"          # inference tier: fp64 | fp32 | int8
    plan_cache_dir: Optional[str] = None  # persistent packed-plan cache
    session_ttl_s: Optional[float] = None  # idle-session eviction TTL
    corners: Tuple[str, ...] = ("base",)  # sign-off corners every worker serves
    partition_pins: Optional[int] = None  # streaming chunk-size hint


@dataclass
class _Proxied:
    """One client request forwarded to a worker."""

    rid: int
    design: Optional[str]
    method: str
    path: str
    body: Optional[Dict[str, Any]]
    on_done: Callable[[int, Dict[str, Any]], None]
    t_end: Optional[float] = None    # absolute perf_counter deadline
    committed: bool = False          # POST /whatif with commit=True
    retried: bool = False


@dataclass
class _Fanout:
    """One logical request fanned out to every live worker."""

    remaining: int
    replies: List[Any] = field(default_factory=list)
    on_done: Callable[[List[Any]], None] = lambda replies: None

    def absorb(self, reply: Any) -> None:
        self.replies.append(reply)
        self.remaining -= 1

    @property
    def complete(self) -> bool:
        return self.remaining <= 0


class WorkerHandle:
    """Parent-side bookkeeping for one worker process."""

    def __init__(self, worker_id: int, process, conn) -> None:
        self.id = worker_id
        self.process = process
        self.conn = conn
        self.designs: Set[str] = set()
        self.inflight: Set[int] = set()  # rids awaiting a reply
        self.ready: Set[str] = set()     # designs acked via ("ready", ...)
        self.drained = False
        self.restarts = 0

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def describe(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "pid": self.pid,
            "alive": self.alive,
            "designs": sorted(self.designs),
            "inflight": len(self.inflight),
            "restarts": self.restarts,
            "drained": self.drained,
        }


class TimingFleet:
    """Owns the worker processes and routes requests to design shards."""

    def __init__(self, payload: Dict[str, Any],
                 flows: Dict[str, FlowResult],
                 config: Optional[FleetConfig] = None,
                 seeds: Optional[Dict[str, int]] = None) -> None:
        self.config = config or FleetConfig()
        require(self.config.workers >= 1,
                "a fleet needs at least one worker (use the in-process "
                "server for --workers 0)")
        require(len(flows) >= 1, "a fleet needs at least one design")
        self.flows = dict(flows)
        self.seeds = dict(seeds or {})
        self.artifact = SharedArtifact.publish(payload)
        self.workers: List[WorkerHandle] = []
        #: design → worker id (sticky shard assignment).
        self.routing: Dict[str, int] = {}
        #: design → list of committed edit batches (wire dicts), replayed
        #: on a replacement worker to restore the session's revision.
        self.journal: Dict[str, List[List[Dict[str, Any]]]] = {
            d: [] for d in self.flows}
        self.pending: Dict[int, Any] = {}   # rid → _Proxied | (_Fanout, kind)
        self._rid = 0
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        self._started = False
        self._stopped = False
        self.draining = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "TimingFleet":
        """Spawn workers, shard the designs, block until sessions open."""
        require(not self._started, "fleet already started")
        self._started = True
        n = min(self.config.workers, len(self.flows))
        for wid in range(n):
            self.workers.append(self._spawn(wid))
        for i, design in enumerate(sorted(self.flows)):
            worker = self.workers[i % n]
            worker.designs.add(design)
            self.routing[design] = worker.id
            self._send_open(worker, design)
        deadline = time.perf_counter() + self.config.start_timeout_s
        while any(w.ready != w.designs for w in self.workers):
            if time.perf_counter() > deadline:
                self.stop()
                raise TimeoutError(
                    "fleet workers did not open their sessions within "
                    f"{self.config.start_timeout_s:.0f}s")
            for worker in self.workers:
                if worker.conn.poll(0.05):
                    self.pump(worker)
                if not worker.alive:
                    self.stop()
                    raise RuntimeError(
                        f"fleet worker {worker.id} (pid {worker.pid}) "
                        "died during startup")
        logger.info("fleet up: %d workers, %d designs (%s)", n,
                    len(self.flows),
                    ", ".join(f"w{w.id}:{sorted(w.designs)}"
                              for w in self.workers))
        return self

    def _spawn(self, worker_id: int) -> WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        worker_config = {
            "threads": self.config.threads,
            "microbatch": self.config.microbatch,
            "microbatch_wait_ms": self.config.microbatch_wait_ms,
            "deadline_s": self.config.deadline_s,
            "fault_injection": self.config.fault_injection,
            "precision": self.config.precision,
            "plan_cache_dir": self.config.plan_cache_dir,
            "session_ttl_s": self.config.session_ttl_s,
            "corners": list(self.config.corners),
            "partition_pins": self.config.partition_pins,
        }
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, worker_id, worker_config,
                  self.artifact.meta, self.config.trace_dir,
                  self.config.tracing),
            name=f"repro-fleet-w{worker_id}",
            daemon=True)
        process.start()
        child_conn.close()  # parent keeps only its end
        return WorkerHandle(worker_id, process, parent_conn)

    def _send_open(self, worker: WorkerHandle, design: str) -> None:
        worker.conn.send(("open", design, self.flows[design],
                          self.seeds.get(design, 0),
                          [list(batch) for batch in self.journal[design]]))

    def stop(self) -> None:
        """Kill every worker and release the shared segment (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        for worker in self.workers:
            try:
                worker.conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        for worker in self.workers:
            worker.process.join(timeout=2.0)
            if worker.alive:
                worker.process.kill()
                worker.process.join(timeout=2.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        self.artifact.unlink()

    def drain_begin(self) -> None:
        """Send every live worker its drain marker (non-blocking).

        All requests submitted before this point will still be answered
        (pipe ordering); the gateway keeps pumping until
        :attr:`all_drained`, then calls :meth:`stop`.
        """
        self.draining = True
        for worker in self.workers:
            if worker.alive and not worker.drained:
                try:
                    worker.conn.send(("drain",))
                except (OSError, BrokenPipeError):
                    worker.drained = True

    @property
    def all_drained(self) -> bool:
        return all(w.drained or not w.alive for w in self.workers)

    # ------------------------------------------------------------------
    # Routing + submission (called from the gateway loop)
    # ------------------------------------------------------------------
    def worker_for(self, design: Optional[str]) -> WorkerHandle:
        """The shard serving *design*; canonical 404 when unknown.

        Mirrors the in-process dispatcher's convenience: with exactly one
        design served fleet-wide, a request may omit ``design``.
        """
        if design is None and len(self.flows) == 1:
            design = next(iter(self.flows))
        if design not in self.routing:
            raise unknown_design_error(design, self.flows)
        return self.workers[self.routing[design]]

    def submit(self, design: Optional[str], method: str, path: str,
               body: Optional[Dict[str, Any]],
               on_done: Callable[[int, Dict[str, Any]], None],
               t_end: Optional[float] = None) -> int:
        """Forward one request to its shard; ``on_done(status, payload)``.

        Raises :class:`ApiError` (404 unknown design, 503 full shard)
        for failures the gateway should answer immediately.
        """
        worker = self.worker_for(design)
        if len(worker.inflight) >= self.config.queue_depth:
            raise FleetOverloaded(design or next(iter(self.flows)),
                                  len(worker.inflight))
        rid = self._next_rid()
        committed = (method == "POST" and path == "/whatif"
                     and bool((body or {}).get("commit", False)))
        self.pending[rid] = _Proxied(rid=rid, design=design, method=method,
                                     path=path, body=body, on_done=on_done,
                                     t_end=t_end, committed=committed)
        worker.inflight.add(rid)
        worker.conn.send(("request", rid, method, path, body))
        return rid

    def fanout(self, kind: str,
               on_done: Callable[[List[Any]], None]) -> None:
        """Broadcast a control query (``metrics`` | ``describe`` |
        ``designs``) to every live worker; *on_done* gets the replies.

        A worker that dies mid-fanout is simply absent from the replies.
        Completes immediately (empty list) when no worker is alive.
        """
        live = [w for w in self.workers if w.alive and not w.drained]
        op = _Fanout(remaining=len(live), on_done=on_done)
        for worker in live:
            rid = self._next_rid()
            self.pending[rid] = (op, kind)
            worker.inflight.add(rid)
            if kind == "designs":
                worker.conn.send(("request", rid, "GET", "/designs", None))
            else:
                worker.conn.send((kind, rid))
        if op.complete:
            op.on_done(op.replies)

    def _next_rid(self) -> int:
        self._rid += 1
        return self._rid

    # ------------------------------------------------------------------
    # Event pump (gateway selector callbacks)
    # ------------------------------------------------------------------
    def pump(self, worker: WorkerHandle) -> None:
        """Drain every message currently readable on *worker*'s pipe."""
        while True:
            try:
                if not worker.conn.poll():
                    return
                msg = worker.conn.recv()
            except (EOFError, OSError):
                # Pipe collapsed — the sentinel event handles recovery.
                return
            self._dispatch(worker, msg)

    def _dispatch(self, worker: WorkerHandle, msg) -> None:
        kind = msg[0]
        if kind == "response":
            _, rid, status, payload = msg
            worker.inflight.discard(rid)
            entry = self.pending.pop(rid, None)
            if entry is None:
                return  # late reply for an already-expired request
            if isinstance(entry, _Proxied):
                if entry.committed and status == 200:
                    self._journal_commit(entry)
                entry.on_done(status, payload)
            else:  # fanout over GET /designs
                op, _ = entry
                op.absorb(payload if status == 200 else None)
                if op.complete:
                    op.on_done(op.replies)
        elif kind in ("metrics_reply", "describe_reply"):
            _, rid, payload = msg
            worker.inflight.discard(rid)
            entry = self.pending.pop(rid, None)
            if entry is not None:
                op, _ = entry
                op.absorb(payload)
                if op.complete:
                    op.on_done(op.replies)
        elif kind == "ready":
            _, design, _info = msg
            worker.ready.add(design)
        elif kind == "evicted":
            # Pipe ordering guarantees this lands before the DELETE's own
            # ("response", ...), so routing is updated by the time the
            # gateway answers — a follow-up request for the design gets
            # the same 404 the in-process dispatcher would produce.
            self._forget_design(msg[1])
        elif kind == "drained":
            worker.drained = True

    def _forget_design(self, design: str) -> None:
        """Drop all routing state for an evicted design (idempotent)."""
        self.routing.pop(design, None)
        self.flows.pop(design, None)
        self.journal.pop(design, None)
        self.seeds.pop(design, None)
        for worker in self.workers:
            worker.designs.discard(design)
            worker.ready.discard(design)

    def _journal_commit(self, entry: _Proxied) -> None:
        design = entry.design
        if design is None and len(self.flows) == 1:
            design = next(iter(self.flows))
        edits = list((entry.body or {}).get("edits", []))
        if design in self.journal and edits:
            self.journal[design].append(edits)

    # ------------------------------------------------------------------
    # Deadlines
    # ------------------------------------------------------------------
    def expire(self, now: Optional[float] = None) -> None:
        """Fail every proxied request whose absolute deadline passed."""
        now = time.perf_counter() if now is None else now
        expired = [e for e in self.pending.values()
                   if isinstance(e, _Proxied)
                   and e.t_end is not None and e.t_end < now]
        for entry in expired:
            self.pending.pop(entry.rid, None)
            for worker in self.workers:
                worker.inflight.discard(entry.rid)
            entry.on_done(504, _error_payload(
                "deadline_exceeded",
                "request exceeded its deadline waiting on the fleet"))

    def next_deadline(self) -> Optional[float]:
        """Earliest pending absolute deadline (gateway poll timeout)."""
        deadlines = [e.t_end for e in self.pending.values()
                     if isinstance(e, _Proxied) and e.t_end is not None]
        return min(deadlines) if deadlines else None

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def handle_worker_death(self, worker: WorkerHandle
                            ) -> Optional[WorkerHandle]:
        """Replace a dead worker; re-home its designs and requests.

        Returns the replacement handle (the gateway must swap its
        selector registrations), or ``None`` during shutdown/drain when
        no replacement is spawned.
        """
        self.pump_remains(worker)
        orphans = [self.pending.pop(rid)
                   for rid in sorted(worker.inflight)
                   if rid in self.pending]
        worker.inflight.clear()
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(timeout=1.0)
        if self._stopped or worker.drained:
            return None
        logger.warning(
            "fleet worker %d (pid %s) died with %d request(s) in flight; "
            "respawning", worker.id, worker.pid, len(orphans))
        replacement = self._spawn(worker.id)
        replacement.designs = set(worker.designs)
        replacement.restarts = worker.restarts + 1
        self.workers[worker.id] = replacement
        for design in sorted(replacement.designs):
            self._send_open(replacement, design)
        for entry in orphans:
            self._rehome(replacement, entry)
        if self.draining:
            # The fleet-wide drain already passed this worker by; the
            # replacement must drain too (after the re-homed requests,
            # which are ahead of it in the pipe) or the drain never ends.
            replacement.conn.send(("drain",))
        return replacement

    def pump_remains(self, worker: WorkerHandle) -> None:
        """Deliver whatever the dead worker managed to write before dying."""
        while True:
            try:
                if not worker.conn.poll():
                    return
                msg = worker.conn.recv()
            except (EOFError, OSError):
                return
            self._dispatch(worker, msg)

    def _rehome(self, replacement: WorkerHandle, entry) -> None:
        if not isinstance(entry, _Proxied):
            op, _ = entry          # fanout: dead worker is just absent
            op.remaining -= 1
            if op.complete:
                op.on_done(op.replies)
            return
        if self._is_pure(entry) and not entry.retried:
            # Safe to replay: the request cannot have mutated state.
            # Requests queue behind the ("open", ...) replays already in
            # the pipe, so the session is rebuilt before they run.
            entry.retried = True
            self.pending[entry.rid] = entry
            replacement.inflight.add(entry.rid)
            replacement.conn.send(("request", entry.rid, entry.method,
                                   entry.path, entry.body))
            return
        entry.on_done(503, _error_payload(
            "worker_lost",
            "the worker serving this request died before answering; "
            "the session has been restored — retry the request"))

    @staticmethod
    def _is_pure(entry: _Proxied) -> bool:
        if entry.method == "GET":
            return True
        return (entry.method == "POST" and entry.path in _PURE_POSTS
                and not entry.committed)

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        """Fleet-level bookkeeping for ``/health``."""
        return {
            "workers": len(self.workers),
            "designs": {d: self.routing[d] for d in sorted(self.routing)},
            "journal_revisions": {d: len(b)
                                  for d, b in sorted(self.journal.items())},
            "pending": len(self.pending),
            "per_worker": [w.describe() for w in self.workers],
        }


def _error_payload(code: str, message: str) -> Dict[str, Any]:
    """The same wire shape :meth:`RequestDispatcher.handle_to_wire` uses."""
    from repro.serve.api import error_wire
    return error_wire(code, message)
