"""Predictor artifacts in shared memory (the fleet's compute substrate).

The serving fleet runs one model per worker *process*; loading the
artifact N times would cost N× the weight memory and N× the disk reads.
Instead the parent publishes the artifact's weight arrays **once** into
a :class:`multiprocessing.shared_memory.SharedMemory` segment and hands
each worker a small picklable :class:`ShmArtifactMeta`; workers attach
and rebuild the artifact payload with numpy views directly into the
segment.

Two properties matter and are both enforced here:

* **Read-only.**  Attached views are marked non-writable, so a worker
  that tried to mutate the shared weights (a bug — it would corrupt
  every sibling) raises ``ValueError`` instead.  Combined with
  ``TimingPredictor.from_artifact(..., share_state=True)`` the model
  parameters themselves alias the segment, so the guarantee covers the
  forward pass, not just the payload dict.
* **Single ownership.**  Only the publishing process unlinks the
  segment.  Attaching registers the name with this process's
  ``resource_tracker`` on POSIX (CPython's eager bookkeeping); workers
  explicitly unregister so a dying worker cannot yank the segment out
  from under the rest of the fleet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.utils import get_logger, require

logger = get_logger("serve.shm")

#: Byte alignment of each array inside the segment (cache-line friendly).
_ALIGN = 64


@dataclass(frozen=True)
class ShmArraySpec:
    """Placement of one array inside the shared segment."""

    dtype: str
    shape: Tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape,
                                                               dtype=np.int64)))


@dataclass(frozen=True)
class ShmArtifactMeta:
    """Everything a worker needs to attach (small and picklable)."""

    shm_name: str
    arrays: Tuple[ShmArraySpec, ...]
    #: Non-array payload entries (model_config dict, norm, format,
    #: schema_version) carried by value — they are tiny.
    extra: Dict[str, Any] = field(default_factory=dict)
    #: How ``arrays`` maps back onto ``state`` entries: ``"array"``
    #: consumes one spec; ``("quant", scheme)`` consumes two (q, scale)
    #: and rebuilds the schema-v3 quantized-entry dict.  Empty means one
    #: plain array per state entry (pre-quantization metas unpickle with
    #: this default and keep working).
    layout: Tuple[Any, ...] = ()


class SharedArtifact:
    """A predictor artifact published once into shared memory.

    Create with :meth:`publish` in the parent; workers call
    :func:`attach_artifact` with the :attr:`meta`.  The parent must keep
    this object alive for the fleet's lifetime and call :meth:`unlink`
    exactly once at shutdown.
    """

    def __init__(self, shm: shared_memory.SharedMemory,
                 meta: ShmArtifactMeta) -> None:
        self.shm = shm
        self.meta = meta
        self._unlinked = False

    @classmethod
    def publish(cls, payload: Dict[str, Any]) -> "SharedArtifact":
        """Copy *payload*'s ``state`` arrays into a fresh shared segment."""
        require(isinstance(payload, dict) and "state" in payload,
                "artifact payload must be a dict with a 'state' entry")
        arrays: List[np.ndarray] = []
        layout: List[Any] = []
        for entry in payload["state"]:
            if isinstance(entry, dict):  # int8 per-channel quantized
                arrays.append(np.ascontiguousarray(entry["q"]))
                arrays.append(np.ascontiguousarray(entry["scale"]))
                layout.append(("quant", entry["quant"]))
            else:
                arrays.append(np.ascontiguousarray(entry))
                layout.append("array")
        specs: List[ShmArraySpec] = []
        offset = 0
        for arr in arrays:
            offset = _aligned(offset)
            specs.append(ShmArraySpec(dtype=str(arr.dtype),
                                      shape=tuple(arr.shape),
                                      offset=offset))
            offset += arr.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        for arr, spec in zip(arrays, specs):
            view = np.ndarray(spec.shape, dtype=spec.dtype,
                              buffer=shm.buf, offset=spec.offset)
            view[...] = arr
        extra = {k: v for k, v in payload.items() if k != "state"}
        meta = ShmArtifactMeta(shm_name=shm.name, arrays=tuple(specs),
                               extra=extra, layout=tuple(layout))
        logger.info("published artifact to shm %s (%d arrays, %d bytes)",
                    shm.name, len(specs), offset)
        return cls(shm, meta)

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self.shm.close()
        except (OSError, BufferError):  # pragma: no cover - best effort
            pass

    def unlink(self) -> None:
        """Destroy the segment (publisher only; idempotent)."""
        if self._unlinked:
            return
        self._unlinked = True
        self.close()
        try:
            # With the fork start method workers share this process's
            # resource tracker, so a worker's attach-side unregister may
            # have removed our registration; restore it so the
            # unregister inside SharedMemory.unlink() balances.
            from multiprocessing import resource_tracker

            resource_tracker.register(self.shm._name, "shared_memory")
        except Exception:  # pragma: no cover - bookkeeping best effort
            pass
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def attach_artifact(meta: ShmArtifactMeta
                    ) -> Tuple[shared_memory.SharedMemory, Dict[str, Any]]:
    """Attach to a published artifact; returns ``(shm, payload)``.

    The payload's ``state`` arrays are **read-only views** into the
    segment — zero copies.  The caller must keep the returned ``shm``
    handle alive as long as the arrays are in use, and ``close()`` it
    (never ``unlink()``) when done.
    """
    shm = shared_memory.SharedMemory(name=meta.shm_name)
    _disown_from_resource_tracker(shm)
    views: List[np.ndarray] = []
    for spec in meta.arrays:
        view = np.ndarray(spec.shape, dtype=spec.dtype,
                          buffer=shm.buf, offset=spec.offset)
        view.flags.writeable = False
        views.append(view)
    layout = meta.layout or ("array",) * len(views)
    state: List[Any] = []
    it = iter(views)
    for kind in layout:
        if kind == "array":
            state.append(next(it))
        else:  # ("quant", scheme): q + scale views → v3 state entry
            state.append({"quant": kind[1], "q": next(it),
                          "scale": next(it)})
    payload = dict(meta.extra)
    payload["state"] = state
    return shm, payload


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _disown_from_resource_tracker(shm: shared_memory.SharedMemory) -> None:
    """Undo the attach-side resource_tracker registration (POSIX).

    CPython registers a segment with the per-process resource tracker on
    *every* ``SharedMemory(name=...)``, not just on create; without this
    a worker's tracker would unlink the fleet-shared segment when that
    worker exits.  Ownership stays with the publisher.
    """
    try:
        from multiprocessing import resource_tracker

        # The tracker stores the raw (slash-prefixed on POSIX) name.
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - platform-specific bookkeeping
        pass
