"""Persistent per-design what-if sessions.

The paper's value proposition (Table III) is that a trained predictor
answers "what is the sign-off arrival at each endpoint of *this*
placement" in milliseconds instead of minutes of opt + route + sign-off
STA.  The one-shot CLI pays the flow, the sample build and the model load
on every call; a :class:`DesignSession` pays them **once**:

* the design's flow artifacts (input netlist + placement) and its
  prepared :class:`~repro.ml.sample.DesignSample` stay resident,
* an :class:`~repro.timing.IncrementalSTA` stays attached to the
  pre-routing view, so every what-if also reports the fast analytic
  pre-route WNS/TNS next to the model's sign-off prediction,
* what-if edits (resize / move) re-featurize only what they touched
  (see :mod:`repro.serve.featurize`) and re-predict.

Sessions are thread-safe (one internal lock — the underlying model's
forward pass keeps per-layer caches, so calls are serialized per
session).  Cross-design concurrency comes from running many sessions.
"""

from __future__ import annotations

import inspect
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.masking import build_endpoint_paths
from repro.core.predictor import TimingPredictor
from repro.flow import FlowConfig, FlowResult
from repro.ml.dataset import build_sample
from repro.ml.plancache import PLAN_CACHE
from repro.ml.sample import DesignSample
from repro.obs import get_metrics, get_tracer
from repro.serve.featurize import IncrementalFeaturizer
from repro.timing import IncrementalSTA, build_timing_graph
from repro.utils import get_logger, require

logger = get_logger("serve.session")

EDIT_OPS = ("resize", "move")


def _normalize_infer(fn: Callable) -> Callable:
    """Adapt an infer callable to the ``(sample, timeout=None)`` shape.

    :meth:`MicroBatcher.submit` already takes a ``timeout``; a bare
    ``predictor.predict_array`` (or a test stub) does not — wrap it so
    the session can always pass the request's remaining deadline down.
    """
    try:
        params = inspect.signature(fn).parameters
        takes_timeout = ("timeout" in params
                         or any(p.kind is p.VAR_KEYWORD
                                for p in params.values()))
    except (TypeError, ValueError):  # builtins, odd callables
        takes_timeout = False
    if takes_timeout:
        return fn
    return lambda sample, timeout=None: fn(sample)


@dataclass(frozen=True)
class Edit:
    """One what-if edit: gate resize or cell move (topology-preserving)."""

    op: str                         # "resize" | "move"
    cell: int
    type_name: Optional[str] = None  # resize target library cell
    x: Optional[float] = None        # move target coordinates (µm)
    y: Optional[float] = None

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Edit":
        """Parse/validate the wire format used by the HTTP API."""
        require(isinstance(d, dict), f"edit must be an object, got {d!r}")
        op = d.get("op")
        require(op in EDIT_OPS, f"edit op must be one of {EDIT_OPS}, "
                                f"got {op!r}")
        require("cell" in d, "edit is missing 'cell'")
        cell = int(d["cell"])
        if op == "resize":
            require(isinstance(d.get("type"), str),
                    "resize edit needs a 'type' (library cell name)")
            return cls(op="resize", cell=cell, type_name=d["type"])
        require("x" in d and "y" in d, "move edit needs 'x' and 'y'")
        return cls(op="move", cell=cell, x=float(d["x"]), y=float(d["y"]))


class DesignSession:
    """A long-lived, editable view of one design for the predictor.

    Parameters
    ----------
    flow:
        A completed :class:`~repro.flow.FlowResult`.  The session *owns*
        the flow's pre-routing artifacts (input netlist + placement) and
        mutates them on committed edits — do not share them.
    predictor:
        A fitted :class:`TimingPredictor`.  Sessions only call its
        ``predict``; one predictor instance must not be shared across
        sessions that run concurrently (its forward pass caches state) —
        unless every session routes inference through a shared
        *infer* callable that serializes model access (see below).
    infer:
        Optional replacement for ``predictor.predict_array``: a callable
        ``sample -> (E,) arrival array (ps)``.  The micro-batching server
        passes :meth:`repro.serve.MicroBatcher.submit` here so concurrent
        sessions' inferences coalesce into one packed forward pass.
        Multi-corner sessions additionally call it with a **list** of
        corner-view samples and expect a list of arrays back (the
        batcher flattens them into one packed forward).
    corners:
        Sign-off corner names this session answers for (must be a subset
        of the predictor's ``corner_names``).  ``None`` serves every
        corner the model was trained on — ``("base",)`` for legacy
        single-corner models, which keeps all pre-MMMC behavior exactly.
    """

    def __init__(self, flow: FlowResult, predictor: TimingPredictor,
                 seed: int = 0,
                 sample: Optional[DesignSample] = None,
                 infer: Optional[Callable[[DesignSample], np.ndarray]]
                 = None,
                 corners: Optional[Sequence[str]] = None,
                 partition_pins: Optional[int] = None) -> None:
        require(predictor.trainer.norm is not None,
                "predictor must be fitted (or loaded) before serving")
        self.name = flow.name
        self.predictor = predictor
        model_corners = predictor.model_config.corner_names
        corners = (tuple(corners) if corners is not None
                   else tuple(model_corners))
        require(len(corners) >= 1, "session needs at least one corner")
        unknown = [c for c in corners if c not in model_corners]
        require(not unknown,
                f"model serves corners {list(model_corners)}, "
                f"not {unknown}")
        #: Served corner names; index 0 is the *primary* corner whose
        #: predictions fill the legacy response fields.
        self.corners: Tuple[str, ...] = corners
        self._corner_idx = tuple(model_corners.index(c) for c in corners)
        # With no external infer callable the session is the predictor's
        # only user, so closing the session may release the predictor's
        # inference arena too (shared predictors keep theirs).
        self._owns_model = infer is None
        self._infer = _normalize_infer(
            infer if infer is not None else predictor.predict_array)
        # Cross-corner inference must stay ONE packed forward: the
        # batcher's submit is list-polymorphic; a session that owns its
        # predictor packs the corner views itself.
        if infer is not None:
            self._infer_many = self._infer
        else:
            self._infer_many = _normalize_infer(
                predictor.predict_batch_arrays)
        self.seed = seed
        self.last_used = time.monotonic()
        self._closed = False
        self.netlist = flow.input_netlist
        self.placement = flow.input_placement
        self.clock_period = flow.clock_period
        #: Flow scenario this session serves ("" = the default flow);
        #: carried by the FlowResult (so it survives the fleet's worker
        #: pipe) and surfaced through /designs.
        self.scenario = getattr(flow, "scenario", "")
        self.revision = 0          # bumped on every committed edit batch
        self.whatifs_served = 0
        self._lock = threading.RLock()
        # Predictions at the current committed state, one (E,) array per
        # served corner; the state only changes on commit/apply, so this
        # saves one model inference per query (and the "before" pass of
        # every what-if).
        self._baseline: Optional[List[np.ndarray]] = None

        map_bins = predictor.model_config.map_bins
        with get_tracer().span("serve.session.open", design=self.name):
            self.sample = sample if sample is not None else build_sample(
                flow, map_bins=map_bins, seed=seed,
                partition_pins=partition_pins)
            if (partition_pins is not None
                    and self.sample.partition_pins is None):
                # Pre-built (e.g. cached) sample: stamp the execution
                # knob so session inference streams chunk-by-chunk.
                # What-if edits stay finer-grained than chunks — the
                # incremental featurizer refreshes touched rows in place
                # and the streaming forward gathers rows lazily.
                self.sample.partition_pins = partition_pins
            require(self.sample.layout_stack.shape[1] == map_bins,
                    "sample resolution does not match the predictor")
            # The resident sample must carry the primary corner's model
            # index (a dataset-built sample may use flow-local indices).
            # corner_view shares every array, so the featurizer below
            # still edits the same buffers; the no-op check keeps the
            # single-corner object identity (and plan-cache keys) exact.
            if (self.sample.corner, self.sample.corner_index) != (
                    self.corners[0], self._corner_idx[0]):
                self.sample = self.sample.corner_view(
                    self.corners[0], self._corner_idx[0])
            self.graph = build_timing_graph(self.netlist)
            paths = build_endpoint_paths(self.netlist.name, self.graph,
                                         seed)
            self.featurizer = IncrementalFeaturizer(
                self.netlist, self.placement, self.graph,
                x_cell=self.sample.x_cell, x_net=self.sample.x_net,
                masks=self.sample.masks, paths=paths,
                layout_stack=self.sample.layout_stack, map_bins=map_bins)
            self.sta = IncrementalSTA(self.netlist, self.placement,
                                      self.clock_period)
        get_metrics().counter("serve.sessions_opened").inc()
        logger.info("session %s: %d endpoints, %d cells", self.name,
                    self.sample.n_endpoints, len(self.netlist.cells))

    @classmethod
    def open(cls, design: str, predictor: TimingPredictor,
             flow_config: Optional[FlowConfig] = None,
             seed: int = 0,
             corners: Optional[Sequence[str]] = None) -> "DesignSession":
        """Run the reference flow once and wrap it in a session.

        Delegates to :class:`repro.serve.factory.SessionFactory` — the
        one construction path shared with the CLI and fleet workers.
        """
        from repro.serve.factory import SessionFactory

        factory = SessionFactory(lambda: predictor,
                                 flow_config=flow_config,
                                 corners=corners, default_seed=seed)
        return factory.open(design)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def predict(self, endpoints: Optional[Sequence[int]] = None,
                deadline_s: Optional[float] = None,
                corner: Optional[str] = None) -> Dict[int, float]:
        """Batched endpoint predictions at the current design state.

        *endpoints* filters to a subset of endpoint pin ids; the model
        always embeds all endpoints in one batch (that is its native
        shape), so a subset costs the same as the full set.

        *corner* selects which served corner's predictions to return
        (default: the primary corner).  Every served corner is computed
        in the same packed forward, so asking for a non-primary corner
        costs nothing extra.

        *deadline_s* bounds the whole call — lock wait, micro-batch
        wait, and the forward pass; :class:`TimeoutError` on expiry.
        """
        self.last_used = time.monotonic()
        t_end = (None if deadline_s is None
                 else time.perf_counter() + deadline_s)
        pos = self._corner_pos(corner)
        with self._locked(t_end):
            pred = self._baseline_stack(t_end)[pos]
            by_pin = {int(p): float(v)
                      for p, v in zip(self.sample.endpoint_pins, pred)}
        if endpoints is None:
            return by_pin
        missing = [p for p in endpoints if int(p) not in by_pin]
        require(not missing,
                f"unknown endpoint pin(s) for {self.name}: {missing}")
        return {int(p): by_pin[int(p)] for p in endpoints}

    def predict_report(self, endpoints: Optional[Sequence[int]] = None,
                       deadline_s: Optional[float] = None,
                       corner: Optional[str] = None) -> Dict[str, Any]:
        """:meth:`predict` plus per-corner arrival/slack reports.

        One lock window, one cached baseline stack (all served corners
        come out of a single packed forward).  Returns
        ``{"predictions", "corners", "worst"}`` where ``corners`` maps
        each served corner name to
        ``{"corner", "predictions", "wns", "tns"}``.
        """
        self.last_used = time.monotonic()
        t_end = (None if deadline_s is None
                 else time.perf_counter() + deadline_s)
        pos = self._corner_pos(corner)
        with self._locked(t_end):
            stack = self._baseline_stack(t_end)
            reports = self._corner_reports(stack)
            pred = stack[pos]
            by_pin = {int(p): float(v)
                      for p, v in zip(self.sample.endpoint_pins, pred)}
        if endpoints is not None:
            missing = [p for p in endpoints if int(p) not in by_pin]
            require(not missing,
                    f"unknown endpoint pin(s) for {self.name}: {missing}")
            by_pin = {int(p): by_pin[int(p)] for p in endpoints}
        return {"predictions": by_pin, "corners": reports,
                "worst": _worst_of(reports)}

    def whatif(self, edits: Sequence[Edit],
               commit: bool = False,
               deadline_s: Optional[float] = None,
               corner: Optional[str] = None) -> Dict[str, Any]:
        """Apply *edits*, re-featurize incrementally, re-predict.

        With ``commit=False`` (the default) the edits are reverted before
        returning, so the session state is untouched — a pure question.
        Returns predictions, the analytic pre-route WNS/TNS after the
        edits, and the shift against the pre-edit predictions.

        A multi-corner session answers **every** served corner in one
        packed forward (the corner views of the edited sample are
        flattened into a single :class:`~repro.ml.batch.PackedBatch`)
        and adds ``corners``/``worst`` blocks to the result; the legacy
        ``predictions``/``shift`` fields report the *corner* argument's
        corner (default: primary).  The analytic ``pre_route`` check
        stays the base-corner incremental STA.

        *deadline_s* bounds the whole call (lock + batcher wait + both
        forwards); :class:`TimeoutError` on expiry.  A timeout before
        the commit point leaves the session at its pre-call state.
        """
        edits = [e if isinstance(e, Edit) else Edit.from_dict(e)
                 for e in edits]
        require(len(edits) > 0, "whatif needs at least one edit")
        self.last_used = time.monotonic()
        t_end = (None if deadline_s is None
                 else time.perf_counter() + deadline_s)
        pos = self._corner_pos(corner)
        with self._locked(t_end):
            sp = get_tracer().span("serve.whatif", design=self.name,
                                   edits=len(edits), commit=commit)
            with sp:
                before = self._baseline_stack(t_end)
                inverse = self._apply(edits)
                try:
                    self._refresh()
                    after = self._infer_stack(t_end)
                except TimeoutError:
                    # Restore the pre-call state before surfacing the
                    # deadline, so an expired what-if is still pure.
                    self._apply(inverse)
                    self._refresh()
                    raise
                sta_after = self.sta.result
                reports = (self._corner_reports(after)
                           if len(self.corners) > 1 else None)
                if commit:
                    self.revision += 1
                    self._baseline = after
                else:
                    self._apply(inverse)
                    self._refresh()
            self.whatifs_served += 1
            get_metrics().counter("serve.whatifs").inc()
            get_metrics().histogram("serve.whatif_ms").observe(
                sp.duration * 1e3)
            shift = after[pos] - before[pos]
            result = {
                "design": self.name,
                "revision": self.revision,
                "committed": commit,
                "predictions": {
                    int(p): float(v)
                    for p, v in zip(self.sample.endpoint_pins,
                                    after[pos])},
                "pre_route": {"wns": float(sta_after.wns),
                              "tns": float(sta_after.tns)},
                "shift": {"max_ps": float(np.abs(shift).max()),
                          "mean_ps": float(shift.mean()),
                          "endpoints_changed": int((shift != 0.0).sum())},
                "latency_ms": sp.duration * 1e3,
            }
            if reports is not None:
                result["corners"] = reports
                result["worst"] = _worst_of(reports)
            return result

    def apply(self, edits: Sequence[Edit]) -> List[Edit]:
        """Apply edits permanently; returns the inverse edit list."""
        edits = [e if isinstance(e, Edit) else Edit.from_dict(e)
                 for e in edits]
        self.last_used = time.monotonic()
        with self._lock:
            inverse = self._apply(edits)
            self._refresh()
            self.revision += 1
            self._baseline = None
        return inverse

    def close(self, deadline_s: Optional[float] = None) -> None:
        """Release everything the session pinned (idempotent).

        Frees the merged-plan cache entries keyed by this design's
        sample, the cached baseline predictions, and — when the session
        owns its predictor — the predictor's inference buffer arena, so
        a deleted/evicted design's memory actually returns to the OS
        instead of living on in process-wide caches (the leak this
        method exists to close).

        *deadline_s* bounds the wait for the session lock; ``0.0`` makes
        the close non-blocking (the idle-TTL sweep uses that so a busy
        session is never evicted mid-request).
        """
        t_end = (None if deadline_s is None
                 else time.perf_counter() + deadline_s)
        with self._locked(t_end):
            if self._closed:
                return
            self._closed = True
            released = PLAN_CACHE.release(self.sample)
            self._baseline = None
            if self._owns_model:
                self.predictor.release_workspace()
                self.predictor.model.drain_caches()
        get_metrics().counter("serve.sessions_closed").inc()
        logger.info("session %s: closed (%d plan-cache entries released)",
                    self.name, released)

    def describe(self) -> Dict[str, Any]:
        """Summary for the ``/designs`` endpoint (canonical shape in
        :class:`repro.serve.api.DesignInfo`)."""
        from repro.serve.api import DesignInfo

        return DesignInfo(
            design=self.name,
            cells=len(self.netlist.cells),
            endpoints=int(self.sample.n_endpoints),
            clock_period_ps=float(self.clock_period),
            revision=self.revision,
            whatifs_served=self.whatifs_served,
            corners=self.corners,
            scenario=self.scenario).to_wire()

    # ------------------------------------------------------------------
    @contextmanager
    def _locked(self, t_end: Optional[float] = None):
        """Acquire the session lock, honoring an absolute deadline."""
        if t_end is None:
            acquired = self._lock.acquire()
        else:
            acquired = self._lock.acquire(
                timeout=max(t_end - time.perf_counter(), 0.0))
            if not acquired:
                raise TimeoutError(
                    f"session {self.name} stayed busy past the "
                    "request deadline")
        try:
            yield
        finally:
            self._lock.release()

    def _corner_pos(self, corner: Optional[str]) -> int:
        """Position of *corner* in the served tuple (None = primary)."""
        if corner is None:
            return 0
        require(corner in self.corners,
                f"corner {corner!r} is not served for {self.name} "
                f"(have: {list(self.corners)})")
        return self.corners.index(corner)

    def _infer_stack(self, t_end: Optional[float] = None
                     ) -> List[np.ndarray]:
        """One (E,) prediction array per served corner, from ONE packed
        forward (caller holds the lock).

        Corner views are built fresh per call: they share every feature
        array with the resident sample (``corner_view`` is a shallow
        copy), so incremental edits are always visible and only the
        corner identity differs per view.
        """
        if len(self.corners) == 1:
            return [self._infer(self.sample, timeout=_remaining(t_end))]
        views = [self.sample.corner_view(c, i)
                 for c, i in zip(self.corners, self._corner_idx)]
        out = self._infer_many(views, timeout=_remaining(t_end))
        return [np.asarray(a) for a in out]

    def _baseline_stack(self, t_end: Optional[float] = None
                        ) -> List[np.ndarray]:
        """Predictions at the committed state (cached; caller holds lock)."""
        if self._baseline is None:
            self._baseline = self._infer_stack(t_end)
        return self._baseline

    def _corner_reports(self, stack: List[np.ndarray]
                        ) -> Dict[str, Dict[str, Any]]:
        """Per-corner ``{corner, predictions, wns, tns}`` blocks.

        Slack follows the sign-off convention (``timing/sta.py``):
        ``clock_period − setup − arrival`` with the endpoint cell's
        setup requirement derated by the corner's delay factor.
        """
        pins = self.sample.endpoint_pins
        out: Dict[str, Dict[str, Any]] = {}
        for name, pred in zip(self.corners, stack):
            slack = self._required(name) - pred
            out[name] = {
                "corner": name,
                "predictions": {int(p): float(v)
                                for p, v in zip(pins, pred)},
                "wns": float(slack.min()) if len(slack) else 0.0,
                "tns": float(np.minimum(slack, 0.0).sum()),
            }
        return out

    def _required(self, corner: str) -> np.ndarray:
        """Per-endpoint required time at *corner* (recomputed per call —
        a resize edit can change an endpoint register's setup time)."""
        from repro.timing.corners import resolve_corner

        factor = resolve_corner(corner).delay_factor
        nl = self.netlist
        req = np.empty(len(self.sample.endpoint_pins))
        for i, pid in enumerate(self.sample.endpoint_pins):
            pin = nl.pins[int(pid)]
            setup = 0.0
            if pin.cell is not None:
                setup = nl.library.cell(
                    nl.cells[pin.cell].type_name).setup_time
            req[i] = self.clock_period - setup * factor
        return req

    def _apply(self, edits: Sequence[Edit]) -> List[Edit]:
        """Mutate netlist/placement/STA, mark dirty; return inverses."""
        nl = self.netlist
        inverse: List[Edit] = []
        for e in edits:
            require(e.cell in nl.cells,
                    f"{self.name} has no cell {e.cell}")
            feat = self.featurizer
            if e.op == "resize":
                old_type = nl.cells[e.cell].type_name
                feat.mark_cell_region(e.cell)            # old footprint
                self.sta.resize_cell(e.cell, e.type_name)
                feat.mark_cell_region(e.cell)            # new footprint
                feat.mark_resize(e.cell)
                inverse.append(Edit(op="resize", cell=e.cell,
                                    type_name=old_type))
            else:
                old_x, old_y = self.placement.position(e.cell)
                feat.mark_cell_region(e.cell, moved=True)  # old geometry
                self.sta.move_cell(e.cell, e.x, e.y)
                feat.mark_cell_region(e.cell, moved=True)  # new geometry
                feat.mark_move(e.cell)
                inverse.append(Edit(op="move", cell=e.cell,
                                    x=old_x, y=old_y))
        inverse.reverse()
        return inverse

    def _refresh(self) -> None:
        self.featurizer.refresh()
        self.sta.refresh()


def _worst_of(reports: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """The worst-corner summary block: smallest WNS across corners."""
    worst = min(reports.values(), key=lambda r: r["wns"])
    return {"corner": worst["corner"], "wns": worst["wns"],
            "tns": worst["tns"]}


def _remaining(t_end: Optional[float]) -> Optional[float]:
    """Absolute perf_counter deadline → remaining seconds (None = ∞)."""
    if t_end is None:
        return None
    return max(t_end - time.perf_counter(), 0.0)
