"""Async HTTP gateway for the serving fleet (stdlib ``selectors`` loop).

The gateway is the fleet's **transport** layer: one thread, one
``selectors`` event loop multiplexing

* the listening socket (accept),
* every client connection (HTTP/1.1 with keep-alive, parsed
  incrementally),
* every worker pipe (responses, fan-out replies, drain acks), and
* every worker's process **sentinel** (crash detection — a kill -9
  wakes the loop immediately, no polling).

Requests never block the loop: a ``/predict`` is forwarded to its
design's shard (:meth:`~repro.serve.fleet.TimingFleet.submit`) and the
client socket simply stays quiet until the worker's response comes back
through the pipe.  The loop therefore keeps accepting and serving other
clients while any number of requests are in flight — concurrency is
bounded by the per-worker queues, not by gateway threads.

Responses carry an ``X-Repro-Worker`` header naming the worker id that
served them (``-`` for gateway-answered routes), which the affinity
tests key on.

Shutdown: SIGTERM (or :meth:`stop`) begins a **graceful drain** — new
requests get a 503 (``code: draining``), every worker finishes its
in-flight requests and acks, worker traces are merged into the parent
tracer, then everything is torn down.
"""

from __future__ import annotations

import json
import selectors
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import get_metrics, get_tracer
from repro.obs.merge import fold_metrics_snapshot, merge_worker_traces
from repro.obs.metrics import MetricsRegistry
from repro.serve import api
from repro.serve.api import ApiError
from repro.serve.fleet import FleetOverloaded, TimingFleet, WorkerHandle
from repro.utils import get_logger

logger = get_logger("serve.gateway")

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 16 * 1024 * 1024
#: Slack added to the gateway-side deadline backstop so the worker's own
#: (better-worded, dispatcher-identical) 504 normally wins the race.
_DEADLINE_GRACE_S = 0.5


class _Client:
    """One HTTP connection: incremental parser + write buffer."""

    def __init__(self, sock: socket.socket, addr) -> None:
        self.sock = sock
        self.addr = addr
        self.rbuf = b""
        self.wbuf = b""
        self.close_after_write = False
        #: Parsing is paused while a request is in flight (no pipelining:
        #: the next request is read only after this response is written).
        self.busy = False

    def fileno(self) -> int:
        return self.sock.fileno()


class _Exchange:
    """One in-flight request: ties a client to its eventual response."""

    def __init__(self, gateway: "TimingGateway", client: _Client,
                 keep_alive: bool, t_end: Optional[float],
                 route_label: str, worker_label: str) -> None:
        self.gateway = gateway
        self.client = client
        self.keep_alive = keep_alive
        self.t_end = t_end
        self.route_label = route_label
        self.worker_label = worker_label
        self.started = time.perf_counter()
        self.done = False

    def respond(self, status: int, payload: Dict[str, Any],
                extra_headers: Optional[Dict[str, str]] = None) -> None:
        """Send exactly one response; later calls are ignored."""
        if self.done:
            return
        self.done = True
        self.gateway._finish_exchange(self, status, payload, extra_headers)


class TimingGateway:
    """Single-threaded async front end over a :class:`TimingFleet`."""

    def __init__(self, fleet: TimingFleet, host: str = "127.0.0.1",
                 port: int = 8787,
                 model_info: Optional[Dict[str, Any]] = None) -> None:
        self.fleet = fleet
        self.host = host
        self.port = port
        self.model_info = model_info or {}
        self.started_at = time.time()
        self.draining = False
        self._sel = selectors.DefaultSelector()
        self._listener: Optional[socket.socket] = None
        self._clients: Dict[int, _Client] = {}
        self._exchanges: List[_Exchange] = []
        self._thread: Optional[threading.Thread] = None
        self._running = False
        # Self-pipe: lets stop()/signal handlers wake the selector loop
        # from another thread or from inside a signal frame.
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self) -> Tuple[str, int]:
        """Bind the listening socket (idempotent); returns (host, port)."""
        if self._listener is None:
            lst = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            lst.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            lst.bind((self.host, self.port))
            lst.listen(128)
            lst.setblocking(False)
            self._listener = lst
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        if self._listener is not None:
            return self._listener.getsockname()[:2]
        return (self.host, self.port)

    def start(self) -> "TimingGateway":
        """Serve on a background thread (tests, embedding)."""
        self.bind()
        self._thread = threading.Thread(target=self.serve_forever,
                                        name="repro-gateway", daemon=True)
        self._thread.start()
        return self

    def request_drain(self) -> None:
        """Begin a graceful drain without waiting (signal-handler safe)."""
        self.draining = True
        try:
            self._wake_w.send(b"x")
        except OSError:
            pass

    def stop(self, drain_timeout_s: float = 30.0) -> None:
        """Begin a graceful drain and wait for the loop to finish."""
        self.request_drain()
        if self._thread is not None:
            self._thread.join(timeout=drain_timeout_s + 5.0)

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def serve_forever(self, drain_timeout_s: float = 30.0) -> None:
        self.bind()
        self._running = True
        sel = self._sel
        sel.register(self._listener, selectors.EVENT_READ, ("accept",))
        sel.register(self._wake_r, selectors.EVENT_READ, ("wake",))
        for worker in self.fleet.workers:
            self._register_worker(worker)
        logger.info("gateway serving %d design(s) on http://%s:%d via "
                    "%d worker(s)", len(self.fleet.flows), *self.address,
                    len(self.fleet.workers))
        drain_started: Optional[float] = None
        try:
            while True:
                if self.draining and drain_started is None:
                    drain_started = time.perf_counter()
                    self.fleet.drain_begin()
                if drain_started is not None and self._drained(
                        drain_started, drain_timeout_s):
                    break
                timeout = self._poll_timeout()
                for key, _mask in sel.select(timeout):
                    self._on_event(key)
                self._sweep_deadlines()
        except KeyboardInterrupt:
            if not self.draining:  # first ^C drains; loop once more
                self.draining = True
                self.fleet.drain_begin()
                drain_started = time.perf_counter()
                try:
                    while not self._drained(drain_started,
                                            drain_timeout_s):
                        for key, _mask in sel.select(
                                self._poll_timeout()):
                            self._on_event(key)
                        self._sweep_deadlines()
                except KeyboardInterrupt:
                    pass  # second ^C: hard stop
        finally:
            self._running = False
            self._teardown()

    def _drained(self, drain_started: float, timeout_s: float) -> bool:
        if time.perf_counter() - drain_started > timeout_s:
            logger.warning("drain timed out after %.0fs; forcing "
                           "shutdown", timeout_s)
            return True
        flushed = all(not c.wbuf for c in self._clients.values())
        return (self.fleet.all_drained
                and not [e for e in self._exchanges if not e.done]
                and flushed)

    def _poll_timeout(self) -> float:
        timeout = 0.25 if (self.draining or self._exchanges) else 1.0
        nxt = self.fleet.next_deadline()
        nxt_ex = [e.t_end for e in self._exchanges
                  if not e.done and e.t_end is not None]
        for t_end in ([nxt] if nxt is not None else []) + nxt_ex:
            timeout = min(timeout,
                          max(t_end - time.perf_counter(), 0.0) + 0.005)
        return timeout

    def _sweep_deadlines(self) -> None:
        now = time.perf_counter()
        self.fleet.expire(now)
        for exchange in self._exchanges:
            if not exchange.done and exchange.t_end is not None \
                    and exchange.t_end < now:
                exchange.respond(504, _error(
                    "deadline_exceeded",
                    "request exceeded its deadline waiting on the fleet"))
        self._exchanges = [e for e in self._exchanges if not e.done]

    def _on_event(self, key: selectors.SelectorKey) -> None:
        kind = key.data[0]
        if kind == "accept":
            self._accept()
        elif kind == "wake":
            try:
                self._wake_r.recv(4096)
            except OSError:
                pass
        elif kind == "client":
            self._client_io(key.data[1], key.events)
        elif kind == "worker":
            self.fleet.pump(key.data[1])
        elif kind == "sentinel":
            self._worker_died(key.data[1])

    # ------------------------------------------------------------------
    # Worker plumbing
    # ------------------------------------------------------------------
    def _register_worker(self, worker: WorkerHandle) -> None:
        self._sel.register(worker.conn, selectors.EVENT_READ,
                           ("worker", worker))
        self._sel.register(worker.process.sentinel, selectors.EVENT_READ,
                           ("sentinel", worker))

    def _unregister_worker(self, worker: WorkerHandle) -> None:
        for fileobj in (worker.conn, worker.process.sentinel):
            try:
                self._sel.unregister(fileobj)
            except (KeyError, ValueError):
                pass

    def _worker_died(self, worker: WorkerHandle) -> None:
        self._unregister_worker(worker)
        if worker.drained:
            return  # expected exit during drain
        get_metrics().counter("gateway.worker_deaths").inc()
        replacement = self.fleet.handle_worker_death(worker)
        if replacement is not None:
            self._register_worker(replacement)

    # ------------------------------------------------------------------
    # Client plumbing
    # ------------------------------------------------------------------
    def _accept(self) -> None:
        try:
            sock, addr = self._listener.accept()
        except OSError:
            return
        sock.setblocking(False)
        client = _Client(sock, addr)
        self._clients[sock.fileno()] = client
        self._sel.register(sock, selectors.EVENT_READ, ("client", client))

    def _client_io(self, client: _Client, events: int) -> None:
        if events & selectors.EVENT_WRITE:
            self._flush(client)
        if events & selectors.EVENT_READ:
            try:
                chunk = client.sock.recv(65536)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                self._drop(client)
                return
            if not chunk:
                self._drop(client)
                return
            client.rbuf += chunk
            if len(client.rbuf) > _MAX_HEADER_BYTES + _MAX_BODY_BYTES:
                self._drop(client)
                return
            if not client.busy:
                self._try_parse(client)

    def _drop(self, client: _Client) -> None:
        self._clients.pop(client.fileno(), None)
        try:
            self._sel.unregister(client.sock)
        except (KeyError, ValueError):
            pass
        try:
            client.sock.close()
        except OSError:
            pass

    def _interest(self, client: _Client) -> None:
        """Recompute the selector mask from the client's state."""
        mask = selectors.EVENT_WRITE if client.wbuf else 0
        if not client.busy:
            mask |= selectors.EVENT_READ
        if client.fileno() not in self._clients:
            return
        if mask == 0:
            mask = selectors.EVENT_READ
        try:
            self._sel.modify(client.sock, mask, ("client", client))
        except (KeyError, ValueError):
            pass

    def _flush(self, client: _Client) -> None:
        try:
            sent = client.sock.send(client.wbuf)
            client.wbuf = client.wbuf[sent:]
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._drop(client)
            return
        if not client.wbuf:
            if client.close_after_write:
                self._drop(client)
                return
            client.busy = False
            self._interest(client)
            # A pipelined/buffered next request may already be waiting.
            self._try_parse(client)

    # ------------------------------------------------------------------
    # HTTP parsing + routing
    # ------------------------------------------------------------------
    def _try_parse(self, client: _Client) -> None:
        head_end = client.rbuf.find(b"\r\n\r\n")
        if head_end < 0:
            if len(client.rbuf) > _MAX_HEADER_BYTES:
                self._drop(client)
            return
        head = client.rbuf[:head_end].decode("latin-1")
        lines = head.split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            self._drop(client)
            return
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                k, v = line.split(":", 1)
                headers[k.strip().lower()] = v.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > _MAX_BODY_BYTES:
            self._drop(client)
            return
        total = head_end + 4 + length
        if len(client.rbuf) < total:
            return  # body still in flight
        raw_body = client.rbuf[head_end + 4:total]
        client.rbuf = client.rbuf[total:]
        client.busy = True
        self._interest(client)
        keep_alive = headers.get("connection", "").lower() != "close"
        self._route(client, method, target, raw_body, keep_alive)

    def _route(self, client: _Client, method: str, target: str,
               raw_body: bytes, keep_alive: bool) -> None:
        path = target.split("?", 1)[0].rstrip("/") or "/"
        body: Optional[Dict[str, Any]] = None
        if method == "POST":
            try:
                body = (json.loads(raw_body.decode("utf-8"))
                        if raw_body.strip() else {})
                if not isinstance(body, dict):
                    raise ValueError("request body must be a JSON object")
            except (ValueError, UnicodeDecodeError) as exc:
                exchange = self._open_exchange(client, keep_alive, None,
                                               f"{method} {path}", "-")
                exchange.respond(400, _error("bad_json", str(exc)))
                return

        design = (body or {}).get("design")
        worker_label = "-"
        t_end: Optional[float] = None
        if method == "POST" and path in ("/predict", "/whatif"):
            budget = self.fleet.config.deadline_s
            if isinstance(body, dict) and "deadline_s" in body:
                try:
                    budget = min(budget, float(body["deadline_s"]))
                except (TypeError, ValueError):
                    pass
            t_end = time.perf_counter() + budget + _DEADLINE_GRACE_S
        exchange = self._open_exchange(client, keep_alive, t_end,
                                       f"{method} {path}", worker_label)
        try:
            if (method, path) == ("GET", "/health"):
                # Health stays observable during a drain (it reports
                # "draining"); everything else is shed below.
                exchange.respond(200, self._health())
                return
            if self.draining:
                raise ApiError(503, "draining",
                               "gateway is draining; retry against a "
                               "fresh instance")
            if (method, path) == ("GET", "/metrics"):
                self.fleet.fanout(
                    "metrics",
                    lambda snaps: exchange.respond(
                        200, {"metrics": self._fold_metrics(snaps)}))
            elif (method, path) == ("GET", "/designs"):
                self.fleet.fanout(
                    "designs",
                    lambda replies: exchange.respond(
                        200, _merge_designs(replies)))
            elif method == "POST" and path in ("/predict", "/whatif"):
                worker = self.fleet.worker_for(design)
                exchange.worker_label = str(worker.id)
                self.fleet.submit(design, method, path, body,
                                  exchange.respond, t_end=t_end)
            elif method == "DELETE" and path.startswith("/designs/"):
                design = path[len("/designs/"):]
                exchange.t_end = (time.perf_counter()
                                  + self.fleet.config.deadline_s
                                  + _DEADLINE_GRACE_S)
                worker = self.fleet.worker_for(design)
                exchange.worker_label = str(worker.id)
                self.fleet.submit(design, method, path, None,
                                  exchange.respond, t_end=exchange.t_end)
            else:
                raise ApiError(404, "no_such_route",
                               f"no route {method} {path}")
        except FleetOverloaded as exc:
            get_metrics().counter("serve.rejected.overload").inc()
            exchange.respond(
                exc.status, _error(exc.code, exc.message),
                extra_headers={"Retry-After": str(exc.retry_after_s)})
        except ApiError as exc:
            exchange.respond(exc.status, _error(exc.code, exc.message))
        except Exception as exc:  # noqa: BLE001 — wire boundary
            logger.exception("gateway error on %s %s", method, path)
            exchange.respond(500, _error(
                "internal", f"{type(exc).__name__}: {exc}"))

    def _open_exchange(self, client: _Client, keep_alive: bool,
                       t_end: Optional[float], route_label: str,
                       worker_label: str) -> _Exchange:
        exchange = _Exchange(self, client, keep_alive, t_end, route_label,
                             worker_label)
        self._exchanges.append(exchange)
        return exchange

    def _finish_exchange(self, exchange: _Exchange, status: int,
                         payload: Dict[str, Any],
                         extra_headers: Optional[Dict[str, str]]) -> None:
        ms = (time.perf_counter() - exchange.started) * 1e3
        metrics = get_metrics()
        metrics.counter("serve.requests").inc()
        metrics.histogram("serve.latency_ms").observe(ms)
        metrics.histogram(
            f"serve.latency_ms.{exchange.route_label}").observe(ms)
        if status >= 400:
            metrics.counter("serve.errors").inc()
            metrics.counter(f"serve.errors.{status}").inc()
        get_tracer().event("serve.gateway.request",
                           route=exchange.route_label, status=status,
                           worker=exchange.worker_label, dur_ms=ms)
        client = exchange.client
        if client.fileno() not in self._clients:
            return  # client went away while we worked
        headers = {"X-Repro-Worker": exchange.worker_label}
        if extra_headers:
            headers.update(extra_headers)
        if not exchange.keep_alive:
            headers["Connection"] = "close"
            client.close_after_write = True
        client.wbuf += _render(status, payload, headers)
        self._interest(client)
        self._flush(client)

    # ------------------------------------------------------------------
    # Gateway-answered routes
    # ------------------------------------------------------------------
    def _health(self) -> Dict[str, Any]:
        microbatch = None
        if self.fleet.config.microbatch > 1:
            microbatch = {
                "max_batch": self.fleet.config.microbatch,
                "max_wait_ms": self.fleet.config.microbatch_wait_ms,
            }
        return api.HealthResponse(
            status="draining" if self.draining else "ok",
            designs=sorted(self.fleet.flows),
            model=self.model_info,
            uptime_s=time.time() - self.started_at,
            corners=self.fleet.config.corners,
            fleet=self.fleet.describe(),
            microbatch=microbatch).to_wire()

    def _fold_metrics(self, snapshots: List[Any]) -> Dict[str, Any]:
        """One registry view over the gateway and every worker."""
        merged = MetricsRegistry()
        fold_metrics_snapshot(merged, get_metrics().snapshot())
        for snap in snapshots:
            if isinstance(snap, dict):
                fold_metrics_snapshot(merged, snap)
        out = merged.snapshot()
        # The gateway's own latency histogram spans every request
        # end-to-end (client-observed); surface it unfolded so its
        # percentiles stay exact rather than approximate.
        for name, value in get_metrics().snapshot().items():
            if name.startswith("serve.latency_ms"):
                out[name] = value
        return out

    # ------------------------------------------------------------------
    def _teardown(self) -> None:
        if self.fleet.config.tracing and self.fleet.config.trace_dir:
            try:
                merged = merge_worker_traces(self.fleet.config.trace_dir)
                logger.info("merged %d worker trace events", merged)
            except OSError:
                pass
        self.fleet.stop()
        for client in list(self._clients.values()):
            self._drop(client)
        for fileobj in (self._listener, self._wake_r, self._wake_w):
            try:
                if fileobj is not None:
                    self._sel.unregister(fileobj)
            except (KeyError, ValueError):
                pass
            try:
                if fileobj is not None:
                    fileobj.close()
            except OSError:
                pass
        self._sel.close()


# ----------------------------------------------------------------------
def _error(code: str, message: str) -> Dict[str, Any]:
    return api.error_wire(code, message)


def _merge_designs(replies: List[Any]) -> Dict[str, Any]:
    designs: Dict[str, Any] = {}
    for reply in replies:
        if isinstance(reply, dict):
            designs.update(reply.get("designs", {}))
    return {"designs": dict(sorted(designs.items()))}


def _render(status: int, payload: Dict[str, Any],
            headers: Dict[str, str]) -> bytes:
    data = json.dumps(payload).encode("utf-8")
    reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
              500: "Internal Server Error", 503: "Service Unavailable",
              504: "Gateway Timeout"}.get(status, "Status")
    lines = [f"HTTP/1.1 {status} {reason}",
             "Content-Type: application/json",
             f"Content-Length: {len(data)}"]
    lines += [f"{k}: {v}" for k, v in headers.items()]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + data
