"""Canonical typed serving API: request/response schemas + versioning.

This module is the single source of truth for the serving wire format.
Every payload that crosses an HTTP boundary — from the in-process
:class:`~repro.serve.server.TimingServer`, a fleet worker's dispatcher,
or the async gateway — is built from (or parsed into) the dataclasses
here, so the three transports cannot drift apart shape-wise.

API versioning rules (documented here and only here)
----------------------------------------------------

* ``v1`` — the legacy, corner-unaware protocol.  ``/predict`` and
  ``/whatif`` take ``{design, endpoints?/edits, commit?, deadline_s?}``
  and answer with a flat ``predictions`` block; ``/health`` reports
  ``"api_version": "v1"``.
* ``v2`` — the MMMC-aware superset.  Requests may carry a ``corner``
  field selecting which sign-off corner fills the legacy
  ``predictions`` block, and responses from a **multi-corner** server
  additionally carry ``corners`` (per-corner arrival/slack reports) and
  ``worst`` (the worst-corner summary).  For a single-corner server, v2
  responses are byte-identical to v1 responses — v2 is a strict
  superset, never a reshape.

Negotiation: a request body may carry ``"api_version"``.

* absent → the current version (:data:`CURRENT_API_VERSION`).  Safe
  because v2 only *adds* fields, and only on multi-corner servers.
* ``"v1"`` → strict legacy semantics: the ``corner`` request field is
  rejected with a 400 and the ``corners``/``worst`` response blocks are
  suppressed even on a multi-corner server.  The first v1 request per
  process emits a :class:`DeprecationWarning`.
* anything else → 400 ``unsupported_api_version``.

``/health`` advertises the highest version whose *new* shapes can
actually appear: ``"v2"`` when the server serves more than one corner,
``"v1"`` otherwise (which keeps single-corner deployments byte-stable
across this redesign).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.utils import get_logger

logger = get_logger("serve.api")

#: The current (highest) protocol version.
CURRENT_API_VERSION = "v2"
#: The legacy corner-unaware protocol.
LEGACY_API_VERSION = "v1"
#: Every version this build can answer.
SUPPORTED_API_VERSIONS = (LEGACY_API_VERSION, CURRENT_API_VERSION)

_warned_legacy = False


class ApiError(Exception):
    """An error with a wire representation (status + structured body)."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message

    def to_wire(self) -> Dict[str, Any]:
        return error_wire(self.code, self.message)


def error_wire(code: str, message: str) -> Dict[str, Any]:
    """The one canonical error body: ``{"error": {"code", "message"}}``."""
    return {"error": {"code": code, "message": message}}


def advertised_version(corners: Optional[Sequence[str]]) -> str:
    """The version ``/health`` reports for a server serving *corners*."""
    if corners is not None and len(corners) > 1:
        return CURRENT_API_VERSION
    return LEGACY_API_VERSION


def negotiate_version(body: Optional[Dict[str, Any]]) -> str:
    """Resolve a request body's ``api_version`` (see module docstring)."""
    global _warned_legacy
    raw = body.get("api_version") if isinstance(body, dict) else None
    if raw is None:
        return CURRENT_API_VERSION
    if raw == LEGACY_API_VERSION:
        if not _warned_legacy:
            _warned_legacy = True
            warnings.warn(
                "serving API v1 is deprecated; omit 'api_version' (or send "
                f"{CURRENT_API_VERSION!r}) to use the corner-aware protocol",
                DeprecationWarning, stacklevel=3)
            logger.warning("client pinned deprecated api_version 'v1'")
        return LEGACY_API_VERSION
    if raw not in SUPPORTED_API_VERSIONS:
        raise ApiError(400, "unsupported_api_version",
                       f"api_version {raw!r} is not supported "
                       f"(supported: {list(SUPPORTED_API_VERSIONS)})")
    return raw


def _parse_corner(body: Dict[str, Any], api_version: str) -> Optional[str]:
    corner = body.get("corner")
    if corner is None:
        return None
    if api_version == LEGACY_API_VERSION:
        raise ApiError(400, "bad_request",
                       "'corner' requires api_version v2 "
                       "(v1 is corner-unaware)")
    if not isinstance(corner, str):
        raise ApiError(400, "bad_request",
                       "'corner' must be a corner name string")
    return corner


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PredictRequest:
    """``POST /predict`` — batched predictions at the committed state."""

    api_version: str = CURRENT_API_VERSION
    design: Optional[str] = None
    endpoints: Optional[List[int]] = None
    corner: Optional[str] = None          # v2 only; None = primary corner
    deadline_s: Optional[float] = None

    @classmethod
    def parse(cls, body: Dict[str, Any]) -> "PredictRequest":
        version = negotiate_version(body)
        endpoints = body.get("endpoints")
        if endpoints is not None and not isinstance(endpoints, list):
            raise ApiError(400, "bad_request",
                           "'endpoints' must be a list of pin ids")
        return cls(api_version=version,
                   design=body.get("design"),
                   endpoints=endpoints,
                   corner=_parse_corner(body, version),
                   deadline_s=body.get("deadline_s"))


@dataclass(frozen=True)
class WhatifRequest:
    """``POST /whatif`` — edit, re-featurize, re-predict."""

    api_version: str = CURRENT_API_VERSION
    design: Optional[str] = None
    edits: List[Dict[str, Any]] = field(default_factory=list)
    commit: bool = False
    corner: Optional[str] = None          # v2 only; None = primary corner
    deadline_s: Optional[float] = None

    @classmethod
    def parse(cls, body: Dict[str, Any]) -> "WhatifRequest":
        version = negotiate_version(body)
        edits = body.get("edits")
        if not isinstance(edits, list) or not edits:
            raise ApiError(400, "bad_request",
                           "'edits' must be a non-empty list")
        return cls(api_version=version,
                   design=body.get("design"),
                   edits=edits,
                   commit=bool(body.get("commit", False)),
                   corner=_parse_corner(body, version),
                   deadline_s=body.get("deadline_s"))


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
def _predictions_wire(predictions: Dict[int, float]) -> Dict[str, float]:
    return {str(p): float(v) for p, v in predictions.items()}


@dataclass(frozen=True)
class CornerReport:
    """One corner's arrival/slack summary (v2 ``corners`` block entry)."""

    corner: str
    predictions: Dict[int, float]         # endpoint pin → arrival (ps)
    wns: float                            # worst slack at this corner (ps)
    tns: float                            # total negative slack (ps, ≤ 0)

    def to_wire(self) -> Dict[str, Any]:
        return {"predictions": _predictions_wire(self.predictions),
                "wns": float(self.wns), "tns": float(self.tns)}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "CornerReport":
        return cls(corner=d["corner"], predictions=d["predictions"],
                   wns=d["wns"], tns=d["tns"])


def worst_corner_wire(reports: Sequence[CornerReport]) -> Dict[str, Any]:
    """The ``worst`` summary block: the corner with the smallest WNS."""
    worst = min(reports, key=lambda r: r.wns)
    return {"corner": worst.corner, "wns": float(worst.wns),
            "tns": float(worst.tns)}


@dataclass(frozen=True)
class PredictResponse:
    """``POST /predict`` response (legacy keys first, v2 blocks last)."""

    design: str
    revision: int
    predictions: Dict[int, float]
    corners: Optional[List[CornerReport]] = None
    worst: Optional[Dict[str, Any]] = None

    def to_wire(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "design": self.design,
            "revision": self.revision,
            "n_endpoints": len(self.predictions),
            "predictions": _predictions_wire(self.predictions),
        }
        if self.corners is not None:
            out["corners"] = {r.corner: r.to_wire() for r in self.corners}
            out["worst"] = (dict(self.worst) if self.worst is not None
                            else worst_corner_wire(self.corners))
        return out


@dataclass(frozen=True)
class WhatifResponse:
    """``POST /whatif`` response (legacy keys first, v2 blocks last)."""

    design: str
    revision: int
    committed: bool
    predictions: Dict[int, float]
    pre_route: Dict[str, float]
    shift: Dict[str, float]
    latency_ms: float
    corners: Optional[List[CornerReport]] = None
    worst: Optional[Dict[str, Any]] = None

    @classmethod
    def from_session(cls, result: Dict[str, Any],
                     include_corners: bool) -> "WhatifResponse":
        """Wrap :meth:`DesignSession.whatif`'s dict; v1 drops the blocks."""
        reports = None
        if include_corners and "corners" in result:
            reports = [CornerReport.from_dict(dict(d, corner=name))
                       for name, d in result["corners"].items()]
        return cls(design=result["design"], revision=result["revision"],
                   committed=result["committed"],
                   predictions=result["predictions"],
                   pre_route=result["pre_route"], shift=result["shift"],
                   latency_ms=result["latency_ms"], corners=reports,
                   worst=result.get("worst") if include_corners else None)

    def to_wire(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "design": self.design,
            "revision": self.revision,
            "committed": self.committed,
            "predictions": _predictions_wire(self.predictions),
            "pre_route": self.pre_route,
            "shift": self.shift,
            "latency_ms": self.latency_ms,
        }
        if self.corners is not None:
            out["corners"] = {r.corner: r.to_wire() for r in self.corners}
            out["worst"] = (dict(self.worst) if self.worst is not None
                            else worst_corner_wire(self.corners))
        return out


@dataclass(frozen=True)
class DesignInfo:
    """One entry of the ``/designs`` map (``DesignSession.describe``)."""

    design: str
    cells: int
    endpoints: int
    clock_period_ps: float
    revision: int
    whatifs_served: int
    corners: Tuple[str, ...] = ("base",)
    #: Flow scenario the session serves (``""`` = the default flow; see
    #: :mod:`repro.flow.scenario`).
    scenario: str = ""

    def to_wire(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "design": self.design,
            "cells": self.cells,
            "endpoints": self.endpoints,
            "clock_period_ps": self.clock_period_ps,
            "revision": self.revision,
            "whatifs_served": self.whatifs_served,
        }
        if len(self.corners) > 1:   # single-corner shape stays byte-stable
            out["corners"] = list(self.corners)
        if self.scenario:           # default-scenario shape stays byte-stable
            out["scenario"] = self.scenario
        return out


@dataclass(frozen=True)
class HealthResponse:
    """``GET /health`` — liveness + model/designs/corners summary."""

    status: str
    designs: List[str]
    model: Dict[str, Any]
    uptime_s: float
    corners: Optional[Tuple[str, ...]] = None   # served corners (if > 1)
    fleet: Optional[Dict[str, Any]] = None      # gateway only
    microbatch: Optional[Dict[str, Any]] = None

    def to_wire(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "status": self.status,
            "api_version": advertised_version(self.corners),
            "designs": self.designs,
        }
        if self.corners is not None and len(self.corners) > 1:
            out["corners"] = list(self.corners)
        out["model"] = self.model
        out["uptime_s"] = self.uptime_s
        if self.fleet is not None:
            out["fleet"] = self.fleet
        if self.microbatch is not None:
            out["microbatch"] = self.microbatch
        return out


__all__ = [
    "ApiError",
    "CURRENT_API_VERSION",
    "CornerReport",
    "DesignInfo",
    "HealthResponse",
    "LEGACY_API_VERSION",
    "PredictRequest",
    "PredictResponse",
    "SUPPORTED_API_VERSIONS",
    "WhatifRequest",
    "WhatifResponse",
    "advertised_version",
    "error_wire",
    "negotiate_version",
    "worst_corner_wire",
]
