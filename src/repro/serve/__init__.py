"""Persistent what-if timing serving.

Layering (see DESIGN.md):

* :mod:`repro.serve.api` — the canonical typed request/response
  schemas and the API versioning rules (v1 legacy / v2 corner-aware).
* :class:`DesignSession` — one design's resident flow artifacts +
  prepared sample + incremental featurizer/STA; answers predictions and
  what-if edits (across every served sign-off corner) without
  re-running the flow.
* :class:`SessionFactory` — the single session-construction path shared
  by embedders, the fleet workers and the CLI bootstrap.
* :class:`PredictorRegistry` — validated, versioned model artifacts,
  served read-only; hands a fresh predictor instance to each session.
* :class:`RequestDispatcher` — transport-agnostic routing, slot
  accounting, per-request deadlines and structured errors; shared by the
  in-process server and every fleet worker (bit-identical paths).
* :class:`TimingServer` — stdlib JSON-over-HTTP front end with bounded
  concurrency (the ``--workers 0`` in-process transport).
* :class:`MicroBatcher` — coalesces concurrent per-design inferences
  into one packed forward pass over the batch execution engine.
* :class:`TimingFleet` / :class:`TimingGateway` — the multi-process
  serving fleet: a ``selectors``-based async HTTP gateway sharding
  requests by design to worker processes that map one shared-memory
  model artifact (``repro serve --workers N``).
"""

from repro.serve.api import (
    CURRENT_API_VERSION,
    LEGACY_API_VERSION,
    SUPPORTED_API_VERSIONS,
    ApiError,
    CornerReport,
    DesignInfo,
    HealthResponse,
    PredictRequest,
    PredictResponse,
    WhatifRequest,
    WhatifResponse,
)
from repro.serve.batcher import MicroBatcher
from repro.serve.dispatch import Deadline, RequestDispatcher
from repro.serve.factory import SessionFactory
from repro.serve.featurize import IncrementalFeaturizer
from repro.serve.fleet import FleetConfig, FleetOverloaded, TimingFleet
from repro.serve.gateway import TimingGateway
from repro.serve.registry import PredictorRegistry
from repro.serve.server import (
    API_VERSION,
    ServerConfig,
    TimingServer,
)
from repro.serve.session import EDIT_OPS, DesignSession, Edit
from repro.serve.shm import SharedArtifact, ShmArtifactMeta, attach_artifact

__all__ = [
    "API_VERSION",
    "ApiError",
    "CURRENT_API_VERSION",
    "CornerReport",
    "Deadline",
    "DesignInfo",
    "DesignSession",
    "EDIT_OPS",
    "Edit",
    "FleetConfig",
    "FleetOverloaded",
    "HealthResponse",
    "IncrementalFeaturizer",
    "LEGACY_API_VERSION",
    "MicroBatcher",
    "PredictRequest",
    "PredictResponse",
    "PredictorRegistry",
    "RequestDispatcher",
    "ServerConfig",
    "SessionFactory",
    "SharedArtifact",
    "ShmArtifactMeta",
    "SUPPORTED_API_VERSIONS",
    "TimingFleet",
    "TimingGateway",
    "TimingServer",
    "WhatifRequest",
    "WhatifResponse",
    "attach_artifact",
]
