"""Persistent what-if timing serving.

Layering (see DESIGN.md):

* :class:`DesignSession` — one design's resident flow artifacts +
  prepared sample + incremental featurizer/STA; answers predictions and
  what-if edits without re-running the flow.
* :class:`PredictorRegistry` — validated, versioned model artifacts,
  served read-only; hands a fresh predictor instance to each session.
* :class:`TimingServer` — stdlib JSON-over-HTTP front end with bounded
  concurrency, per-request deadlines and structured errors.
* :class:`MicroBatcher` — coalesces concurrent per-design inferences
  into one packed forward pass over the batch execution engine.
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.featurize import IncrementalFeaturizer
from repro.serve.registry import PredictorRegistry
from repro.serve.server import (
    API_VERSION,
    ApiError,
    ServerConfig,
    TimingServer,
)
from repro.serve.session import EDIT_OPS, DesignSession, Edit

__all__ = [
    "API_VERSION",
    "ApiError",
    "DesignSession",
    "EDIT_OPS",
    "Edit",
    "IncrementalFeaturizer",
    "MicroBatcher",
    "PredictorRegistry",
    "ServerConfig",
    "TimingServer",
]
