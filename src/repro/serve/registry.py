"""Versioned model-artifact registry for serving.

The registry sits between the artifact files on disk and the sessions
that serve them:

* ``register(name, path)`` validates an artifact eagerly — schema
  version, payload shape, instantiability — so a bad file fails at
  startup, not on the first request;
* ``acquire(name)`` hands out a **fresh** :class:`TimingPredictor` built
  from the cached payload.  The payload is read and validated once and
  then served read-only; each session gets its own instance because the
  model's forward pass keeps per-layer caches and is therefore not
  shareable across concurrently running sessions.
"""

from __future__ import annotations

import pickle
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.core.predictor import (
    ARTIFACT_SCHEMA_VERSION,
    TimingPredictor,
)
from repro.obs import get_metrics
from repro.utils import get_logger, require

logger = get_logger("serve.registry")


class PredictorRegistry:
    """Thread-safe name → validated artifact payload map."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._payloads: Dict[str, Any] = {}
        self._meta: Dict[str, Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    def register(self, name: str, path: Path) -> Dict[str, Any]:
        """Load, validate and cache an artifact under *name*.

        Raises ``FileNotFoundError`` / ``ValueError`` on a missing or
        invalid artifact (including unsupported ``schema_version``).
        Returns the artifact's metadata.
        """
        path = Path(path)
        require(path.exists(), f"predictor artifact not found: {path}")
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        # Instantiate once to validate schema + weights end to end.
        probe = TimingPredictor.from_artifact(payload, source=str(path))
        meta = {
            "name": name,
            "path": str(path),
            "schema_version": payload.get("schema_version", "legacy")
            if isinstance(payload, dict) else "legacy",
            "variant": probe.model_config.variant,
            "map_bins": probe.model_config.map_bins,
            "precision": probe.precision,
            "n_parameters": sum(p.data.size
                                for p in probe.model.parameters()),
        }
        if probe.model_config.n_corners > 1:
            meta["corners"] = list(probe.model_config.corner_names)
        with self._lock:
            self._payloads[name] = payload
            self._meta[name] = meta
        get_metrics().counter("serve.registry.registered").inc()
        logger.info("registered predictor %r from %s (schema %s)", name,
                    path, meta["schema_version"])
        return dict(meta)

    def register_predictor(self, name: str,
                           predictor: TimingPredictor) -> Dict[str, Any]:
        """Register an in-memory fitted predictor (bootstrap mode)."""
        payload = predictor.to_artifact()
        meta = {
            "name": name,
            "path": "<memory>",
            "schema_version": ARTIFACT_SCHEMA_VERSION,
            "variant": predictor.model_config.variant,
            "map_bins": predictor.model_config.map_bins,
            "precision": predictor.precision,
            "n_parameters": sum(p.data.size
                                for p in predictor.model.parameters()),
        }
        if predictor.model_config.n_corners > 1:
            meta["corners"] = list(predictor.model_config.corner_names)
        with self._lock:
            self._payloads[name] = payload
            self._meta[name] = meta
        return dict(meta)

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._payloads)

    def describe(self, name: Optional[str] = None) -> Dict[str, Any]:
        """Metadata for one artifact, or for all when *name* is None."""
        with self._lock:
            if name is not None:
                require(name in self._meta,
                        f"no registered predictor {name!r}")
                return dict(self._meta[name])
            return {n: dict(m) for n, m in self._meta.items()}

    def payload(self, name: str) -> Any:
        """The validated raw artifact payload (read-only by convention).

        The fleet publishes this into shared memory once instead of
        acquiring a predictor per worker process.
        """
        with self._lock:
            require(name in self._payloads,
                    f"no registered predictor {name!r} "
                    f"(have: {sorted(self._payloads) or 'none'})")
            return self._payloads[name]

    def acquire(self, name: str) -> TimingPredictor:
        """A fresh predictor instance backed by the cached payload."""
        with self._lock:
            require(name in self._payloads,
                    f"no registered predictor {name!r} "
                    f"(have: {sorted(self._payloads) or 'none'})")
            payload = self._payloads[name]
            source = self._meta[name]["path"]
        get_metrics().counter("serve.registry.acquired").inc()
        return TimingPredictor.from_artifact(payload, source=source)
