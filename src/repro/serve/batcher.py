"""Micro-batching queue: coalesce concurrent predictions into one pass.

Every in-flight ``/predict`` (and what-if re-predict) ultimately needs a
model forward over one design's sample.  With many sessions served
concurrently, running those forwards independently wastes the packed
execution engine; a :class:`MicroBatcher` instead funnels them through a
single worker thread that drains the queue, disjoint-unions the waiting
samples into one :class:`~repro.ml.batch.PackedBatch` and runs **one**
packed forward (``TimingPredictor.predict_batch_arrays``), then fans the
per-design slices back out to the blocked callers.

Because the worker is the only thread that touches the model, one
predictor instance safely serves every session — the per-session
predictor copies the registry hands out are no longer needed when a
batcher is in front.

Batch formation is the classic two-knob policy: close a batch when
``max_batch`` requests are waiting or ``max_wait_s`` has elapsed since
the first one arrived, whichever comes first.  A lone request therefore
pays at most ``max_wait_s`` extra latency; a burst pays (almost) nothing
and gets the packed throughput win.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import List, Optional

import numpy as np

from repro.core.predictor import TimingPredictor
from repro.ml.sample import DesignSample
from repro.obs import get_metrics
from repro.utils import get_logger, require

logger = get_logger("serve.batcher")

_STOP = object()


class _Pending:
    """One caller's slot: sample(s) in, result (or error) out.

    A multi-sample slot (one what-if asking for every sign-off corner)
    contributes all of its samples to the same packed forward and gets a
    list of arrays back, in order.
    """

    __slots__ = ("samples", "multi", "event", "result", "error",
                 "abandoned")

    def __init__(self, samples: List[DesignSample], multi: bool) -> None:
        self.samples = samples
        self.multi = multi
        self.event = threading.Event()
        self.result = None          # (E,) array, or list of them if multi
        self.error: Optional[BaseException] = None
        self.abandoned = False      # caller gave up (deadline) — result
        #                             is discarded, not delivered


class MicroBatcher:
    """Coalesces concurrent single-design inferences into packed passes."""

    def __init__(self, predictor: TimingPredictor, max_batch: int = 8,
                 max_wait_s: float = 0.002) -> None:
        require(max_batch >= 1, "max_batch must be at least 1")
        require(max_wait_s >= 0.0, "max_wait_s must be non-negative")
        self.predictor = predictor
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.batches_run = 0
        self.requests_served = 0
        self._queue: "queue.Queue" = queue.Queue()
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-microbatch",
                                        daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    def submit(self, sample,
               timeout: Optional[float] = None) -> np.ndarray:
        """Block until the batcher has predicted *sample*; returns (E,) ps.

        Drop-in for ``predictor.predict_array`` — sessions plug this in as
        their ``infer`` callable.  *sample* may also be a **list** of
        samples (a multi-corner session's corner views); they are
        flattened into the same packed forward as everyone else's and a
        list of arrays comes back, in order — one cross-corner what-if
        is still exactly one model pass.

        *timeout* bounds the **total** wait — queueing behind other
        batches plus the batch-formation window plus the forward pass —
        so a request's deadline keeps counting inside the batcher.  On
        expiry the slot is abandoned (the worker still computes the
        batch; the result is discarded) and :class:`TimeoutError` is
        raised.
        """
        multi = isinstance(sample, (list, tuple))
        samples = list(sample) if multi else [sample]
        require(len(samples) >= 1, "submit needs at least one sample")
        pending = _Pending(samples, multi)
        self._queue.put(pending)
        if not pending.event.wait(timeout):
            pending.abandoned = True
            get_metrics().counter("serve.microbatch.timeouts").inc()
            raise TimeoutError(
                f"inference did not complete within the {timeout:.3g}s "
                "deadline (micro-batch wait included)")
        if pending.error is not None:
            raise pending.error
        return pending.result

    def stop(self) -> None:
        """Stop the worker; in-flight requests finish, new ones hang."""
        self._queue.put(_STOP)
        self._thread.join(timeout=5.0)

    def describe(self) -> dict:
        """Config + counters for ``/health``."""
        return {
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_s * 1e3,
            "batches_run": self.batches_run,
            "requests_served": self.requests_served,
        }

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            batch = self._collect()
            if batch is None:
                return
            self._run(batch)

    def _collect(self) -> Optional[List[_Pending]]:
        """Block for the first request, then gather a batch around it."""
        first = self._queue.get()
        if first is _STOP:
            return None
        batch = [first]
        deadline = time.perf_counter() + self.max_wait_s
        while len(batch) < self.max_batch:
            remaining = deadline - time.perf_counter()
            if remaining <= 0.0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is _STOP:
                # Serve what we have, then shut down on the next cycle.
                self._queue.put(_STOP)
                break
            batch.append(item)
        return batch

    def _run(self, batch: List[_Pending]) -> None:
        metrics = get_metrics()
        try:
            arrays = self.predictor.predict_batch_arrays(
                [s for p in batch for s in p.samples])
            i = 0
            for pending in batch:
                chunk = arrays[i:i + len(pending.samples)]
                i += len(pending.samples)
                pending.result = chunk if pending.multi else chunk[0]
        except BaseException as exc:  # noqa: BLE001 — fan the error out
            logger.exception("micro-batch of %d failed", len(batch))
            for pending in batch:
                pending.error = exc
        finally:
            for pending in batch:
                pending.event.set()
            self.batches_run += 1
            self.requests_served += len(batch)
            metrics.counter("serve.microbatch.batches").inc()
            metrics.counter("serve.microbatch.requests").inc(len(batch))
            metrics.histogram("serve.microbatch.size").observe(len(batch))
            metrics.gauge("serve.microbatch.last_size").set(len(batch))
