"""The single session-construction path (``SessionFactory``).

Sessions used to be built three different ways — ``DesignSession.open``
for embedders, the fleet worker's ``open_design`` handler, and the CLI's
``cmd_serve`` bootstrap — each re-implementing the predictor/batcher
wiring and, with MMMC, each needing the same corner plumbing.  The
factory is now the one place that decides:

* which predictor instance a session gets (the shared one behind a
  :class:`~repro.serve.MicroBatcher`, or a fresh ``acquire()`` per
  session when no batcher serializes model access);
* which ``infer`` callable the session routes inference through;
* which sign-off corners the session serves (validated against the
  model's ``corner_names``);
* how a flow comes to exist (run the reference flow, or adopt a
  completed :class:`~repro.flow.FlowResult` shipped over a pipe);
* journal replay (a replacement fleet worker re-applies committed edit
  batches before the session is published).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.core.predictor import TimingPredictor
from repro.flow import FlowConfig, FlowResult, ScenarioSpec, run_scenario_flow
from repro.ml.sample import DesignSample
from repro.serve.session import DesignSession, Edit
from repro.utils import require

__all__ = ["SessionFactory"]


class SessionFactory:
    """Builds :class:`DesignSession` objects with uniform wiring.

    Parameters
    ----------
    acquire:
        ``() -> fitted TimingPredictor``.  Called once per session when
        no batcher is installed (each session then owns its instance);
        never called when a batcher is installed (its predictor is
        shared, and only the batcher thread touches the model).
    batcher:
        Optional :class:`~repro.serve.MicroBatcher`; sessions plug its
        list-polymorphic ``submit`` in as their ``infer`` callable.
    flow_config:
        Config for flows the factory runs itself (``open`` with a design
        name).  Defaults to ``FlowConfig(base_seed=seed)`` per call.
    corners:
        Corner names every built session serves; ``None`` serves the
        model's own ``corner_names`` (legacy models: just ``base``).
    default_seed:
        Seed used when ``open`` is not given one explicitly.
    partition_pins:
        Streaming chunk-size hint stamped on every built session (see
        :mod:`repro.timing.partition`).  Defaults to the flow config's
        knob so one ``--partition-pins`` flag covers both paths.
    scenario:
        Flow scenario (a :class:`~repro.flow.ScenarioSpec` or its id
        string, e.g. ``"clock_frac0.7+eco1"``) applied when the factory
        runs a flow itself — what-ifs are then asked at the swept clock
        / post-ECO implementation.  The default is the plain flow;
        adopted ``FlowResult``\\ s keep whatever scenario they carry.
    """

    def __init__(self, acquire: Callable[[], TimingPredictor],
                 batcher=None,
                 flow_config: Optional[FlowConfig] = None,
                 corners: Optional[Sequence[str]] = None,
                 default_seed: int = 0,
                 partition_pins: Optional[int] = None,
                 scenario: Union[ScenarioSpec, str, None] = None) -> None:
        require(callable(acquire), "acquire must be a callable")
        self.acquire = acquire
        self.batcher = batcher
        self.flow_config = flow_config
        self.corners = tuple(corners) if corners is not None else None
        self.default_seed = default_seed
        if partition_pins is None and flow_config is not None:
            partition_pins = flow_config.partition_pins
        self.partition_pins = partition_pins
        if isinstance(scenario, str):
            scenario = ScenarioSpec.parse(scenario)
        self.scenario = scenario

    def open(self, design: Union[str, FlowResult],
             sample: Optional[DesignSample] = None,
             seed: Optional[int] = None,
             replay: Optional[List[List[Dict[str, Any]]]] = None
             ) -> DesignSession:
        """Build one session.

        *design* is either a completed :class:`FlowResult` (adopted —
        the session owns and mutates it) or a preset design name (the
        reference flow is run here).  *replay* is a list of committed
        edit batches (wire dicts) applied before the session is
        returned, restoring its revision counter — the fleet's
        crash-recovery journal path.
        """
        seed = self.default_seed if seed is None else seed
        if isinstance(design, FlowResult):
            flow = design
        else:
            # The default scenario routes through the plain run_flow
            # path inside run_scenario_flow — byte-identical behavior.
            flow = run_scenario_flow(
                design, self.flow_config or FlowConfig(base_seed=seed),
                scenario=self.scenario)
        if self.batcher is not None:
            predictor = self.batcher.predictor
            infer = self.batcher.submit
        else:
            predictor = self.acquire()
            infer = None
        session = DesignSession(flow, predictor, seed=seed, sample=sample,
                                infer=infer, corners=self.corners,
                                partition_pins=self.partition_pins)
        for batch in replay or []:
            session.apply([Edit.from_dict(e) for e in batch])
        return session
