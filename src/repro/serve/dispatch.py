"""Transport-agnostic request dispatch (the serving "dispatch" layer).

The serving stack is split into three layers (see DESIGN.md):

* **transport** — how bytes arrive: the threaded HTTP front end
  (:class:`repro.serve.TimingServer`), the async fleet gateway
  (:mod:`repro.serve.gateway`), or a worker process's pipe
  (:mod:`repro.serve.worker`);
* **dispatch** — this module: route → session, slot accounting,
  per-request deadlines, structured errors;
* **compute** — the sessions, the micro-batcher and the packed model
  forward underneath them.

A :class:`RequestDispatcher` owns a set of
:class:`~repro.serve.session.DesignSession` objects and answers
``(method, path, body)`` triples with JSON-serializable dicts, raising
:class:`ApiError` for anything that maps to a non-200 status.  Both the
in-process server (``--workers 0``) and every fleet worker run requests
through this same class, which is what keeps the two paths bit-identical.

Deadline accounting: the dispatcher opens a :class:`Deadline` per
request and threads the *remaining* budget into the session layer, so
time spent queueing for a slot, waiting on the session lock, **and
waiting inside the micro-batcher** all count against the request's
budget (a request used to be able to exceed its deadline inside the
batcher's batch-formation window).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional, Tuple

from repro.obs import get_metrics
from repro.serve import api
from repro.serve.api import ApiError
from repro.serve.session import DesignSession
from repro.utils import get_logger

logger = get_logger("serve.dispatch")

#: Back-compat alias: the version a single-corner deployment advertises.
#: The canonical versioning rules live in :mod:`repro.serve.api`.
API_VERSION = api.LEGACY_API_VERSION


class Deadline:
    """Tracks one request's time budget."""

    def __init__(self, budget_s: float) -> None:
        self.start = time.perf_counter()
        self.budget_s = budget_s

    @property
    def remaining(self) -> float:
        return self.budget_s - (time.perf_counter() - self.start)

    def check(self, where: str) -> None:
        if self.remaining <= 0.0:
            raise ApiError(504, "deadline_exceeded",
                           f"request exceeded its {self.budget_s:.3g}s "
                           f"deadline ({where})")


def unknown_design_error(design: Any, served) -> ApiError:
    """The canonical 404 for a design that is not being served.

    Shared by the dispatcher and the fleet gateway so the two paths
    return byte-identical error bodies.
    """
    return ApiError(404, "unknown_design",
                    f"design {design!r} is not served "
                    f"(have: {sorted(served)})")


class RequestDispatcher:
    """Routes parsed requests to sessions; transport-independent."""

    def __init__(self, sessions: Dict[str, DesignSession],
                 max_concurrent: int = 4,
                 deadline_s: float = 30.0,
                 model_info: Optional[Dict[str, Any]] = None,
                 batcher=None,
                 fault_injection: bool = False,
                 session_ttl_s: Optional[float] = None,
                 on_evict: Optional[Callable[[str], None]] = None) -> None:
        import threading

        # The dict is *aliased*, not copied: DELETE /designs/<id> and the
        # idle-TTL sweep must be visible to the owner's view of the
        # sessions (the fleet worker reads the same dict for describe()).
        self.sessions = sessions
        self.deadline_s = deadline_s
        self.model_info = model_info or {}
        self.batcher = batcher
        self.fault_injection = fault_injection
        #: Evict sessions idle longer than this many seconds (None = off).
        self.session_ttl_s = session_ttl_s
        #: Called with the design name after any eviction (DELETE or TTL).
        self.on_evict = on_evict
        self.started_at = time.time()
        self._slots = threading.Semaphore(max_concurrent)
        self._evict_lock = threading.Lock()

    # ------------------------------------------------------------------
    def handle(self, method: str, path: str,
               body: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        """Answer one request; raises :class:`ApiError` on failure."""
        route = (method, path)
        budget = self.deadline_s
        if isinstance(body, dict) and "deadline_s" in body:
            budget = min(budget, float(body["deadline_s"]))
        deadline = Deadline(budget)
        self._sweep_idle()
        if not self._slots.acquire(timeout=max(deadline.remaining, 0.0)):
            get_metrics().counter("serve.rejected.overload").inc()
            raise ApiError(503, "overloaded",
                           f"no worker slot within the {budget:.3g}s "
                           "deadline; retry later")
        try:
            deadline.check("after queueing")
            self._maybe_inject(body)
            if route == ("GET", "/health"):
                return self.health()
            if route == ("GET", "/designs"):
                return {"designs": {name: s.describe()
                                    for name, s in self.sessions.items()}}
            if route == ("GET", "/metrics"):
                return {"metrics": get_metrics().snapshot()}
            if route == ("POST", "/predict"):
                return self._predict(body or {}, deadline)
            if route == ("POST", "/whatif"):
                return self._whatif(body or {}, deadline)
            if method == "DELETE" and path.startswith("/designs/"):
                return self._delete(path[len("/designs/"):], deadline)
            raise ApiError(404, "no_such_route",
                           f"no route {method} {path}")
        finally:
            self._slots.release()

    def handle_to_wire(self, method: str, path: str,
                       body: Optional[Dict[str, Any]]
                       ) -> Tuple[int, Dict[str, Any]]:
        """:meth:`handle` with errors rendered to ``(status, payload)``.

        The single place where exceptions become wire payloads — shared
        by the threaded HTTP handler and the fleet workers so a given
        failure produces the same body over either transport.
        """
        try:
            return 200, self.handle(method, path, body)
        except ApiError as exc:
            return exc.status, exc.to_wire()
        except Exception as exc:  # noqa: BLE001 — wire boundary
            logger.exception("unhandled error on %s %s", method, path)
            return 500, api.error_wire("internal",
                                       f"{type(exc).__name__}: {exc}")

    # ------------------------------------------------------------------
    def _maybe_inject(self, body: Optional[Dict[str, Any]]) -> None:
        """Test-only fault hooks (off unless explicitly enabled)."""
        if not self.fault_injection or not isinstance(body, dict):
            return
        inject = body.get("_inject")
        if not isinstance(inject, dict):
            return
        sleep_s = float(inject.get("sleep_s", 0.0))
        if sleep_s > 0.0:
            time.sleep(sleep_s)

    def _session(self, design: Optional[str]) -> DesignSession:
        if design is None and len(self.sessions) == 1:
            design = next(iter(self.sessions))
        if design not in self.sessions:
            raise unknown_design_error(design, self.sessions)
        return self.sessions[design]

    def _served_corners(self) -> Tuple[str, ...]:
        """Union of every session's served corners, first-seen order."""
        corners: Dict[str, None] = {}
        for session in self.sessions.values():
            for name in session.corners:
                corners[name] = None
        return tuple(corners) or ("base",)

    def health(self) -> Dict[str, Any]:
        return api.HealthResponse(
            status="ok",
            designs=sorted(self.sessions),
            model=self.model_info,
            uptime_s=time.time() - self.started_at,
            corners=self._served_corners(),
            microbatch=(self.batcher.describe()
                        if self.batcher is not None else None)).to_wire()

    @staticmethod
    def _check_corner(req, session: DesignSession) -> None:
        if req.corner is not None and req.corner not in session.corners:
            raise ApiError(400, "unknown_corner",
                           f"corner {req.corner!r} is not served "
                           f"(have: {list(session.corners)})")

    def _predict(self, body: Dict[str, Any],
                 deadline: Deadline) -> Dict[str, Any]:
        req = api.PredictRequest.parse(body)
        session = self._session(req.design)
        self._check_corner(req, session)
        with_corners = (len(session.corners) > 1
                        and req.api_version != api.LEGACY_API_VERSION)
        try:
            if with_corners:
                report = session.predict_report(
                    req.endpoints, deadline_s=deadline.remaining,
                    corner=req.corner)
            else:
                report = {"predictions": session.predict(
                    req.endpoints, deadline_s=deadline.remaining,
                    corner=req.corner)}
        except ValueError as exc:
            raise ApiError(400, "bad_request", str(exc)) from exc
        except TimeoutError as exc:
            raise ApiError(504, "deadline_exceeded", str(exc)) from exc
        deadline.check("after predict")
        reports = report.get("corners")
        return api.PredictResponse(
            design=session.name,
            revision=session.revision,
            predictions=report["predictions"],
            corners=([api.CornerReport.from_dict(d)
                      for d in reports.values()]
                     if reports is not None else None),
            worst=report.get("worst")).to_wire()

    def _delete(self, design: str, deadline: Deadline) -> Dict[str, Any]:
        """Evict one design: release its session's caches and arenas.

        The close happens *before* the pop so a concurrent request that
        already holds the session object either finishes first (close
        waits on the session lock) or sees the 404 on its next lookup.
        """
        with self._evict_lock:
            session = self.sessions.get(design)
            if session is None:
                raise unknown_design_error(design, self.sessions)
            try:
                session.close(deadline_s=deadline.remaining)
            except TimeoutError as exc:
                # Session still busy: leave it served, let the client retry.
                raise ApiError(504, "deadline_exceeded", str(exc)) from exc
            self.sessions.pop(design, None)
        get_metrics().counter("serve.sessions_deleted").inc()
        if self.on_evict is not None:
            self.on_evict(design)
        return {
            "design": design,
            "deleted": True,
            "revision": session.revision,
            "whatifs_served": session.whatifs_served,
        }

    def _sweep_idle(self) -> None:
        """Evict sessions idle past ``session_ttl_s`` (cheap, non-blocking)."""
        ttl = self.session_ttl_s
        if ttl is None:
            return
        now = time.monotonic()
        with self._evict_lock:
            evicted = []
            for design in list(self.sessions):
                session = self.sessions[design]
                if now - session.last_used <= ttl:
                    continue
                try:
                    session.close(deadline_s=0.0)
                except TimeoutError:
                    continue  # busy right now — not idle after all
                self.sessions.pop(design, None)
                evicted.append(design)
        for design in evicted:
            get_metrics().counter("serve.sessions_evicted_idle").inc()
            logger.info("evicted idle design %r (ttl %.3gs)", design, ttl)
            if self.on_evict is not None:
                self.on_evict(design)

    def _whatif(self, body: Dict[str, Any],
                deadline: Deadline) -> Dict[str, Any]:
        req = api.WhatifRequest.parse(body)
        session = self._session(req.design)
        self._check_corner(req, session)
        try:
            result = session.whatif(req.edits,
                                    commit=req.commit,
                                    deadline_s=deadline.remaining,
                                    corner=req.corner)
        except ValueError as exc:
            raise ApiError(400, "bad_request", str(exc)) from exc
        except TimeoutError as exc:
            raise ApiError(504, "deadline_exceeded", str(exc)) from exc
        deadline.check("after whatif")
        include = (req.api_version != api.LEGACY_API_VERSION
                   and len(session.corners) > 1)
        return api.WhatifResponse.from_session(result, include).to_wire()
