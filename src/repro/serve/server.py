"""JSON-over-HTTP serving front end (stdlib only, in-process transport).

A :class:`TimingServer` exposes the sessions over a
``ThreadingHTTPServer``:

====================  ======================================================
``GET  /health``      liveness + model/designs summary
``GET  /designs``     per-session state (endpoints, revision, ...)
``GET  /metrics``     live metrics snapshot incl. request-latency
                      percentiles (p50/p95) from ``repro.obs``
``POST /predict``     ``{"design", "endpoints"?}`` → batched predictions
``POST /whatif``      ``{"design", "edits": [...], "commit"?}`` →
                      edit → incremental re-featurize → re-predict
``DELETE /designs/<id>``  evict the session: release its plan-cache
                      entries and inference arenas
====================  ======================================================

This class is the **transport** layer only — request routing, slot
accounting, deadlines and structured errors live in the shared
:class:`~repro.serve.dispatch.RequestDispatcher` (the same dispatcher a
fleet worker runs, which is what keeps ``repro serve --workers 0`` and
the multi-process fleet bit-identical).

Operational guarantees:

* **Bounded concurrency** — a semaphore of ``max_workers`` slots; excess
  requests queue for their remaining deadline budget, then get a
  structured 503.
* **Per-request deadline** — ``deadline_s`` (config default, overridable
  per request body); exceeding it returns a structured 504.  Time spent
  waiting inside the micro-batcher counts against the deadline.
* **Structured errors** — every failure is
  ``{"error": {"code", "message"}}`` with a matching HTTP status.
* **Observability** — every request runs inside a ``serve.request``
  span and lands in per-route latency histograms, so ``/metrics``
  reports live percentiles from the same ``repro.obs`` registry the
  rest of the system uses.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.obs import get_metrics, get_tracer
from repro.serve.dispatch import API_VERSION, ApiError, RequestDispatcher
from repro.serve.session import DesignSession
from repro.utils import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.serve.batcher import MicroBatcher

logger = get_logger("serve.server")

__all__ = ["API_VERSION", "ApiError", "ServerConfig", "TimingServer"]


@dataclass(frozen=True)
class ServerConfig:
    """Serving knobs."""

    host: str = "127.0.0.1"
    port: int = 8787
    max_workers: int = 4     # concurrently *executing* requests
    deadline_s: float = 30.0  # per-request budget (queue wait included)
    microbatch: int = 8       # max designs coalesced per packed forward
    microbatch_wait_ms: float = 2.0  # batch-formation window
    #: Evict sessions idle longer than this many seconds (None = never).
    session_ttl_s: Optional[float] = None


class TimingServer:
    """Owns the sessions and the HTTP front end."""

    def __init__(self, sessions: Dict[str, DesignSession],
                 config: Optional[ServerConfig] = None,
                 model_info: Optional[Dict[str, Any]] = None,
                 batcher: Optional["MicroBatcher"] = None) -> None:
        self.config = config or ServerConfig()
        self.dispatcher = RequestDispatcher(
            sessions,
            max_concurrent=self.config.max_workers,
            deadline_s=self.config.deadline_s,
            model_info=model_info,
            batcher=batcher,
            session_ttl_s=self.config.session_ttl_s)
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # Back-compat conveniences: the server used to own these directly.
    @property
    def sessions(self) -> Dict[str, DesignSession]:
        return self.dispatcher.sessions

    @property
    def model_info(self) -> Dict[str, Any]:
        return self.dispatcher.model_info

    @property
    def batcher(self) -> Optional["MicroBatcher"]:
        return self.dispatcher.batcher

    @property
    def started_at(self) -> float:
        return self.dispatcher.started_at

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self) -> tuple:
        """Bind the listening socket now; returns (host, port).

        Idempotent.  Lets a caller learn the resolved port (``port=0``)
        before the serving loop starts.
        """
        if self._httpd is None:
            self._httpd = _make_httpd(self)
        return self.address

    def start(self) -> "TimingServer":
        """Bind and serve on a background thread (tests, embedding)."""
        self.bind()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve",
            daemon=True)
        self._thread.start()
        logger.info("serving %d design(s) on http://%s:%d",
                    len(self.sessions), *self.address)
        return self

    def serve_forever(self) -> None:
        """Bind and serve on the calling thread (CLI)."""
        self.bind()
        logger.info("serving %d design(s) on http://%s:%d",
                    len(self.sessions), *self.address)
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self._httpd.server_close()

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self.batcher is not None:
            self.batcher.stop()

    @property
    def address(self) -> tuple:
        """(host, actual port) — port resolves 0 to the bound port."""
        if self._httpd is not None:
            return self._httpd.server_address[:2]
        return (self.config.host, self.config.port)

    # ------------------------------------------------------------------
    def handle(self, method: str, path: str,
               body: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        """Dispatch one request (kept for embedding/tests)."""
        return self.dispatcher.handle(method, path, body)


# ----------------------------------------------------------------------
# stdlib HTTP plumbing
# ----------------------------------------------------------------------
def _make_httpd(app: TimingServer) -> ThreadingHTTPServer:
    httpd = ThreadingHTTPServer((app.config.host, app.config.port),
                                _Handler)
    httpd.daemon_threads = True
    httpd.app = app  # type: ignore[attr-defined]
    return httpd


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # Route HTTP-server chatter through our logger instead of stderr.
    def log_message(self, fmt: str, *args: Any) -> None:
        logger.debug("%s %s", self.address_string(), fmt % args)

    def do_GET(self) -> None:  # noqa: N802 (stdlib API)
        self._dispatch("GET", body=None)

    def do_DELETE(self) -> None:  # noqa: N802 (stdlib API)
        self._dispatch("DELETE", body=None)

    def do_POST(self) -> None:  # noqa: N802 (stdlib API)
        try:
            length = int(self.headers.get("Content-Length", 0))
            raw = self.rfile.read(length) if length else b"{}"
            body = json.loads(raw.decode("utf-8")) if raw.strip() else {}
            if not isinstance(body, dict):
                raise ValueError("request body must be a JSON object")
        except (ValueError, UnicodeDecodeError) as exc:
            self._send(400, {"error": {"code": "bad_json",
                                       "message": str(exc)}})
            return
        self._dispatch("POST", body=body)

    # ------------------------------------------------------------------
    def _dispatch(self, method: str, body: Optional[Dict[str, Any]]
                  ) -> None:
        app: TimingServer = self.server.app  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        route_label = f"{method} {path}"
        metrics = get_metrics()
        sp = get_tracer().span("serve.request", route=route_label,
                               design=(body or {}).get("design"))
        status = 500
        try:
            with sp:
                status, payload = app.dispatcher.handle_to_wire(
                    method, path, body)
                sp.set(status=status)
            self._send(status, payload)
        finally:
            ms = sp.duration * 1e3
            metrics.counter("serve.requests").inc()
            metrics.histogram("serve.latency_ms").observe(ms)
            metrics.histogram(f"serve.latency_ms.{method} {path}"
                              ).observe(ms)
            if status >= 400:
                metrics.counter("serve.errors").inc()
                metrics.counter(f"serve.errors.{status}").inc()

    def _send(self, status: int, payload: Dict[str, Any]) -> None:
        data = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)
