"""JSON-over-HTTP serving front end (stdlib only).

A :class:`TimingServer` exposes the sessions over a
``ThreadingHTTPServer``:

====================  ======================================================
``GET  /health``      liveness + model/designs summary
``GET  /designs``     per-session state (endpoints, revision, ...)
``GET  /metrics``     live metrics snapshot incl. request-latency
                      percentiles (p50/p95) from ``repro.obs``
``POST /predict``     ``{"design", "endpoints"?}`` → batched predictions
``POST /whatif``      ``{"design", "edits": [...], "commit"?}`` →
                      edit → incremental re-featurize → re-predict
====================  ======================================================

Operational guarantees:

* **Bounded concurrency** — a semaphore of ``max_workers`` slots; excess
  requests queue for their remaining deadline budget, then get a
  structured 503.
* **Per-request deadline** — ``deadline_s`` (config default, overridable
  per request body); exceeding it returns a structured 504.
* **Structured errors** — every failure is
  ``{"error": {"code", "message"}}`` with a matching HTTP status.
* **Observability** — every request runs inside a ``serve.request``
  span and lands in per-route latency histograms, so ``/metrics``
  reports live percentiles from the same ``repro.obs`` registry the
  rest of the system uses.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.obs import get_metrics, get_tracer
from repro.serve.session import DesignSession
from repro.utils import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.serve.batcher import MicroBatcher

logger = get_logger("serve.server")

#: Protocol version reported by /health; bump on breaking API changes.
API_VERSION = "v1"


@dataclass(frozen=True)
class ServerConfig:
    """Serving knobs."""

    host: str = "127.0.0.1"
    port: int = 8787
    max_workers: int = 4     # concurrently *executing* requests
    deadline_s: float = 30.0  # per-request budget (queue wait included)
    microbatch: int = 8       # max designs coalesced per packed forward
    microbatch_wait_ms: float = 2.0  # batch-formation window


class ApiError(Exception):
    """An error with a wire representation."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


class _Deadline:
    """Tracks one request's time budget."""

    def __init__(self, budget_s: float) -> None:
        self.start = time.perf_counter()
        self.budget_s = budget_s

    @property
    def remaining(self) -> float:
        return self.budget_s - (time.perf_counter() - self.start)

    def check(self, where: str) -> None:
        if self.remaining <= 0.0:
            raise ApiError(504, "deadline_exceeded",
                           f"request exceeded its {self.budget_s:.3g}s "
                           f"deadline ({where})")


class TimingServer:
    """Owns the sessions and the HTTP front end."""

    def __init__(self, sessions: Dict[str, DesignSession],
                 config: Optional[ServerConfig] = None,
                 model_info: Optional[Dict[str, Any]] = None,
                 batcher: Optional["MicroBatcher"] = None) -> None:
        self.sessions = dict(sessions)
        self.config = config or ServerConfig()
        self.model_info = model_info or {}
        self.batcher = batcher
        self.started_at = time.time()
        self._slots = threading.Semaphore(self.config.max_workers)
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self) -> tuple:
        """Bind the listening socket now; returns (host, port).

        Idempotent.  Lets a caller learn the resolved port (``port=0``)
        before the serving loop starts.
        """
        if self._httpd is None:
            self._httpd = _make_httpd(self)
        return self.address

    def start(self) -> "TimingServer":
        """Bind and serve on a background thread (tests, embedding)."""
        self.bind()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve",
            daemon=True)
        self._thread.start()
        logger.info("serving %d design(s) on http://%s:%d",
                    len(self.sessions), *self.address)
        return self

    def serve_forever(self) -> None:
        """Bind and serve on the calling thread (CLI)."""
        self.bind()
        logger.info("serving %d design(s) on http://%s:%d",
                    len(self.sessions), *self.address)
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self._httpd.server_close()

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self.batcher is not None:
            self.batcher.stop()

    @property
    def address(self) -> tuple:
        """(host, actual port) — port resolves 0 to the bound port."""
        if self._httpd is not None:
            return self._httpd.server_address[:2]
        return (self.config.host, self.config.port)

    # ------------------------------------------------------------------
    # Request handling (called from handler threads)
    # ------------------------------------------------------------------
    def handle(self, method: str, path: str,
               body: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        route = (method, path)
        budget = self.config.deadline_s
        if isinstance(body, dict) and "deadline_s" in body:
            budget = min(budget, float(body["deadline_s"]))
        deadline = _Deadline(budget)
        if not self._slots.acquire(timeout=max(deadline.remaining, 0.0)):
            get_metrics().counter("serve.rejected.overload").inc()
            raise ApiError(503, "overloaded",
                           f"no worker slot within the {budget:.3g}s "
                           "deadline; retry later")
        try:
            deadline.check("after queueing")
            if route == ("GET", "/health"):
                return self._health()
            if route == ("GET", "/designs"):
                return {"designs": {name: s.describe()
                                    for name, s in self.sessions.items()}}
            if route == ("GET", "/metrics"):
                return {"metrics": get_metrics().snapshot()}
            if route == ("POST", "/predict"):
                return self._predict(body or {}, deadline)
            if route == ("POST", "/whatif"):
                return self._whatif(body or {}, deadline)
            raise ApiError(404, "no_such_route",
                           f"no route {method} {path}")
        finally:
            self._slots.release()

    def _session(self, body: Dict[str, Any]) -> DesignSession:
        design = body.get("design")
        if design is None and len(self.sessions) == 1:
            design = next(iter(self.sessions))
        if design not in self.sessions:
            raise ApiError(404, "unknown_design",
                           f"design {design!r} is not served "
                           f"(have: {sorted(self.sessions)})")
        return self.sessions[design]

    def _health(self) -> Dict[str, Any]:
        health = {
            "status": "ok",
            "api_version": API_VERSION,
            "designs": sorted(self.sessions),
            "model": self.model_info,
            "uptime_s": time.time() - self.started_at,
        }
        if self.batcher is not None:
            health["microbatch"] = self.batcher.describe()
        return health

    def _predict(self, body: Dict[str, Any],
                 deadline: _Deadline) -> Dict[str, Any]:
        session = self._session(body)
        endpoints = body.get("endpoints")
        if endpoints is not None and not isinstance(endpoints, list):
            raise ApiError(400, "bad_request",
                           "'endpoints' must be a list of pin ids")
        try:
            predictions = session.predict(endpoints)
        except ValueError as exc:
            raise ApiError(400, "bad_request", str(exc)) from exc
        deadline.check("after predict")
        return {
            "design": session.name,
            "revision": session.revision,
            "n_endpoints": len(predictions),
            "predictions": {str(p): float(v)
                            for p, v in predictions.items()},
        }

    def _whatif(self, body: Dict[str, Any],
                deadline: _Deadline) -> Dict[str, Any]:
        session = self._session(body)
        edits = body.get("edits")
        if not isinstance(edits, list) or not edits:
            raise ApiError(400, "bad_request",
                           "'edits' must be a non-empty list")
        try:
            result = session.whatif(edits, commit=bool(body.get("commit",
                                                                False)))
        except ValueError as exc:
            raise ApiError(400, "bad_request", str(exc)) from exc
        deadline.check("after whatif")
        result["predictions"] = {str(p): v
                                 for p, v in result["predictions"].items()}
        return result


# ----------------------------------------------------------------------
# stdlib HTTP plumbing
# ----------------------------------------------------------------------
def _make_httpd(app: TimingServer) -> ThreadingHTTPServer:
    httpd = ThreadingHTTPServer((app.config.host, app.config.port),
                                _Handler)
    httpd.daemon_threads = True
    httpd.app = app  # type: ignore[attr-defined]
    return httpd


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # Route HTTP-server chatter through our logger instead of stderr.
    def log_message(self, fmt: str, *args: Any) -> None:
        logger.debug("%s %s", self.address_string(), fmt % args)

    def do_GET(self) -> None:  # noqa: N802 (stdlib API)
        self._dispatch("GET", body=None)

    def do_POST(self) -> None:  # noqa: N802 (stdlib API)
        try:
            length = int(self.headers.get("Content-Length", 0))
            raw = self.rfile.read(length) if length else b"{}"
            body = json.loads(raw.decode("utf-8")) if raw.strip() else {}
            if not isinstance(body, dict):
                raise ValueError("request body must be a JSON object")
        except (ValueError, UnicodeDecodeError) as exc:
            self._send(400, {"error": {"code": "bad_json",
                                       "message": str(exc)}})
            return
        self._dispatch("POST", body=body)

    # ------------------------------------------------------------------
    def _dispatch(self, method: str, body: Optional[Dict[str, Any]]
                  ) -> None:
        app: TimingServer = self.server.app  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        route_label = f"{method} {path}"
        metrics = get_metrics()
        sp = get_tracer().span("serve.request", route=route_label,
                               design=(body or {}).get("design"))
        status = 500
        try:
            with sp:
                try:
                    payload = app.handle(method, path, body)
                    status = 200
                except ApiError as exc:
                    status = exc.status
                    payload = {"error": {"code": exc.code,
                                         "message": exc.message}}
                except Exception as exc:  # noqa: BLE001 — wire boundary
                    logger.exception("unhandled error on %s", route_label)
                    status = 500
                    payload = {"error": {"code": "internal",
                                         "message": f"{type(exc).__name__}:"
                                                    f" {exc}"}}
                sp.set(status=status)
            self._send(status, payload)
        finally:
            ms = sp.duration * 1e3
            metrics.counter("serve.requests").inc()
            metrics.histogram("serve.latency_ms").observe(ms)
            metrics.histogram(f"serve.latency_ms.{method} {path}"
                              ).observe(ms)
            if status >= 400:
                metrics.counter("serve.errors").inc()
                metrics.counter(f"serve.errors.{status}").inc()

    def _send(self, status: int, payload: Dict[str, Any]) -> None:
        data = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)
