"""The per-design ML sample: everything models may consume.

A :class:`DesignSample` is built from a :class:`~repro.flow.FlowResult` and
contains only *pre-routing* inputs (input netlist graph + features, layout
feature maps, endpoint critical-region masks) plus the sign-off labels and
the bookkeeping the baselines need (surviving local delays, per-pin sign-off
quantities).  Everything is plain numpy / dict data so samples pickle
cleanly into the dataset cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np


@dataclass
class LevelPlan:
    """Per-topological-level execution plan for the level-wise GNN.

    ``cell_preds`` is a padded predecessor matrix (m, K) of node indices
    with ``-1`` padding; the GNN max-aggregates over that axis (Eq. (3)).
    """

    net_nodes: np.ndarray      # net-sink nodes at this level
    net_drivers: np.ndarray    # their single driver node
    cell_nodes: np.ndarray     # cell-output nodes at this level
    cell_preds: np.ndarray     # (len(cell_nodes), K) padded with -1


@dataclass
class DesignSample:
    """One design, ready for training / inference."""

    name: str
    split: str
    clock_period: float

    # --- pin-level heterograph of the INPUT netlist -------------------
    n_nodes: int
    kind: np.ndarray                  # SOURCE / NET_SINK / CELL_OUT per node
    level: np.ndarray
    pin_ids: np.ndarray               # node -> pin id
    node_of: Dict[int, int]           # pin id -> node
    plans: List[LevelPlan]            # levels 1..L (level 0 = sources)
    source_nodes: np.ndarray

    # --- node features (paper Section IV-A) ---------------------------
    x_cell: np.ndarray                # (n, Dc): drive, pin cap, gate one-hot
    x_net: np.ndarray                 # (n, Dn): net distance

    # --- endpoints and labels -----------------------------------------
    endpoint_nodes: np.ndarray
    endpoint_pins: np.ndarray
    y: np.ndarray                     # sign-off endpoint arrival (ps)

    # --- layout branch -------------------------------------------------
    layout_stack: np.ndarray          # (3, M, N) density / RUDY / macro
    masks: np.ndarray                 # (E, M//4 * N//4) critical-region masks

    # --- data for baselines ---------------------------------------------
    pre_route_arrival: np.ndarray     # (n,) pre-routing STA arrival per node
    pre_route_slew: np.ndarray        # (n,)
    local_net_delay: Dict[Tuple[int, int], float] = field(default_factory=dict)
    local_cell_delay: Dict[Tuple[int, int], float] = field(default_factory=dict)
    signoff_arrival_by_pin: Dict[int, float] = field(default_factory=dict)
    signoff_slew_by_pin: Dict[int, float] = field(default_factory=dict)

    # --- precomputed baseline inputs ------------------------------------
    #: Per-net-edge features for the two-stage baselines, aligned with
    #: ``stage_sink_nodes`` (see repro.baselines.local_features).
    stage_features_basic: np.ndarray = None      # (E_n, D19)  DAC'19
    stage_features_lookahead: np.ndarray = None  # (E_n, D22)  DAC'22-He
    stage_sink_nodes: np.ndarray = None          # (E_n,) sink node per edge
    stage_label_by_sink: Dict[int, float] = field(default_factory=dict)
    #: Per-node auxiliary labels for the end-to-end baseline (DAC'22-Guo):
    #: NaN where optimization replaced the element (semi-supervision).
    aux_arrival: np.ndarray = None               # (n,)
    aux_slew: np.ndarray = None                  # (n,)
    aux_net_delay: np.ndarray = None             # (n,) at net-sink nodes
    aux_cell_delay: np.ndarray = None            # (n,) at cell-out nodes

    # --- bookkeeping -----------------------------------------------------
    flow_times: Dict[str, float] = field(default_factory=dict)
    preprocess_time: float = 0.0

    # --- MMMC corner axis ------------------------------------------------
    #: Sign-off corner the labels ``y`` were extracted at, and its index
    #: into the model's ``corner_names`` / the dataset's corner order.
    #: Plain class-level defaults, so samples unpickled from pre-corner
    #: caches resolve to the implicit base corner.
    corner: str = "base"
    corner_index: int = 0

    # --- scenario axis ---------------------------------------------------
    #: Scenario id this sample's flow variant belongs to (``""`` = the
    #: default flow; see :mod:`repro.flow.scenario`).  A *dataset*
    #: dimension, not a model input: the predictor sees the variant only
    #: through its shifted features/labels.  Class-level default keeps
    #: pre-scenario pickles valid.
    scenario: str = ""

    # --- partitioned execution -------------------------------------------
    #: Chunk-size hint for the streaming inference path: when set, level
    #: execution streams over ≲ this many pins at a time (see
    #: :mod:`repro.timing.partition`).  Purely an execution knob — outputs
    #: are bit-identical either way — so it is excluded from dataset cache
    #: fingerprints.  Class-level default keeps pre-partition pickles valid.
    partition_pins: "int | None" = None

    @property
    def n_endpoints(self) -> int:
        return len(self.endpoint_nodes)

    def mask_side(self) -> int:
        """Side length of the (square) mask grid."""
        side = int(round(np.sqrt(self.masks.shape[1])))
        assert side * side == self.masks.shape[1]
        return side

    def corner_view(self, corner: str, corner_index: int,
                    y: np.ndarray = None) -> "DesignSample":
        """A shallow per-corner view of this sample.

        Every array field is *shared by reference* — features, masks,
        plans, layout — so in-place edits to the base sample (the serve
        path's incremental re-featurization) are visible through every
        view, and the pack-plan cache keys (plans-list identity) hit.
        Only the corner identity, and optionally the labels, differ.
        """
        import copy

        view = copy.copy(self)
        view.corner = corner
        view.corner_index = corner_index
        if y is not None:
            view.y = y
        return view
