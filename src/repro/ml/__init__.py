"""Shared ML data layer: features, samples, dataset builder."""

from repro.ml.dataset import build_dataset, build_level_plans, build_sample
from repro.ml.features import (
    CELL_FEATURE_DIM,
    NET_FEATURE_DIM,
    node_features,
)
from repro.ml.sample import DesignSample, LevelPlan

__all__ = [
    "build_dataset",
    "build_level_plans",
    "build_sample",
    "CELL_FEATURE_DIM",
    "NET_FEATURE_DIM",
    "node_features",
    "DesignSample",
    "LevelPlan",
]
