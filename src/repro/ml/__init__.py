"""Shared ML data layer: features, samples, batching, dataset builder."""

from repro.ml.batch import (
    DEFAULT_ENDPOINT_BATCH,
    EndpointBatchSampler,
    PackedBatch,
)
from repro.ml.dataset import (
    build_corner_samples,
    build_dataset,
    build_dataset_report,
    build_level_plans,
    build_sample,
    load_or_build_sample,
    load_or_build_samples,
    sample_cache_path,
)
from repro.ml.features import (
    CELL_FEATURE_DIM,
    NET_FEATURE_DIM,
    FeatureShapeError,
    cell_feature_row,
    chunk_feature_block,
    net_feature_row,
    net_output_load,
    node_features,
    validate_node_features,
)
from repro.ml.parallel import (
    BuildReport,
    DesignBuildStatus,
    build_dataset_parallel,
)
from repro.ml.sample import DesignSample, LevelPlan

__all__ = [
    "DEFAULT_ENDPOINT_BATCH",
    "EndpointBatchSampler",
    "PackedBatch",
    "build_corner_samples",
    "build_dataset",
    "build_dataset_report",
    "build_level_plans",
    "build_sample",
    "load_or_build_sample",
    "load_or_build_samples",
    "sample_cache_path",
    "CELL_FEATURE_DIM",
    "NET_FEATURE_DIM",
    "FeatureShapeError",
    "cell_feature_row",
    "chunk_feature_block",
    "net_feature_row",
    "net_output_load",
    "node_features",
    "validate_node_features",
    "BuildReport",
    "DesignBuildStatus",
    "build_dataset_parallel",
    "DesignSample",
    "LevelPlan",
]
