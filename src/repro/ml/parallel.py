"""Parallel, crash-tolerant dataset builds.

Dataset generation (flow → sample) dominates experiment wall-clock, and
designs are independent — an embarrassingly parallel batch job.  This
module fans designs out to a :class:`~concurrent.futures.
ProcessPoolExecutor` with:

* **Correct caching.**  Workers share the serial path's
  :func:`repro.ml.dataset.load_or_build_sample`: cache keys hash the
  *full* :class:`~repro.flow.FlowConfig`, writes are atomic, corrupt
  files are misses.  Serial and parallel builds are byte-identical.

* **Per-design fault tolerance.**  A worker exception — or a hard crash
  that breaks the whole pool — costs one attempt for the affected
  design(s); each design is retried once (a broken pool is recreated
  first) and a permanent failure is reported in the
  :class:`BuildReport` without killing the rest of the batch.

* **Cross-process observability.**  When the parent tracer is enabled,
  each worker writes its spans plus a cumulative metrics snapshot to a
  per-worker JSONL file; the parent merges them back
  (:func:`repro.obs.merge_worker_traces`) so ``repro profile`` still
  produces the full Table III runtime table for parallel runs.

The public entry point is ``build_dataset(..., jobs=N)`` /
``build_dataset_report(..., jobs=N)`` in :mod:`repro.ml.dataset`;
:func:`build_dataset_parallel` here is the engine behind them.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.flow import FlowConfig, ScenarioSpec
from repro.ml.sample import DesignSample
from repro.obs import get_metrics, get_tracer, merge_worker_traces
from repro.obs.merge import worker_trace_path
from repro.obs.trace import configure_tracing
from repro.utils import get_logger

logger = get_logger("ml.parallel")

#: Each design gets at most this many attempts (i.e. one retry).
MAX_ATTEMPTS = 2


# ----------------------------------------------------------------------
# Report structures
# ----------------------------------------------------------------------
@dataclass
class DesignBuildStatus:
    """Outcome of one design in a batch build."""

    design: str
    status: str                     # "built" | "cached" | "failed"
    attempts: int
    duration_s: float = 0.0
    error: Optional[str] = None     # last error message when failed/retried
    worker_pid: Optional[int] = None


@dataclass
class BuildReport:
    """Structured outcome of one :func:`build_dataset_parallel` batch."""

    statuses: List[DesignBuildStatus] = field(default_factory=list)
    jobs: int = 1
    wall_s: float = 0.0
    #: Worker span/event lines merged into the parent tracer (0 when
    #: tracing was disabled).
    merged_events: int = 0

    @property
    def failed(self) -> List[DesignBuildStatus]:
        return [s for s in self.statuses if s.status == "failed"]

    @property
    def ok(self) -> bool:
        return not self.failed

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for s in self.statuses:
            out[s.status] = out.get(s.status, 0) + 1
        return out

    def format(self) -> str:
        """Human-readable per-design build table."""
        header = (f"{'design':<12}{'status':>8}{'attempts':>9}"
                  f"{'time s':>9}{'pid':>8}  error")
        counts = ", ".join(f"{k}={v}"
                           for k, v in sorted(self.counts().items()))
        lines = [f"dataset build: {len(self.statuses)} designs, "
                 f"jobs={self.jobs}, wall {self.wall_s:.2f}s ({counts})",
                 header, "-" * len(header)]
        for s in self.statuses:
            pid = s.worker_pid if s.worker_pid else "-"
            lines.append(f"{s.design:<12}{s.status:>8}{s.attempts:>9}"
                         f"{s.duration_s:>9.2f}{pid:>8}  {s.error or ''}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _BuildTask:
    """Everything one worker invocation needs (must pickle cleanly)."""

    index: int
    design: str
    flow_config: FlowConfig
    map_bins: int
    seed: int
    cache_dir: Optional[str]
    attempt: int
    trace_dir: Optional[str]
    fail_mode: Optional[str]  # fault injection: "raise" | "crash" | None
    #: Scenario variants to build (empty = the single default scenario).
    #: ``ScenarioSpec`` is a frozen dataclass, so the task still pickles
    #: (and hashes) cleanly.
    scenarios: Tuple[ScenarioSpec, ...] = ()


def _worker_init(trace_dir: Optional[str], tracing: bool) -> None:
    """Per-process setup: detach inherited sinks, open a private trace.

    With the default ``fork`` start method the child inherits the parent
    tracer's state *including its open JSONL sinks*; writing through
    those would interleave bytes into the parent's file.  Reset drops
    them (closing only this process's duplicated descriptors), then a
    per-worker sink is installed when tracing is on.
    """
    tracer = get_tracer()
    tracer.reset()
    if tracing and trace_dir:
        configure_tracing(enabled=True,
                          jsonl_path=worker_trace_path(trace_dir))
    else:
        tracer.disable()


def _build_one(task: _BuildTask
               ) -> Tuple[int, List[DesignSample], str, float, int]:
    """Worker body: build (or load) one design's per-corner samples.

    Returns ``(index, samples, status, duration_s, pid)``.
    """
    # Import here so the function pickles by reference without dragging
    # the dataset module through the executor's serializer.
    from repro.ml.dataset import load_or_build_samples

    if task.fail_mode and task.attempt == 1:
        if task.fail_mode == "crash":
            os._exit(17)  # simulate a hard worker crash (no cleanup)
        raise RuntimeError(f"injected failure for {task.design!r}")

    start = time.perf_counter()
    samples, status = load_or_build_samples(
        task.design, task.flow_config, map_bins=task.map_bins,
        seed=task.seed,
        cache_dir=Path(task.cache_dir) if task.cache_dir else None,
        scenarios=list(task.scenarios) or None)
    duration = time.perf_counter() - start

    tracer = get_tracer()
    if tracer.enabled:
        # Cumulative snapshot; the parent folds only the last one per
        # worker file, so emitting after every task is safe.
        tracer.ingest({"type": "metrics", "pid": os.getpid(),
                       "ts": time.time(),
                       "snapshot": get_metrics().snapshot()})
    return task.index, samples, status, duration, os.getpid()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
def _make_executor(jobs: int, trace_dir: Optional[str],
                   tracing: bool) -> ProcessPoolExecutor:
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")
    return ProcessPoolExecutor(max_workers=jobs, mp_context=ctx,
                               initializer=_worker_init,
                               initargs=(trace_dir, tracing))


def build_dataset_parallel(
        designs: List[str],
        flow_config: FlowConfig,
        map_bins: int = 64,
        cache_dir: Optional[Path] = None,
        seed: int = 0,
        jobs: int = 2,
        scenarios: Optional[List[ScenarioSpec]] = None,
        _fail_once: Optional[Dict[str, str]] = None,
) -> Tuple[List[Optional[DesignSample]], BuildReport]:
    """Build samples for *designs* across ``jobs`` worker processes.

    Returns ``(samples, report)``; *samples* is design-major,
    scenario-major, corner-minor (``len(scenarios) × len(corners)``
    consecutive entries per design; one for the default config) and
    holds ``None`` for designs that failed after their retry.  Each
    worker builds all scenario variants of its design through one
    shared stage store, so the sweep/ECO reuse of the serial path is
    preserved per worker.  ``_fail_once`` injects a fault on a design's
    first attempt (``"raise"`` → exception in the worker, ``"crash"`` →
    the worker process dies, breaking the pool) — used by the
    crash-tolerance tests.
    """
    jobs = max(1, int(jobs))
    fail_once = dict(_fail_once or {})
    tracer = get_tracer()
    tracing = tracer.enabled

    n_per_design = (len(flow_config.corner_set())
                    * (len(scenarios) if scenarios else 1))
    per_design: List[Optional[List[DesignSample]]] = [None] * len(designs)
    statuses: Dict[int, DesignBuildStatus] = {}
    wall_start = time.perf_counter()

    with tempfile.TemporaryDirectory(prefix="repro-trace-") as trace_dir:
        trace_dir_arg = trace_dir if tracing else None
        executor = _make_executor(jobs, trace_dir_arg, tracing)
        generation = 0   # bumped each time a broken pool is replaced
        pending: Dict[object, Tuple[_BuildTask, int]] = {}

        def submit(index: int, attempt: int) -> None:
            name = designs[index]
            task = _BuildTask(
                index=index, design=name, flow_config=flow_config,
                map_bins=map_bins, seed=seed,
                cache_dir=str(cache_dir) if cache_dir is not None else None,
                attempt=attempt, trace_dir=trace_dir_arg,
                fail_mode=fail_once.get(name),
                scenarios=tuple(scenarios or ()))
            pending[executor.submit(_build_one, task)] = (task, generation)

        with tracer.span("dataset.parallel_build", jobs=jobs,
                         n_designs=len(designs)):
            for i in range(len(designs)):
                submit(i, attempt=1)

            while pending:
                done, _ = wait(list(pending), return_when=FIRST_COMPLETED)
                for fut in done:
                    task, gen = pending.pop(fut)
                    try:
                        idx, built, status, dur, pid = fut.result()
                    except Exception as exc:
                        if isinstance(exc, BrokenProcessPool):
                            # A crashed worker poisons every pending
                            # future of this executor; replace it once
                            # per breakage so retries run on a healthy
                            # pool.
                            if gen == generation:
                                generation += 1
                                executor.shutdown(wait=False,
                                                  cancel_futures=True)
                                executor = _make_executor(
                                    jobs, trace_dir_arg, tracing)
                        error = f"{type(exc).__name__}: {exc}"
                        if task.attempt < MAX_ATTEMPTS:
                            logger.warning(
                                "design %s attempt %d failed (%s); "
                                "retrying", task.design, task.attempt,
                                error)
                            submit(task.index, task.attempt + 1)
                        else:
                            logger.error(
                                "design %s failed permanently after %d "
                                "attempts: %s", task.design, task.attempt,
                                error)
                            statuses[task.index] = DesignBuildStatus(
                                design=task.design, status="failed",
                                attempts=task.attempt, error=error)
                        continue
                    per_design[idx] = built
                    statuses[idx] = DesignBuildStatus(
                        design=task.design, status=status,
                        attempts=task.attempt, duration_s=dur,
                        worker_pid=pid)
            executor.shutdown()

        merged = merge_worker_traces(trace_dir, tracer) if tracing else 0

    samples: List[Optional[DesignSample]] = []
    for built in per_design:
        samples.extend(built if built is not None
                       else [None] * n_per_design)
    report = BuildReport(
        statuses=[statuses[i] for i in range(len(designs))],
        jobs=jobs,
        wall_s=time.perf_counter() - wall_start,
        merged_events=merged)
    get_metrics().counter("dataset.parallel_builds").inc()
    if report.failed:
        get_metrics().counter("dataset.build_failures").inc(
            len(report.failed))
    return samples, report
