"""Node features of the pin-level heterograph (paper Section IV-A).

Feature assignment follows the paper: the **net distance** is attached to
net nodes; **cell driving strength**, **gate type** (one-hot) and **pin
capacitance** are attached to cell nodes.  Source nodes carry no features
(the GNN gives them a learned start embedding).

We extend the paper's "pin capacitance" feature to the full electrical
picture a placement-stage tool can compute from the timing library: the
cell's input pin capacitance, its fan-out, and the estimated capacitive
load at the output pin (sink pin caps + estimated wire cap).  Without the
load term the GNN physically cannot estimate gate delay (delay ≈ R_drive ×
C_load dominates at 7 nm); these are all pre-routing quantities.

All features are scaled by fixed constants so that they land in O(1) ranges
regardless of the design (data-independent normalization keeps train/test
consistent).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.liberty import GATE_KINDS
from repro.netlist import Netlist
from repro.placement import Placement
from repro.timing import CELL_OUT, NET_SINK, TimingGraph

#: Fixed normalization scales (µm, fF, ps, drive units).
DISTANCE_SCALE = 50.0
PIN_CAP_SCALE = 5.0
DRIVE_SCALE = 8.0
LOAD_SCALE = 20.0
FANOUT_SCALE = 10.0
DELAY_SCALE = 50.0

#: x_net: [distance, estimated wire delay, sink pin cap]
NET_FEATURE_DIM = 3
#: x_cell: [drive, input cap, fanout, est. load, est. drive delay, one-hot]
CELL_FEATURE_DIM = 5 + len(GATE_KINDS)


def net_output_load(netlist: Netlist, placement: Placement,
                    nid: int) -> float:
    """Estimated capacitive load of one net (sink pin caps + star wire cap).

    Shared between the full feature pass below and the incremental
    re-featurization in :mod:`repro.serve` — both must accumulate the sink
    terms in net order so recomputed values are bit-identical.
    """
    lib = netlist.library
    wire = lib.wire
    net = netlist.nets[nid]
    xd, yd = placement.pin_position(netlist, net.driver)
    load = 0.0
    for sp in net.sinks:
        spin = netlist.pins[sp]
        if spin.cell is not None:
            load += lib.cell(netlist.cells[spin.cell].type_name).input_cap
        else:
            load += 2.0  # output pad
        xs, ys = placement.pin_position(netlist, sp)
        load += wire.capacitance(abs(xd - xs) + abs(yd - ys))
    return load


def cell_feature_row(netlist: Netlist, placement: Placement,
                     pid: int) -> np.ndarray:
    """The x_cell row of one CELL_OUT pin (drive, caps, load, one-hot)."""
    lib = netlist.library
    pin = netlist.pins[pid]
    ctype = lib.cell(netlist.cells[pin.cell].type_name)
    load = (net_output_load(netlist, placement, pin.net)
            if pin.net is not None else 0.0)
    row = np.zeros(CELL_FEATURE_DIM)
    row[0] = ctype.drive / DRIVE_SCALE
    row[1] = ctype.input_cap / PIN_CAP_SCALE
    row[2] = (len(netlist.nets[pin.net].sinks) / FANOUT_SCALE
              if pin.net is not None else 0.0)
    row[3] = load / LOAD_SCALE
    row[4] = ctype.drive_resistance * load / DELAY_SCALE
    row[5 + lib.kind_index(ctype.kind.name)] = 1.0
    return row


def net_feature_row(netlist: Netlist, placement: Placement,
                    pid: int) -> np.ndarray:
    """The x_net row of one NET_SINK pin (distance, wire delay, sink cap)."""
    lib = netlist.library
    wire = lib.wire
    pin = netlist.pins[pid]
    net = netlist.nets[pin.net]
    xd, yd = placement.pin_position(netlist, net.driver)
    xs, ys = placement.pin_position(netlist, pid)
    dist = abs(xd - xs) + abs(yd - ys)
    sink_cap = (lib.cell(netlist.cells[pin.cell].type_name).input_cap
                if pin.cell is not None else 2.0)
    wire_delay = wire.resistance(dist) * (
        0.5 * wire.capacitance(dist) + sink_cap)
    row = np.zeros(NET_FEATURE_DIM)
    row[0] = dist / DISTANCE_SCALE
    row[1] = wire_delay / DELAY_SCALE
    row[2] = sink_cap / PIN_CAP_SCALE
    return row


def node_features(netlist: Netlist, placement: Placement,
                  graph: TimingGraph) -> Tuple[np.ndarray, np.ndarray]:
    """Compute (x_cell, x_net) feature matrices for all nodes.

    ``x_cell[i]`` is nonzero only for CELL_OUT nodes, ``x_net[i]`` only for
    NET_SINK nodes; the GNN consumes each where appropriate (Eq. (3)).
    """
    n = graph.n_nodes
    x_cell = np.zeros((n, CELL_FEATURE_DIM))
    x_net = np.zeros((n, NET_FEATURE_DIM))
    for i, pid in enumerate(graph.pin_ids):
        if graph.kind[i] == CELL_OUT:
            x_cell[i] = cell_feature_row(netlist, placement, int(pid))
        elif graph.kind[i] == NET_SINK:
            x_net[i] = net_feature_row(netlist, placement, int(pid))
    return x_cell, x_net
