"""Node features of the pin-level heterograph (paper Section IV-A).

Feature assignment follows the paper: the **net distance** is attached to
net nodes; **cell driving strength**, **gate type** (one-hot) and **pin
capacitance** are attached to cell nodes.  Source nodes carry no features
(the GNN gives them a learned start embedding).

We extend the paper's "pin capacitance" feature to the full electrical
picture a placement-stage tool can compute from the timing library: the
cell's input pin capacitance, its fan-out, and the estimated capacitive
load at the output pin (sink pin caps + estimated wire cap).  Without the
load term the GNN physically cannot estimate gate delay (delay ≈ R_drive ×
C_load dominates at 7 nm); these are all pre-routing quantities.

All features are scaled by fixed constants so that they land in O(1) ranges
regardless of the design (data-independent normalization keeps train/test
consistent).
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from repro.liberty import GATE_KINDS
from repro.netlist import Netlist
from repro.placement import Placement
from repro.timing import CELL_OUT, NET_SINK, TimingGraph
from repro.timing.partition import partition_graph, resolve_pins

#: Fixed normalization scales (µm, fF, ps, drive units).
DISTANCE_SCALE = 50.0
PIN_CAP_SCALE = 5.0
DRIVE_SCALE = 8.0
LOAD_SCALE = 20.0
FANOUT_SCALE = 10.0
DELAY_SCALE = 50.0

#: x_net: [distance, estimated wire delay, sink pin cap]
NET_FEATURE_DIM = 3
#: x_cell: [drive, input cap, fanout, est. load, est. drive delay, one-hot]
CELL_FEATURE_DIM = 5 + len(GATE_KINDS)


def net_output_load(netlist: Netlist, placement: Placement,
                    nid: int) -> float:
    """Estimated capacitive load of one net (sink pin caps + star wire cap).

    Shared between the full feature pass below and the incremental
    re-featurization in :mod:`repro.serve` — both must accumulate the sink
    terms in net order so recomputed values are bit-identical.
    """
    lib = netlist.library
    wire = lib.wire
    net = netlist.nets[nid]
    xd, yd = placement.pin_position(netlist, net.driver)
    load = 0.0
    for sp in net.sinks:
        spin = netlist.pins[sp]
        if spin.cell is not None:
            load += lib.cell(netlist.cells[spin.cell].type_name).input_cap
        else:
            load += 2.0  # output pad
        xs, ys = placement.pin_position(netlist, sp)
        load += wire.capacitance(abs(xd - xs) + abs(yd - ys))
    return load


def cell_feature_row(netlist: Netlist, placement: Placement,
                     pid: int) -> np.ndarray:
    """The x_cell row of one CELL_OUT pin (drive, caps, load, one-hot)."""
    lib = netlist.library
    pin = netlist.pins[pid]
    ctype = lib.cell(netlist.cells[pin.cell].type_name)
    load = (net_output_load(netlist, placement, pin.net)
            if pin.net is not None else 0.0)
    row = np.zeros(CELL_FEATURE_DIM)
    row[0] = ctype.drive / DRIVE_SCALE
    row[1] = ctype.input_cap / PIN_CAP_SCALE
    row[2] = (len(netlist.nets[pin.net].sinks) / FANOUT_SCALE
              if pin.net is not None else 0.0)
    row[3] = load / LOAD_SCALE
    row[4] = ctype.drive_resistance * load / DELAY_SCALE
    row[5 + lib.kind_index(ctype.kind.name)] = 1.0
    return row


def net_feature_row(netlist: Netlist, placement: Placement,
                    pid: int) -> np.ndarray:
    """The x_net row of one NET_SINK pin (distance, wire delay, sink cap)."""
    lib = netlist.library
    wire = lib.wire
    pin = netlist.pins[pid]
    net = netlist.nets[pin.net]
    xd, yd = placement.pin_position(netlist, net.driver)
    xs, ys = placement.pin_position(netlist, pid)
    dist = abs(xd - xs) + abs(yd - ys)
    sink_cap = (lib.cell(netlist.cells[pin.cell].type_name).input_cap
                if pin.cell is not None else 2.0)
    wire_delay = wire.resistance(dist) * (
        0.5 * wire.capacitance(dist) + sink_cap)
    row = np.zeros(NET_FEATURE_DIM)
    row[0] = dist / DISTANCE_SCALE
    row[1] = wire_delay / DELAY_SCALE
    row[2] = sink_cap / PIN_CAP_SCALE
    return row


class FeatureShapeError(ValueError):
    """A feature block has the wrong shape, dtype, or non-finite values.

    Raised at *build* time, with the offending design/chunk named, so
    malformed blocks never reach the GNN (where they would surface as an
    opaque broadcast error dozens of frames deep).
    """

    def __init__(self, message: str, *, design: str = "?",
                 chunk: Optional[int] = None) -> None:
        where = f"design {design!r}" + (
            "" if chunk is None else f", chunk {chunk}")
        super().__init__(f"malformed feature block ({where}): {message}")
        self.design = design
        self.chunk = chunk


def _check_block(arr: np.ndarray, rows: int, dim: int, label: str,
                 design: str, chunk: Optional[int]) -> None:
    if not isinstance(arr, np.ndarray):
        raise FeatureShapeError(f"{label} is {type(arr).__name__}, "
                                "expected ndarray", design=design, chunk=chunk)
    if arr.shape != (rows, dim):
        raise FeatureShapeError(f"{label} shape {arr.shape} != ({rows}, {dim})",
                                design=design, chunk=chunk)
    if arr.dtype != np.float64:
        raise FeatureShapeError(f"{label} dtype {arr.dtype} != float64",
                                design=design, chunk=chunk)
    if not np.isfinite(arr).all():
        bad = int(np.argwhere(~np.isfinite(arr))[0][0])
        raise FeatureShapeError(f"{label} has non-finite values (first at "
                                f"row {bad})", design=design, chunk=chunk)


def validate_node_features(x_cell: np.ndarray, x_net: np.ndarray,
                           n_nodes: int, design: str = "?",
                           chunk: Optional[int] = None) -> None:
    """Validate full (or per-chunk) feature matrices; raise
    :class:`FeatureShapeError` on any shape/dtype/finiteness violation."""
    _check_block(x_cell, n_nodes, CELL_FEATURE_DIM, "x_cell", design, chunk)
    _check_block(x_net, n_nodes, NET_FEATURE_DIM, "x_net", design, chunk)


def chunk_feature_block(
        netlist: Netlist, placement: Placement, graph: TimingGraph,
        nodes: np.ndarray, chunk: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Feature rows for one chunk's node set.

    Returns ``(cell_rows, cell_nodes, net_rows, net_nodes)`` where
    ``cell_rows[i]`` is the x_cell row of node ``cell_nodes[i]`` (ditto
    net).  Rows are computed by the exact same per-pin functions as the
    whole-graph pass — features are per-node, so scattering the blocks
    into full-size arrays reproduces :func:`node_features` bit for bit.
    Each block is validated before it is returned.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    kinds = graph.kind[nodes]
    cell_nodes = nodes[kinds == CELL_OUT]
    net_nodes = nodes[kinds == NET_SINK]
    cell_rows = np.zeros((len(cell_nodes), CELL_FEATURE_DIM))
    for j, i in enumerate(cell_nodes):
        cell_rows[j] = cell_feature_row(netlist, placement,
                                        int(graph.pin_ids[i]))
    net_rows = np.zeros((len(net_nodes), NET_FEATURE_DIM))
    for j, i in enumerate(net_nodes):
        net_rows[j] = net_feature_row(netlist, placement,
                                      int(graph.pin_ids[i]))
    design = netlist.name
    _check_block(cell_rows, len(cell_nodes), CELL_FEATURE_DIM, "x_cell block",
                 design, chunk)
    _check_block(net_rows, len(net_nodes), NET_FEATURE_DIM, "x_net block",
                 design, chunk)
    return cell_rows, cell_nodes, net_rows, net_nodes


def node_features(netlist: Netlist, placement: Placement,
                  graph: TimingGraph,
                  partition: Any = None) -> Tuple[np.ndarray, np.ndarray]:
    """Compute (x_cell, x_net) feature matrices for all nodes.

    ``x_cell[i]`` is nonzero only for CELL_OUT nodes, ``x_net[i]`` only for
    NET_SINK nodes; the GNN consumes each where appropriate (Eq. (3)).

    With *partition* set (pins int or :class:`~repro.timing.partition
    .PartitionConfig`), rows are produced chunk-by-chunk via
    :func:`chunk_feature_block` and scattered into the full arrays —
    bit-identical to the monolithic pass (features are per-node), but the
    working set per step is one chunk's rows.
    """
    n = graph.n_nodes
    x_cell = np.zeros((n, CELL_FEATURE_DIM))
    x_net = np.zeros((n, NET_FEATURE_DIM))
    pins = resolve_pins(partition)
    if pins is None:
        for i, pid in enumerate(graph.pin_ids):
            if graph.kind[i] == CELL_OUT:
                x_cell[i] = cell_feature_row(netlist, placement, int(pid))
            elif graph.kind[i] == NET_SINK:
                x_net[i] = net_feature_row(netlist, placement, int(pid))
    else:
        for chunk in partition_graph(graph, pins):
            cell_rows, cell_nodes, net_rows, net_nodes = chunk_feature_block(
                netlist, placement, graph, chunk.nodes, chunk=chunk.index)
            x_cell[cell_nodes] = cell_rows
            x_net[net_nodes] = net_rows
    validate_node_features(x_cell, x_net, n, design=netlist.name)
    return x_cell, x_net
