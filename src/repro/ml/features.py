"""Node features of the pin-level heterograph (paper Section IV-A).

Feature assignment follows the paper: the **net distance** is attached to
net nodes; **cell driving strength**, **gate type** (one-hot) and **pin
capacitance** are attached to cell nodes.  Source nodes carry no features
(the GNN gives them a learned start embedding).

We extend the paper's "pin capacitance" feature to the full electrical
picture a placement-stage tool can compute from the timing library: the
cell's input pin capacitance, its fan-out, and the estimated capacitive
load at the output pin (sink pin caps + estimated wire cap).  Without the
load term the GNN physically cannot estimate gate delay (delay ≈ R_drive ×
C_load dominates at 7 nm); these are all pre-routing quantities.

All features are scaled by fixed constants so that they land in O(1) ranges
regardless of the design (data-independent normalization keeps train/test
consistent).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.liberty import GATE_KINDS
from repro.netlist import Netlist
from repro.placement import Placement
from repro.timing import CELL_OUT, NET_SINK, TimingGraph

#: Fixed normalization scales (µm, fF, ps, drive units).
DISTANCE_SCALE = 50.0
PIN_CAP_SCALE = 5.0
DRIVE_SCALE = 8.0
LOAD_SCALE = 20.0
FANOUT_SCALE = 10.0
DELAY_SCALE = 50.0

#: x_net: [distance, estimated wire delay, sink pin cap]
NET_FEATURE_DIM = 3
#: x_cell: [drive, input cap, fanout, est. load, est. drive delay, one-hot]
CELL_FEATURE_DIM = 5 + len(GATE_KINDS)


def node_features(netlist: Netlist, placement: Placement,
                  graph: TimingGraph) -> Tuple[np.ndarray, np.ndarray]:
    """Compute (x_cell, x_net) feature matrices for all nodes.

    ``x_cell[i]`` is nonzero only for CELL_OUT nodes, ``x_net[i]`` only for
    NET_SINK nodes; the GNN consumes each where appropriate (Eq. (3)).
    """
    lib = netlist.library
    wire = lib.wire
    n = graph.n_nodes
    x_cell = np.zeros((n, CELL_FEATURE_DIM))
    x_net = np.zeros((n, NET_FEATURE_DIM))

    # Estimated output load per net (sink pin caps + star wire cap).
    net_load = {}
    for nid, net in netlist.nets.items():
        xd, yd = placement.pin_position(netlist, net.driver)
        load = 0.0
        for sp in net.sinks:
            spin = netlist.pins[sp]
            if spin.cell is not None:
                load += lib.cell(netlist.cells[spin.cell].type_name).input_cap
            else:
                load += 2.0  # output pad
            xs, ys = placement.pin_position(netlist, sp)
            load += wire.capacitance(abs(xd - xs) + abs(yd - ys))
        net_load[nid] = load

    for i, pid in enumerate(graph.pin_ids):
        pin = netlist.pins[int(pid)]
        if graph.kind[i] == CELL_OUT:
            ctype = lib.cell(netlist.cells[pin.cell].type_name)
            load = net_load.get(pin.net, 0.0)
            x_cell[i, 0] = ctype.drive / DRIVE_SCALE
            x_cell[i, 1] = ctype.input_cap / PIN_CAP_SCALE
            x_cell[i, 2] = (len(netlist.nets[pin.net].sinks) / FANOUT_SCALE
                            if pin.net is not None else 0.0)
            x_cell[i, 3] = load / LOAD_SCALE
            x_cell[i, 4] = ctype.drive_resistance * load / DELAY_SCALE
            x_cell[i, 5 + lib.kind_index(ctype.kind.name)] = 1.0
        elif graph.kind[i] == NET_SINK:
            net = netlist.nets[pin.net]
            xd, yd = placement.pin_position(netlist, net.driver)
            xs, ys = placement.pin_position(netlist, int(pid))
            dist = abs(xd - xs) + abs(yd - ys)
            sink_cap = (lib.cell(
                netlist.cells[pin.cell].type_name).input_cap
                if pin.cell is not None else 2.0)
            wire_delay = wire.resistance(dist) * (
                0.5 * wire.capacitance(dist) + sink_cap)
            x_net[i, 0] = dist / DISTANCE_SCALE
            x_net[i, 1] = wire_delay / DELAY_SCALE
            x_net[i, 2] = sink_cap / PIN_CAP_SCALE
    return x_cell, x_net
