"""Packed-batch execution engine: cross-design endpoint batching.

The paper trains on **1024-endpoint batches** (Section VI-A); the models,
however, are naturally graph-shaped, so batching means building the
**disjoint union** of several design graphs and running one forward pass
over it — the same move PreRoutGNN makes for partitioned subgraphs and
E2ESlack for heterogeneous circuit graphs.

A :class:`PackedBatch` presents the exact node-level interface the models
consume from a :class:`~repro.ml.sample.DesignSample` (``n_nodes``,
``level``, ``plans``, ``x_cell``, ``x_net``, ``source_nodes``,
``endpoint_nodes``, ``masks``), with every node index remapped by its
sample's node offset and the per-level :class:`LevelPlan`\\ s of all
samples merged level-by-level (predecessor matrices re-padded to the
widest sample at each level; ``-1`` padding still lands on the models'
shared sentinel row).  The layout branch sees one stacked
``(B, 3, M, N)`` tensor plus an endpoint→sample index map so each
endpoint's mask is applied to *its* design's global layout map.

Packing is pure bookkeeping — no arithmetic touches feature values — so a
packed forward agrees with the per-design loop to floating-point
round-off, regardless of packing order (locked down in
``tests/ml/test_batch.py`` and ``benchmarks/bench_batch.py``).

:class:`EndpointBatchSampler` provides the training side: seeded,
shuffled cross-design endpoint mini-batches (default 1024, matching the
paper) over the packed endpoint axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.ml.plancache import PLAN_CACHE
from repro.ml.sample import DesignSample, LevelPlan
from repro.nn.workspace import current_workspace
from repro.utils import require

#: Paper Section VI-A trains on batches of 1024 endpoints.
DEFAULT_ENDPOINT_BATCH = 1024

_EMPTY = np.zeros(0, dtype=np.int64)


@dataclass
class PackedBatch:
    """Disjoint union of N design samples, shaped for one model pass.

    Node indices are global (sample-local index + that sample's entry in
    ``node_offsets``); the endpoint axis is the concatenation of every
    sample's endpoints in sample order, described by ``endpoint_sample``
    / ``endpoint_offsets``.
    """

    samples: List[DesignSample]

    # --- merged heterograph (the GNN's view) --------------------------
    n_nodes: int
    node_offsets: np.ndarray          # (B+1,) node prefix offsets
    level: np.ndarray                 # (n_total,)
    source_nodes: np.ndarray          # remapped
    plans: List[LevelPlan]            # merged per level, re-padded
    x_cell: np.ndarray                # (n_total, Dc)
    x_net: np.ndarray                 # (n_total, Dn)

    # --- endpoint axis -------------------------------------------------
    endpoint_nodes: np.ndarray        # (E,) global node ids
    endpoint_pins: np.ndarray         # (E,) pin ids (sample-local)
    endpoint_sample: np.ndarray       # (E,) owning sample index
    endpoint_offsets: np.ndarray      # (B+1,) endpoint prefix offsets
    y: np.ndarray                     # (E,) sign-off labels
    clock_periods: np.ndarray         # (B,) per-sample clock period

    # --- layout branch (the CNN's view) --------------------------------
    layout_stacks: np.ndarray         # (B, 3, M, N) stacked maps
    masks: np.ndarray                 # (E, P4) stacked masked-layout masks

    # --- MMMC corner axis ----------------------------------------------
    #: (B,) each sample's corner embedding index.  Corners ride the
    #: batch dimension: a cross-corner what-if packs one corner view per
    #: corner, so one forward covers them all.
    corner_ids: np.ndarray = None

    # --- partitioned execution -----------------------------------------
    #: Streaming chunk-size hint (see :mod:`repro.timing.partition`),
    #: propagated from the packed samples when they all agree.  Execution
    #: knob only — forward outputs are bit-identical either way.
    partition_pins: "int | None" = None

    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        return len(self.samples)

    @property
    def n_endpoints(self) -> int:
        return len(self.endpoint_nodes)

    @property
    def endpoints_per_sample(self) -> np.ndarray:
        return np.diff(self.endpoint_offsets)

    @property
    def endpoint_clock_periods(self) -> np.ndarray:
        """(E,) the owning sample's clock period, per endpoint."""
        return self.clock_periods[self.endpoint_sample]

    @property
    def endpoint_corner(self) -> np.ndarray:
        """(E,) the owning sample's corner index, per endpoint."""
        cached = getattr(self, "_endpoint_corner", None)
        if cached is None:
            cached = self.corner_ids[self.endpoint_sample]
            self._endpoint_corner = cached
        return cached

    @property
    def name(self) -> str:
        """Span/debug label; mirrors ``DesignSample.name``."""
        return "pack(" + ",".join(s.name for s in self.samples) + ")"

    def split_endpoint_array(self, values: np.ndarray) -> List[np.ndarray]:
        """Slice an (E, ...) array back into per-sample arrays."""
        require(len(values) == self.n_endpoints,
                f"expected a length-{self.n_endpoints} endpoint array, "
                f"got {len(values)}")
        return [values[self.endpoint_offsets[i]:self.endpoint_offsets[i + 1]]
                for i in range(self.n_samples)]

    # ------------------------------------------------------------------
    @classmethod
    def pack(cls, samples: Sequence[DesignSample]) -> "PackedBatch":
        """Disjoint-union *samples* into one batch.

        Packing a single sample is (nearly) free: every array is reused
        as-is, so wrapping the legacy one-design APIs in a pack-of-one
        costs no copies.
        """
        # Local import: repro.core.fusion imports this module.
        from repro.core.masking import stack_endpoint_masks

        samples = list(samples)
        require(len(samples) > 0, "cannot pack an empty sample list")
        masks = stack_endpoint_masks(samples)
        if len(samples) == 1:
            s = samples[0]
            batch = cls(
                samples=samples,
                n_nodes=s.n_nodes,
                node_offsets=np.array([0, s.n_nodes], dtype=np.int64),
                level=s.level,
                source_nodes=s.source_nodes,
                plans=s.plans,
                x_cell=s.x_cell,
                x_net=s.x_net,
                endpoint_nodes=s.endpoint_nodes,
                endpoint_pins=s.endpoint_pins,
                endpoint_sample=np.zeros(s.n_endpoints, dtype=np.int64),
                endpoint_offsets=np.array([0, s.n_endpoints],
                                          dtype=np.int64),
                y=s.y,
                clock_periods=np.array([s.clock_period]),
                layout_stacks=s.layout_stack[None],
                masks=masks,
                corner_ids=np.array([s.corner_index], dtype=np.int64),
                partition_pins=s.partition_pins,
            )
            batch._topo_orders = plan_orders(s)
            # Share the sample's stream-plan memo: a pack of one presents
            # the identical topology, so the chunk schedule is reusable.
            batch._stream_cache = s.__dict__.setdefault("_stream_cache", {})
            return batch

        shape = samples[0].layout_stack.shape
        for s in samples[1:]:
            require(s.layout_stack.shape == shape,
                    f"cannot pack layout stacks of shapes {shape} and "
                    f"{s.layout_stack.shape} ({s.name})")
        # Topology (offsets, merged plans, endpoint maps) is identical
        # for every repeat pack of the same designs — served from the
        # process-wide plan cache; only feature arrays are re-gathered.
        topo = PLAN_CACHE.topology(samples, build_pack_topology)

        batch = cls(
            samples=samples,
            n_nodes=topo["n_nodes"],
            node_offsets=topo["node_offsets"],
            level=topo["level"],
            source_nodes=topo["source_nodes"],
            plans=topo["plans"],
            x_cell=_concat_rows([s.x_cell for s in samples]),
            x_net=_concat_rows([s.x_net for s in samples]),
            endpoint_nodes=topo["endpoint_nodes"],
            endpoint_pins=topo["endpoint_pins"],
            endpoint_sample=topo["endpoint_sample"],
            endpoint_offsets=topo["endpoint_offsets"],
            y=_concat_rows([s.y for s in samples]),
            clock_periods=np.array([s.clock_period for s in samples]),
            layout_stacks=_stack_arrays([s.layout_stack for s in samples]),
            masks=masks,
            # Corner ids are per-pack, not part of the cached topology:
            # corner views share their base sample's plans identity.
            corner_ids=np.array([s.corner_index for s in samples],
                                dtype=np.int64),
            # Streaming is all-or-nothing for a pack: propagate the chunk
            # hint only when every packed sample agrees on it.
            partition_pins=_common_pins(samples),
        )
        batch._topo_orders = topo["orders"]
        # Stream plans are pure topology too: park the memo dict inside
        # the cached topology entry so repeat packs reuse one schedule.
        batch._stream_cache = topo.setdefault("stream_cache", {})
        return batch


def _common_pins(samples: Sequence[DesignSample]) -> "int | None":
    """The shared ``partition_pins`` of *samples*, or ``None`` if mixed."""
    pins = {s.partition_pins for s in samples}
    return pins.pop() if len(pins) == 1 else None


def _concat_rows(arrays: List[np.ndarray]) -> np.ndarray:
    """Row-wise concatenation, arena-backed when a workspace is active."""
    ws = current_workspace()
    if ws is None:
        return np.concatenate(arrays, axis=0)
    shape = (sum(a.shape[0] for a in arrays),) + arrays[0].shape[1:]
    return np.concatenate(arrays, axis=0,
                          out=ws.take(shape, arrays[0].dtype))


def _stack_arrays(arrays: List[np.ndarray]) -> np.ndarray:
    """``np.stack``, arena-backed when a workspace is active."""
    ws = current_workspace()
    if ws is None:
        return np.stack(arrays)
    shape = (len(arrays),) + arrays[0].shape
    return np.stack(arrays, out=ws.take(shape, arrays[0].dtype))


def plan_orders(sample) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cached ``(cell_order, net_order, level0)`` of a sample or pack.

    ``cell_order``/``net_order`` concatenate each level's cell/net nodes
    in level order (the GNN's hoisted feature-branch row order);
    ``level0`` lists the level-0 nodes.  All three are pure topology, so
    they are computed once and memoized on the sample/batch object.
    """
    cached = getattr(sample, "_topo_orders", None)
    if cached is None:
        cached = _build_orders(sample.plans, sample.level)
        sample._topo_orders = cached
    return cached


def _build_orders(plans: Sequence[LevelPlan], level: np.ndarray) -> tuple:
    cells = [p.cell_nodes for p in plans if len(p.cell_nodes)]
    nets = [p.net_nodes for p in plans if len(p.net_nodes)]
    return (np.concatenate(cells) if cells else _EMPTY,
            np.concatenate(nets) if nets else _EMPTY,
            np.where(level == 0)[0])


def build_pack_topology(samples: Sequence[DesignSample]) -> dict:
    """Merge *samples*' topology into one pack-shaped payload.

    Everything here depends only on graph topology (never on feature
    values), which is what makes the result cacheable across packs and
    persistable across processes (see :mod:`repro.ml.plancache`).
    """
    node_offsets = np.zeros(len(samples) + 1, dtype=np.int64)
    node_offsets[1:] = np.cumsum([s.n_nodes for s in samples])
    endpoint_offsets = np.zeros(len(samples) + 1, dtype=np.int64)
    endpoint_offsets[1:] = np.cumsum([s.n_endpoints for s in samples])
    plans = _merge_plans(samples, node_offsets)
    level = np.concatenate([s.level for s in samples])
    return {
        "n_nodes": int(node_offsets[-1]),
        "node_offsets": node_offsets,
        "level": level,
        "source_nodes": np.concatenate(
            [s.source_nodes + off
             for s, off in zip(samples, node_offsets)]),
        "plans": plans,
        "endpoint_nodes": np.concatenate(
            [s.endpoint_nodes + off
             for s, off in zip(samples, node_offsets)]),
        "endpoint_pins": np.concatenate(
            [s.endpoint_pins for s in samples]),
        "endpoint_sample": np.repeat(
            np.arange(len(samples), dtype=np.int64),
            [s.n_endpoints for s in samples]),
        "endpoint_offsets": endpoint_offsets,
        "orders": _build_orders(plans, level),
    }


def _merge_plans(samples: Sequence[DesignSample],
                 node_offsets: np.ndarray) -> List[LevelPlan]:
    """Merge per-sample level plans into one plan list, level by level.

    Samples shallower than the deepest one simply contribute nothing at
    the deep levels.  Predecessor matrices are re-padded to the widest
    sample at each level; ``-1`` padding is preserved (it indexes the
    models' shared sentinel row, which exists exactly once per pack).
    """
    merged: List[LevelPlan] = []
    for lvl in range(max(len(s.plans) for s in samples)):
        net_nodes, net_drivers, cell_nodes = [], [], []
        cell_blocks = []                 # (plan.cell_preds, offset) pairs
        for s, off in zip(samples, node_offsets):
            if lvl >= len(s.plans):
                continue
            plan = s.plans[lvl]
            if len(plan.net_nodes):
                net_nodes.append(plan.net_nodes + off)
                net_drivers.append(plan.net_drivers + off)
            if len(plan.cell_nodes):
                cell_nodes.append(plan.cell_nodes + off)
                cell_blocks.append((plan.cell_preds, off))
        if cell_blocks:
            # One -1-filled target, filled block by block: offsets apply
            # only where the source holds a real node id, so the -1
            # padding (both pre-existing and the re-pad to the widest K)
            # keeps indexing the shared sentinel row.
            k = max(p.shape[1] for p, _ in cell_blocks)
            m = sum(len(p) for p, _ in cell_blocks)
            preds = np.full((m, k), -1, dtype=np.int64)
            row = 0
            for p, off in cell_blocks:
                np.add(p, off, out=preds[row:row + len(p), :p.shape[1]],
                       where=p >= 0)
                row += len(p)
        else:
            preds = np.zeros((0, 1), dtype=np.int64)
        merged.append(LevelPlan(
            net_nodes=(np.concatenate(net_nodes) if net_nodes else _EMPTY),
            net_drivers=(np.concatenate(net_drivers) if net_drivers
                         else _EMPTY),
            cell_nodes=(np.concatenate(cell_nodes) if cell_nodes
                        else _EMPTY),
            cell_preds=preds,
        ))
    return merged


class EndpointBatchSampler:
    """Seeded, shuffled cross-design endpoint mini-batches.

    Yields index arrays into the packed endpoint axis; every endpoint of
    every design appears exactly once per epoch, and consecutive batches
    mix endpoints from all designs (the paper's 1024-endpoint batches,
    Section VI-A).  Pass the epoch's rng explicitly so training stays
    deterministic under a fixed seed.
    """

    def __init__(self, n_endpoints: int,
                 batch_size: int = DEFAULT_ENDPOINT_BATCH) -> None:
        require(n_endpoints > 0, "need at least one endpoint to sample")
        require(batch_size > 0, "endpoint batch size must be positive")
        self.n_endpoints = n_endpoints
        self.batch_size = batch_size

    @property
    def n_batches(self) -> int:
        """Batches per epoch (the last one may be short)."""
        return -(-self.n_endpoints // self.batch_size)

    def batches(self, rng: np.random.Generator) -> Iterator[np.ndarray]:
        """One epoch of shuffled endpoint index batches."""
        perm = rng.permutation(self.n_endpoints)
        for start in range(0, self.n_endpoints, self.batch_size):
            yield perm[start:start + self.batch_size]
