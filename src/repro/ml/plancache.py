"""Persistent packed-plan cache: merged pack topology, LRU + on-disk.

Packing N designs merges their per-level :class:`LevelPlan` lists and
concatenates every topology array — pure bookkeeping that is *identical*
for every repeat pack of the same designs.  The serving micro-batcher
re-packs resident session samples on every burst, and a fresh fleet
worker re-merges from scratch on its first request for each pack shape;
both are wasted work this cache eliminates:

* **In-memory LRU** keyed by the identity of each sample's ``plans``
  list (plans capture pure topology, immutable after the sample build —
  what-if edits only mutate feature arrays in place).  Entries keep
  strong references to the keyed ``plans`` lists so a key's ``id`` can
  never be recycled while cached; the flip side is that entries pin
  sample topology in memory, so sessions **must** call
  :meth:`PackPlanCache.release` on teardown (`DesignSession.close`
  does) — the bug this module replaces kept those references forever
  and evicted FIFO, so the hottest pack key could be evicted while dead
  sessions stayed pinned.
* **On-disk artifact layer** (opt-in via :func:`configure_plan_cache`
  or ``repro serve --plan-cache DIR``): on a memory miss the merged
  topology is looked up by a content fingerprint of every sample's
  topology arrays — same pattern as the config-hashed dataset cache —
  so a restarted or newly spawned fleet worker warm-starts without
  re-merging.  Writes are atomic and corrupt files degrade to a miss.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.utils import get_logger
from repro.utils.atomic import atomic_pickle_dump, load_pickle_or_none

logger = get_logger("ml.plancache")

#: Bump when the cached topology payload layout changes — stale disk
#: entries are then simply never looked up (different key).
PLAN_CACHE_VERSION = 1


def topology_fingerprint(sample) -> str:
    """Content hash of a sample's pack-relevant topology (memoized).

    Covers everything :func:`repro.ml.batch.build_pack_topology` reads:
    node/endpoint counts and ids, levels, and every LevelPlan array.
    Feature arrays are deliberately excluded — edits touch only those.
    """
    fp = getattr(sample, "_topo_fingerprint", None)
    if fp is None:
        h = hashlib.sha256()
        h.update(f"v{PLAN_CACHE_VERSION}:{sample.n_nodes}".encode())
        arrays = [sample.level, sample.source_nodes,
                  sample.endpoint_nodes, sample.endpoint_pins]
        for plan in sample.plans:
            arrays += [plan.net_nodes, plan.net_drivers,
                       plan.cell_nodes, plan.cell_preds]
        for arr in arrays:
            h.update(str(np.asarray(arr).shape).encode())
            h.update(np.ascontiguousarray(arr).tobytes())
        fp = h.hexdigest()
        sample._topo_fingerprint = fp
    return fp


class PackPlanCache:
    """LRU of merged pack topologies with an optional disk layer."""

    def __init__(self, capacity: int = 64,
                 cache_dir: Optional[Path] = None) -> None:
        self.capacity = int(capacity)
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self._entries: "OrderedDict[Tuple[int, ...], tuple]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0

    # ------------------------------------------------------------------
    def topology(self, samples: Sequence[Any],
                 build: Callable[[Sequence[Any]], Dict[str, Any]]
                 ) -> Dict[str, Any]:
        """The merged topology for *samples*, built via *build* on miss."""
        key = tuple(id(s.plans) for s in samples)
        with self._lock:
            hit = self._entries.get(key)
            if hit is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return hit[1]
            self._misses += 1
        topo = self._disk_load(samples)
        if topo is None:
            topo = build(samples)
            self._disk_store(samples, topo)
        with self._lock:
            if key not in self._entries:
                while len(self._entries) >= self.capacity:
                    self._entries.popitem(last=False)
                # Keep the plans lists alive so the id-based key stays
                # valid for exactly as long as the entry is cached.
                self._entries[key] = ([s.plans for s in samples], topo)
        return topo

    def release(self, sample: Any) -> int:
        """Drop every cached pack that includes *sample* (by plans id).

        Called on session teardown so a dropped design's merged-plan
        arrays (and its pinned ``plans`` list) become collectable.
        Returns the number of entries released.
        """
        pid = id(sample.plans)
        with self._lock:
            stale = [k for k in self._entries if pid in k]
            for k in stale:
                del self._entries[k]
        return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            return {"entries": len(self._entries),
                    "capacity": self.capacity,
                    "hits": self._hits, "misses": self._misses,
                    "disk_hits": self._disk_hits,
                    "cache_dir": str(self.cache_dir)
                    if self.cache_dir else None}

    # ------------------------------------------------------------------
    def _disk_path(self, samples: Sequence[Any]) -> Optional[Path]:
        if self.cache_dir is None or len(samples) < 2:
            return None  # pack-of-one topology is trivially rebuilt
        h = hashlib.sha256(f"plancache-v{PLAN_CACHE_VERSION}".encode())
        for s in samples:
            h.update(topology_fingerprint(s).encode())
        return self.cache_dir / f"plan_{h.hexdigest()[:16]}.pkl"

    def _disk_load(self, samples: Sequence[Any]) -> Optional[Dict[str, Any]]:
        path = self._disk_path(samples)
        if path is None:
            return None
        topo = load_pickle_or_none(path, logger)
        if topo is not None:
            self._disk_hits += 1
        return topo

    def _disk_store(self, samples: Sequence[Any],
                    topo: Dict[str, Any]) -> None:
        path = self._disk_path(samples)
        if path is None or path.exists():
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_pickle_dump(topo, path)
        except OSError as exc:  # cache is best-effort, never fatal
            logger.warning("could not persist plan cache %s (%s)", path, exc)


#: Process-wide cache used by :meth:`repro.ml.batch.PackedBatch.pack`.
PLAN_CACHE = PackPlanCache()


def configure_plan_cache(cache_dir: Optional[Path]) -> PackPlanCache:
    """Point the process-wide plan cache at a persistent directory."""
    PLAN_CACHE.cache_dir = Path(cache_dir) if cache_dir else None
    return PLAN_CACHE
