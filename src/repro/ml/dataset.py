"""Dataset builder: flow results → :class:`DesignSample`, with a disk cache.

Building a sample is the model's *preprocessing* stage of Table III: graph
construction, topological levelization and endpoint-wise critical-region
generation are timed into ``sample.preprocess_time``.
"""

from __future__ import annotations

import hashlib
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.masking import build_endpoint_masks
from repro.flow import FlowConfig, FlowResult, ScenarioSpec, run_flow
from repro.ml.features import node_features
from repro.ml.sample import DesignSample, LevelPlan
from repro.netlist import DESIGN_PRESETS
from repro.obs import get_metrics, get_tracer
from repro.timing import CELL_OUT, NET_SINK, build_timing_graph
from repro.utils import atomic_pickle_dump, get_logger, load_pickle_or_none

logger = get_logger("ml.dataset")

#: Bump when the sample layout changes to invalidate stale caches.
CACHE_VERSION = 10


def build_level_plans(graph) -> List[LevelPlan]:
    """Per-level execution plans (padded predecessor matrices) for the GNN."""
    # Group cell edges by destination so we can pad per level.
    preds_of: Dict[int, List[int]] = {}
    for s, d in zip(graph.cell_edge_src, graph.cell_edge_dst):
        preds_of.setdefault(int(d), []).append(int(s))
    edge_of_sink = {}
    for s, d in zip(graph.net_edge_src, graph.net_edge_dst):
        edge_of_sink[int(d)] = int(s)

    width_hist = get_metrics().histogram("gnn.level_width")
    plans: List[LevelPlan] = []
    for lvl in range(1, graph.n_levels):
        nodes = graph.levels[lvl]
        width_hist.observe(len(nodes))
        net_nodes = nodes[graph.kind[nodes] == NET_SINK]
        net_drivers = np.array([edge_of_sink[int(v)] for v in net_nodes],
                               dtype=np.int64)
        cell_nodes = nodes[graph.kind[nodes] == CELL_OUT]
        if len(cell_nodes):
            k = max(len(preds_of[int(v)]) for v in cell_nodes)
            cell_preds = np.full((len(cell_nodes), k), -1, dtype=np.int64)
            for r, v in enumerate(cell_nodes):
                ps = preds_of[int(v)]
                cell_preds[r, :len(ps)] = ps
        else:
            cell_preds = np.zeros((0, 1), dtype=np.int64)
        plans.append(LevelPlan(net_nodes=net_nodes, net_drivers=net_drivers,
                               cell_nodes=cell_nodes, cell_preds=cell_preds))
    return plans


def build_sample(flow: FlowResult, map_bins: int = 64,
                 seed: int = 0, corner: Optional[str] = None,
                 partition_pins: Optional[int] = None) -> DesignSample:
    """Convert a flow result into a training/inference sample.

    ``corner`` selects which sign-off corner the labels ``y`` come from
    (default: the base corner when the flow has it, else the flow's
    primary corner).  Features, masks and baseline bookkeeping are
    corner-independent — the predictor sees the same pre-route context
    at every corner and learns the corner effect through its embedding
    (see DESIGN.md, "Multi-corner timing").

    ``partition_pins`` bounds the featurization working set (per-chunk
    feature blocks, see :mod:`repro.timing.partition`) and is stamped on
    the sample so downstream inference streams too.  Outputs are
    bit-identical with or without it.
    """
    corner_names = flow.corner_names
    if corner is None:
        corner = "base" if "base" in corner_names else corner_names[0]
    corner_index = corner_names.index(corner)
    nl = flow.input_netlist
    placement = flow.input_placement

    # --- Timed preprocessing (the "pre" column of Table III): graph
    # construction, levelization, features, critical-region masks.
    sp = get_tracer().span("model.pre", stage="pre", design=flow.name)
    with sp:
        graph = build_timing_graph(nl)
        plans = build_level_plans(graph)
        x_cell, x_net = node_features(nl, placement, graph,
                                      partition=partition_pins)
        masks = build_endpoint_masks(nl, placement, graph, map_bins, seed)
    preprocess_time = sp.duration

    endpoint_pins = np.array([int(graph.pin_ids[v]) for v in graph.endpoints])
    labels = flow.endpoint_labels(corner)
    y = np.array([labels[int(p)] for p in endpoint_pins])

    # --- Baseline bookkeeping: sign-off local delays on SURVIVING edges.
    report = flow.opt_report
    replaced_net = report.replaced_net_edges if report else frozenset()
    replaced_cell = report.replaced_cell_edges if report else frozenset()
    signoff = flow.signoff_sta
    local_net = {e: d for e, d in signoff.net_edge_delay.items()
                 if e not in replaced_net and _edge_in(nl, e)}
    local_cell = {e: d for e, d in signoff.cell_edge_delay.items()
                  if e not in replaced_cell and _edge_in(nl, e)}
    surviving_pins = set(nl.pins) & set(flow.opt_netlist.pins)
    sg = signoff.graph
    arrival_by_pin = {int(p): float(signoff.arrival[sg.node_of[p]])
                      for p in surviving_pins}
    slew_by_pin = {int(p): float(signoff.slew[sg.node_of[p]])
                   for p in surviving_pins}

    pre = flow.pre_route_sta
    sample = DesignSample(
        name=flow.name,
        split=DESIGN_PRESETS[flow.name].split if flow.name in DESIGN_PRESETS
        else "test",
        clock_period=flow.clock_period,
        n_nodes=graph.n_nodes,
        kind=graph.kind,
        level=graph.level,
        pin_ids=graph.pin_ids,
        node_of=graph.node_of,
        plans=plans,
        source_nodes=graph.startpoints,
        x_cell=x_cell,
        x_net=x_net,
        endpoint_nodes=graph.endpoints,
        endpoint_pins=endpoint_pins,
        y=y,
        layout_stack=_layout_stack_at(flow, map_bins),
        masks=masks,
        pre_route_arrival=pre.arrival.copy(),
        pre_route_slew=pre.slew.copy(),
        local_net_delay=local_net,
        local_cell_delay=local_cell,
        signoff_arrival_by_pin=arrival_by_pin,
        signoff_slew_by_pin=slew_by_pin,
        flow_times=dict(flow.timer.stages),
        preprocess_time=preprocess_time,
        corner=corner,
        corner_index=corner_index,
        scenario=getattr(flow, "scenario", ""),
        partition_pins=partition_pins,
    )
    _attach_baseline_data(sample, flow, graph)
    return sample


def build_corner_samples(flow: FlowResult, map_bins: int = 64,
                         seed: int = 0,
                         partition_pins: Optional[int] = None,
                         ) -> List[DesignSample]:
    """One sample per sign-off corner of *flow*, in corner order.

    The expensive structural work (graph, plans, features, masks) runs
    once, for the first corner; the remaining corners are shallow
    :meth:`~repro.ml.sample.DesignSample.corner_view` copies that share
    every array and differ only in corner identity and labels.
    """
    names = flow.corner_names
    first = build_sample(flow, map_bins=map_bins, seed=seed,
                         corner=names[0], partition_pins=partition_pins)
    out = [first]
    for idx, cname in enumerate(names[1:], start=1):
        labels = flow.endpoint_labels(cname)
        y = np.array([labels[int(p)] for p in first.endpoint_pins])
        out.append(first.corner_view(cname, idx, y=y))
    return out


def _attach_baseline_data(sample: DesignSample, flow: FlowResult,
                          graph) -> None:
    """Precompute the local-view baselines' features and labels."""
    # Import here: repro.baselines imports repro.ml.sample.
    from repro.baselines.local_features import stage_features, stage_labels

    nl = flow.input_netlist
    placement = flow.input_placement
    basic, sink_nodes = stage_features(nl, placement, graph, lookahead=False)
    lookahead, _ = stage_features(nl, placement, graph, lookahead=True)
    sample.stage_features_basic = basic
    sample.stage_features_lookahead = lookahead
    sample.stage_sink_nodes = sink_nodes
    sample.stage_label_by_sink = stage_labels(nl, sample)

    # Per-node auxiliary labels (DAC'22-Guo): NaN = replaced/unlabeled.
    n = sample.n_nodes
    aux_arrival = np.full(n, np.nan)
    aux_slew = np.full(n, np.nan)
    aux_net = np.full(n, np.nan)
    aux_cell = np.full(n, np.nan)
    for pid, arr in sample.signoff_arrival_by_pin.items():
        node = sample.node_of.get(pid)
        if node is not None:
            aux_arrival[node] = arr
            aux_slew[node] = sample.signoff_slew_by_pin[pid]
    for (drv, snk), d in sample.local_net_delay.items():
        node = sample.node_of.get(snk)
        if node is not None:
            aux_net[node] = d
    for (ip, op), d in sample.local_cell_delay.items():
        node = sample.node_of.get(op)
        if node is not None:
            aux_cell[node] = max(d, aux_cell[node]) if np.isfinite(
                aux_cell[node]) else d
    sample.aux_arrival = aux_arrival
    sample.aux_slew = aux_slew
    sample.aux_net_delay = aux_net
    sample.aux_cell_delay = aux_cell


def _layout_stack_at(flow: FlowResult, map_bins: int) -> np.ndarray:
    """Layout maps at the sample's resolution (recompute on mismatch)."""
    from repro.placement import compute_layout_maps

    maps = flow.input_maps
    if maps.shape != (map_bins, map_bins):
        maps = compute_layout_maps(flow.input_netlist, flow.input_placement,
                                   m=map_bins, n=map_bins)
    return maps.stacked()


def _edge_in(nl, edge: Tuple[int, int]) -> bool:
    return edge[0] in nl.pins and edge[1] in nl.pins


def sample_cache_path(cache_dir: Path, name: str, flow_config: FlowConfig,
                      map_bins: int, seed: int,
                      corner: str = "base", scenario: str = "") -> Path:
    """Cache file for one (design, corner, scenario) under one *full*
    configuration.

    The key is a content hash over the complete :class:`FlowConfig`
    (including the placer/optimizer/router sub-configs and ``with_opt``)
    plus the sample parameters and :data:`CACHE_VERSION`, so any change
    that could alter features or labels maps to a different file — a
    stale entry can never be served for a different configuration.

    Non-base corners extend the hash payload and the file name with a
    corner tag; non-default scenarios do the same with an ``@scenario``
    tag (``adder@clock_frac0.7+eco1_<key>.pkl``).  The base-corner,
    default-scenario key is byte-identical to the pre-corner scheme, so
    existing caches keep hitting.
    """
    payload = (f"{flow_config.fingerprint()}:b{map_bins}:s{seed}"
               f":v{CACHE_VERSION}")
    stem = name
    if corner != "base":
        payload += f":c{corner}"
        stem = f"{name}@{corner}"
    if scenario:
        payload += f":sc{scenario}"
        stem = f"{stem}@{scenario}"
    key = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
    return Path(cache_dir) / f"{stem}_{key}.pkl"


def load_or_build_samples(name: str, flow_config: FlowConfig,
                          map_bins: int = 64, seed: int = 0,
                          cache_dir: Optional[Path] = None,
                          scenarios: Optional[List[ScenarioSpec]] = None,
                          ) -> Tuple[List[DesignSample], str]:
    """One design → one sample per (scenario, corner), through the cache.

    Sample order is scenario-major, corner-minor; the default
    ``scenarios=None`` is the single default scenario — exactly the
    pre-scenario behavior, same cache files.  Returns ``(samples,
    status)`` with status ``"cached"`` (every entry hit) or ``"built"``
    (at least one flow variant ran; variants share one
    :class:`~repro.flow.StageStore`, so each computes only the stages
    its axes change).  Cache reads treat corrupt/unreadable files as
    misses (warn + rebuild); cache writes are atomic (temp file +
    ``os.replace``), so an interrupted build never leaves a half-written
    file behind.  Shared by the serial loop below and the parallel
    workers in :mod:`repro.ml.parallel`.
    """
    from repro.flow.scenario import _resolve_spec

    corners = flow_config.corner_set()
    scenario_list = list(scenarios) if scenarios else [ScenarioSpec()]
    spec = _resolve_spec(name, flow_config)
    resolved = [s.resolve(spec) for s in scenario_list]

    if cache_dir is not None:
        cache_dir = Path(cache_dir)
        cache_dir.mkdir(parents=True, exist_ok=True)
    out: List[Optional[DesignSample]] = [None] * (len(resolved)
                                                 * len(corners))
    missing: List[int] = []         # scenario indices still to build
    for si, scen in enumerate(resolved):
        loaded = None
        if cache_dir is not None:
            files = [sample_cache_path(cache_dir, name, flow_config,
                                       map_bins, seed, corner=c.name,
                                       scenario=scen.scenario_id)
                     for c in corners]
            loaded = [load_pickle_or_none(f, logger) for f in files]
            if any(s is None for s in loaded):
                loaded = None
        if loaded is None:
            missing.append(si)
            continue
        # Corner/scenario identity follows the *current* request (a
        # cache entry is keyed by name, not position); pre-corner /
        # pre-scenario pickles resolve via the class defaults and are
        # re-stamped identically.
        for ci, (c, s) in enumerate(zip(corners, loaded)):
            s.corner = c.name
            s.corner_index = ci
            s.scenario = scen.scenario_id
            # Execution knob, not content: re-stamp from the current
            # config (cache keys deliberately ignore it).
            s.partition_pins = flow_config.partition_pins
            out[si * len(corners) + ci] = s

    if not missing:
        logger.info("loaded %s from cache (%d corner(s) × %d scenario(s))",
                    name, len(corners), len(resolved))
        return [s for s in out if s is not None], "cached"

    to_build = [resolved[si] for si in missing]
    if len(to_build) == 1 and to_build[0].is_default:
        # The historic single-flow path, byte-for-byte (no store).
        logger.info("running flow for %s", name)
        flows = [run_flow(name, flow_config)]
    else:
        logger.info("running %d scenario flow(s) for %s", len(to_build),
                    name)
        flows = _run_scenario_flows(name, flow_config, to_build, cache_dir)
    for si, flow in zip(missing, flows):
        samples = build_corner_samples(
            flow, map_bins=map_bins, seed=seed,
            partition_pins=flow_config.partition_pins)
        for ci, sample in enumerate(samples):
            out[si * len(corners) + ci] = sample
            if cache_dir is not None:
                atomic_pickle_dump(sample, sample_cache_path(
                    cache_dir, name, flow_config, map_bins, seed,
                    corner=sample.corner,
                    scenario=resolved[si].scenario_id))
    return [s for s in out if s is not None], "built"


def _run_scenario_flows(name: str, flow_config: FlowConfig,
                        scenarios: List[ScenarioSpec],
                        cache_dir: Optional[Path]) -> List["FlowResult"]:
    """Run a scenario batch through a shared (disk-backed) stage store.

    The disk layer under ``<cache_dir>/stages`` lets an interrupted or
    re-run scenario build resume from the deepest stage already
    produced; the default single-scenario path never reaches here, so it
    stays free of stage I/O.
    """
    from repro.flow import StageStore, run_scenarios

    store = StageStore(Path(cache_dir) / "stages"
                       if cache_dir is not None else None)
    return run_scenarios(name, flow_config, scenarios, store=store)


def load_or_build_sample(name: str, flow_config: FlowConfig,
                         map_bins: int = 64, seed: int = 0,
                         cache_dir: Optional[Path] = None,
                         ) -> Tuple[DesignSample, str]:
    """Single-sample façade over :func:`load_or_build_samples`.

    Returns the first configured corner's sample — for the default
    single-corner config, exactly the pre-corner behavior.
    """
    samples, status = load_or_build_samples(
        name, flow_config, map_bins=map_bins, seed=seed,
        cache_dir=cache_dir)
    return samples[0], status


def build_dataset(designs: List[str],
                  flow_config: Optional[FlowConfig] = None,
                  map_bins: int = 64,
                  cache_dir: Optional[Path] = None,
                  seed: int = 0,
                  jobs: Optional[int] = None,
                  scenarios: Optional[List[ScenarioSpec]] = None,
                  ) -> List[DesignSample]:
    """Run the reference flow on each design and build samples.

    Results are cached on disk keyed by the full-config hash (see
    :func:`sample_cache_path`) so benchmarks re-run quickly.  With
    ``jobs > 1`` designs are built in parallel worker processes (see
    :mod:`repro.ml.parallel`); serial and parallel builds produce
    identical samples.  With a multi-corner ``flow_config`` each design
    contributes ``len(corners)`` consecutive samples, and with
    *scenarios* (see :func:`repro.flow.expand_scenarios`) each design
    contributes ``len(scenarios) × len(corners)`` samples
    (design-major, scenario-major, corner-minor).  Raises
    ``RuntimeError`` if any design still fails after the per-design
    retry; use :func:`build_dataset_report` to inspect partial results
    instead.
    """
    samples, report = build_dataset_report(
        designs, flow_config=flow_config, map_bins=map_bins,
        cache_dir=cache_dir, seed=seed, jobs=jobs, scenarios=scenarios)
    failed = report.failed
    if failed:
        details = "; ".join(f"{s.design}: {s.error}" for s in failed)
        raise RuntimeError(
            f"dataset build failed for {len(failed)} design(s) "
            f"after retries — {details}")
    return samples


def build_dataset_report(designs: List[str],
                         flow_config: Optional[FlowConfig] = None,
                         map_bins: int = 64,
                         cache_dir: Optional[Path] = None,
                         seed: int = 0,
                         jobs: Optional[int] = None,
                         scenarios: Optional[List[ScenarioSpec]] = None,
                         _fail_once: Optional[Dict[str, str]] = None):
    """Like :func:`build_dataset` but fault-tolerant and introspectable.

    Returns ``(samples, report)`` where *samples* is aligned with
    *designs* (``None`` for designs that failed permanently) and
    *report* is a :class:`repro.ml.parallel.BuildReport` with per-design
    status, attempts, durations and errors.  ``_fail_once`` is the fault
    -injection hook used by the crash-tolerance tests (design name →
    ``"raise"`` or ``"crash"``; the fault fires on the first attempt
    only).
    """
    # Import here: repro.ml.parallel imports this module.
    from repro.ml.parallel import (
        BuildReport,
        DesignBuildStatus,
        build_dataset_parallel,
    )

    flow_config = flow_config or FlowConfig(base_seed=seed)
    if jobs is not None and jobs > 1:
        return build_dataset_parallel(
            designs, flow_config, map_bins=map_bins, cache_dir=cache_dir,
            seed=seed, jobs=jobs, scenarios=scenarios,
            _fail_once=_fail_once)

    n_per_design = (len(flow_config.corner_set())
                    * (len(scenarios) if scenarios else 1))
    samples: List[Optional[DesignSample]] = []
    statuses: List[DesignBuildStatus] = []
    wall_start = time.perf_counter()
    for name in designs:
        start = time.perf_counter()
        try:
            built, status = load_or_build_samples(
                name, flow_config, map_bins=map_bins, seed=seed,
                cache_dir=cache_dir, scenarios=scenarios)
            samples.extend(built)
            statuses.append(DesignBuildStatus(
                design=name, status=status, attempts=1,
                duration_s=time.perf_counter() - start))
        except Exception as exc:
            logger.warning("building %s failed: %s: %s", name,
                           type(exc).__name__, exc)
            samples.extend([None] * n_per_design)
            statuses.append(DesignBuildStatus(
                design=name, status="failed", attempts=1,
                duration_s=time.perf_counter() - start,
                error=f"{type(exc).__name__}: {exc}"))
    report = BuildReport(statuses=statuses, jobs=1,
                         wall_s=time.perf_counter() - wall_start)
    return samples, report
