"""Layout-gated timing optimizer (structure-preserved + destructed moves)."""

from repro.opt.config import OptimizerConfig
from repro.opt.moves import (
    clone_driver,
    decompose_gate,
    downsize_cell,
    insert_buffer,
    remap_cell,
    shield_sinks,
    upsize_cell,
)
from repro.opt.optimizer import TimingOptimizer, optimize
from repro.opt.report import OptReport, diff_replaced_edges

__all__ = [
    "OptimizerConfig",
    "clone_driver",
    "decompose_gate",
    "downsize_cell",
    "insert_buffer",
    "remap_cell",
    "shield_sinks",
    "upsize_cell",
    "TimingOptimizer",
    "optimize",
    "OptReport",
    "diff_replaced_edges",
]
