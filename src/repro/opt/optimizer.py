"""The layout-gated timing optimizer (Innovus ``optDesign`` stand-in).

Runs repeated STA / repair passes over a placed netlist.  On every pass the
critical endpoints are traced back along their worst paths, and repair moves
are attempted on the path elements:

* gate sizing (structure-preserved) on undersized drivers,
* buffer insertion on long / heavily loaded net arcs,
* timing-driven decomposition of wide gates,
* cloning of high-fanout drivers,

followed by area recovery (downsizing) on very-positive-slack logic.  Every
move is *gated by the free space* around its work site — a move succeeds
with probability ``free_space ** space_gate_exponent`` and structural moves
additionally need a physical site from the incremental row grid.  This is
the mechanism that couples per-endpoint optimization gain to the layout
along the endpoint's critical region, the effect the paper's layout branch
(CNN + endpoint masking) is designed to learn.
"""

from __future__ import annotations

from typing import Optional, Set

import numpy as np

from repro.netlist import Netlist
from repro.obs import get_metrics, get_tracer
from repro.opt.config import OptimizerConfig
from repro.opt.moves import (
    clone_driver,
    decompose_gate,
    downsize_cell,
    insert_buffer,
    remap_cell,
    upsize_cell,
)
from repro.opt.report import OptReport, diff_replaced_edges
from scipy import ndimage

from repro.placement import Placement, RowGrid, compute_layout_maps
from repro.timing import PreRouteEstimator, STAResult, build_timing_graph, run_sta
from repro.utils import spawn_rng


class TimingOptimizer:
    """Optimizes *netlist* / *placement* in place (pass clones!)."""

    def __init__(self, netlist: Netlist, placement: Placement,
                 config: Optional[OptimizerConfig] = None) -> None:
        config = config or OptimizerConfig()
        self.netlist = netlist
        self.placement = placement
        self.config = config
        self.rng = spawn_rng(f"opt/{netlist.name}", config.seed)
        self.grid = RowGrid.from_placement(netlist, placement)
        self._original = netlist.clone()
        self._refresh_free_space()

    # ------------------------------------------------------------------
    def run(self, clock_period: float) -> OptReport:
        """Run all optimization passes; returns the move/replacement report."""
        report = OptReport(design=self.netlist.name)
        for pass_no in range(self.config.max_passes):
            with get_tracer().span("opt.pass", design=self.netlist.name,
                                   pass_no=pass_no) as sp:
                graph = build_timing_graph(self.netlist)
                sta = run_sta(graph,
                              PreRouteEstimator(self.netlist, self.placement),
                              clock_period)
                report.wns_trajectory.append(sta.wns)
                report.tns_trajectory.append(sta.tns)
                sp.set(wns=sta.wns, tns=sta.tns)
                changed = self._repair_pass(sta, report)
                changed |= self._rewrite_sweep(sta, report)
                self._refresh_free_space()
            if not changed:
                break
        # Area/power recovery runs once, after timing is repaired — as in
        # commercial flows, where recovery is a closing step.
        graph = build_timing_graph(self.netlist)
        sta = run_sta(graph, PreRouteEstimator(self.netlist, self.placement),
                      clock_period)
        self._recovery_pass(sta, report)
        graph = build_timing_graph(self.netlist)
        sta = run_sta(graph, PreRouteEstimator(self.netlist, self.placement),
                      clock_period)
        report.wns_trajectory.append(sta.wns)
        report.tns_trajectory.append(sta.tns)
        diff_replaced_edges(self._original, self.netlist, report)
        self.netlist.check()
        return report

    # ------------------------------------------------------------------
    # Layout gating
    # ------------------------------------------------------------------
    def _refresh_free_space(self) -> None:
        maps = compute_layout_maps(self.netlist, self.placement,
                                   m=self.config.gate_bins,
                                   n=self.config.gate_bins)
        # Smooth over a 3x3 neighbourhood: a move can claim sites in the
        # adjacent bins, so nearby space counts as usable space.
        self._free = ndimage.uniform_filter(maps.free_space(), size=3,
                                            mode="nearest")
        self._bin_w = maps.bin_w
        self._bin_h = maps.bin_h


    def _free_space_at(self, x: float, y: float) -> float:
        i = int(np.clip(x / self._bin_w, 0, self._free.shape[0] - 1))
        j = int(np.clip(y / self._bin_h, 0, self._free.shape[1] - 1))
        return float(self._free[i, j])

    def _gate(self, x: float, y: float) -> bool:
        """Layout gate: dense / macro-covered regions cannot be optimized.

        Capability is a *deterministic property of the location*: the
        (neighbourhood-smoothed) free space must clear the floor, and the
        occasional marginal site is rejected in proportion to how close to
        the floor it sits.  A region that cannot host optimization on pass
        1 therefore stays incapable on every pass — the persistent layout
        dependence the paper's CNN branch learns.
        """
        space = self._free_space_at(x, y)
        floor = self.config.min_free_space
        if space <= floor:
            ok = False
        elif space >= 2.5 * floor:
            ok = True
        else:
            # Marginal band: acceptance ramps from 0 at the floor to 1.
            ok = bool(self.rng.random() < (space - floor) / (1.5 * floor))
        get_metrics().counter(
            "opt.gate.accepted" if ok else "opt.gate.rejected").inc()
        return ok

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def _repair_pass(self, sta: STAResult, report: OptReport) -> bool:
        nl = self.netlist
        margin = self.config.critical_margin_frac * sta.clock_period
        critical = sorted(
            (pid for pid, s in sta.endpoint_slack.items() if s < margin),
            key=lambda pid: sta.endpoint_slack[pid])
        critical = critical[:self.config.endpoints_per_pass]
        touched: Set[int] = set()
        changed = False
        for ep in critical:
            path = sta.critical_path(ep)
            changed |= self._repair_path(sta, path, touched, report)
        return changed

    def _repair_path(self, sta: STAResult, path, touched: Set[int],
                     report: OptReport) -> bool:
        nl = self.netlist
        slack = sta.node_slack
        node_of = sta.graph.node_of
        changed = False
        for pin_id in path:
            pin = nl.pins.get(pin_id)
            if pin is None:
                continue  # pin was consumed by an earlier structural move
            cid = pin.cell
            ctype = nl.cell_type(cid) if cid in nl.cells else None

            # Output pins: driver-centric moves.
            if (ctype is not None and pin.direction == "out"
                    and not ctype.is_sequential and cid not in touched):
                x, y = self.placement.position(cid)
                if (ctype.drive < 8
                        and self._sizing_gain(sta, cid) > 1.0
                        and self._gate(x, y)):
                    # Most drive fixes come out of the rewrite engine in a
                    # commercial flow: the function is re-implemented as a
                    # fresh (larger) instance, replacing every arc.
                    if self.rng.random() < self.config.remap_fraction:
                        if remap_cell(nl, self.placement, self.grid, cid):
                            report.count("remap")
                            touched.add(cid)
                            changed = True
                            continue
                    if upsize_cell(nl, cid):
                        report.count("upsize")
                        touched.add(cid)
                        changed = True
                        continue
                if (ctype.drive >= 8
                        and nl.fanout_of(cid) >= self.config.clone_fanout):
                    if self._gate(x, y):
                        if clone_driver(nl, self.placement, self.grid, cid):
                            report.count("clone")
                            touched.add(cid)
                            changed = True
                            continue

            # Input pins: arc-centric moves.
            if (ctype is not None and pin.direction == "in"
                    and not ctype.is_sequential and cid not in touched
                    and ctype.n_inputs >= self.config.decompose_min_inputs):
                inst = nl.cells[cid]
                arrivals = sorted(
                    sta.arrival[node_of[ip]] for ip in inst.input_pins
                    if ip in node_of)
                # Decompose only when one input is clearly the latest: the
                # earlier inputs then absorb the extra tree stages for free
                # while the critical arc drops to a cheaper 2-input root.
                if (len(arrivals) == ctype.n_inputs
                        and arrivals[-1] - arrivals[-2] > 6.0):
                    x, y = self.placement.position(cid)
                    if self._gate(x, y):
                        order = sorted(
                            inst.input_pins,
                            key=lambda ip: sta.arrival[node_of[ip]])
                        if decompose_gate(nl, self.placement, self.grid,
                                          cid, input_order=order):
                            report.count("decompose")
                            touched.add(cid)
                            changed = True
                            continue

            # Arc into this pin (also for flip-flop D pins): net repair.
            if pin.direction == "in" and pin.net is not None:
                net = nl.nets[pin.net]
                drv_cid = nl.pins[net.driver].cell
                wire_delay = sta.net_edge_delay.get((net.driver, pin_id), 0.0)
                # Decouple clearly non-critical sinks from the critical
                # driver (gain: R_drive × moved capacitance on this arc;
                # cost: one buffer delay on arcs that can afford it).
                if drv_cid is not None and drv_cid not in touched:
                    here = slack[node_of[pin_id]] if pin_id in node_of else 0.0
                    movable = [
                        sp for sp in net.sinks
                        if sp != pin_id and sp in node_of
                        and slack[node_of[sp]] > here + 30.0]
                    if len(movable) >= 2:
                        x, y = self.placement.pin_position(nl, net.driver)
                        if self._gate(x, y):
                            if insert_buffer(nl, self.placement, self.grid,
                                             net.nid, movable,
                                             buffer_type="BUF_X2"):
                                report.count("shield")
                                touched.add(drv_cid)
                                changed = True
                                continue
                # Split genuinely long wires (Elmore grows quadratically).
                if wire_delay > self.config.buffer_wire_delay_ps:
                    x, y = self.placement.pin_position(nl, pin_id)
                    if self._gate(x, y):
                        if insert_buffer(nl, self.placement, self.grid,
                                         net.nid, [pin_id]):
                            report.count("buffer")
                            changed = True
        return changed

    def _rewrite_sweep(self, sta: STAResult, report: OptReport) -> bool:
        """Boolean-rewrite sweep over the critical subgraph.

        Commercial optimizers re-synthesize logic inside critical regions
        wholesale; most rewritten gates keep their function and drive but
        become fresh instances.  We model that as same-type remaps of a
        random, space-gated fraction of cells whose output node violates
        timing — this is what makes whole *sub-regions* unlabelable (Fig. 1
        of the paper), not just the single worst path.
        """
        nl = self.netlist
        slack = sta.node_slack
        node_of = sta.graph.node_of
        margin = self.config.critical_margin_frac * sta.clock_period
        changed = False
        for cid in sorted(nl.cells):
            inst = nl.cells[cid]
            ctype = nl.cell_type(cid)
            if ctype.is_sequential:
                continue
            node = node_of.get(inst.output_pin)
            if node is None or slack[node] >= margin:
                continue
            if self.rng.random() >= self.config.rewrite_rate:
                continue
            x, y = self.placement.position(cid)
            if not self._gate(x, y):
                continue
            if remap_cell(nl, self.placement, self.grid, cid,
                          target_type=ctype.name):
                report.count("rewrite")
                changed = True
        return changed

    def _sizing_gain(self, sta: STAResult, cid: int) -> float:
        """Estimated critical-arc benefit (ps) of one drive-strength step.

        Gain: the output arc speeds up by ``ΔR_drive × load``.  Penalty: the
        larger input pins load every upstream driver by ``ΔC_in`` through
        that driver's resistance plus the wire resistance — we charge the
        worst input arc, which is the one a critical path would use.  Real
        optimizers evaluate exactly this trade-off; without it, repeated
        sizing oscillates (upstream drivers drown in added load).
        """
        nl = self.netlist
        lib = nl.library
        inst = nl.cells[cid]
        ctype = nl.cell_type(cid)
        bigger = lib.upsize(ctype)
        if bigger is None:
            return 0.0
        node_out = sta.graph.node_of.get(inst.output_pin)
        if node_out is None:
            return 0.0
        gain = (ctype.drive_resistance
                - bigger.drive_resistance) * float(sta.load[node_out])
        d_cin = bigger.input_cap - ctype.input_cap
        penalty = 0.0
        for ip in inst.input_pins:
            net_id = nl.pins[ip].net
            if net_id is None:
                continue
            drv_pin = nl.pins[nl.nets[net_id].driver]
            if drv_pin.cell is not None:
                r_drv = lib.cell(nl.cells[drv_pin.cell].type_name).drive_resistance
            else:
                r_drv = 1.0  # pad driver
            dx, dy = self.placement.pin_position(nl, drv_pin.pid)
            sx, sy = self.placement.pin_position(nl, ip)
            r_wire = lib.wire.resistance(abs(dx - sx) + abs(dy - sy))
            penalty = max(penalty, d_cin * (r_drv + r_wire))
        return gain - penalty

    # ------------------------------------------------------------------
    # Area recovery
    # ------------------------------------------------------------------
    def _recovery_pass(self, sta: STAResult, report: OptReport) -> bool:
        """Downsize drivers feeding only very-positive-slack endpoints.

        Mirrors commercial area/power recovery: it is why even *unreplaced*
        elements far from critical paths see large sign-off delay changes
        (Table I's Δdelay on survivors).
        """
        nl = self.netlist
        threshold = self.config.recovery_slack_frac * sta.clock_period
        slack = sta.node_slack
        graph = sta.graph
        changed = False
        # Cells whose *output node* has comfortable slack cannot hurt any
        # near-critical endpoint when slowed down a little.
        for cid in sorted(nl.cells):
            inst = nl.cells[cid]
            ctype = nl.cell_type(cid)
            if ctype.is_sequential or ctype.drive <= 1:
                continue
            node = graph.node_of.get(inst.output_pin)
            if node is None or slack[node] < threshold:
                continue
            if self.rng.random() < self.config.recovery_fraction:
                if downsize_cell(nl, cid):
                    report.count("downsize")
                    changed = True
        return changed


def optimize(netlist: Netlist, placement: Placement, clock_period: float,
             config: Optional[OptimizerConfig] = None) -> OptReport:
    """Convenience wrapper: optimize *netlist*/*placement* in place."""
    opt = TimingOptimizer(netlist, placement, config or OptimizerConfig())
    return opt.run(clock_period)
