"""Primitive optimization moves on a placed netlist.

Two structure-preserved moves (up/downsizing) and three structure-destructed
moves (buffer insertion, fan-in decomposition, driver cloning) — the
technique classes of Section II-A of the paper.  Every structural move
places its new cells on real free sites near the work site via the
incremental :class:`~repro.placement.legalize.RowGrid`, which is how layout
availability physically limits what the optimizer can do.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.netlist import Netlist
from repro.placement import (
    Placement,
    RowGrid,
    find_site_near,
    reclaim_sites,
    release_cell_sites,
)
from repro.utils import require

#: Internal-node gate kind used when a wide gate is decomposed into a
#: two-input tree, per root kind.  (Logic equivalence is approximated — the
#: flow never simulates Boolean values, only timing.)
DECOMPOSE_TREE_KIND = {
    "NAND3": ("AND2", "NAND2"),
    "NAND4": ("AND2", "NAND2"),
    "NOR3": ("OR2", "NOR2"),
    "AND3": ("AND2", "AND2"),
    "AND4": ("AND2", "AND2"),
    "OR3": ("OR2", "OR2"),
    "OR4": ("OR2", "OR2"),
    "AOI21": ("AND2", "NOR2"),
    "OAI21": ("OR2", "NAND2"),
    "MUX2": ("AND2", "OR2"),
}


def upsize_cell(netlist: Netlist, cid: int) -> bool:
    """Swap a cell for the next larger drive.  Returns False at max size."""
    bigger = netlist.library.upsize(netlist.cell_type(cid))
    if bigger is None:
        return False
    netlist.change_cell_type(cid, bigger.name)
    return True


def downsize_cell(netlist: Netlist, cid: int) -> bool:
    """Swap a cell for the next smaller drive.  Returns False at min size."""
    smaller = netlist.library.downsize(netlist.cell_type(cid))
    if smaller is None:
        return False
    netlist.change_cell_type(cid, smaller.name)
    return True


def insert_buffer(netlist: Netlist, placement: Placement, grid: RowGrid,
                  nid: int, sink_pins: List[int],
                  buffer_type: str = "BUF_X4") -> Optional[int]:
    """Drive *sink_pins* of net *nid* through a new buffer.

    The buffer is placed near the centroid of the moved sinks.  Returns the
    new cell id, or ``None`` when no free site exists near the target
    (the layout gate).
    """
    net = netlist.nets[nid]
    require(all(sp in net.sinks for sp in sink_pins),
            "sinks to buffer must belong to the net")
    require(len(sink_pins) >= 1, "need at least one sink to buffer")
    pts = placement.pin_positions(netlist, sink_pins)
    dx, dy = placement.pin_position(netlist, net.driver)
    # Midpoint between driver and sink centroid: classic buffer location.
    tx = 0.5 * (dx + pts[:, 0].mean())
    ty = 0.5 * (dy + pts[:, 1].mean())

    buf = netlist.add_cell(buffer_type)
    if not find_site_near(netlist, placement, grid, buf.cid, tx, ty,
                          max_disp=20.0):
        _remove_unwired_cell(netlist, buf.cid)
        return None
    for sp in sink_pins:
        netlist.disconnect(sp)
    netlist.connect(nid, buf.input_pins[0])
    new_net = netlist.create_net(buf.output_pin)
    for sp in sink_pins:
        netlist.connect(new_net.nid, sp)
    return buf.cid


def decompose_gate(netlist: Netlist, placement: Placement, grid: RowGrid,
                   cid: int,
                   input_order: Optional[List[int]] = None) -> Optional[List[int]]:
    """Replace a ≥3-input gate with a chain/tree of 2-input gates.

    ``input_order`` lists the cell's input pins from *earliest arriving* to
    *latest arriving*: early inputs are wired deepest in the new tree so the
    late (critical) input passes through a single stage — the standard
    timing-driven decomposition.  Returns the new cell ids, or ``None`` when
    there is no room (layout gate) or the kind is not decomposable.
    """
    inst = netlist.cells[cid]
    ctype = netlist.cell_type(cid)
    if ctype.kind.name not in DECOMPOSE_TREE_KIND or ctype.n_inputs < 3:
        return None
    inner_kind, root_kind = DECOMPOSE_TREE_KIND[ctype.kind.name]
    drive = ctype.drive
    x, y = placement.position(cid)
    span = release_cell_sites(netlist, placement, grid, cid)

    order = list(input_order) if input_order else list(inst.input_pins)
    require(sorted(order) == sorted(inst.input_pins),
            "input_order must be a permutation of the cell's input pins")
    input_nets = [netlist.pins[ip].net for ip in order]
    out_net = netlist.pins[inst.output_pin].net

    # Build the replacement chain first (so failure leaves the netlist
    # untouched): chain = inner(in0, in1); inner(chain, in2); ...;
    # root(chain, in_last).
    n_new = ctype.n_inputs - 1
    new_cells: List[int] = []
    for k in range(n_new):
        kind = root_kind if k == n_new - 1 else inner_kind
        cell = netlist.add_cell(f"{kind}_X{drive}")
        if not find_site_near(netlist, placement, grid, cell.cid, x, y,
                              max_disp=8.0):
            _remove_unwired_cell(netlist, cell.cid)
            for made in new_cells:
                _unwire_and_remove(netlist, made)
                del placement.cell_xy[made]
            reclaim_sites(grid, span)
            return None
        new_cells.append(cell.cid)

    # Detach the old gate.
    for ip in inst.input_pins:
        netlist.disconnect(ip)
    sinks = list(netlist.nets[out_net].sinks) if out_net is not None else []
    if out_net is not None:
        netlist.remove_net(out_net)
    netlist.remove_cell(cid)
    del placement.cell_xy[cid]

    # Wire the tree.
    prev_out: Optional[int] = None
    for k, new_cid in enumerate(new_cells):
        cell = netlist.cells[new_cid]
        a, b = cell.input_pins[0], cell.input_pins[1]
        if k == 0:
            netlist.connect(input_nets[0], a)
            netlist.connect(input_nets[1], b)
        else:
            netlist.connect(prev_out, a)
            netlist.connect(input_nets[k + 1], b)
        prev_out = netlist.create_net(cell.output_pin).nid
    for sp in sinks:
        netlist.connect(prev_out, sp)
    return new_cells


def shield_sinks(netlist: Netlist, placement: Placement, grid: RowGrid,
                 nid: int, keep_pin: int,
                 buffer_type: str = "BUF_X2") -> Optional[int]:
    """Move every sink of net *nid* except *keep_pin* behind a buffer.

    This is load decoupling: the driver afterwards sees only the critical
    sink plus one buffer input, so the critical arc's delay drops by
    ``R_drive × ΔC`` at zero cost on the critical path itself.  Returns the
    buffer cell id, or ``None`` when there is no room or nothing to shield.
    """
    net = netlist.nets[nid]
    others = [sp for sp in net.sinks if sp != keep_pin]
    if len(others) < 2:
        return None
    return insert_buffer(netlist, placement, grid, nid, others,
                         buffer_type=buffer_type)


def remap_cell(netlist: Netlist, placement: Placement, grid: RowGrid,
               cid: int, target_type: Optional[str] = None) -> Optional[int]:
    """Re-implement a gate as a *fresh instance* (Boolean rewrite stand-in).

    Commercial optimizers frequently rewrite logic in place: the function is
    preserved but the instance — and with it every pin — is new, so all of
    the original cell's timing arcs become unlabeled ("replaced" in the
    paper's Table I sense).  By default the replacement is the next drive
    strength up.  Returns the new cell id, or ``None`` when the layout has
    no room.
    """
    inst = netlist.cells[cid]
    ctype = netlist.cell_type(cid)
    if ctype.is_sequential:
        return None
    if target_type is None:
        bigger = netlist.library.upsize(ctype)
        target_type = (bigger or ctype).name
    new_ctype = netlist.library.cell(target_type)
    require(new_ctype.n_inputs == ctype.n_inputs,
            "remap target must preserve input count")
    x, y = placement.position(cid)

    # Free the old instance's sites so the rewrite can stay in place;
    # reclaim them if no site is found (only possible when the new cell is
    # wider and the neighbourhood is packed).
    span = release_cell_sites(netlist, placement, grid, cid)
    new = netlist.add_cell(target_type)
    if not find_site_near(netlist, placement, grid, new.cid, x, y,
                          max_disp=6.0):
        _remove_unwired_cell(netlist, new.cid)
        reclaim_sites(grid, span)
        return None
    input_nets = [netlist.pins[ip].net for ip in inst.input_pins]
    out_net = netlist.pins[inst.output_pin].net
    sinks = list(netlist.nets[out_net].sinks) if out_net is not None else []

    for ip in inst.input_pins:
        netlist.disconnect(ip)
    if out_net is not None:
        netlist.remove_net(out_net)
    netlist.remove_cell(cid)
    del placement.cell_xy[cid]

    for net_id, ip_new in zip(input_nets, new.input_pins):
        netlist.connect(net_id, ip_new)
    new_net = netlist.create_net(new.output_pin)
    for sp in sinks:
        netlist.connect(new_net.nid, sp)
    return new.cid


def clone_driver(netlist: Netlist, placement: Placement, grid: RowGrid,
                 cid: int) -> Optional[int]:
    """Duplicate a combinational driver and split its sinks by proximity.

    The clone receives the geometrically farther half of the sinks and is
    placed at their centroid.  Returns the clone's cell id, or ``None`` when
    the cell is sequential, has trivial fanout, or no free site exists.
    """
    inst = netlist.cells[cid]
    ctype = netlist.cell_type(cid)
    if ctype.is_sequential:
        return None
    out_net_id = netlist.pins[inst.output_pin].net
    if out_net_id is None:
        return None
    sinks = list(netlist.nets[out_net_id].sinks)
    if len(sinks) < 4:
        return None

    x, y = placement.position(cid)
    pts = placement.pin_positions(netlist, sinks)
    dist = np.abs(pts[:, 0] - x) + np.abs(pts[:, 1] - y)
    far = np.argsort(dist)[len(sinks) // 2:]
    moved = [sinks[i] for i in far]
    cx, cy = pts[far, 0].mean(), pts[far, 1].mean()

    clone = netlist.add_cell(inst.type_name)
    if not find_site_near(netlist, placement, grid, clone.cid, cx, cy,
                          max_disp=20.0):
        _remove_unwired_cell(netlist, clone.cid)
        return None
    # Clone shares all input nets of the original.
    for ip_orig, ip_clone in zip(inst.input_pins, clone.input_pins):
        netlist.connect(netlist.pins[ip_orig].net, ip_clone)
    new_net = netlist.create_net(clone.output_pin)
    for sp in moved:
        netlist.disconnect(sp)
        netlist.connect(new_net.nid, sp)
    return clone.cid


def _remove_unwired_cell(netlist: Netlist, cid: int) -> None:
    """Remove a freshly created, never-connected cell."""
    netlist.remove_cell(cid)


def _unwire_and_remove(netlist: Netlist, cid: int) -> None:
    """Disconnect all pins of a cell, drop its output net, remove it."""
    inst = netlist.cells[cid]
    for ip in inst.input_pins:
        if netlist.pins[ip].net is not None:
            netlist.disconnect(ip)
    out_net = netlist.pins[inst.output_pin].net
    if out_net is not None:
        netlist.remove_net(out_net)
    netlist.remove_cell(cid)


def midpoint(a: Tuple[float, float], b: Tuple[float, float]) -> Tuple[float, float]:
    return (0.5 * (a[0] + b[0]), 0.5 * (a[1] + b[1]))
