"""Optimization reporting: replaced-edge accounting for Table I.

Pin ids are never reused by :class:`~repro.netlist.Netlist`, so an input
net/cell edge (a pin-id pair) *survives* optimization iff the identical pair
is still an edge of the optimized netlist.  Everything else was replaced —
exactly the paper's "#replaced" notion (edges whose sign-off delay cannot be
labeled from the input netlist).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from repro.netlist import Netlist
from repro.obs import get_metrics

Edge = Tuple[int, int]


@dataclass
class OptReport:
    """What one optimizer run did to a design."""

    design: str
    moves: Dict[str, int] = field(default_factory=dict)
    wns_trajectory: List[float] = field(default_factory=list)
    tns_trajectory: List[float] = field(default_factory=list)
    replaced_net_edges: FrozenSet[Edge] = frozenset()
    replaced_cell_edges: FrozenSet[Edge] = frozenset()
    n_input_net_edges: int = 0
    n_input_cell_edges: int = 0

    def count(self, move: str, n: int = 1) -> None:
        self.moves[move] = self.moves.get(move, 0) + n
        metrics = get_metrics()
        metrics.counter(f"opt.moves.{move}").inc(n)
        metrics.counter("opt.moves.accepted").inc(n)

    @property
    def net_replaced_ratio(self) -> float:
        """Fraction of input net edges replaced (Table I "#replaced")."""
        if self.n_input_net_edges == 0:
            return 0.0
        return len(self.replaced_net_edges) / self.n_input_net_edges

    @property
    def cell_replaced_ratio(self) -> float:
        """Fraction of input cell edges replaced (Table I "#replaced")."""
        if self.n_input_cell_edges == 0:
            return 0.0
        return len(self.replaced_cell_edges) / self.n_input_cell_edges


def diff_replaced_edges(original: Netlist, optimized: Netlist,
                        report: OptReport) -> None:
    """Fill the replaced-edge sets of *report* by structural diff."""
    orig_net = set(original.net_edges())
    orig_cell = set(original.cell_edges())
    opt_net = set(optimized.net_edges())
    opt_cell = set(optimized.cell_edges())
    report.replaced_net_edges = frozenset(orig_net - opt_net)
    report.replaced_cell_edges = frozenset(orig_cell - opt_cell)
    report.n_input_net_edges = len(orig_net)
    report.n_input_cell_edges = len(orig_cell)
