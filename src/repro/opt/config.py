"""Configuration of the layout-gated timing optimizer."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OptimizerConfig:
    """Knobs of :class:`repro.opt.optimizer.TimingOptimizer`.

    The defaults are tuned so that, across the ten benchmark designs, the
    optimizer replaces roughly 30–50 % of net edges and 10–35 % of cell
    edges — the regime the paper reports in Table I — while its per-endpoint
    efficacy stays strongly coupled to the free space along each endpoint's
    critical region (the signal the paper's CNN+masking branch captures).
    """

    max_passes: int = 6
    #: Upper bound on critical endpoints worked on per pass.
    endpoints_per_pass: int = 800
    #: Endpoints within this fraction of the clock period of violating are
    #: also repaired (commercial tools fix to a margin, not to zero).
    critical_margin_frac: float = 0.05
    #: Wire delay (ps) on a critical edge above which buffering is tried.
    buffer_wire_delay_ps: float = 18.0
    #: Fanout above which a critical driver is cloned.
    clone_fanout: int = 5
    #: Minimum inputs for timing-driven decomposition.
    decompose_min_inputs: int = 3
    #: Fraction of drive-strength fixes performed as a full gate rewrite
    #: (fresh instance — "replaced" arcs) rather than an in-place resize.
    remap_fraction: float = 0.65
    #: Per-pass probability that a cell inside the critical subgraph (the
    #: paper's "restructured sub-regions") is re-implemented by the Boolean
    #: rewrite engine even without a drive change.  Timing-neutral but it
    #: replaces every arc of the cell, which is the dominant source of the
    #: paper's ~40 % replaced nets.
    rewrite_rate: float = 0.25
    #: Exponent applied to local free space when gating a move: lower means
    #: the optimizer is less sensitive to congestion.
    space_gate_exponent: float = 1.2
    #: Free-space level below which structural moves are impossible.
    min_free_space: float = 0.10
    #: Endpoint slack above this fraction of the clock period enables area
    #: recovery (downsizing) on its path.
    recovery_slack_frac: float = 0.15
    #: Fraction of very-positive-slack cells downsized per pass.
    recovery_fraction: float = 0.06
    #: Bins of the free-space map used for gating.
    gate_bins: int = 32
    seed: int = 0
