"""Gate-level netlist structures, synthetic generation and Verilog I/O."""

from repro.netlist.netlist import IN, OUT, CellInst, Net, Netlist, Pin, Port
from repro.netlist.generator import (
    DESIGN_PRESETS,
    PAPER_DESIGNS,
    TEST_DESIGNS,
    TRAIN_DESIGNS,
    DesignSpec,
    MacroSpec,
    generate_netlist,
    generate_preset,
)
from repro.netlist.stats import NetlistStats, compute_stats
from repro.netlist.verilog import parse_verilog, write_verilog

__all__ = [
    "IN",
    "OUT",
    "CellInst",
    "Net",
    "Netlist",
    "Pin",
    "Port",
    "DESIGN_PRESETS",
    "PAPER_DESIGNS",
    "TEST_DESIGNS",
    "TRAIN_DESIGNS",
    "DesignSpec",
    "MacroSpec",
    "generate_netlist",
    "generate_preset",
    "NetlistStats",
    "compute_stats",
    "parse_verilog",
    "write_verilog",
]
