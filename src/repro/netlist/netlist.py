"""Gate-level netlist data structures.

The netlist is the mutable object the whole flow operates on: the generator
builds it, the placer assigns coordinates to its cells, the timing optimizer
*restructures* it (sizing, buffering, decomposition, cloning), and the STA
engine builds its pin-level timing graph from it.

Modelling choices (documented substitutions in DESIGN.md):

* Every cell has one output pin; multi-output cells are not modelled (the
  paper's pin-graph construction also assumes input→output cell arcs).
* Flip-flops are modelled with a ``D`` input pin and a ``Q`` output pin; the
  clock network is ideal (no explicit CLK pins), as is standard for
  pre-routing timing studies.
* Macros are placement-only objects (see :mod:`repro.placement.die`), not
  netlist cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.liberty import CellLibrary, CellType
from repro.utils import require

#: Pin direction constants.  ``OUT`` pins drive nets (cell outputs and
#: primary-input ports); ``IN`` pins sink nets (cell inputs and
#: primary-output ports).
IN = "in"
OUT = "out"


@dataclass
class Pin:
    """A cell pin or port pin; pins are the nodes of the timing graph."""

    pid: int
    name: str
    direction: str
    cell: Optional[int] = None   # owning cell id, None for port pins
    net: Optional[int] = None    # connected net id


@dataclass
class CellInst:
    """An instance of a library cell."""

    cid: int
    name: str
    type_name: str
    input_pins: List[int] = field(default_factory=list)
    output_pin: int = -1


@dataclass
class Port:
    """A primary input or output of the design."""

    name: str
    direction: str  # IN = primary input, OUT = primary output
    pin: int


@dataclass
class Net:
    """A signal net: one driver pin, one or more sink pins."""

    nid: int
    name: str
    driver: int
    sinks: List[int] = field(default_factory=list)


class Netlist:
    """A mutable gate-level netlist bound to a :class:`CellLibrary`."""

    def __init__(self, name: str, library: Optional[CellLibrary] = None) -> None:
        self.name = name
        self.library = library or CellLibrary.default()
        self.pins: Dict[int, Pin] = {}
        self.cells: Dict[int, CellInst] = {}
        self.nets: Dict[int, Net] = {}
        self.ports: Dict[str, Port] = {}
        self._next_pin = 0
        self._next_cell = 0
        self._next_net = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _new_pin(self, name: str, direction: str,
                 cell: Optional[int] = None) -> Pin:
        pin = Pin(self._next_pin, name, direction, cell=cell)
        self.pins[pin.pid] = pin
        self._next_pin += 1
        return pin

    def add_port(self, name: str, direction: str) -> Port:
        """Add a primary input (``IN``) or primary output (``OUT``) port."""
        require(name not in self.ports, f"duplicate port {name!r}")
        # A primary *input* drives internal logic, so its pin direction is
        # OUT (it is a net driver); a primary output's pin is a net sink.
        pin_dir = OUT if direction == IN else IN
        pin = self._new_pin(name, pin_dir, cell=None)
        port = Port(name, direction, pin.pid)
        self.ports[name] = port
        return port

    def add_cell(self, type_name: str, name: Optional[str] = None) -> CellInst:
        """Instantiate a library cell; creates its pins, leaves them unwired."""
        ctype = self.library.cell(type_name)
        cid = self._next_cell
        self._next_cell += 1
        cname = name if name is not None else f"u{cid}"
        inst = CellInst(cid, cname, type_name)
        for i in range(ctype.n_inputs):
            pin = self._new_pin(f"{cname}/{_input_pin_name(ctype, i)}", IN, cid)
            inst.input_pins.append(pin.pid)
        out = self._new_pin(f"{cname}/{_output_pin_name(ctype)}", OUT, cid)
        inst.output_pin = out.pid
        self.cells[cid] = inst
        return inst

    def create_net(self, driver_pin: int, name: Optional[str] = None) -> Net:
        """Create a net driven by *driver_pin* (must be an OUT pin)."""
        pin = self.pins[driver_pin]
        require(pin.direction == OUT, f"net driver must be an OUT pin: {pin}")
        require(pin.net is None, f"pin {pin.name} already drives net {pin.net}")
        nid = self._next_net
        self._next_net += 1
        net = Net(nid, name if name is not None else f"n{nid}", driver_pin)
        self.nets[nid] = net
        pin.net = nid
        return net

    def connect(self, nid: int, sink_pin: int) -> None:
        """Attach an IN pin as a sink of net *nid*."""
        pin = self.pins[sink_pin]
        require(pin.direction == IN, f"net sink must be an IN pin: {pin}")
        require(pin.net is None, f"pin {pin.name} already on net {pin.net}")
        self.nets[nid].sinks.append(sink_pin)
        pin.net = nid

    def disconnect(self, sink_pin: int) -> None:
        """Detach a sink pin from its net."""
        pin = self.pins[sink_pin]
        require(pin.net is not None, f"pin {pin.name} is not connected")
        net = self.nets[pin.net]
        net.sinks.remove(sink_pin)
        pin.net = None

    def remove_net(self, nid: int) -> None:
        """Delete a net; all its pins become unconnected."""
        net = self.nets.pop(nid)
        self.pins[net.driver].net = None
        for sp in net.sinks:
            self.pins[sp].net = None

    def remove_cell(self, cid: int) -> None:
        """Delete a cell.  Its pins must already be disconnected."""
        inst = self.cells[cid]
        for pid in inst.input_pins + [inst.output_pin]:
            require(self.pins[pid].net is None,
                    f"cannot remove cell {inst.name}: pin {pid} still wired")
            del self.pins[pid]
        del self.cells[cid]

    def change_cell_type(self, cid: int, new_type_name: str) -> None:
        """Swap a cell's library type in place (gate sizing).

        The new type must have the same number of inputs, so the existing
        pins and connectivity are preserved — this is the structure-preserved
        optimization of Section II-A.
        """
        inst = self.cells[cid]
        old = self.library.cell(inst.type_name)
        new = self.library.cell(new_type_name)
        require(old.n_inputs == new.n_inputs,
                f"resize must preserve pin count ({old.name} -> {new.name})")
        require(old.is_sequential == new.is_sequential,
                "resize must preserve sequential-ness")
        inst.type_name = new_type_name

    def clone(self) -> "Netlist":
        """Deep copy preserving all ids (pin ids never get reused, so edge
        identity between the original and an optimized clone can be decided
        by comparing (pin, pin) keys — see :mod:`repro.opt.report`)."""
        other = Netlist(self.name, self.library)
        other.pins = {pid: Pin(p.pid, p.name, p.direction, p.cell, p.net)
                      for pid, p in self.pins.items()}
        other.cells = {cid: CellInst(c.cid, c.name, c.type_name,
                                     list(c.input_pins), c.output_pin)
                       for cid, c in self.cells.items()}
        other.nets = {nid: Net(n.nid, n.name, n.driver, list(n.sinks))
                      for nid, n in self.nets.items()}
        other.ports = {nm: Port(p.name, p.direction, p.pin)
                       for nm, p in self.ports.items()}
        other._next_pin = self._next_pin
        other._next_cell = self._next_cell
        other._next_net = self._next_net
        return other

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def cell_type(self, cid: int) -> CellType:
        return self.library.cell(self.cells[cid].type_name)

    def primary_inputs(self) -> List[Port]:
        return [p for p in self.ports.values() if p.direction == IN]

    def primary_outputs(self) -> List[Port]:
        return [p for p in self.ports.values() if p.direction == OUT]

    def sequential_cells(self) -> List[CellInst]:
        return [c for c in self.cells.values()
                if self.library.cell(c.type_name).is_sequential]

    def combinational_cells(self) -> List[CellInst]:
        return [c for c in self.cells.values()
                if not self.library.cell(c.type_name).is_sequential]

    def endpoint_pins(self) -> List[int]:
        """Timing endpoints: D pins of flip-flops and primary-output pins.

        Endpoints are never replaced by the optimizer — the anchor fact the
        paper's endpoint-wise formulation rests on.
        """
        eps = [c.input_pins[0] for c in self.sequential_cells()]
        eps.extend(p.pin for p in self.primary_outputs())
        return sorted(eps)

    def startpoint_pins(self) -> List[int]:
        """Timing startpoints: Q pins of flip-flops and primary-input pins."""
        sps = [c.output_pin for c in self.sequential_cells()]
        sps.extend(p.pin for p in self.primary_inputs())
        return sorted(sps)

    def net_edges(self) -> Iterator[Tuple[int, int]]:
        """All (driver pin, sink pin) pairs — the paper's net edges."""
        for net in self.nets.values():
            for sp in net.sinks:
                yield (net.driver, sp)

    def cell_edges(self) -> Iterator[Tuple[int, int]]:
        """All combinational (input pin, output pin) pairs — cell edges.

        Sequential cells contribute no cell edges (their D→Q arc is cut to
        keep the timing graph acyclic, as in the paper's Section IV-A).
        """
        for inst in self.cells.values():
            if self.library.cell(inst.type_name).is_sequential:
                continue
            for ip in inst.input_pins:
                yield (ip, inst.output_pin)

    def fanout_of(self, cid: int) -> int:
        """Number of sink pins driven by a cell's output net."""
        net_id = self.pins[self.cells[cid].output_pin].net
        return 0 if net_id is None else len(self.nets[net_id].sinks)

    def total_cell_area(self) -> float:
        return sum(self.cell_type(cid).area for cid in self.cells)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Verify structural invariants; raises ``ValueError`` on violation."""
        for net in self.nets.values():
            drv = self.pins[net.driver]
            require(drv.direction == OUT, f"net {net.name} driven by IN pin")
            require(drv.net == net.nid, f"net {net.name} driver back-ref broken")
            for sp in net.sinks:
                sink = self.pins[sp]
                require(sink.direction == IN, f"net {net.name} sinks OUT pin")
                require(sink.net == net.nid,
                        f"net {net.name} sink back-ref broken")
        for inst in self.cells.values():
            ctype = self.library.cell(inst.type_name)
            require(len(inst.input_pins) == ctype.n_inputs,
                    f"cell {inst.name} pin count mismatch")
            for pid in inst.input_pins + [inst.output_pin]:
                require(self.pins[pid].cell == inst.cid,
                        f"cell {inst.name} pin ownership broken")

    def __repr__(self) -> str:
        return (f"Netlist({self.name!r}: {len(self.cells)} cells, "
                f"{len(self.nets)} nets, {len(self.pins)} pins)")


def _input_pin_name(ctype: CellType, index: int) -> str:
    if ctype.is_sequential:
        return "D"
    return chr(ord("A") + index)


def _output_pin_name(ctype: CellType) -> str:
    return "Q" if ctype.is_sequential else "Y"
