"""Netlist statistics — the "Input information" columns of Table I."""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.netlist import Netlist


@dataclass(frozen=True)
class NetlistStats:
    """Structural counts matching the left half of the paper's Table I."""

    name: str
    n_pins: int
    n_endpoints: int       # "#edp"
    n_net_edges: int       # "#e_n": (driver, sink) pairs
    n_cell_edges: int      # "#e_c": combinational (input, output) pairs
    n_cells: int
    n_nets: int
    n_regs: int
    n_ports: int
    max_fanout: int
    total_area: float

    def row(self) -> str:
        """One formatted Table-I-style row."""
        return (f"{self.name:<10} {self.n_pins:>8} {self.n_endpoints:>7} "
                f"{self.n_net_edges:>8} {self.n_cell_edges:>8}")


def compute_stats(netlist: Netlist) -> NetlistStats:
    """Compute structural statistics of a netlist."""
    n_net_edges = sum(len(net.sinks) for net in netlist.nets.values())
    n_cell_edges = sum(1 for _ in netlist.cell_edges())
    max_fanout = max((len(net.sinks) for net in netlist.nets.values()),
                     default=0)
    return NetlistStats(
        name=netlist.name,
        n_pins=len(netlist.pins),
        n_endpoints=len(netlist.endpoint_pins()),
        n_net_edges=n_net_edges,
        n_cell_edges=n_cell_edges,
        n_cells=len(netlist.cells),
        n_nets=len(netlist.nets),
        n_regs=len(netlist.sequential_cells()),
        n_ports=len(netlist.ports),
        max_fanout=max_fanout,
        total_area=netlist.total_cell_area(),
    )
