"""Seeded synthetic gate-level netlist generation.

Stands in for the paper's "Chipyard + GitHub RTL synthesized with Cadence
Genus" design source (see DESIGN.md).  Each of the paper's ten benchmarks has
a preset here with a scaled-down size and a characteristic *shape*:

* ``depth_bias`` controls how deep combinational cones grow (the paper
  reports fan-in cone depths from 2 to 400+; ours span roughly 4–80);
* the gate mix controls how much structure-destructed optimization the
  design attracts (e.g. ``chacha`` is XOR/wide-gate heavy, which is why the
  paper observes it being restructured the most aggressively).

Generation is fully deterministic given the design name and base seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.netlist.netlist import IN, OUT, Netlist
from repro.utils import require, spawn_rng

#: Gate-kind sampling weights.  ``default`` approximates a mapped control /
#: datapath mix; ``xor_heavy`` mimics cryptographic cores (chacha, sha3);
#: ``wide`` mimics decoder-rich CPU logic.
GATE_MIXES: Dict[str, Dict[str, float]] = {
    "default": {
        "INV": 0.16, "BUF": 0.04, "NAND2": 0.18, "NOR2": 0.12, "AND2": 0.10,
        "OR2": 0.08, "XOR2": 0.05, "XNOR2": 0.03, "NAND3": 0.06, "NOR3": 0.04,
        "AND3": 0.03, "OR3": 0.02, "AOI21": 0.04, "OAI21": 0.03, "MUX2": 0.05,
        "NAND4": 0.03, "AND4": 0.02, "OR4": 0.02,
    },
    "xor_heavy": {
        "INV": 0.08, "BUF": 0.02, "NAND2": 0.08, "NOR2": 0.06, "AND2": 0.07,
        "OR2": 0.06, "XOR2": 0.24, "XNOR2": 0.10, "NAND3": 0.04, "NOR3": 0.03,
        "AND3": 0.04, "OR3": 0.03, "AOI21": 0.03, "OAI21": 0.02, "MUX2": 0.06,
        "NAND4": 0.04, "AND4": 0.05, "OR4": 0.05,
    },
    "wide": {
        "INV": 0.10, "BUF": 0.03, "NAND2": 0.12, "NOR2": 0.08, "AND2": 0.08,
        "OR2": 0.06, "XOR2": 0.04, "XNOR2": 0.02, "NAND3": 0.09, "NOR3": 0.06,
        "AND3": 0.06, "OR3": 0.04, "AOI21": 0.05, "OAI21": 0.04, "MUX2": 0.06,
        "NAND4": 0.06, "AND4": 0.05, "OR4": 0.06,
    },
}

#: Drive-strength sampling weights for generated gates (synthesis output is
#: dominated by small drives; the optimizer upsizes later).
DRIVE_WEIGHTS: Dict[int, float] = {1: 0.55, 2: 0.30, 4: 0.12, 8: 0.03}


@dataclass(frozen=True)
class MacroSpec:
    """A hard macro (e.g. an SRAM block): fractions of the die it occupies."""

    width_frac: float
    height_frac: float


@dataclass(frozen=True)
class DesignSpec:
    """Parameters of one synthetic benchmark design."""

    name: str
    n_gates: int
    n_regs: int
    n_pi: int
    n_po: int
    gate_mix: str = "default"
    max_depth: int = 48          # deepest combinational level (paper: 2..400+)
    prev_level_bias: float = 0.6  # probability an input taps the level just above
    #: RTL-style modularity: gates belong to modules and draw inputs mostly
    #: from their own module, so placement clusters each module into its own
    #: die region and endpoint fan-in cones stay spatially localized (the
    #: property that makes the paper's critical-region masking meaningful).
    n_modules: int = 8
    intra_module_prob: float = 0.85
    clock_frac: float = 0.72     # clock period as a fraction of pre-opt max arrival
    utilization: float = 0.55    # placement target utilization
    macros: Tuple[MacroSpec, ...] = ()
    split: str = "train"         # which half of the paper's dataset it is in

    def scaled(self, scale: float) -> "DesignSpec":
        """A proportionally smaller copy (used by fast tests)."""
        require(scale > 0, "scale must be positive")
        return DesignSpec(
            name=self.name,
            n_gates=max(30, int(self.n_gates * scale)),
            n_regs=max(4, int(self.n_regs * scale)),
            n_pi=max(4, int(self.n_pi * scale)),
            n_po=max(4, int(self.n_po * scale)),
            gate_mix=self.gate_mix,
            max_depth=max(6, int(self.max_depth * min(1.0, scale * 2))),
            prev_level_bias=self.prev_level_bias,
            n_modules=max(2, min(self.n_modules, int(self.n_gates * scale) // 60)),
            intra_module_prob=self.intra_module_prob,
            clock_frac=self.clock_frac,
            utilization=self.utilization,
            macros=self.macros,
            split=self.split,
        )


#: The ten benchmarks of the paper's Table I, scaled to CPU-trainable sizes,
#: plus scale-tier presets (``split="bench"``) that exercise the partitioned
#: execution path and are excluded from the paper's train/test protocol.
#: Train/test split matches the paper (5 train / 5 test).
DESIGN_PRESETS: Dict[str, DesignSpec] = {
    "jpeg": DesignSpec("jpeg", 6500, 450, 64, 64, "default", 64,
                       macros=(MacroSpec(0.22, 0.30), MacroSpec(0.18, 0.22)),
                       split="train"),
    "rocket": DesignSpec("rocket", 5000, 550, 48, 48, "wide", 56,
                         macros=(MacroSpec(0.25, 0.25),), split="train"),
    "smallboom": DesignSpec("smallboom", 5000, 650, 48, 48, "wide", 56,
                            macros=(MacroSpec(0.20, 0.28),), split="train"),
    "steelcore": DesignSpec("steelcore", 1000, 90, 32, 32, "default", 36,
                            macros=(MacroSpec(0.22, 0.22),), split="train"),
    "xgate": DesignSpec("xgate", 800, 64, 24, 24, "default", 28,
                        macros=(MacroSpec(0.20, 0.20),), split="train"),
    "arm9": DesignSpec("arm9", 1600, 130, 32, 32, "wide", 44,
                       macros=(MacroSpec(0.24, 0.20),), split="test"),
    "chacha": DesignSpec("chacha", 1300, 110, 64, 64, "xor_heavy", 52,
                         macros=(MacroSpec(0.20, 0.24),), split="test"),
    "hwacha": DesignSpec("hwacha", 7500, 620, 64, 64, "wide", 64,
                         macros=(MacroSpec(0.24, 0.26), MacroSpec(0.16, 0.20)),
                         split="test"),
    "or1200": DesignSpec("or1200", 7000, 950, 48, 48, "default", 60,
                         macros=(MacroSpec(0.28, 0.24),), split="test"),
    "sha3": DesignSpec("sha3", 6000, 520, 64, 64, "xor_heavy", 56,
                       macros=(MacroSpec(0.18, 0.18),), split="test"),
    # Scale tier: ≥100k timing-graph pins.  Exists to stress partitioned
    # featurization/inference (benchmarks/bench_partition.py) — not part
    # of the paper's benchmark suite, so split="bench" keeps it out of
    # default dataset builds, Table 1, and the train/test tuples.
    "large": DesignSpec("large", 30000, 2400, 256, 256, "wide", 96,
                        n_modules=24,
                        macros=(MacroSpec(0.24, 0.28), MacroSpec(0.18, 0.20)),
                        split="bench"),
}

TRAIN_DESIGNS: Tuple[str, ...] = tuple(
    n for n, s in DESIGN_PRESETS.items() if s.split == "train")
TEST_DESIGNS: Tuple[str, ...] = tuple(
    n for n, s in DESIGN_PRESETS.items() if s.split == "test")
#: The paper's Table-I designs — every preset except scale-tier ones.
PAPER_DESIGNS: Tuple[str, ...] = TRAIN_DESIGNS + TEST_DESIGNS


class _IndexedPool:
    """A set supporting O(1) add/discard/uniform-sample (swap-pop list)."""

    def __init__(self) -> None:
        self._items: List[int] = []
        self._pos: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: int) -> bool:
        return item in self._pos

    def add(self, item: int) -> None:
        if item not in self._pos:
            self._pos[item] = len(self._items)
            self._items.append(item)

    def discard(self, item: int) -> None:
        pos = self._pos.pop(item, None)
        if pos is None:
            return
        last = self._items.pop()
        if last != item:
            self._items[pos] = last
            self._pos[last] = pos

    def sample(self, rng: np.random.Generator) -> int:
        """Remove and return a uniformly random item."""
        item = self._items[int(rng.integers(len(self._items)))]
        self.discard(item)
        return item

    def items(self) -> List[int]:
        return list(self._items)


def generate_netlist(spec: DesignSpec, base_seed: int = 0) -> Netlist:
    """Generate a reproducible synthetic netlist for *spec*.

    Construction is explicitly levelized: each gate is assigned a logic
    level in ``1..max_depth`` (more gates at shallow levels, tapering with
    depth, like a mapped datapath), and draws its inputs from strictly
    shallower drivers — mostly the level right above, which produces long
    sensitizable paths while keeping the overall depth bounded.  Register
    D pins and primary outputs tap drivers across the upper levels, so
    endpoint fan-in cone depths vary widely (the paper reports 2..400+).
    """
    rng = spawn_rng(f"netlist/{spec.name}", base_seed)
    nl = Netlist(spec.name)
    mix_names = list(GATE_MIXES[spec.gate_mix])
    mix_probs = np.array([GATE_MIXES[spec.gate_mix][k] for k in mix_names])
    mix_probs = mix_probs / mix_probs.sum()
    drives = list(DRIVE_WEIGHTS)
    drive_probs = np.array([DRIVE_WEIGHTS[d] for d in drives])
    drive_probs = drive_probs / drive_probs.sum()

    n_mod = max(1, spec.n_modules)

    # Sources: primary inputs and register Q outputs, all at level 0, each
    # assigned to a module (round-robin for ports, uniform for registers).
    source_by_mod: List[List[int]] = [[] for _ in range(n_mod)]
    all_sources: List[int] = []
    for i in range(spec.n_pi):
        mod = i % n_mod
        # The module id leads the name: ports are padded around the die in
        # name order, so one module's pads land on a contiguous arc and the
        # placer pulls the whole module into that region.
        pin = nl.add_port(f"pi_m{mod:02d}_{i:03d}", IN).pin
        source_by_mod[mod].append(pin)
        all_sources.append(pin)
    reg_cells = []
    reg_module: List[int] = []
    for i in range(spec.n_regs):
        drive = int(rng.choice([1, 2, 4], p=[0.4, 0.4, 0.2]))
        reg = nl.add_cell(f"DFF_X{drive}", name=f"reg_{i}")
        reg_cells.append(reg)
        mod = int(rng.integers(n_mod))
        reg_module.append(mod)
        source_by_mod[mod].append(reg.output_pin)
        all_sources.append(reg.output_pin)
    for pid in all_sources:
        nl.create_net(pid)

    # Gates per level: tapering profile, at least one gate per level.
    depth = max(2, spec.max_depth)
    profile = 1.0 - 0.6 * np.arange(1, depth + 1) / depth
    profile = profile / profile.sum()
    counts = np.maximum(1, rng.multinomial(spec.n_gates, profile))

    # drivers[mod][level] -> output pins of that module at that level;
    # drivers_all[level] -> all output pins at that level.
    drivers: List[List[List[int]]] = [
        [list(source_by_mod[m])] for m in range(n_mod)]
    drivers_all: List[List[int]] = [list(all_sources)]
    unused_by_mod: List[_IndexedPool] = [_IndexedPool() for _ in range(n_mod)]
    unused = _IndexedPool()

    def _discard_unused(pid: int) -> None:
        unused.discard(pid)
        for pool in unused_by_mod:
            pool.discard(pid)

    def _pool_at(module: int, lvl: int) -> List[int]:
        """Module pool at a level, falling back to the global pool."""
        pool = drivers[module][lvl]
        if pool and rng.random() < spec.intra_module_prob:
            return pool
        return drivers_all[lvl] or pool

    def _pick_driver(level: int, module: int) -> int:
        """Choose a driver pin strictly below *level*, module-biased."""
        # Bias 1: reuse a dangling output (same module) so few wires dangle.
        if len(unused_by_mod[module]) and rng.random() < 0.30:
            pid = unused_by_mod[module].sample(rng)
            unused.discard(pid)
            return pid
        # Bias 2: the level right above (grows sensitizable depth).
        if rng.random() < spec.prev_level_bias:
            pool = _pool_at(module, level - 1)
            if pool:
                return pool[int(rng.integers(len(pool)))]
        # Otherwise: geometric hop upward through shallower levels.
        lvl = level - 1
        while lvl > 0 and rng.random() < 0.55:
            lvl -= 1
        pool = _pool_at(module, lvl)
        while not pool:  # only possible for empty intermediate levels
            lvl -= 1
            pool = _pool_at(module, lvl)
        return pool[int(rng.integers(len(pool)))]

    g = 0
    for level in range(1, depth + 1):
        for m in range(n_mod):
            drivers[m].append([])
        drivers_all.append([])
        pending: List[tuple] = []  # (pin, module) join `unused` at level end
        n_here = int(counts[level - 1])
        modules_here = rng.integers(n_mod, size=n_here)
        for k in range(n_here):
            module = int(modules_here[k])
            kind = str(rng.choice(mix_names, p=mix_probs))
            drive = int(drives[int(rng.choice(len(drives), p=drive_probs))])
            inst = nl.add_cell(f"{kind}_X{drive}", name=f"g{g}")
            g += 1
            chosen: List[int] = []
            for ip in inst.input_pins:
                drv = _pick_driver(level, module)
                retries = 0
                while drv in chosen and retries < 4:
                    drv = _pick_driver(level, module)
                    retries += 1
                chosen.append(drv)
                _discard_unused(drv)
                nl.connect(nl.pins[drv].net, ip)
            nl.create_net(inst.output_pin)
            drivers[module][level].append(inst.output_pin)
            drivers_all[level].append(inst.output_pin)
            pending.append((inst.output_pin, module))
        for pid, mod in pending:
            unused.add(pid)
            unused_by_mod[mod].add(pid)

    # Wire register D inputs and primary outputs: tap drivers across the
    # upper two thirds of the levels so cone depths vary endpoint to
    # endpoint.  Registers tap their own module so the cone stays local.
    tap_levels = [lvl for lvl in range(max(1, depth // 3), depth + 1)
                  if drivers_all[lvl]]

    def _tap_output(module: Optional[int] = None) -> int:
        for _ in range(8):
            lvl = tap_levels[int(rng.integers(len(tap_levels)))]
            pool = (drivers[module][lvl] if module is not None else None) \
                or drivers_all[lvl]
            if pool:
                pid = pool[int(rng.integers(len(pool)))]
                _discard_unused(pid)
                return pid
        if len(unused):
            pid = unused.sample(rng)
            _discard_unused(pid)
            return pid
        return drivers_all[-1][0]

    for reg, mod in zip(reg_cells, reg_module):
        nl.connect(nl.pins[_tap_output(mod)].net, reg.input_pins[0])
    for i in range(spec.n_po):
        port = nl.add_port(f"po_{i}", OUT)
        nl.connect(nl.pins[_tap_output()].net, port.pin)

    # Any still-dangling outputs become auxiliary primary outputs (a real
    # synthesis flow would have swept them; keeping them preserves the DAG).
    for k, pid in enumerate(sorted(unused.items())):
        port = nl.add_port(f"po_aux_{k}", OUT)
        nl.connect(nl.pins[pid].net, port.pin)

    nl.check()
    return nl


def generate_preset(name: str, base_seed: int = 0,
                    scale: Optional[float] = None) -> Netlist:
    """Generate one of the ten named benchmark designs."""
    require(name in DESIGN_PRESETS, f"unknown design {name!r}; "
            f"choose from {sorted(DESIGN_PRESETS)}")
    spec = DESIGN_PRESETS[name]
    if scale is not None:
        spec = spec.scaled(scale)
    return generate_netlist(spec, base_seed)
