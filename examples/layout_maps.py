"""Layout feature maps (paper Fig. 5) as ASCII art.

Prints the three CNN input channels — cell density, RUDY, macro region —
for two designs, showing how strongly designs differ.

    python examples/layout_maps.py
"""

import numpy as np

from repro.flow import FlowConfig, run_flow

SIDE = 20
SHADES = " .:-=+*#%@"


def ascii_map(map2d: np.ndarray) -> list:
    m, n = map2d.shape
    ds = map2d.reshape(SIDE, m // SIDE, SIDE, n // SIDE).mean(axis=(1, 3))
    ds = ds / max(ds.max(), 1e-9)
    return ["".join(SHADES[int(v * (len(SHADES) - 1))] for v in ds[:, j])
            for j in reversed(range(SIDE))]


def main() -> None:
    for name in ("rocket", "or1200"):
        flow = run_flow(name, FlowConfig())
        maps = flow.input_maps
        print(f"\n=== {name} ===   cell density         RUDY"
              "                 macro")
        rows = zip(ascii_map(maps.cell_density), ascii_map(maps.rudy),
                   ascii_map(maps.macro))
        for a, b, c in rows:
            print(f"   {a}   {b}   {c}")
        free = maps.free_space()
        print(f"free space for the optimizer: mean {free.mean():.2f}, "
              f"{(free < 0.1).mean():.0%} of bins frozen")


if __name__ == "__main__":
    main()
