"""Endpoint-wise critical-region masking (paper Fig. 6), visualized.

Finds the longest topological path into a timing endpoint, builds the
critical region from the net-edge bounding boxes along it, and renders the
resulting mask over the cell-density map as ASCII art.

    python examples/masking_demo.py
"""

import numpy as np

from repro.core import longest_level_path, path_net_edges, rasterize_region
from repro.flow import FlowConfig, run_flow
from repro.timing import build_timing_graph
from repro.utils import spawn_rng

SIDE = 16
SHADES = " .:-=+*#%@"


def render(density: np.ndarray, mask: np.ndarray) -> str:
    m = density.shape[0]
    f = m // SIDE
    dens = density[:f * SIDE, :f * SIDE].reshape(
        SIDE, f, SIDE, f).mean(axis=(1, 3))
    dens = dens / max(dens.max(), 1e-9)
    rows = []
    for j in reversed(range(SIDE)):
        row = []
        for i in range(SIDE):
            if mask[i, j]:
                row.append("#")
            else:
                row.append(SHADES[int(dens[i, j] * (len(SHADES) - 1))])
        rows.append("".join(row))
    return "\n".join(rows)


def main() -> None:
    flow = run_flow("chacha", FlowConfig())
    nl = flow.input_netlist
    pl = flow.input_placement
    graph = build_timing_graph(nl)
    rng = spawn_rng("masking-demo")

    density = flow.input_maps.cell_density
    print("critical regions (█) over cell density, three endpoints:\n")
    for k in np.linspace(0, len(graph.endpoints) - 1, 3).astype(int):
        ep = int(graph.endpoints[k])
        path = longest_level_path(graph, ep, rng)
        edges = path_net_edges(graph, path)
        mask = rasterize_region(nl, pl, edges, SIDE, SIDE)
        print(f"endpoint pin {graph.pin_ids[ep]}: path depth "
              f"{graph.level[ep]}, {len(edges)} net edges, "
              f"region covers {mask.mean():.0%} of the die")
        print(render(density, mask))
        print()


if __name__ == "__main__":
    main()
