"""Netlist restructuring and the labeling gap it creates (paper Fig. 1).

Builds a small circuit, lets the timing optimizer restructure it, and shows
which of the original timing arcs survived (labelable) versus were replaced
(the paper's mismatch region).

    python examples/restructure_demo.py
"""

from repro.flow import FlowConfig, run_flow


def main() -> None:
    flow = run_flow("xgate", FlowConfig(scale=0.4))
    nl = flow.input_netlist
    opt = flow.opt_netlist
    report = flow.opt_report

    print("=== before optimization ===")
    print(f"{len(nl.cells)} cells, {sum(1 for _ in nl.net_edges())} net "
          f"edges, {sum(1 for _ in nl.cell_edges())} cell edges")
    print("\n=== optimizer ===")
    print(f"moves: {dict(sorted(report.moves.items()))}")
    print("\n=== after optimization ===")
    print(f"{len(opt.cells)} cells "
          f"({len(opt.cells) - len(nl.cells):+d})")
    print(f"replaced net edges:  {len(report.replaced_net_edges):>5} "
          f"({report.net_replaced_ratio:.1%})")
    print(f"replaced cell edges: {len(report.replaced_cell_edges):>5} "
          f"({report.cell_replaced_ratio:.1%})")

    # A concrete Fig.-1-style example: one replaced cell edge.
    if report.replaced_cell_edges:
        ip, op = sorted(report.replaced_cell_edges)[0]
        print(f"\nexample replaced arc: input pin {ip} -> output pin {op}")
        print(f"  pin {ip} exists in the input netlist: {ip in nl.pins}")
        print(f"  pin {ip} exists after optimization:   {ip in opt.pins}")
        print("  -> its sign-off delay cannot be labeled; any model trained"
              "\n     on local arcs never sees ground truth here (Fig. 1).")

    endpoints = set(nl.endpoint_pins())
    survived = endpoints & set(opt.pins)
    print(f"\ntiming endpoints surviving optimization: "
          f"{len(survived)}/{len(endpoints)} (always 100% — the anchor of"
          "\nthe paper's endpoint-wise formulation)")


if __name__ == "__main__":
    main()
