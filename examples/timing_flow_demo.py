"""Walk through the EDA substrate: netlist → placement → STA → opt → route.

Shows every stage of the reference flow with its reports — the substrate
the predictor is trained against.

    python examples/timing_flow_demo.py
"""

import numpy as np

from repro.flow import FlowConfig, run_flow
from repro.netlist import compute_stats


def main() -> None:
    flow = run_flow("steelcore", FlowConfig())

    stats = compute_stats(flow.input_netlist)
    print("=== design ===")
    print(f"{stats.name}: {stats.n_cells} cells, {stats.n_nets} nets, "
          f"{stats.n_pins} pins, {stats.n_endpoints} timing endpoints")
    die = flow.input_placement.die
    print(f"die {die.width:.0f} x {die.height:.0f} µm, "
          f"{len(die.macros)} macros, clock {flow.clock_period:.0f} ps")

    print("\n=== pre-routing STA (Elmore wire estimates) ===")
    pre = flow.pre_route_sta
    print(f"wns {pre.wns:.0f} ps, tns {pre.tns:.0f} ps")
    ep = min(pre.endpoint_slack, key=pre.endpoint_slack.get)
    path = pre.critical_path(ep)
    print(f"critical path: {len(path)} pins into endpoint pin {ep}")

    print("\n=== timing optimization ===")
    rep = flow.opt_report
    print(f"moves: {dict(sorted(rep.moves.items()))}")
    print(f"wns trajectory: {[round(w) for w in rep.wns_trajectory]}")
    print(f"replaced: {rep.net_replaced_ratio:.1%} net edges, "
          f"{rep.cell_replaced_ratio:.1%} cell edges")

    print("\n=== routing ===")
    routing = flow.routing
    print(f"total wirelength {routing.total_wirelength:.0f} µm "
          f"({routing.total_detour:.0f} µm congestion detour), "
          f"{routing.overflow_fraction:.1%} GCells over capacity")

    print("\n=== sign-off ===")
    signoff = flow.signoff_sta
    print(f"wns {signoff.wns:.0f} ps, tns {signoff.tns:.0f} ps")
    labels = flow.endpoint_labels()
    arr = np.array(list(labels.values()))
    print(f"endpoint arrival: min {arr.min():.0f}, mean {arr.mean():.0f}, "
          f"max {arr.max():.0f} ps")
    print(f"\nstage times: { {k: round(v, 2) for k, v in flow.timer.stages.items()} }")


if __name__ == "__main__":
    main()
