"""Train on the full training split, save the model, reload, predict.

The production use-case: fit once on completed flows, then evaluate fresh
placements in milliseconds (Table III's "pre + infer" path).

    python examples/train_and_predict.py
"""

from pathlib import Path

import numpy as np

from repro.core import ModelConfig, TimingPredictor, TrainerConfig
from repro.eval import format_table, r2_score
from repro.flow import FlowConfig
from repro.ml import build_dataset
from repro.netlist import TEST_DESIGNS, TRAIN_DESIGNS


def main() -> None:
    cache = Path("data/cache")
    print("building dataset (cached after the first run)...")
    train = build_dataset(list(TRAIN_DESIGNS), cache_dir=cache)
    test = build_dataset(list(TEST_DESIGNS), cache_dir=cache)

    predictor = TimingPredictor(
        model_config=ModelConfig(variant="full"),
        trainer_config=TrainerConfig(epochs=60))
    print("training the full multimodal model...")
    predictor.fit(train)

    model_path = Path("data") / "predictor_full.pkl"
    predictor.save(model_path)
    print(f"saved -> {model_path}")
    loaded = TimingPredictor.load(model_path)

    rows = []
    for s in test:
        pred = loaded.predict_array(s)
        rows.append([s.name, len(s.y), r2_score(s.y, pred),
                     f"{loaded.infer_times[s.name] * 1e3:.0f} ms"])
    print(format_table(["design", "#endpoints", "R²", "inference"], rows,
                       title="held-out designs"))


if __name__ == "__main__":
    main()
