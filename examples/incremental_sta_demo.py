"""Incremental STA: what-if sizing analysis without full re-timing.

Walks the worst path of a design and evaluates upsizing each cell with the
incremental engine, reporting the WNS delta of every trial — the inner loop
a timing optimizer runs thousands of times.

    python examples/incremental_sta_demo.py
"""

import time

from repro.flow import FlowConfig, run_flow
from repro.timing import IncrementalSTA


def main() -> None:
    flow = run_flow("steelcore", FlowConfig(scale=0.6, with_opt=False))
    nl = flow.input_netlist
    pl = flow.input_placement

    inc = IncrementalSTA(nl, pl, clock_period=flow.clock_period)
    print(f"initial WNS {inc.result.wns:.1f} ps "
          f"(clock {flow.clock_period:.0f} ps)")

    ep = min(inc.result.endpoint_slack, key=inc.result.endpoint_slack.get)
    path = inc.result.critical_path(ep)
    candidates = []
    for pid in path:
        pin = nl.pins[pid]
        if pin.cell is None or pin.direction != "out":
            continue
        ctype = nl.cell_type(pin.cell)
        if ctype.is_sequential or nl.library.upsize(ctype) is None:
            continue
        candidates.append(pin.cell)

    print(f"\nwhat-if: upsize each of {len(candidates)} cells on the "
          "critical path (and undo):")
    t0 = time.perf_counter()
    best = (0.0, None)
    for cid in candidates:
        old_type = nl.cells[cid].type_name
        new_type = nl.library.upsize(nl.cell_type(cid)).name
        inc.resize_cell(cid, new_type)
        wns_new = inc.refresh().wns
        gain = wns_new - flow.pre_route_sta.wns
        inc.resize_cell(cid, old_type)   # undo
        inc.refresh()
        if gain > best[0]:
            best = (gain, (cid, old_type, new_type))
    elapsed = time.perf_counter() - t0
    trials = 2 * len(candidates)
    print(f"{trials} incremental re-timings in {elapsed:.2f} s "
          f"({elapsed / trials * 1e3:.1f} ms each, "
          f"{inc.partial_updates} partial sweeps)")
    if best[1] is not None:
        cid, old, new = best[1]
        print(f"best single move: {old} -> {new} on cell {cid} "
              f"(WNS {best[0]:+.1f} ps)")


if __name__ == "__main__":
    main()
