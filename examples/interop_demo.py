"""Tool interop: Verilog + DEF + SDC round trip, then sign-off reports.

Shows the interchange surface a downstream flow would use: write the design
out as structural Verilog + DEF placement + SDC constraints, read everything
back, and confirm STA agrees bit-for-bit.

    python examples/interop_demo.py
"""

import io

from repro.flow import FlowConfig, run_flow
from repro.netlist import parse_verilog, write_verilog
from repro.placement.defio import read_def, write_def
from repro.timing import (
    PreRouteEstimator,
    TimingConstraints,
    build_timing_graph,
    parse_sdc,
    report_timing,
    run_sta,
)


def main() -> None:
    flow = run_flow("xgate", FlowConfig(scale=0.5))
    nl, pl = flow.input_netlist, flow.input_placement

    # --- write the three interchange files.
    v_buf, d_buf = io.StringIO(), io.StringIO()
    write_verilog(nl, v_buf)
    write_def(nl, pl, d_buf)
    constraints = TimingConstraints(clock_period=flow.clock_period,
                                    input_delays={None: 20.0},
                                    output_delays={None: 15.0})
    sdc_text = constraints.to_sdc()
    print(f"wrote {v_buf.tell()} B Verilog, {d_buf.tell()} B DEF, "
          f"{len(sdc_text)} B SDC")

    # --- read them back and re-run STA.
    nl2 = parse_verilog(v_buf.getvalue())
    # DEF references the ORIGINAL netlist's names; map onto the reparsed one.
    pl2 = read_def(nl2, d_buf.getvalue())
    constraints2 = parse_sdc(sdc_text)

    res1 = run_sta(build_timing_graph(nl), PreRouteEstimator(nl, pl),
                   constraints.clock_period, constraints=constraints)
    res2 = run_sta(build_timing_graph(nl2), PreRouteEstimator(nl2, pl2),
                   constraints2.clock_period, constraints=constraints2)
    print(f"WNS original {res1.wns:.2f} ps | round-tripped {res2.wns:.2f} ps")
    # DEF stores coordinates in 10⁻³ µm database units, so wire lengths are
    # quantized; timing agrees to well below a femtosecond of significance.
    assert abs(res1.wns - res2.wns) < 0.1, "round trip must preserve timing"

    print("\n" + report_timing(res2, n_paths=1))


if __name__ == "__main__":
    main()
