"""Quickstart: end-to-end restructure-tolerant timing prediction.

Runs the reference flow on two small designs, trains the multimodal
predictor on one, and predicts sign-off endpoint arrival times for the
other — the paper's Fig. 2 pipeline in ~a minute on a laptop.

    python examples/quickstart.py
"""

import numpy as np

from repro.core import ModelConfig, TimingPredictor, TrainerConfig
from repro.eval import r2_score
from repro.flow import FlowConfig, run_flow
from repro.ml import build_sample


def main() -> None:
    # 1. Reference flows (place -> timing opt -> route -> sign-off STA).
    #    `scale` shrinks the preset designs so this demo runs fast.
    print("running reference flows (scaled designs)...")
    # Train on two completed flows; evaluate on a fresh placement of a
    # design the model never saw.
    train_flows = [run_flow("steelcore", FlowConfig(scale=0.5)),
                   run_flow("rocket", FlowConfig(scale=0.2))]
    train_flow = train_flows[0]
    test_flow = run_flow("xgate", FlowConfig(scale=0.5))
    report = train_flow.opt_report
    print(f"  steelcore: optimizer replaced "
          f"{report.net_replaced_ratio:.0%} of net edges, "
          f"{report.cell_replaced_ratio:.0%} of cell edges")

    # 2. Pre-routing samples: pin heterograph + layout maps + masks.
    train_samples = [build_sample(f) for f in train_flows]
    test_sample = build_sample(test_flow)

    # 3. Train the multimodal model (GNN + CNN + endpoint masking).
    predictor = TimingPredictor(
        model_config=ModelConfig(variant="full"),
        trainer_config=TrainerConfig(epochs=60))
    predictor.fit(train_samples)

    # 4. Predict sign-off endpoint arrival for the unseen design.
    pred = predictor.predict(test_sample)
    y = test_sample.y
    pred_arr = np.array([pred[int(p)] for p in test_sample.endpoint_pins])
    corr = float(np.corrcoef(pred_arr, y)[0, 1])
    print(f"\npredicted {len(pred)} endpoint arrival times for "
          f"{test_sample.name} (never seen in training):")
    print(f"  R² vs sign-off STA: {r2_score(y, pred_arr):.3f}, "
          f"rank correlation {corr:.3f}")
    print("  (two tiny training designs — the benchmarks train on the "
          "full split)")
    print(f"  inference time: {predictor.infer_times[test_sample.name]*1e3:.1f} ms "
          f"(flow opt+route+sta took "
          f"{sum(test_sample.flow_times.get(k, 0) for k in ('opt', 'route', 'sta')):.1f} s)")
    worst = max(pred, key=pred.get)
    print(f"  predicted-critical endpoint: pin {worst} "
          f"at {pred[worst]:.0f} ps")


if __name__ == "__main__":
    main()
