"""Serving — warm what-if latency vs. the cold full-flow path.

The point of :mod:`repro.serve` is amortization: a resident
:class:`~repro.serve.DesignSession` answers a what-if by incrementally
re-featurizing only what an edit touched, where the one-shot path pays
flow + sample build + predict from scratch.  This benchmark measures
both on the same design and asserts the warm path's advantage.
"""

import statistics
import time

from repro.core import ModelConfig, TimingPredictor, TrainerConfig
from repro.flow import FlowConfig, run_flow
from repro.ml.dataset import build_sample
from repro.serve import DesignSession, Edit

from benchmarks.conftest import emit_bench, run_once

DESIGN = "xgate"
FLOW_CONFIG = FlowConfig(scale=0.25, base_seed=0)
MAP_BINS = 32
N_WHATIFS = 20


def _fitted_predictor(sample) -> TimingPredictor:
    predictor = TimingPredictor(
        model_config=ModelConfig(map_bins=MAP_BINS),
        trainer_config=TrainerConfig(epochs=2))
    predictor.fit([sample])
    return predictor


def _cold_query_s(predictor) -> float:
    """One-shot path: run the flow, build the sample, predict."""
    t0 = time.perf_counter()
    flow = run_flow(DESIGN, FLOW_CONFIG)
    sample = build_sample(flow, map_bins=MAP_BINS, seed=0)
    predictor.predict(sample)
    return time.perf_counter() - t0


def _warm_whatif_s(session) -> list:
    """Median-friendly sample of warm what-if latencies."""
    die = session.placement.die
    cells = list(session.netlist.cells)
    times = []
    for i in range(N_WHATIFS):
        cid = cells[i % len(cells)]
        edit = Edit(op="move", cell=cid,
                    x=die.width * ((i % 7) + 1) / 8.0,
                    y=die.height * ((i % 5) + 1) / 6.0)
        t0 = time.perf_counter()
        session.whatif([edit], commit=False)
        times.append(time.perf_counter() - t0)
    return times


def test_serve_warm_vs_cold(benchmark):
    def scenario():
        flow = run_flow(DESIGN, FLOW_CONFIG)
        sample = build_sample(flow, map_bins=MAP_BINS, seed=0)
        predictor = _fitted_predictor(sample)

        cold = statistics.median(_cold_query_s(predictor)
                                 for _ in range(3))
        session = DesignSession(run_flow(DESIGN, FLOW_CONFIG), predictor)
        warm = statistics.median(_warm_whatif_s(session))
        return cold, warm

    cold, warm = run_once(benchmark, scenario)
    speedup = cold / warm
    emit_bench("serve", {"cold_ms": cold * 1e3, "warm_ms": warm * 1e3,
                         "speedup": speedup, "design": DESIGN,
                         "n_whatifs": N_WHATIFS})
    print(f"\nServing — cold full-flow query {cold * 1e3:.0f} ms vs "
          f"warm what-if {warm * 1e3:.1f} ms ({speedup:.0f}x)")
    assert speedup >= 10.0, (
        f"warm what-if must be >=10x faster than the cold path, "
        f"got {speedup:.1f}x")
