"""Parallel dataset build speedup: cold-cache serial vs ``jobs=4``.

The ISSUE's acceptance bar: building four scaled designs with four
workers must be at least 2x faster than the serial build on a cold
cache.  Flow construction is CPU-bound and embarrassingly parallel
across designs, so the speedup target only makes sense when the machine
actually has cores to spare — the assertion scales with the CPUs this
process may use (``os.sched_getaffinity``):

* >= 4 CPUs: assert the full 2.0x,
* 2-3 CPUs: assert a conservative 1.2x,
* 1 CPU: print the measurement and skip the assertion (a process pool
  on one core can only break even).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_build.py -s
"""

from __future__ import annotations

import os
import time

import pytest

from repro.flow import FlowConfig
from repro.ml import build_dataset_report

from benchmarks.conftest import emit_bench

DESIGNS = ["xgate", "steelcore", "chacha", "arm9"]
CFG = FlowConfig(scale=0.35)
BINS = 32
JOBS = 4


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _cold_build(jobs):
    """Cold-cache wall time: no cache_dir, every design fully built."""
    t0 = time.perf_counter()
    samples, report = build_dataset_report(DESIGNS, flow_config=CFG,
                                           map_bins=BINS, jobs=jobs)
    wall = time.perf_counter() - t0
    assert report.ok, report.format()
    assert all(s is not None for s in samples)
    return wall


def test_parallel_build_speedup():
    cpus = _cpus()
    serial = _cold_build(jobs=None)
    parallel = _cold_build(jobs=JOBS)
    speedup = serial / parallel
    emit_bench("parallel_build", {"serial_s": serial,
                                  "parallel_s": parallel,
                                  "speedup": speedup, "jobs": JOBS})
    print(f"\nparallel build: serial {serial:.2f}s, "
          f"jobs={JOBS} {parallel:.2f}s -> {speedup:.2f}x "
          f"({cpus} CPUs available)")
    if cpus >= 4:
        assert speedup >= 2.0, (
            f"expected >=2x with {JOBS} workers on {cpus} CPUs, "
            f"got {speedup:.2f}x")
    elif cpus >= 2:
        assert speedup >= 1.2, (
            f"expected >=1.2x with {JOBS} workers on {cpus} CPUs, "
            f"got {speedup:.2f}x")
    else:
        pytest.skip(f"only {cpus} CPU available; measured {speedup:.2f}x "
                    "without asserting")
