"""Table III — runtime comparison with the reference ("commercial") flow.

For every design: wall-clock of the reference flow's opt + route + sign-off
STA stages (recorded during dataset generation) against the model's
preprocessing + inference time.

Paper shape to reproduce: speedup ≫ 1× on every design, growing with
design size (the paper reports 583×–24170×, avg 4154× against Innovus;
our "commercial" substitute is itself a fast simulator, so the absolute
speedups are smaller but the ordering holds).
"""

from repro.core import ModelConfig, TimingPredictor, TrainerConfig
from repro.eval.experiments import format_table3, run_table3

from benchmarks.conftest import run_once


def test_table3(benchmark, train_samples, all_samples):
    predictor = TimingPredictor(
        model_config=ModelConfig(variant="full"),
        trainer_config=TrainerConfig(epochs=20))
    predictor.fit(train_samples)

    rows = run_once(benchmark, lambda: run_table3(all_samples, predictor))
    print()
    print(format_table3(rows))

    for r in rows:
        assert r.speedup > 1.0, f"{r.design}: model must beat the flow"
    big = [r for r in rows if r.design in ("jpeg", "hwacha", "or1200")]
    small = [r for r in rows if r.design in ("xgate", "steelcore")]
    avg_big = sum(r.flow_total_s for r in big) / len(big)
    avg_small = sum(r.flow_total_s for r in small) / len(small)
    assert avg_big > avg_small, "flow cost grows with design size"
