"""Observability overhead guard: run_sta with recording disabled.

The ISSUE's acceptance bar: disabled-by-default recording must add < 5%
overhead to ``run_sta`` on the smallest preset.  ``run_sta`` is a thin
instrumented wrapper (span + counters) around ``_run_sta_impl``; timing
both on the same graph measures exactly the instrumentation cost.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py -s
"""

from __future__ import annotations

import time

from repro.netlist import DESIGN_PRESETS, generate_netlist
from repro.obs.trace import get_tracer
from repro.placement import build_die, legalize, place
from repro.timing import PreRouteEstimator, build_timing_graph
from repro.timing.sta import _run_sta_impl, run_sta

from benchmarks.conftest import emit_bench

REPEATS = 7
CALLS = 20


def _timed(fn, *args) -> float:
    """Best-of-REPEATS total seconds for CALLS invocations."""
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        for _ in range(CALLS):
            fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def test_disabled_recording_overhead_under_5_percent():
    spec = DESIGN_PRESETS["xgate"].scaled(0.25)
    nl = generate_netlist(spec)
    die = build_die(nl, spec)
    pl = place(nl, die)
    legalize(nl, pl)
    graph = build_timing_graph(nl)
    wires = PreRouteEstimator(nl, pl)

    tracer = get_tracer()
    assert not tracer.enabled, "benchmark measures the DISABLED path"

    # Warm both paths (NLDM cache, numpy allocations).
    run_sta(graph, wires, 500.0)
    _run_sta_impl(graph, wires, 500.0)

    base = _timed(_run_sta_impl, graph, wires, 500.0)
    instrumented = _timed(run_sta, graph, wires, 500.0)
    overhead = instrumented / base - 1.0
    emit_bench("obs_overhead", {
        "overhead_pct": overhead * 100,
        "baseline_ms_per_call": base / CALLS * 1e3,
        "instrumented_ms_per_call": instrumented / CALLS * 1e3})
    print(f"\nrun_sta disabled-recording overhead: {overhead:+.2%} "
          f"(baseline {base / CALLS * 1e3:.2f} ms/call, "
          f"instrumented {instrumented / CALLS * 1e3:.2f} ms/call)")
    assert overhead < 0.05, (
        f"disabled observability costs {overhead:.1%} on run_sta "
        f"(budget: 5%)")
