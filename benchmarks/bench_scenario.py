"""Scenario sweeps — staged artifact reuse vs. independent full flows.

A clock-constraint sweep changes nothing physical: the netlist, the
placement, the routing (without re-optimization) and the unconstrained
pre-route propagation are identical at every point.  The staged engine's
chained fingerprints encode exactly that, so a sweep through one
:class:`~repro.flow.StageStore` runs generation/placement/routing once
and re-derives only the constrained STAs per point, where the naive
shape re-runs the whole flow N times.

This benchmark times both shapes on an N-point ``clock_frac`` sweep,
asserts the staged path's speedup, and re-checks the equivalence
contract (swept flows == independently built flows, array-for-array) —
a fast wrong answer is worthless.
"""

import dataclasses
import time

import numpy as np

from repro.flow import FlowConfig, ScenarioSpec, StageStore, run_scenarios
from repro.flow.flow import run_flow_on_spec
from repro.netlist import DESIGN_PRESETS

from benchmarks.conftest import emit_bench, run_once

#: Sweep without re-optimization: the honest contrast.  With ``with_opt``
#: the optimizer (which *does* depend on the clock) dominates runtime and
#: re-runs per point either way; the no-opt sweep is the shape the reuse
#: engine accelerates — only the two clock-dependent STAs run per point.
FLOW_CONFIG = FlowConfig(scale=0.25, base_seed=0, with_opt=False)
DESIGN = "xgate"
POINTS = (0.5, 0.6, 0.7, 0.8)


def test_clock_sweep_reuse_vs_independent_flows(benchmark):
    spec = DESIGN_PRESETS[DESIGN].scaled(FLOW_CONFIG.scale)
    scenarios = [ScenarioSpec(axes=(("clock_frac", p),)) for p in POINTS]
    variant_specs = [s.apply(spec) for s in scenarios]

    def scenario():
        t0 = time.perf_counter()
        independent = [run_flow_on_spec(v, FLOW_CONFIG)
                       for v in variant_specs]
        t_independent = time.perf_counter() - t0

        store = StageStore()
        t0 = time.perf_counter()
        swept = run_scenarios(DESIGN, FLOW_CONFIG, scenarios, store=store)
        t_swept = time.perf_counter() - t0

        # Equivalence: every sweep point matches its independent build.
        for a, b in zip(swept, independent):
            assert a.clock_period == b.clock_period
            np.testing.assert_array_equal(a.signoff_sta.arrival,
                                          b.signoff_sta.arrival)
            np.testing.assert_array_equal(a.pre_route_sta.arrival,
                                          b.pre_route_sta.arrival)
        return t_independent, t_swept, store.stats()

    t_independent, t_swept, stats = run_once(benchmark, scenario)
    speedup = t_independent / t_swept
    emit_bench("scenario", {
        "independent_s": round(t_independent, 4),
        "swept_s": round(t_swept, 4),
        "speedup": round(speedup, 2),
        "points": list(POINTS),
        "design": DESIGN,
        "store": stats,
    })
    print(f"\nScenario sweep — {len(POINTS)}-point clock_frac sweep of "
          f"{DESIGN}: independent flows {t_independent:.2f} s vs staged "
          f"store {t_swept:.2f} s ({speedup:.1f}x; store {stats})")
    # ~2.5-3x measured at 4 points (generation + placement + routing +
    # the unconstrained STA amortize across the sweep); gated at 2x per
    # the issue's acceptance bar, with headroom for shared runners.
    assert speedup >= 2.0, (
        f"staged sweep must be >=2x faster than independent flows, "
        f"got {speedup:.1f}x")
