"""Fleet scaling: request throughput 1 worker → 4 workers, p95 under load.

The ISSUE's acceptance bar for the sharded fleet: 4 worker processes
must sustain at least **1.8x** the request throughput of 1 worker on a
multi-design what-if workload, and the p95 latency must hold (not
collapse) when the request rate saturates the fleet.

Worker processes are real processes, so — like
``bench_parallel_build`` — the target only makes sense with cores to
spare.  The assertion scales with ``os.sched_getaffinity``:

* >= 4 CPUs: assert the full 1.8x and the p95 bound,
* 2-3 CPUs: assert a conservative 1.2x,
* 1 CPU: print the measurements and skip the assertions (N processes
  on one core cannot beat one process at a CPU-bound workload).

Emits ``data/bench/BENCH_fleet.json`` with the headline numbers.

Run under pytest, or standalone (CI smoke uses ``--quick``)::

    PYTHONPATH=src python -m pytest benchmarks/bench_fleet.py -s
    PYTHONPATH=src python benchmarks/bench_fleet.py --quick
"""

from __future__ import annotations

import json
import os
import statistics
import threading
import time
import urllib.request

from repro.core import ModelConfig, TimingPredictor, TrainerConfig
from repro.flow import FlowConfig, run_flow
from repro.ml.dataset import build_sample

DESIGNS = ("xgate", "chacha", "steelcore", "arm9")
FLOW_CONFIG = FlowConfig(scale=0.25, base_seed=0)
MAP_BINS = 32


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _build_fixture():
    flows = {d: run_flow(d, FLOW_CONFIG) for d in DESIGNS}
    predictor = TimingPredictor(
        model_config=ModelConfig(map_bins=MAP_BINS),
        trainer_config=TrainerConfig(epochs=2))
    predictor.fit([build_sample(flows[DESIGNS[0]], map_bins=MAP_BINS,
                                seed=0)])
    return predictor.to_artifact(), flows


def _post(address, path, body, timeout=60.0):
    host, port = address
    req = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=json.dumps(body).encode(), method="POST",
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        resp.read()
        return resp.status


def _drive(address, n_requests, n_clients):
    """Fire *n_requests* predicts from *n_clients* threads; returns
    (wall_s, sorted per-request latencies in seconds, error count)."""
    latencies = []
    errors = [0]
    lock = threading.Lock()
    counter = iter(range(n_requests))

    def client():
        while True:
            with lock:
                i = next(counter, None)
            if i is None:
                return
            body = {"design": DESIGNS[i % len(DESIGNS)]}
            t0 = time.perf_counter()
            try:
                status = _post(address, "/predict", body)
                ok = status == 200
            except OSError:
                ok = False
            dt = time.perf_counter() - t0
            with lock:
                latencies.append(dt)
                if not ok:
                    errors[0] += 1

    threads = [threading.Thread(target=client) for _ in range(n_clients)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    return wall, sorted(latencies), errors[0]


def _p(latencies, q):
    if not latencies:
        return float("nan")
    idx = min(len(latencies) - 1, int(round(q / 100 * (len(latencies) - 1))))
    return latencies[idx]


def _run_fleet(payload, flows, workers, n_requests, n_clients):
    from repro.serve import FleetConfig, TimingFleet, TimingGateway

    fleet = TimingFleet(payload, flows,
                        FleetConfig(workers=workers, threads=2,
                                    microbatch=4, deadline_s=60.0,
                                    queue_depth=64)).start()
    gateway = TimingGateway(fleet, port=0).start()
    time.sleep(0.1)
    try:
        # Touch every shard once so session baselines are warm.
        for design in DESIGNS:
            _post(gateway.address, "/predict", {"design": design})
        return _drive(gateway.address, n_requests, n_clients)
    finally:
        gateway.stop(drain_timeout_s=30.0)


def run_benchmark(quick: bool = False) -> dict:
    n_requests = 40 if quick else 160
    n_clients = 8
    payload, flows = _build_fixture()
    cpus = _cpus()

    wall1, lat1, err1 = _run_fleet(payload, flows, 1, n_requests,
                                   n_clients)
    wall4, lat4, err4 = _run_fleet(payload, flows, 4, n_requests,
                                   n_clients)
    # Saturation probe: double the client pressure on the 4-worker
    # fleet; p95 must degrade gracefully, not collapse.
    wall_sat, lat_sat, err_sat = _run_fleet(payload, flows, 4,
                                            n_requests, 2 * n_clients)

    thr1, thr4 = n_requests / wall1, n_requests / wall4
    thr_sat = n_requests / wall_sat
    result = {
        "quick": quick,
        "n_requests": n_requests,
        "n_clients": n_clients,
        "errors": {"w1": err1, "w4": err4, "saturated": err_sat},
        "throughput_rps": {"w1": thr1, "w4": thr4,
                           "saturated": thr_sat},
        "speedup_1_to_4": thr4 / thr1,
        "p50_ms": {"w1": _p(lat1, 50) * 1e3, "w4": _p(lat4, 50) * 1e3,
                   "saturated": _p(lat_sat, 50) * 1e3},
        "p95_ms": {"w1": _p(lat1, 95) * 1e3, "w4": _p(lat4, 95) * 1e3,
                   "saturated": _p(lat_sat, 95) * 1e3},
        "mean_ms": {"w1": statistics.mean(lat1) * 1e3,
                    "w4": statistics.mean(lat4) * 1e3,
                    "saturated": statistics.mean(lat_sat) * 1e3},
    }

    from benchmarks.conftest import emit_bench

    out = emit_bench("fleet", result)
    print(f"\nfleet throughput ({n_requests} requests, {n_clients} "
          f"clients, {cpus} CPUs):")
    print(f"  1 worker : {thr1:6.1f} req/s   p95 "
          f"{result['p95_ms']['w1']:6.1f} ms")
    print(f"  4 workers: {thr4:6.1f} req/s   p95 "
          f"{result['p95_ms']['w4']:6.1f} ms   "
          f"-> {result['speedup_1_to_4']:.2f}x")
    print(f"  saturated: {thr_sat:6.1f} req/s   p95 "
          f"{result['p95_ms']['saturated']:6.1f} ms "
          f"({2 * n_clients} clients)")
    print(f"  wrote {out}")

    # Correctness floors hold regardless of core count.
    assert err1 == err4 == 0, "fleet dropped requests under normal load"
    assert err_sat == 0, "fleet errored under saturation (queue_depth " \
                         "should shed with 503 only past 64 in flight)"

    if cpus >= 4:
        assert result["speedup_1_to_4"] >= 1.8, (
            f"4 workers must give >=1.8x over 1, got "
            f"{result['speedup_1_to_4']:.2f}x on {cpus} CPUs")
        assert result["p95_ms"]["saturated"] <= \
            5.0 * max(result["p95_ms"]["w4"], 1.0), (
                "p95 collapsed under saturation")
    elif cpus >= 2:
        assert result["speedup_1_to_4"] >= 1.2, (
            f"expected >=1.2x on {cpus} CPUs, got "
            f"{result['speedup_1_to_4']:.2f}x")
    else:
        result["asserted"] = False
        print("  (1 CPU: scaling assertions skipped)")
    return result


def test_fleet_throughput_scaling():
    result = run_benchmark(quick=False)
    if _cpus() < 2:
        import pytest

        pytest.skip(f"only 1 CPU; measured "
                    f"{result['speedup_1_to_4']:.2f}x without asserting")


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller request counts (CI smoke)")
    args = parser.parse_args()
    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    run_benchmark(quick=args.quick)
