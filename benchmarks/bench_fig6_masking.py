"""Fig. 6 — endpoint-wise critical-region masking.

Regenerates the paper's masking example on a real design: longest path by
topological level, the union of net-edge bounding boxes along it, and the
resulting endpoint mask at M/4 resolution.  Prints an ASCII rendering of
one endpoint's critical region and checks the masking invariants.
"""

import numpy as np

from repro.core import build_endpoint_masks, longest_level_path, path_net_edges
from repro.flow import FlowConfig, run_flow
from repro.timing import build_timing_graph
from repro.utils import spawn_rng

from benchmarks.conftest import run_once


def test_fig6_masking(benchmark, artifacts_dir):
    flow = run_flow("steelcore", FlowConfig())
    nl = flow.input_netlist
    pl = flow.input_placement
    graph = build_timing_graph(nl)

    masks = run_once(benchmark,
                     lambda: build_endpoint_masks(nl, pl, graph, 64))
    np.save(artifacts_dir / "fig6_steelcore_masks.npy", masks)

    side = 16
    rng = spawn_rng("fig6")
    ep = int(graph.endpoints[len(graph.endpoints) // 2])
    path = longest_level_path(graph, ep, rng)
    edges = path_net_edges(graph, path)
    print(f"\nFig. 6 (reproduced) — endpoint pin {graph.pin_ids[ep]}: "
          f"longest path {len(path)} nodes, {len(edges)} net edges")
    mask = masks[list(graph.endpoints).index(ep)].reshape(side, side)
    for j in reversed(range(side)):
        print("".join("#" if mask[i, j] else "." for i in range(side)))

    # Invariants: every endpoint mask is non-empty and much smaller than
    # the die; the path steps one level at a time (it IS a longest path).
    cover = masks.mean(axis=1)
    print(f"mask coverage: mean {cover.mean():.2f}, max {cover.max():.2f}")
    assert (masks.sum(axis=1) > 0).all()
    assert cover.mean() < 0.9
    levels = [graph.level[v] for v in path]
    assert levels == list(range(len(path)))
