"""Fig. 4 — the layout branch at the paper's full 512×512 resolution.

The paper feeds 3×512×512 layout stacks and produces the global map
``M^L ∈ R^(128×128)``.  Our experiments default to 64×64 for CPU speed;
this benchmark verifies the architecture at the paper-scale resolution and
times one forward pass.
"""

import numpy as np

from repro.core import LayoutEncoder
from repro.utils import spawn_rng


def test_fig4_cnn_paper_resolution(benchmark):
    rng = spawn_rng("fig4")
    encoder = LayoutEncoder(rng)
    stack = rng.random((3, 512, 512))

    def forward():
        out = encoder.forward(stack)
        for m in encoder.modules():
            cache = getattr(m, "_cache", None)
            if isinstance(cache, list):
                cache.clear()
        return out

    out = benchmark(forward)
    assert out.shape == (128 * 128,)   # M/4 × N/4, flattened
    assert np.isfinite(out).all()
    print(f"\nFig. 4 (reproduced): 3x512x512 -> M^L of {128}x{128}")
