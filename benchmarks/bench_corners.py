"""MMMC serving — one packed all-corner what-if vs. the per-corner loop.

A multi-corner what-if must answer every sign-off corner.  The naive
shape is a loop: one forward per corner.  The served shape packs the C
corner views — which share every feature array with the base sample, so
packing is near-free — into a single ``PackedBatch`` whose corner ids
route each endpoint chunk through its own corner embedding, and runs
**one** forward.  The win is the same amortization the multi-design
pack buys (python dispatch per level/layer, small-matrix BLAS calls),
except here the batch materializes out of thin air: C model evaluations
for one design's worth of feature memory.

This benchmark times both shapes over the full standard corner set,
asserts the packed path's speedup, and re-checks the equivalence
contract (packed == per-corner loop to 1e-9 relative) on the same
views — a fast wrong answer is worthless.
"""

import time

import numpy as np

from repro.core import ModelConfig, TimingPredictor, TrainerConfig
from repro.flow import FlowConfig, run_flow
from repro.ml.dataset import build_corner_samples
from repro.timing import STANDARD_CORNERS

from benchmarks.conftest import emit_bench, run_once

CORNERS = tuple(STANDARD_CORNERS)  # base, typ, fast, slow
#: Small designs make the sharpest contrast: each per-corner call is
#: dominated by fixed dispatch overhead, which packing amortizes away.
FLOW_CONFIG = FlowConfig(scale=0.05, base_seed=0, corners=CORNERS)
MAP_BINS = 32
REPEATS = 20     # timing repeats (minimum taken)


def _best_times(*fns) -> list:
    """Best-of-``REPEATS`` for each fn, repeats interleaved (see
    ``bench_batch._best_times`` for why interleaving keeps the minima
    comparable under machine-load drift)."""
    times = [[] for _ in fns]
    for _ in range(REPEATS):
        for slot, fn in zip(times, fns):
            t0 = time.perf_counter()
            fn()
            slot.append(time.perf_counter() - t0)
    return [min(slot) for slot in times]


def test_packed_all_corner_whatif_vs_loop(benchmark):
    def scenario():
        flow = run_flow("xgate", FLOW_CONFIG)
        views = build_corner_samples(flow, map_bins=MAP_BINS, seed=0)
        predictor = TimingPredictor(
            model_config=ModelConfig(map_bins=MAP_BINS,
                                     corner_names=CORNERS),
            trainer_config=TrainerConfig(epochs=2))
        predictor.fit(views)

        predictor.predict_batch_arrays(views)  # prime caches
        loop, packed = _best_times(
            lambda: [predictor.predict_batch_arrays([v]) for v in views],
            lambda: predictor.predict_batch_arrays(views))

        per_corner = [predictor.predict_batch_arrays([v])[0]
                      for v in views]
        batched = predictor.predict_batch_arrays(views)
        for a, b in zip(per_corner, batched):
            np.testing.assert_allclose(np.asarray(b), np.asarray(a),
                                       rtol=1e-9, atol=0.0)
        return loop, packed

    loop, packed = run_once(benchmark, scenario)
    speedup = loop / packed
    emit_bench("corners", {
        "loop_ms": loop * 1e3, "packed_ms": packed * 1e3,
        "speedup": speedup, "corners": list(CORNERS),
    })
    print(f"\nMMMC what-if — {len(CORNERS)}-corner inference: per-corner "
          f"loop {loop * 1e3:.2f} ms vs packed {packed * 1e3:.2f} ms "
          f"({speedup:.1f}x)")
    # ~2x measured over the 4 standard corners; gated at 1.5x for the
    # same shared-runner throughput swings bench_batch budgets for.
    assert speedup >= 1.5, (
        f"packed all-corner what-if must be >=1.5x faster than the "
        f"per-corner loop, got {speedup:.1f}x")
