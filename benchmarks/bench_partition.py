"""Peak-memory benchmark for partitioned (streaming) execution.

The tentpole claim of the partition subsystem is *bounded working set at
bit-identical output*: featurization and GNN inference over the
``large`` preset (≥100k timing-graph pins) must run under a peak-RSS
ceiling that the monolithic whole-graph path exceeds, while producing
the exact same endpoint embeddings.

``ru_maxrss`` is a process-lifetime high-water mark — it can never go
back down — so the two modes cannot share a process: this file doubles
as a child program (``python benchmarks/bench_partition.py --mode
stream ...``) that builds the design, runs one forward, and prints its
memory accounting as JSON.  The pytest entry point launches one child
per mode, checks the bit-identity checksums, asserts the ceiling, and
emits ``BENCH_partition.json``.

``REPRO_BENCH_QUICK=1`` shrinks the design (CI smoke); the ceiling then
scales with the graph, and the full-path-exceeds assertion is kept.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import time
from pathlib import Path

#: Streamed chunk-size hint used by the benchmark (pins per chunk).
PARTITION_PINS = 4000
#: GNN width — wide enough that the whole-graph buffer dwarfs the
#: per-chunk one (112k nodes × 128 × 8 B ≈ 115 MB for ``large``).
HIDDEN = 128

_CHILD_ENV = "REPRO_BENCH_PARTITION_CHILD"


def _current_rss_kb() -> int:
    """Resident set size *now* (kB), from ``/proc/self/statm``."""
    with open("/proc/self/statm") as fh:
        pages = int(fh.read().split()[1])
    return pages * os.sysconf("SC_PAGE_SIZE") // 1024


def _peak_rss_kb() -> int:
    """Process-lifetime peak RSS (kB), via ``resource.getrusage``."""
    import resource

    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _build_inputs(design: str, scale, seed: int, pins):
    """Netlist → placement → graph → features → GNN-ready sample.

    Deliberately *not* the full reference flow: optimization/routing/STA
    contribute nothing to the forward under test and would dominate the
    child's runtime on a 30k-cell design.  A few placer iterations give
    realistic (non-degenerate) feature values.
    """
    from types import SimpleNamespace

    import numpy as np

    from repro.ml import build_level_plans, node_features
    from repro.netlist import DESIGN_PRESETS
    from repro.netlist.generator import generate_netlist
    from repro.placement import PlacerConfig, build_die, place
    from repro.timing import build_timing_graph

    spec = DESIGN_PRESETS[design]
    if scale:
        spec = spec.scaled(scale)
    nl = generate_netlist(spec, seed)
    die = build_die(nl, spec, seed)
    placement = place(nl, die, PlacerConfig(n_iterations=4, seed=seed))
    graph = build_timing_graph(nl)
    x_cell, x_net = node_features(nl, placement, graph, partition=pins)
    return SimpleNamespace(
        name=spec.name,
        n_nodes=graph.n_nodes,
        level=graph.level,
        plans=build_level_plans(graph),
        x_cell=x_cell,
        x_net=x_net,
        endpoint_nodes=graph.endpoints,
        source_nodes=np.where(graph.level == 0)[0],
        partition_pins=pins,
    )


def _child_main(argv) -> int:
    """Build, forward once in the requested mode, print JSON accounting."""
    import argparse

    ap = argparse.ArgumentParser()
    ap.add_argument("--mode", choices=("full", "stream"), required=True)
    ap.add_argument("--pins", type=int, default=PARTITION_PINS)
    ap.add_argument("--hidden", type=int, default=HIDDEN)
    ap.add_argument("--design", default="large")
    ap.add_argument("--scale", type=float, default=None)
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args(argv)

    import numpy as np

    from repro.core.gnn import EndpointGNN
    from repro.ml.features import CELL_FEATURE_DIM, NET_FEATURE_DIM
    from repro.nn import inference_mode
    from repro.timing.partition import build_stream_plan

    stream_mode = args.mode == "stream"
    sample = _build_inputs(args.design, args.scale, args.seed,
                           args.pins if stream_mode else None)
    # residual=False keeps the branch MLPs randomly initialized (the
    # residual recipe zero-inits them), so the checksum actually
    # exercises every matmul.
    gnn = EndpointGNN(args.hidden, CELL_FEATURE_DIM, NET_FEATURE_DIM,
                      np.random.default_rng(args.seed), residual=False)
    if stream_mode:
        plan = build_stream_plan(sample, args.pins)

    rss_before_kb = _current_rss_kb()
    peak_before_kb = _peak_rss_kb()
    t0 = time.perf_counter()
    # inference_mode matches the serving path (and the streaming memory
    # contract): no layer caches a backward activations stack.
    with inference_mode():
        if stream_mode:
            out = gnn.forward_stream(sample, plan)
        else:
            out = gnn.forward(sample,
                              training=False)[sample.endpoint_nodes]
    forward_s = time.perf_counter() - t0
    peak_after_kb = _peak_rss_kb()

    print(json.dumps({
        "mode": args.mode,
        "pins": args.pins if stream_mode else None,
        "n_chunks": len(plan.chunks) if stream_mode else 1,
        "hidden": args.hidden,
        "n_nodes": int(sample.n_nodes),
        "n_endpoints": int(len(sample.endpoint_nodes)),
        "rss_before_kb": rss_before_kb,
        "peak_before_kb": peak_before_kb,
        "peak_after_kb": peak_after_kb,
        "forward_delta_kb": peak_after_kb - peak_before_kb,
        "forward_s": round(forward_s, 4),
        "checksum": hashlib.sha256(
            np.ascontiguousarray(out, dtype=np.float64).tobytes()
        ).hexdigest(),
    }))
    return 0


def _run_child(mode: str, scale) -> dict:
    cmd = [sys.executable, os.path.abspath(__file__), "--mode", mode]
    if scale is not None:
        cmd += ["--scale", str(scale)]
    env = dict(os.environ, **{_CHILD_ENV: "1"})
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(cmd, capture_output=True, text=True, env=env,
                          timeout=900)
    assert proc.returncode == 0, \
        f"{mode} child failed:\n{proc.stdout}\n{proc.stderr}"
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _mem_available_kb() -> int:
    try:
        with open("/proc/meminfo") as fh:
            for line in fh:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return 1 << 62  # unknown — don't skip


def test_bench_partition(benchmark):
    import pytest

    from benchmarks.conftest import emit_bench, run_once

    quick = bool(os.environ.get("REPRO_BENCH_QUICK"))
    scale = 0.3 if quick else None
    # The full-mode child materializes the whole-graph buffer plus both
    # hoisted feature branches; leave generous headroom before running.
    if _mem_available_kb() < (1 << 21):  # 2 GB
        pytest.skip("not enough available RAM for the full-mode child")

    def scenario():
        return _run_child("stream", scale), _run_child("full", scale)

    stream, full = run_once(benchmark, scenario)

    assert stream["checksum"] == full["checksum"], \
        "streamed forward is not bit-identical to the whole-graph forward"
    if not quick:
        assert full["n_nodes"] >= 100_000, \
            f"'large' must exercise >=100k pins, got {full['n_nodes']}"

    # Ceiling: half of the whole-graph propagation buffer.  The full
    # path must allocate that buffer (plus feature branches), so it
    # always exceeds the ceiling; the streamed path's working set is one
    # ~PARTITION_PINS-pin chunk plus the live frontier, far under it.
    ceiling_kb = (full["n_nodes"] + 1) * HIDDEN * 8 // 2 // 1024
    assert stream["forward_delta_kb"] <= ceiling_kb, \
        (f"streamed forward peak-RSS delta {stream['forward_delta_kb']} kB "
         f"exceeds the {ceiling_kb} kB ceiling")
    assert full["forward_delta_kb"] > ceiling_kb, \
        (f"whole-graph forward stayed under the ceiling "
         f"({full['forward_delta_kb']} <= {ceiling_kb} kB) — "
         f"the benchmark is no longer measuring anything")

    emit_bench("partition", {
        "quick": quick,
        "design": "large",
        "partition_pins": stream["pins"],
        "n_chunks": stream["n_chunks"],
        "hidden": HIDDEN,
        "n_nodes": full["n_nodes"],
        "n_endpoints": full["n_endpoints"],
        "ceiling_kb": ceiling_kb,
        "stream_forward_delta_kb": stream["forward_delta_kb"],
        "full_forward_delta_kb": full["forward_delta_kb"],
        "peak_ratio": round(full["forward_delta_kb"]
                            / max(stream["forward_delta_kb"], 1), 2),
        "stream_forward_s": stream["forward_s"],
        "full_forward_s": full["forward_s"],
        "bit_identical": True,
    })
    print(f"\npartitioned execution on 'large' ({full['n_nodes']} pins, "
          f"hidden {HIDDEN}): stream peak +{stream['forward_delta_kb']} kB "
          f"({stream['n_chunks']} chunks) vs full "
          f"+{full['forward_delta_kb']} kB, ceiling {ceiling_kb} kB, "
          f"checksums equal")


if __name__ == "__main__":
    sys.exit(_child_main(sys.argv[1:]))
