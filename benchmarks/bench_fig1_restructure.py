"""Fig. 1 — netlist restructuring during timing optimization.

Reproduces the paper's motivating example: a sub-netlist is replaced by the
optimizer, which removes the original pins and makes the replaced arcs
unlabelable.  The benchmark decomposes a wide gate (the paper's example
replaces multi-input gates with more efficient two-input trees) and shows
the input-feature / ground-truth mismatch.
"""

from repro.netlist import DESIGN_PRESETS, generate_netlist
from repro.opt import OptReport, decompose_gate, diff_replaced_edges
from repro.placement import RowGrid, build_die, legalize, place

from benchmarks.conftest import run_once


def _setup():
    spec = DESIGN_PRESETS["xgate"].scaled(0.3)
    nl = generate_netlist(spec)
    die = build_die(nl, spec)
    pl = place(nl, die)
    legalize(nl, pl)
    return nl, pl


def test_fig1_restructure(benchmark):
    nl, pl = _setup()

    def scenario():
        opt = nl.clone()
        opt_pl = type(pl)(die=pl.die, cell_xy=dict(pl.cell_xy))
        grid = RowGrid.from_placement(opt, opt_pl)
        wide = next(cid for cid in sorted(opt.cells)
                    if opt.cell_type(cid).n_inputs >= 3
                    and not opt.cell_type(cid).is_sequential)
        before = opt.cells[wide].type_name
        new_cells = decompose_gate(opt, opt_pl, grid, wide)
        report = OptReport(design="fig1")
        diff_replaced_edges(nl, opt, report)
        return before, new_cells, report, opt

    before, new_cells, report, opt = run_once(benchmark, scenario)
    print(f"\nFig. 1 (reproduced): {before} replaced by "
          f"{[opt.cells[c].type_name for c in new_cells]}")
    print(f"replaced cell edges: {len(report.replaced_cell_edges)} "
          f"(the paper's C1–C4: arcs that can no longer be labeled)")
    print(f"replaced net edges:  {len(report.replaced_net_edges)}")
    assert new_cells is not None
    assert len(report.replaced_cell_edges) >= 3
    assert len(report.replaced_net_edges) >= 3
