"""Ablation — endpoint-wise masking vs. a shared global layout map.

Section V-B argues that sharing one layout embedding across all endpoints
"does not make sense" because the optimizer's impact differs per endpoint.
This ablation trains the full model twice: once with the real critical-
region masks, once with all-ones masks (every endpoint sees the whole
layout), and compares held-out R².
"""

import numpy as np

from repro.core import ModelConfig, RestructureTolerantModel, Trainer, TrainerConfig
from repro.eval import r2_score

from benchmarks.conftest import run_once


def _train_and_eval(train, test, break_masks: bool):
    if break_masks:
        train = [_with_full_masks(s) for s in train]
        test = [_with_full_masks(s) for s in test]
    model = RestructureTolerantModel(ModelConfig(variant="full"))
    trainer = Trainer(model, TrainerConfig(epochs=80))
    trainer.fit(train)
    return float(np.mean([r2_score(s.y, trainer.predict(s)) for s in test]))


def _with_full_masks(sample):
    import copy
    clone = copy.copy(sample)
    clone.masks = np.ones_like(sample.masks)
    return clone


def test_ablation_masking(benchmark, train_samples, test_samples):
    def scenario():
        with_masks = _train_and_eval(train_samples, test_samples,
                                     break_masks=False)
        without = _train_and_eval(train_samples, test_samples,
                                  break_masks=True)
        return with_masks, without

    with_masks, without = run_once(benchmark, scenario)
    print(f"\nAblation — endpoint masking: with masks R² {with_masks:.4f}, "
          f"shared global map R² {without:.4f}")
    # The masked variant should not be worse by a wide margin; typically it
    # wins because per-endpoint layout context is what varies.
    assert with_masks > without - 0.05
