"""Packed-batch engine — one multi-design forward vs. the per-design loop.

The packed execution engine (:mod:`repro.ml.batch`) disjoint-unions many
design graphs into one and runs a single forward pass; its win is
amortizing the per-call overhead (python dispatch per level/layer, cache
bookkeeping, small-matrix BLAS calls) across designs.  This benchmark
packs a fleet of samples, measures the per-design ``predict_array`` loop
against one ``predict_batch_arrays`` call, asserts the packed path's
speedup, and — because a fast wrong answer is worthless — re-checks the
fp-equivalence contract (packed == per-design to 1e-9 relative) on the
same fleet.

Timing uses the best of ``REPEATS`` runs: on a small shared machine the
minimum is the schedule-noise-free estimate of each path's cost, and
taking it for *both* paths keeps the comparison fair.
"""

import time

import numpy as np

from repro.core import ModelConfig, TimingPredictor, TrainerConfig
from repro.core.predictor import FP32_TOLERANCE, INT8_R2_BUDGET
from repro.flow import FlowConfig, run_flow
from repro.ml.batch import PackedBatch
from repro.ml.dataset import build_sample
from repro.ml.plancache import PLAN_CACHE
from repro.nn import inference_mode, workspace

from benchmarks.conftest import emit_bench, run_once

DESIGNS = ("xgate", "steelcore")
#: Small designs make the sharpest contrast: each per-design call is
#: dominated by fixed dispatch overhead, which packing amortizes away.
FLOW_CONFIG = FlowConfig(scale=0.05, base_seed=0)
MAP_BINS = 32
FLEET = 32       # samples per packed inference
REPEATS = 20     # timing repeats (minimum taken)


def _fleet_samples():
    base = [build_sample(run_flow(d, FLOW_CONFIG), map_bins=MAP_BINS,
                         seed=0) for d in DESIGNS]
    return [base[i % len(base)] for i in range(FLEET)], base


def _fitted_predictor(samples) -> TimingPredictor:
    predictor = TimingPredictor(
        model_config=ModelConfig(map_bins=MAP_BINS),
        trainer_config=TrainerConfig(epochs=2))
    predictor.fit(samples)
    return predictor


def _best_time(fn) -> float:
    return _best_times(fn)[0]


def _best_times(*fns) -> list:
    """Best-of-``REPEATS`` for each fn, with the repeats *interleaved*.

    Timing each shape in its own consecutive block lets machine-load
    drift between blocks masquerade as a real difference; one round
    per repeat that times every shape back-to-back exposes all of them
    to the same noise, so the minima stay comparable.
    """
    times = [[] for _ in fns]
    for _ in range(REPEATS):
        for slot, fn in zip(times, fns):
            t0 = time.perf_counter()
            fn()
            slot.append(time.perf_counter() - t0)
    return [min(slot) for slot in times]


def test_packed_vs_per_design(benchmark):
    def scenario():
        fleet, base = _fleet_samples()
        predictor = _fitted_predictor(base)

        loop, packed = _best_times(
            lambda: [predictor.predict_array(s) for s in fleet],
            lambda: predictor.predict_batch_arrays(fleet))

        per_design = [predictor.predict_array(s) for s in fleet]
        batched = predictor.predict_batch_arrays(fleet)
        for a, b in zip(per_design, batched):
            np.testing.assert_allclose(b, a, rtol=1e-9, atol=0.0)
        return loop, packed

    loop, packed = run_once(benchmark, scenario)
    speedup = loop / packed
    emit_bench("batch", {"loop_ms": loop * 1e3, "packed_ms": packed * 1e3,
                         "speedup": speedup, "fleet": FLEET})
    print(f"\nPacked batch — {FLEET}-design inference: per-design loop "
          f"{loop * 1e3:.1f} ms vs packed {packed * 1e3:.1f} ms "
          f"({speedup:.1f}x)")
    # ~2x typical; gated at 1.5x because (a) shared-runner BLAS/memory
    # throughput swings the absolute times +/-30% minute to minute (the
    # same commit measures 1.8x-2.4x back to back), and (b) the
    # per-design loop baseline itself got faster once plan orders were
    # cached per sample, which conservatively shrinks the ratio.
    assert speedup >= 1.5, (
        f"packed multi-design inference must be >=1.5x faster than the "
        f"per-design loop, got {speedup:.1f}x")


def test_warm_path_vs_cold(benchmark):
    """The allocation/precision tier vs the pre-tier per-call baseline.

    Three timed shapes of the same packed inference:

    * **cold** — a fresh worker's first call: re-merge the level plans
      AND allocate every intermediate fresh;
    * **baseline** — what every repeat call paid before this tier
      existed (the merge memo already existed, so topology is reused,
      but every intermediate is allocated fresh at fp64);
    * **warm** — plan cache + workspace arena, measured at fp64 (must
      be bit-identical to cold) and at fp32 (the tier's speed lever,
      tolerance-budgeted in ``test_precision_tiers``).

    The headline gate is warm-fp32 >= 1.3x the baseline; fp64 warm must
    never be slower than cold (merge + allocations are pure overhead).
    """
    def scenario():
        fleet, base = _fleet_samples()
        predictor = _fitted_predictor(base)

        def cold():
            PLAN_CACHE.clear()
            predictor.use_workspace = False
            try:
                return predictor.predict_batch_arrays(fleet)
            finally:
                predictor.use_workspace = True

        def baseline():
            predictor.use_workspace = False
            try:
                return predictor.predict_batch_arrays(fleet)
            finally:
                predictor.use_workspace = True

        predictor.predict_batch_arrays(fleet)  # prime caches
        cold_t, baseline_t, warm_t = _best_times(
            cold, baseline,
            lambda: predictor.predict_batch_arrays(fleet))

        cold_out = cold()
        warm_out = predictor.predict_batch_arrays(fleet)
        for a, b in zip(cold_out, warm_out):
            np.testing.assert_array_equal(np.asarray(a), np.asarray(b))

        predictor.set_precision("fp32")
        warm32_t = _best_time(
            lambda: predictor.predict_batch_arrays(fleet))
        predictor.set_precision("fp64")

        ops = _op_timings(predictor, fleet)
        return cold_t, baseline_t, warm_t, warm32_t, ops, predictor

    cold_t, baseline_t, warm_t, warm32_t, ops, predictor = run_once(
        benchmark, scenario)
    fp64_speedup = cold_t / warm_t
    tier_speedup = baseline_t / warm32_t
    emit_bench("batch_warm", {
        "cold_ms": cold_t * 1e3, "baseline_ms": baseline_t * 1e3,
        "warm_fp64_ms": warm_t * 1e3, "warm_fp32_ms": warm32_t * 1e3,
        "fp64_speedup_vs_cold": fp64_speedup,
        "tier_speedup_vs_baseline": tier_speedup,
        "fleet": FLEET, "ops_ms": ops,
        "workspace": predictor._workspace.describe(),
        "plan_cache": PLAN_CACHE.describe(),
    })
    print(f"\nWarm packed inference — {FLEET} designs: cold "
          f"{cold_t * 1e3:.1f} ms, baseline {baseline_t * 1e3:.1f} ms, "
          f"warm fp64 {warm_t * 1e3:.1f} ms ({fp64_speedup:.2f}x vs "
          f"cold), warm fp32 {warm32_t * 1e3:.1f} ms "
          f"({tier_speedup:.2f}x vs baseline); ops "
          f"{ {k: round(v, 2) for k, v in ops.items()} }")
    # Cold = warm + plan merge + fresh allocations, so warm should win;
    # min-of-REPEATS interleaved timing still jitters a few percent on a
    # shared machine, hence the 10% allowance.
    assert warm_t <= cold_t * 1.10, (
        f"warm fp64 packed inference must not be slower than the cold "
        f"path, got warm {warm_t * 1e3:.1f} ms vs cold "
        f"{cold_t * 1e3:.1f} ms")
    assert tier_speedup >= 1.3, (
        f"the warm inference tier (plan cache + arena + fp32) must be "
        f">=1.3x the pre-tier fp64 baseline, got {tier_speedup:.2f}x")


def _op_timings(predictor, fleet) -> dict:
    """Best-of-REPEATS per-op milliseconds on the warm path."""
    model = predictor.model
    batch = PackedBatch.pack(fleet)
    ws = predictor._workspace

    def scoped(fn):
        def run():
            with inference_mode(), workspace(ws):
                return fn()
        return run

    ops = {
        "pack_warm": _best_time(
            scoped(lambda: PackedBatch.pack(fleet))) * 1e3,
        "forward": _best_time(
            scoped(lambda: model.forward_batch(batch,
                                               training=False))) * 1e3,
    }
    if model.gnn is not None:
        ops["gnn"] = _best_time(
            scoped(lambda: model.gnn.forward(batch,
                                             training=False))) * 1e3
    if model.cnn is not None:
        ops["cnn"] = _best_time(
            scoped(lambda: model.cnn.forward_batch(
                batch.layout_stacks))) * 1e3
    return ops


def _r2(pred: np.ndarray, truth: np.ndarray) -> float:
    truth = np.asarray(truth, dtype=np.float64)
    pred = np.asarray(pred, dtype=np.float64)
    ss_res = float(((truth - pred) ** 2).sum())
    ss_tot = float(((truth - truth.mean()) ** 2).sum())
    return 1.0 - ss_res / max(ss_tot, 1e-12)


def test_precision_tiers(benchmark):
    """fp32 within its tolerance budget, int8 within the R2 budget,
    and fp64 bit-identical across a set-and-restore round trip."""
    def scenario():
        fleet, base = _fleet_samples()
        predictor = _fitted_predictor(base)

        ref = [np.array(a) for a in predictor.predict_batch_arrays(fleet)]
        fp64_t = _best_time(lambda: predictor.predict_batch_arrays(fleet))

        predictor.set_precision("fp32")
        out32 = predictor.predict_batch_arrays(fleet)
        fp32_t = _best_time(lambda: predictor.predict_batch_arrays(fleet))

        predictor.set_precision("int8")
        out8 = predictor.predict_batch_arrays(fleet)

        predictor.set_precision("fp64")
        back = predictor.predict_batch_arrays(fleet)
        return fleet, ref, out32, out8, back, fp64_t, fp32_t

    fleet, ref, out32, out8, back, fp64_t, fp32_t = run_once(benchmark,
                                                             scenario)
    # fp64 restore is bit-identical: precision tiers never contaminate
    # the default path.
    for a, b in zip(ref, back):
        np.testing.assert_array_equal(np.asarray(a), np.asarray(b))
    # fp32 stays inside its declared tolerance budget (ps).
    fp32_err = 0.0
    for a, b in zip(ref, out32):
        np.testing.assert_allclose(np.asarray(b), np.asarray(a),
                                   **FP32_TOLERANCE)
        denom = np.maximum(np.abs(np.asarray(a)), 1e-9)
        fp32_err = max(fp32_err,
                       float((np.abs(np.asarray(b, dtype=np.float64)
                                     - np.asarray(a)) / denom).max()))
    # int8 guard: endpoint-arrival R2 (the Table II metric) may degrade
    # at most INT8_R2_BUDGET against the fp64 reference on this fleet.
    truth = np.concatenate([s.y for s in fleet])
    r2_fp64 = _r2(np.concatenate([np.asarray(a) for a in ref]), truth)
    r2_int8 = _r2(np.concatenate([np.asarray(a) for a in out8]), truth)
    emit_bench("precision", {
        "fp64_ms": fp64_t * 1e3, "fp32_ms": fp32_t * 1e3,
        "fp32_speedup": fp64_t / fp32_t,
        "fp32_max_rel_err": fp32_err,
        "fp32_tolerance": dict(FP32_TOLERANCE),
        "r2_fp64": r2_fp64, "r2_int8": r2_int8,
        "int8_r2_budget": INT8_R2_BUDGET, "fleet": FLEET,
    })
    print(f"\nPrecision tiers — fp64 {fp64_t * 1e3:.1f} ms, fp32 "
          f"{fp32_t * 1e3:.1f} ms ({fp64_t / fp32_t:.2f}x); fp32 max rel "
          f"err {fp32_err:.2e}; R2 fp64 {r2_fp64:.4f} vs int8 "
          f"{r2_int8:.4f}")
    assert r2_int8 >= r2_fp64 - INT8_R2_BUDGET, (
        f"int8 endpoint-arrival R2 {r2_int8:.4f} degrades more than the "
        f"{INT8_R2_BUDGET} budget below fp64's {r2_fp64:.4f}")
