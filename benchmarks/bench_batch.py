"""Packed-batch engine — one multi-design forward vs. the per-design loop.

The packed execution engine (:mod:`repro.ml.batch`) disjoint-unions many
design graphs into one and runs a single forward pass; its win is
amortizing the per-call overhead (python dispatch per level/layer, cache
bookkeeping, small-matrix BLAS calls) across designs.  This benchmark
packs a fleet of samples, measures the per-design ``predict_array`` loop
against one ``predict_batch_arrays`` call, asserts the packed path's
speedup, and — because a fast wrong answer is worthless — re-checks the
fp-equivalence contract (packed == per-design to 1e-9 relative) on the
same fleet.

Timing uses the best of ``REPEATS`` runs: on a small shared machine the
minimum is the schedule-noise-free estimate of each path's cost, and
taking it for *both* paths keeps the comparison fair.
"""

import time

import numpy as np

from repro.core import ModelConfig, TimingPredictor, TrainerConfig
from repro.flow import FlowConfig, run_flow
from repro.ml.dataset import build_sample

from benchmarks.conftest import emit_bench, run_once

DESIGNS = ("xgate", "steelcore")
#: Small designs make the sharpest contrast: each per-design call is
#: dominated by fixed dispatch overhead, which packing amortizes away.
FLOW_CONFIG = FlowConfig(scale=0.05, base_seed=0)
MAP_BINS = 32
FLEET = 32       # samples per packed inference
REPEATS = 20     # timing repeats (minimum taken)


def _fleet_samples():
    base = [build_sample(run_flow(d, FLOW_CONFIG), map_bins=MAP_BINS,
                         seed=0) for d in DESIGNS]
    return [base[i % len(base)] for i in range(FLEET)], base


def _fitted_predictor(samples) -> TimingPredictor:
    predictor = TimingPredictor(
        model_config=ModelConfig(map_bins=MAP_BINS),
        trainer_config=TrainerConfig(epochs=2))
    predictor.fit(samples)
    return predictor


def _best_time(fn) -> float:
    times = []
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def test_packed_vs_per_design(benchmark):
    def scenario():
        fleet, base = _fleet_samples()
        predictor = _fitted_predictor(base)

        loop = _best_time(
            lambda: [predictor.predict_array(s) for s in fleet])
        packed = _best_time(
            lambda: predictor.predict_batch_arrays(fleet))

        per_design = [predictor.predict_array(s) for s in fleet]
        batched = predictor.predict_batch_arrays(fleet)
        for a, b in zip(per_design, batched):
            np.testing.assert_allclose(b, a, rtol=1e-9, atol=0.0)
        return loop, packed

    loop, packed = run_once(benchmark, scenario)
    speedup = loop / packed
    emit_bench("batch", {"loop_ms": loop * 1e3, "packed_ms": packed * 1e3,
                         "speedup": speedup, "fleet": FLEET})
    print(f"\nPacked batch — {FLEET}-design inference: per-design loop "
          f"{loop * 1e3:.1f} ms vs packed {packed * 1e3:.1f} ms "
          f"({speedup:.1f}x)")
    assert speedup >= 2.0, (
        f"packed multi-design inference must be >=2x faster than the "
        f"per-design loop, got {speedup:.1f}x")
