"""Ablation — residual GNN cell update vs. the paper-literal Eq. (3).

DESIGN.md documents one intentional deviation from the paper: an identity
path through the cell-node update (zero-initialized branch MLPs).  The
paper's plain form pushes every embedding through one MLP per topological
level (~60 of them), which is untrainable at our scale.  This ablation
quantifies the difference.
"""

import numpy as np

from repro.core import ModelConfig, RestructureTolerantModel, Trainer, TrainerConfig
from repro.eval import r2_score

from benchmarks.conftest import run_once


def _train_and_eval(train, test, residual: bool) -> float:
    model = RestructureTolerantModel(
        ModelConfig(variant="gnn", gnn_residual=residual))
    trainer = Trainer(model, TrainerConfig(epochs=40))
    trainer.fit(train)
    return float(np.mean([r2_score(s.y, trainer.predict(s)) for s in test]))


def test_ablation_residual(benchmark, train_samples, test_samples):
    def scenario():
        return (_train_and_eval(train_samples, test_samples, True),
                _train_and_eval(train_samples, test_samples, False))

    with_res, without_res = run_once(benchmark, scenario)
    print(f"\nAblation — GNN residual path: residual R² {with_res:.4f}, "
          f"paper-literal Eq.(3) R² {without_res:.4f}")
    assert with_res > without_res, \
        "the residual path is what makes deep cones trainable here"
