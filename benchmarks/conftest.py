"""Shared fixtures for the benchmark harness.

Benchmarks regenerate every table and figure of the paper.  Heavy artifacts
(the ten reference flows) are cached under ``data/cache`` so re-runs are
fast; each benchmark prints the regenerated table so the output can be
compared with the paper side by side (see EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.flow import FlowConfig
from repro.ml import build_dataset
from repro.netlist import TEST_DESIGNS, TRAIN_DESIGNS

CACHE_DIR = Path(__file__).resolve().parent.parent / "data" / "cache"
ARTIFACTS = Path(__file__).resolve().parent.parent / "data" / "artifacts"


@pytest.fixture(scope="session")
def artifacts_dir() -> Path:
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    return ARTIFACTS


@pytest.fixture(scope="session")
def train_samples():
    """The five training designs (cached flows)."""
    return build_dataset(list(TRAIN_DESIGNS), cache_dir=CACHE_DIR)


@pytest.fixture(scope="session")
def train_samples_augmented(train_samples):
    """Training designs plus two seed-augmented placements each."""
    out = list(train_samples)
    for seed in (1, 2):
        out += build_dataset(list(TRAIN_DESIGNS),
                             flow_config=FlowConfig(base_seed=seed),
                             cache_dir=CACHE_DIR, seed=seed)
    return out


@pytest.fixture(scope="session")
def test_samples():
    """The five held-out test designs (cached flows)."""
    return build_dataset(list(TEST_DESIGNS), cache_dir=CACHE_DIR)


@pytest.fixture(scope="session")
def all_samples(train_samples, test_samples):
    return list(train_samples) + list(test_samples)


def run_once(benchmark, fn):
    """Run a heavy experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


BENCH_OUT = Path(__file__).resolve().parent.parent / "data" / "bench"

#: Prior headline entries carried forward per benchmark artifact.
BENCH_HISTORY = 8


def emit_bench(name: str, payload: dict) -> Path:
    """Write a benchmark's headline numbers to ``BENCH_<name>.json``.

    Every benchmark emits its measurements as a small machine-readable
    artifact under ``data/bench/`` so CI can upload them and runs can be
    compared over time without scraping stdout.  The write is atomic
    (temp file + rename) — a benchmark killed mid-emit can no longer
    leave a truncated JSON behind — and a corrupt existing file is
    logged and overwritten rather than crashing the run.  The previous
    run's headline numbers are carried forward under ``history`` (most
    recent first, bounded) so a single artifact shows the trend.
    """
    import platform
    import time

    from repro.utils import atomic_json_dump, get_logger, load_json_or_none

    BENCH_OUT.mkdir(parents=True, exist_ok=True)
    out = dict(payload)
    out.setdefault("bench", name)
    out.setdefault("unix_time", time.time())
    out.setdefault("python", platform.python_version())
    try:
        import os

        out.setdefault("cpus", len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        pass
    path = BENCH_OUT / f"BENCH_{name}.json"
    prior = load_json_or_none(path, get_logger("bench.emit"))
    if isinstance(prior, dict):
        history = [{k: v for k, v in prior.items() if k != "history"}]
        history += list(prior.get("history", []))
        out["history"] = history[:BENCH_HISTORY]
    atomic_json_dump(out, path)
    return path
