"""Shared fixtures for the benchmark harness.

Benchmarks regenerate every table and figure of the paper.  Heavy artifacts
(the ten reference flows) are cached under ``data/cache`` so re-runs are
fast; each benchmark prints the regenerated table so the output can be
compared with the paper side by side (see EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.flow import FlowConfig
from repro.ml import build_dataset
from repro.netlist import TEST_DESIGNS, TRAIN_DESIGNS

CACHE_DIR = Path(__file__).resolve().parent.parent / "data" / "cache"
ARTIFACTS = Path(__file__).resolve().parent.parent / "data" / "artifacts"


@pytest.fixture(scope="session")
def artifacts_dir() -> Path:
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    return ARTIFACTS


@pytest.fixture(scope="session", autouse=True)
def _bench_tracing():
    """Keep the in-memory tracer on for the whole benchmark session.

    Every instrumented op (flow stages, ``model.pre``, ``model.infer``,
    NLDM batches, ...) records a span; :func:`emit_bench` folds the
    spans recorded since the previous emit into each benchmark's JSON
    artifact as op-level numbers.
    """
    from repro.obs import configure_tracing

    return configure_tracing(enabled=True)


@pytest.fixture(scope="session")
def train_samples():
    """The five training designs (cached flows)."""
    return build_dataset(list(TRAIN_DESIGNS), cache_dir=CACHE_DIR)


@pytest.fixture(scope="session")
def train_samples_augmented(train_samples):
    """Training designs plus two seed-augmented placements each."""
    out = list(train_samples)
    for seed in (1, 2):
        out += build_dataset(list(TRAIN_DESIGNS),
                             flow_config=FlowConfig(base_seed=seed),
                             cache_dir=CACHE_DIR, seed=seed)
    return out


@pytest.fixture(scope="session")
def test_samples():
    """The five held-out test designs (cached flows)."""
    return build_dataset(list(TEST_DESIGNS), cache_dir=CACHE_DIR)


@pytest.fixture(scope="session")
def all_samples(train_samples, test_samples):
    return list(train_samples) + list(test_samples)


def run_once(benchmark, fn):
    """Run a heavy experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


BENCH_OUT = Path(__file__).resolve().parent.parent / "data" / "bench"

#: Prior headline entries carried forward per benchmark artifact.
BENCH_HISTORY = 8

#: Index of the first tracer event not yet folded into an artifact.
_ops_cursor = 0


def _drain_ops():
    """Aggregate tracer spans recorded since the previous ``emit_bench``.

    Returns a per-span-name dict (count / total / mean / max seconds) or
    ``None`` when nothing was traced — so each artifact carries the
    op-level numbers of *its own* benchmark, not the whole session.
    """
    global _ops_cursor
    from repro.obs import aggregate_trace, get_tracer

    events = get_tracer().events()
    fresh, _ops_cursor = events[_ops_cursor:], len(events)
    if not fresh:
        return None
    report = aggregate_trace(fresh)
    return {name: {"count": st.count,
                   "total_s": round(st.total_s, 6),
                   "mean_s": round(st.mean_s, 6),
                   "max_s": round(st.max_s, 6)}
            for name, st in sorted(report.stages.items())}


def emit_bench(name: str, payload: dict) -> Path:
    """Write a benchmark's headline numbers to ``BENCH_<name>.json``.

    Every benchmark emits its measurements as a small machine-readable
    artifact under ``data/bench/`` so CI can upload them and runs can be
    compared over time without scraping stdout.  The write is atomic
    (temp file + rename) — a benchmark killed mid-emit can no longer
    leave a truncated JSON behind — and a corrupt existing file is
    logged and overwritten rather than crashing the run.  The previous
    run's headline numbers are carried forward under ``history`` (most
    recent first, bounded) so a single artifact shows the trend.

    Op-level numbers ride along under ``ops``: tracer spans recorded
    since the previous emit, aggregated per span name (see
    :func:`_drain_ops`).  A payload may pre-set ``ops`` to override.
    """
    import platform
    import time

    from repro.utils import atomic_json_dump, get_logger, load_json_or_none

    BENCH_OUT.mkdir(parents=True, exist_ok=True)
    out = dict(payload)
    out.setdefault("bench", name)
    ops = _drain_ops()
    if ops and "ops" not in out:
        out["ops"] = ops
    out.setdefault("unix_time", time.time())
    out.setdefault("python", platform.python_version())
    try:
        import os

        out.setdefault("cpus", len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        pass
    path = BENCH_OUT / f"BENCH_{name}.json"
    prior = load_json_or_none(path, get_logger("bench.emit"))
    if isinstance(prior, dict):
        # Headline numbers only: the per-run ``ops`` block is bulky and
        # reproducible from the run's own artifact.
        history = [{k: v for k, v in prior.items()
                    if k not in ("history", "ops")}]
        history += list(prior.get("history", []))
        out["history"] = history[:BENCH_HISTORY]
    atomic_json_dump(out, path)
    return path
