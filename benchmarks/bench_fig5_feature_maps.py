"""Fig. 5 — layout feature maps (cell density, RUDY, macro region).

Regenerates the paper's figure for the same two designs it shows — the
or1200 CPU core and the rocket SoC — at the paper's 512×512 resolution,
saves the arrays, and prints coarse ASCII renderings so the distinguishing
structure between the designs is visible in the log.
"""

import numpy as np

from repro.flow import FlowConfig, run_flow
from repro.placement import compute_layout_maps

from benchmarks.conftest import run_once

ASCII = " .:-=+*#%@"


def _ascii(map2d: np.ndarray, side: int = 16) -> str:
    m, n = map2d.shape
    ds = map2d.reshape(side, m // side, side, n // side).mean(axis=(1, 3))
    ds = ds / max(ds.max(), 1e-9)
    # Transpose so x runs right and y runs up, like a die plot.
    rows = []
    for j in reversed(range(side)):
        rows.append("".join(ASCII[int(v * (len(ASCII) - 1))]
                            for v in ds[:, j]))
    return "\n".join(rows)


def test_fig5_feature_maps(benchmark, artifacts_dir):
    def scenario():
        out = {}
        for name in ("or1200", "rocket"):
            flow = run_flow(name, FlowConfig())
            maps = compute_layout_maps(flow.input_netlist,
                                       flow.input_placement, m=512, n=512)
            out[name] = maps
        return out

    maps_by_design = run_once(benchmark, scenario)
    for name, maps in maps_by_design.items():
        np.save(artifacts_dir / f"fig5_{name}_density.npy", maps.cell_density)
        np.save(artifacts_dir / f"fig5_{name}_rudy.npy", maps.rudy)
        np.save(artifacts_dir / f"fig5_{name}_macro.npy", maps.macro)
        print(f"\nFig. 5 (reproduced) — {name}: cell density | RUDY | macro")
        blocks = [_ascii(maps.cell_density), _ascii(maps.rudy),
                  _ascii(maps.macro)]
        for rows in zip(*(b.splitlines() for b in blocks)):
            print("   ".join(rows))

        # Shape: macro regions must be cell-free and RUDY positive.
        assert maps.cell_density.max() > 0
        assert maps.rudy.max() > 0
        assert maps.macro.max() == 1.0

    # The two designs must be visibly different (paper's point).
    a = maps_by_design["or1200"].cell_density
    b = maps_by_design["rocket"].cell_density
    assert a.shape == b.shape == (512, 512)
    assert not np.allclose(a, b)
