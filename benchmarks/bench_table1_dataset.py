"""Table I — dataset statistics and the impact of timing optimization.

Regenerates, for every benchmark design, the flow with and without the
timing optimizer and reports the sign-off deltas: Δwns, Δtns, the fraction
of replaced net/cell edges, and the delay change on unreplaced edges.

Paper shape to reproduce: large Δwns/Δtns (≈90 %+), ~30–50 % net edges and
~10–40 % cell edges replaced, net replacement > cell replacement.
"""

from repro.eval.experiments import format_table1, run_table1
from repro.netlist import DESIGN_PRESETS

from benchmarks.conftest import run_once


def test_table1(benchmark):
    rows = run_once(benchmark, lambda: run_table1(sorted(DESIGN_PRESETS)))
    print()
    print(format_table1(rows))

    avg_net = sum(r.net_replaced for r in rows) / len(rows)
    avg_cell = sum(r.cell_replaced for r in rows) / len(rows)
    avg_tns = sum(r.d_tns for r in rows) / len(rows)
    print(f"\navg: Δtns {avg_tns:.1%}, net replaced {avg_net:.1%}, "
          f"cell replaced {avg_cell:.1%} "
          f"(paper: 92.8–98.2 %, ~40 %, ~21 %)")

    # Shape assertions (loose: the substrate is a simulator).
    assert avg_tns > 0.5, "optimization should strongly improve TNS"
    assert 0.15 < avg_net < 0.8
    assert 0.05 < avg_cell < 0.6
    assert avg_net > avg_cell, "nets are replaced more than cells"
