"""Table II — accuracy comparison against the prior local-view evaluators.

Trains the three baselines ([2] DAC'19, [3] DAC'22-He, [4] DAC'22-Guo) and
our three variants (CNN-only, GNN-only, full) on the five training designs
and evaluates endpoint-arrival R² on the five held-out designs; the
baselines' local-delay R² fills the left columns.

Paper shape to reproduce: our full model best on average, GNN-only second,
CNN-only ≈ 0; the local-view baselines degrade under restructuring and
their local-delay R² is low/inconsistent with their endpoint R².
"""

import numpy as np

from repro.eval.experiments import format_table2, run_table2

from benchmarks.conftest import run_once


def test_table2(benchmark, train_samples_augmented, test_samples):
    result = run_once(
        benchmark,
        lambda: run_table2(train_samples_augmented, test_samples,
                           epochs=150))
    print()
    print(format_table2(result))
    avg = result.averages()
    print(f"\n(paper avgs: DAC19 0.497, DAC22-he 0.621, DAC22-guo 0.607, "
          f"CNN-only -0.028, GNN-only 0.796, full 0.872)")

    # Shape assertions.  (DAC22-guo is deliberately NOT asserted against:
    # in this reproduction its dense per-pin arrival supervision helps more
    # than it hurts — see EXPERIMENTS.md for the discussion.)
    assert avg["our full"] > avg["DAC19"]
    assert avg["our full"] > avg["DAC22-he"]
    assert avg["our full"] > avg["our CNN-only"]
    assert avg["our GNN-only"] > avg["our CNN-only"]
    assert avg["our CNN-only"] < 0.5, "layout alone must be weak"
    # Local-delay supervision is poisoned by restructuring: the two-stage
    # baselines' local fit does not carry over to endpoint accuracy, while
    # the endpoint-supervised multimodal model stays usable.
    assert avg["our full"] > 0.2
