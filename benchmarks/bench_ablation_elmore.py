"""Ablation — the classic Elmore pre-routing STA as a predictor.

The paper's introduction motivates learning-based prediction by the
imprecision of the linear RC (Elmore) model.  This benchmark measures how
the raw pre-routing STA estimate ranks against the learned models when
timing optimization is in the loop.
"""

import numpy as np

from repro.baselines import elmore_endpoint_r2
from repro.core import ModelConfig, TimingPredictor, TrainerConfig
from repro.eval import r2_score

from benchmarks.conftest import run_once


def test_ablation_elmore(benchmark, train_samples_augmented, test_samples):
    def scenario():
        elmore = float(np.mean([elmore_endpoint_r2(s)
                                for s in test_samples]))
        predictor = TimingPredictor(
            model_config=ModelConfig(variant="full"),
            trainer_config=TrainerConfig(epochs=100))
        predictor.fit(train_samples_augmented)
        ours = float(np.mean([r2_score(s.y, predictor.predict_array(s))
                              for s in test_samples]))
        return elmore, ours

    elmore, ours = run_once(benchmark, scenario)
    print(f"\nAblation — Elmore pre-route STA R² {elmore:.4f} vs "
          f"our full model R² {ours:.4f}")
    assert ours > elmore, \
        "the learned model must beat the raw pre-routing estimate"
