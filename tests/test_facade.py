"""Every symbol the lazy ``repro`` façade advertises must resolve."""

import importlib

import pytest

import repro


@pytest.mark.parametrize("name", sorted(repro.__all__))
def test_facade_symbol_resolves(name):
    value = getattr(repro, name)
    assert value is not None
    # The façade must re-export the defining module's object, not a copy.
    module = importlib.import_module(repro._EXPORTS[name])
    assert getattr(module, name) is value


def test_facade_rejects_unknown_symbols():
    with pytest.raises(AttributeError):
        repro.no_such_symbol


def test_dir_lists_the_whole_facade():
    assert set(repro.__all__) <= set(dir(repro))
