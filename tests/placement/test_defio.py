"""Tests for DEF-lite placement I/O."""

import io

import pytest

from repro.placement.defio import read_def, write_def


def roundtrip(nl, pl):
    buf = io.StringIO()
    write_def(nl, pl, buf)
    return read_def(nl, buf.getvalue()), buf.getvalue()


def test_def_roundtrip_positions(tiny_placed):
    nl, pl = tiny_placed
    back, text = roundtrip(nl, pl)
    assert "VERSION 5.8" in text
    for cid, (x, y) in pl.cell_xy.items():
        bx, by = back.cell_xy[cid]
        assert bx == pytest.approx(x, abs=1e-3)
        assert by == pytest.approx(y, abs=1e-3)


def test_def_roundtrip_die_and_ports(tiny_placed):
    nl, pl = tiny_placed
    back, _ = roundtrip(nl, pl)
    assert back.die.width == pytest.approx(pl.die.width, abs=1e-3)
    for pid, (x, y) in pl.die.port_positions.items():
        bx, by = back.die.port_positions[pid]
        assert bx == pytest.approx(x, abs=1e-3)
        assert by == pytest.approx(y, abs=1e-3)


def test_def_rejects_unknown_component(tiny_placed):
    nl, pl = tiny_placed
    buf = io.StringIO()
    write_def(nl, pl, buf)
    text = buf.getvalue().replace("- g0 ", "- mystery_cell ", 1)
    with pytest.raises(ValueError):
        read_def(nl, text)


def test_def_requires_diearea(tiny_placed):
    nl, _ = tiny_placed
    with pytest.raises(ValueError, match="DIEAREA"):
        read_def(nl, "VERSION 5.8 ;\nEND DESIGN\n")


def test_def_requires_complete_placement(tiny_placed):
    nl, pl = tiny_placed
    buf = io.StringIO()
    write_def(nl, pl, buf)
    lines = [ln for ln in buf.getvalue().splitlines()]
    # Drop one component line.
    idx = next(i for i, ln in enumerate(lines)
               if ln.startswith("- ") and "PLACED" in ln)
    del lines[idx]
    with pytest.raises(ValueError, match="every component"):
        read_def(nl, "\n".join(lines))
