"""Tests for global placement."""

import numpy as np
import pytest

from repro.netlist import DESIGN_PRESETS, generate_netlist
from repro.placement import Placement, PlacerConfig, build_die, place


@pytest.fixture(scope="module")
def placed():
    spec = DESIGN_PRESETS["xgate"].scaled(0.3)
    nl = generate_netlist(spec)
    die = build_die(nl, spec)
    return nl, die, place(nl, die)


def test_every_cell_placed_inside_die(placed):
    nl, die, pl = placed
    assert set(pl.cell_xy) == set(nl.cells)
    for x, y in pl.cell_xy.values():
        assert 0 <= x <= die.width
        assert 0 <= y <= die.height


def test_placement_is_deterministic():
    spec = DESIGN_PRESETS["xgate"].scaled(0.2)
    nl = generate_netlist(spec)
    die = build_die(nl, spec)
    a = place(nl, die)
    b = place(nl, die)
    for cid in nl.cells:
        assert a.cell_xy[cid] == b.cell_xy[cid]


def test_placement_beats_random_wirelength(placed):
    nl, die, pl = placed
    rng = np.random.default_rng(7)
    random_pl = Placement(die=die)
    for cid in nl.cells:
        random_pl.set_position(cid, rng.uniform(0, die.width),
                               rng.uniform(0, die.height))
    assert pl.total_hpwl(nl) < 0.8 * random_pl.total_hpwl(nl)


def test_placement_is_spread_out(placed):
    nl, die, pl = placed
    xs = np.array([p[0] for p in pl.cell_xy.values()])
    ys = np.array([p[1] for p in pl.cell_xy.values()])
    # Cells should cover a substantial part of the die, not collapse.
    assert xs.std() > 0.15 * die.width
    assert ys.std() > 0.15 * die.height


def test_pin_position_cells_and_ports(placed):
    nl, die, pl = placed
    port = next(iter(nl.ports.values()))
    assert pl.pin_position(nl, port.pin) == die.port_positions[port.pin]
    cell = next(iter(nl.cells.values()))
    assert pl.pin_position(nl, cell.output_pin) == pl.cell_xy[cell.cid]


def test_net_hpwl_simple(placed):
    nl, die, pl = placed
    nid = next(iter(nl.nets))
    hpwl = pl.net_hpwl(nl, nid)
    assert hpwl >= 0
    assert pl.total_hpwl(nl) >= hpwl


def test_cells_avoid_macros():
    spec = DESIGN_PRESETS["rocket"].scaled(0.15)
    nl = generate_netlist(spec)
    die = build_die(nl, spec)
    pl = place(nl, die, PlacerConfig())
    inside = sum(1 for x, y in pl.cell_xy.values() if die.in_macro(x, y))
    assert inside == 0
