"""Tests for the layout feature maps (cell density, RUDY, macro)."""

import numpy as np
import pytest

from repro.netlist import DESIGN_PRESETS, generate_netlist
from repro.placement import build_die, compute_layout_maps, legalize, place


@pytest.fixture(scope="module")
def maps_and_design():
    spec = DESIGN_PRESETS["rocket"].scaled(0.15)
    nl = generate_netlist(spec)
    die = build_die(nl, spec)
    pl = place(nl, die)
    legalize(nl, pl)
    return nl, die, pl, compute_layout_maps(nl, pl, m=32, n=32)


def test_map_shapes(maps_and_design):
    _, _, _, maps = maps_and_design
    assert maps.cell_density.shape == (32, 32)
    assert maps.rudy.shape == (32, 32)
    assert maps.macro.shape == (32, 32)
    assert maps.stacked().shape == (3, 32, 32)


def test_density_conserves_area(maps_and_design):
    nl, die, _, maps = maps_and_design
    bin_area = maps.bin_w * maps.bin_h
    total = maps.cell_density.sum() * bin_area
    assert total == pytest.approx(nl.total_cell_area(), rel=0.02)


def test_density_nonnegative_and_bounded(maps_and_design):
    _, _, _, maps = maps_and_design
    assert (maps.cell_density >= 0).all()
    # Legalized (non-overlapping) cells keep utilization near ≤ 1.
    assert maps.cell_density.max() < 1.6


def test_macro_map_matches_floorplan(maps_and_design):
    nl, die, _, maps = maps_and_design
    bin_area = maps.bin_w * maps.bin_h
    macro_area = sum(m.area for m in die.macros)
    assert maps.macro.sum() * bin_area == pytest.approx(macro_area, rel=0.02)
    assert maps.macro.max() <= 1.0


def test_rudy_positive_where_nets_are(maps_and_design):
    _, _, _, maps = maps_and_design
    assert maps.rudy.sum() > 0
    assert (maps.rudy >= 0).all()


def test_free_space_complements_density(maps_and_design):
    _, _, _, maps = maps_and_design
    free = maps.free_space()
    assert free.shape == maps.cell_density.shape
    assert (free >= 0).all() and (free <= 1).all()
    # Macro bins have no free space.
    assert free[maps.macro > 0.99].max() == pytest.approx(0.0, abs=1e-9)


def test_macro_bins_are_cell_free(maps_and_design):
    _, _, _, maps = maps_and_design
    solid_macro = maps.macro > 0.99
    if solid_macro.any():
        assert maps.cell_density[solid_macro].max() < 0.6


def test_resolution_independence(maps_and_design):
    nl, die, pl, maps32 = maps_and_design
    maps16 = compute_layout_maps(nl, pl, m=16, n=16)
    a16 = maps16.cell_density.sum() * maps16.bin_w * maps16.bin_h
    a32 = maps32.cell_density.sum() * maps32.bin_w * maps32.bin_h
    assert a16 == pytest.approx(a32, rel=0.02)
