"""Tests for floorplanning."""

import pytest

from repro.netlist import DESIGN_PRESETS, generate_preset
from repro.placement import ROW_HEIGHT, Rect, build_die


def test_rect_geometry():
    r = Rect(1.0, 2.0, 4.0, 6.0)
    assert r.width == 3.0
    assert r.height == 4.0
    assert r.area == 12.0
    assert r.center == (2.5, 4.0)
    assert r.contains(2.0, 3.0)
    assert not r.contains(0.0, 0.0)


def test_rect_overlap():
    a = Rect(0, 0, 2, 2)
    assert a.overlaps(Rect(1, 1, 3, 3))
    assert not a.overlaps(Rect(2, 0, 4, 2))  # share an edge only
    assert not a.overlaps(Rect(5, 5, 6, 6))


def test_die_sized_for_utilization():
    spec = DESIGN_PRESETS["xgate"].scaled(0.3)
    nl = generate_preset("xgate", scale=0.3)
    die = build_die(nl, spec)
    macro_area = sum(m.area for m in die.macros)
    placeable = die.width * die.height - macro_area
    util = nl.total_cell_area() / placeable
    assert 0.9 * spec.utilization <= util <= 1.1 * spec.utilization


def test_die_rows_align():
    spec = DESIGN_PRESETS["xgate"].scaled(0.3)
    nl = generate_preset("xgate", scale=0.3)
    die = build_die(nl, spec)
    assert die.n_rows == int(die.height / ROW_HEIGHT)
    assert die.height % ROW_HEIGHT == pytest.approx(0.0)


def test_macros_inside_die_and_disjoint():
    spec = DESIGN_PRESETS["rocket"].scaled(0.2)
    nl = generate_preset("rocket", scale=0.2)
    die = build_die(nl, spec)
    assert len(die.macros) == len(spec.macros)
    for m in die.macros:
        assert 0 <= m.x0 < m.x1 <= die.width + 1e-9
        assert 0 <= m.y0 < m.y1 <= die.height + 1e-9
    for i, a in enumerate(die.macros):
        for b in die.macros[i + 1:]:
            assert not a.overlaps(b)


def test_ports_on_periphery():
    spec = DESIGN_PRESETS["xgate"].scaled(0.3)
    nl = generate_preset("xgate", scale=0.3)
    die = build_die(nl, spec)
    assert len(die.port_positions) == len(nl.ports)
    for x, y in die.port_positions.values():
        on_edge = (x in (0.0, die.width)) or (y in (0.0, die.height)) \
            or x == pytest.approx(0.0) or y == pytest.approx(0.0) \
            or x == pytest.approx(die.width) or y == pytest.approx(die.height)
        assert on_edge


def test_in_macro_and_clamp():
    spec = DESIGN_PRESETS["rocket"].scaled(0.2)
    nl = generate_preset("rocket", scale=0.2)
    die = build_die(nl, spec)
    m = die.macros[0]
    cx, cy = m.center
    assert die.in_macro(cx, cy)
    x, y = die.clamp(-5.0, die.height + 10.0)
    assert 0 < x < die.width and 0 < y < die.height
