"""Tests for row legalization and the incremental site grid."""

import numpy as np
import pytest

from repro.netlist import DESIGN_PRESETS, generate_netlist
from repro.placement import (
    ROW_HEIGHT,
    SITE_WIDTH,
    RowGrid,
    build_die,
    cell_site_width,
    find_site_near,
    legalize,
    place,
    reclaim_sites,
    release_cell_sites,
)


@pytest.fixture(scope="module")
def legalized():
    spec = DESIGN_PRESETS["xgate"].scaled(0.3)
    nl = generate_netlist(spec)
    die = build_die(nl, spec)
    pl = place(nl, die)
    disp = legalize(nl, pl)
    return nl, die, pl, disp


def test_cells_on_row_grid(legalized):
    nl, die, pl, _ = legalized
    for cid, (x, y) in pl.cell_xy.items():
        assert (y - 0.5 * ROW_HEIGHT) % ROW_HEIGHT == pytest.approx(0.0)
        assert 0 <= y <= die.height


def test_no_overlaps_after_legalization(legalized):
    nl, die, pl, _ = legalized
    spans = {}
    for cid, (x, y) in pl.cell_xy.items():
        row = int(y / ROW_HEIGHT)
        w = cell_site_width(nl, cid)
        start = int(round(x / SITE_WIDTH - w / 2.0))
        for s in range(start, start + w):
            key = (row, s)
            assert key not in spans, f"site {key} claimed twice"
            spans[key] = cid


def test_displacement_is_moderate(legalized):
    nl, die, pl, disp = legalized
    assert disp < 0.15 * die.width


def test_cells_not_in_macros_after_legalization():
    spec = DESIGN_PRESETS["rocket"].scaled(0.15)
    nl = generate_netlist(spec)
    die = build_die(nl, spec)
    pl = place(nl, die)
    legalize(nl, pl)
    for x, y in pl.cell_xy.values():
        # Cell centers must not be strictly inside a macro.
        for m in die.macros:
            assert not (m.x0 + 0.25 < x < m.x1 - 0.25
                        and m.y0 + 0.25 < y < m.y1 - 0.25)


def test_find_site_near_prefers_near(legalized):
    nl, die, pl, _ = legalized
    grid = RowGrid.from_placement(nl, pl)
    new = nl.add_cell("BUF_X1")
    tx, ty = die.width / 2, die.height / 2
    assert find_site_near(nl, pl, grid, new.cid, tx, ty)
    nx, ny = pl.cell_xy[new.cid]
    assert abs(nx - tx) + abs(ny - ty) <= 25.0


def test_find_site_respects_max_disp(legalized):
    nl, die, pl, _ = legalized
    grid = RowGrid(die)
    grid.occupied[:, :] = True  # everything full
    new = nl.add_cell("BUF_X1")
    assert not find_site_near(nl, pl, grid, new.cid, 1.0, 1.0, max_disp=5.0)
    del nl.cells[new.cid]  # cleanup without wiring


def test_release_and_reclaim_roundtrip(legalized):
    nl, die, pl, _ = legalized
    grid = RowGrid.from_placement(nl, pl)
    cid = next(iter(pl.cell_xy))
    before = grid.occupied.copy()
    span = release_cell_sites(nl, pl, grid, cid)
    assert grid.occupied.sum() < before.sum()
    reclaim_sites(grid, span)
    np.testing.assert_array_equal(grid.occupied, before)


def test_rowgrid_blocks_macros():
    spec = DESIGN_PRESETS["rocket"].scaled(0.15)
    nl = generate_netlist(spec)
    die = build_die(nl, spec)
    grid = RowGrid(die)
    m = die.macros[0]
    row = int((m.y0 + m.y1) / 2 / ROW_HEIGHT)
    col = int((m.x0 + m.x1) / 2 / SITE_WIDTH)
    assert grid.occupied[row, col]


def test_free_run_near_finds_nearest():
    from repro.placement import Die
    die = Die(width=20.0, height=5.0)
    grid = RowGrid(die)
    grid.occupied[0, 8:12] = True
    start = grid.free_run_near(0, 9, 2)
    assert start in (6, 12)  # nearest free run of width 2 around col 9
    grid.occupied[0, :] = True
    assert grid.free_run_near(0, 9, 1) == -1
