"""Tests for cell characterization."""

import pytest

from repro.liberty import DRIVE_STRENGTHS, GATE_KINDS, KIND_INDEX
from repro.liberty.cells import characterize_all


@pytest.fixture(scope="module")
def cells():
    return characterize_all()


def test_all_kind_drive_combinations_exist(cells):
    assert len(cells) == len(GATE_KINDS) * len(DRIVE_STRENGTHS)
    for kind in GATE_KINDS:
        for drive in DRIVE_STRENGTHS:
            assert f"{kind.name}_X{drive}" in cells


def test_kind_index_is_stable_order(cells):
    names = [k.name for k in GATE_KINDS]
    assert [KIND_INDEX[n] for n in names] == list(range(len(names)))


def test_larger_drive_is_stronger_and_bigger(cells):
    for kind in GATE_KINDS:
        sizes = [cells[f"{kind.name}_X{d}"] for d in DRIVE_STRENGTHS]
        for small, big in zip(sizes, sizes[1:]):
            assert big.drive_resistance < small.drive_resistance
            assert big.input_cap > small.input_cap
            assert big.area > small.area


def test_delay_table_matches_analytic_model(cells):
    cell = cells["NAND2_X2"]
    for s, l in [(5.0, 1.0), (20.0, 4.0), (80.0, 16.0)]:
        assert cell.delay_table.lookup(s, l) == pytest.approx(
            cell.analytic_delay(s, l))
        assert cell.slew_table.lookup(s, l) == pytest.approx(
            cell.analytic_slew(s, l))


def test_delay_increases_with_load(cells):
    cell = cells["INV_X1"]
    assert (cell.delay_table.lookup(10, 8.0)
            > cell.delay_table.lookup(10, 1.0))


def test_sequential_flags(cells):
    dff = cells["DFF_X2"]
    assert dff.is_sequential
    assert dff.setup_time > 0
    assert dff.clk_to_q > 0
    assert not cells["INV_X1"].is_sequential
    assert cells["INV_X1"].setup_time == 0.0


def test_higher_effort_kind_is_slower(cells):
    # XOR2 has higher logical effort than NAND2 at the same drive.
    assert (cells["XOR2_X1"].drive_resistance
            > cells["NAND2_X1"].drive_resistance)
