"""Tests for the CellLibrary API."""

import pytest

from repro.liberty import CellLibrary, WireModel


@pytest.fixture(scope="module")
def lib():
    return CellLibrary.default()


def test_default_is_cached():
    assert CellLibrary.default() is CellLibrary.default()


def test_cell_lookup(lib):
    cell = lib.cell("AND2_X4")
    assert cell.kind.name == "AND2"
    assert cell.drive == 4


def test_unknown_cell_raises(lib):
    with pytest.raises(KeyError, match="BOGUS_X1"):
        lib.cell("BOGUS_X1")


def test_contains(lib):
    assert "INV_X1" in lib
    assert "INV_X3" not in lib


def test_sizes_ascending(lib):
    sizes = lib.sizes_of("NOR2")
    assert [c.drive for c in sizes] == [1, 2, 4, 8]


def test_upsize_downsize_chain(lib):
    c = lib.cell("OR2_X2")
    assert lib.upsize(c).drive == 4
    assert lib.downsize(c).drive == 1
    assert lib.upsize(lib.cell("OR2_X8")) is None
    assert lib.downsize(lib.cell("OR2_X1")) is None


def test_resize_rejects_bad_drive(lib):
    with pytest.raises(ValueError):
        lib.resize(lib.cell("OR2_X2"), 3)


def test_wire_model_units():
    wire = WireModel(r_per_um=0.05, c_per_um=0.2)
    # kΩ/µm × fF/µm × µm² = ps for a 10 µm wire.
    assert wire.resistance(10.0) == pytest.approx(0.5)
    assert wire.capacitance(10.0) == pytest.approx(2.0)


def test_pickers(lib):
    assert lib.buffer().kind.name == "BUF"
    assert lib.flipflop().is_sequential
    assert all(not k.is_sequential for k in lib.combinational_kinds())
    assert lib.n_kinds == 19
