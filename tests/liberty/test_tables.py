"""Tests for NLDM lookup tables."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.liberty import LookupTable2D, synthesize_table
from repro.liberty.tables import DEFAULT_LOAD_AXIS, DEFAULT_SLEW_AXIS


def linear_fn(s, l):
    return 2.0 * s + 3.0 * l + 1.0


@pytest.fixture
def table():
    return synthesize_table(DEFAULT_SLEW_AXIS, DEFAULT_LOAD_AXIS, linear_fn)


def test_lookup_exact_grid_points(table):
    for s in DEFAULT_SLEW_AXIS[:3]:
        for l in DEFAULT_LOAD_AXIS[:3]:
            assert table.lookup(s, l) == pytest.approx(linear_fn(s, l))


def test_bilinear_interpolation_is_exact_for_linear_fn(table):
    # Bilinear interpolation reproduces any bilinear function exactly.
    assert table.lookup(7.3, 2.7) == pytest.approx(linear_fn(7.3, 2.7))


def test_extrapolation_clamps(table):
    lo = table.lookup(DEFAULT_SLEW_AXIS[0], DEFAULT_LOAD_AXIS[0])
    assert table.lookup(-100.0, -100.0) == pytest.approx(lo)
    hi = table.lookup(DEFAULT_SLEW_AXIS[-1], DEFAULT_LOAD_AXIS[-1])
    assert table.lookup(1e6, 1e6) == pytest.approx(hi)


def test_lookup_many_matches_scalar(table):
    slews = np.array([3.0, 15.0, 200.0])
    loads = np.array([0.7, 5.0, 80.0])
    vec = table.lookup_many(slews, loads)
    for k in range(3):
        assert vec[k] == pytest.approx(table.lookup(slews[k], loads[k]))


def test_rejects_bad_axes():
    with pytest.raises(ValueError):
        LookupTable2D(np.array([2.0, 1.0]), np.array([1.0, 2.0]),
                      np.zeros((2, 2)))
    with pytest.raises(ValueError):
        LookupTable2D(np.array([1.0, 2.0]), np.array([1.0, 2.0]),
                      np.zeros((3, 2)))


@given(st.floats(min_value=0.1, max_value=500.0),
       st.floats(min_value=0.01, max_value=200.0))
def test_lookup_within_table_bounds(s, l):
    """Interpolated values never leave the table's value range."""
    table = synthesize_table(DEFAULT_SLEW_AXIS, DEFAULT_LOAD_AXIS, linear_fn)
    value = table.lookup(s, l)
    assert table.values.min() - 1e-9 <= value <= table.values.max() + 1e-9


@given(st.floats(min_value=0.1, max_value=500.0),
       st.floats(min_value=0.01, max_value=200.0),
       st.floats(min_value=0.1, max_value=500.0),
       st.floats(min_value=0.01, max_value=200.0))
def test_lookup_monotone_for_monotone_fn(s1, l1, s2, l2):
    """Monotone characterization stays monotone after interpolation."""
    table = synthesize_table(DEFAULT_SLEW_AXIS, DEFAULT_LOAD_AXIS, linear_fn)
    if s1 <= s2 and l1 <= l2:
        assert table.lookup(s1, l1) <= table.lookup(s2, l2) + 1e-9
