"""Tests for netlist statistics."""

from repro.netlist import compute_stats, generate_preset

from tests.conftest import make_toy_netlist


def test_toy_stats():
    stats = compute_stats(make_toy_netlist())
    assert stats.name == "toy"
    assert stats.n_pins == 11
    assert stats.n_endpoints == 2
    assert stats.n_net_edges == 6
    assert stats.n_cell_edges == 4
    assert stats.n_regs == 1
    assert stats.max_fanout == 2


def test_stats_consistency_on_generated_design():
    nl = generate_preset("xgate", scale=0.3)
    stats = compute_stats(nl)
    assert stats.n_cells == len(nl.cells)
    assert stats.n_nets == len(nl.nets)
    assert stats.n_net_edges >= stats.n_nets  # every net ≥ 1 sink
    assert stats.total_area > 0
    assert "xgate" in stats.row()
