"""Property-based tests on netlist construction invariants."""

import io

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import (
    DESIGN_PRESETS,
    DesignSpec,
    compute_stats,
    generate_netlist,
    parse_verilog,
    write_verilog,
)
from repro.timing import build_timing_graph


@st.composite
def small_specs(draw):
    return DesignSpec(
        name="prop",
        n_gates=draw(st.integers(min_value=40, max_value=200)),
        n_regs=draw(st.integers(min_value=4, max_value=20)),
        n_pi=draw(st.integers(min_value=4, max_value=16)),
        n_po=draw(st.integers(min_value=4, max_value=16)),
        gate_mix=draw(st.sampled_from(["default", "xor_heavy", "wide"])),
        max_depth=draw(st.integers(min_value=4, max_value=24)),
        n_modules=draw(st.integers(min_value=1, max_value=4)),
    )


@settings(max_examples=15, deadline=None)
@given(small_specs(), st.integers(min_value=0, max_value=100))
def test_generated_netlists_satisfy_invariants(spec, seed):
    nl = generate_netlist(spec, base_seed=seed)
    nl.check()
    graph = build_timing_graph(nl)  # acyclic by construction
    stats = compute_stats(nl)
    # Exact structural counts.
    assert stats.n_regs == spec.n_regs
    # The per-level profile guarantees ≥ 1 gate per level, which can add a
    # few gates beyond the request on tiny specs.
    n_comb = stats.n_cells - spec.n_regs
    assert spec.n_gates <= n_comb <= spec.n_gates + spec.max_depth
    # Depth bound: each logic level adds at most 2 graph levels.
    assert graph.n_levels <= 2 * spec.max_depth + 2
    # Every endpoint is reachable (level > 0) or trivially at a source-fed
    # net; either way it has a defined level.
    assert (graph.level[graph.endpoints] >= 1).all()


@settings(max_examples=8, deadline=None)
@given(small_specs(), st.integers(min_value=0, max_value=20))
def test_verilog_roundtrip_on_random_designs(spec, seed):
    nl = generate_netlist(spec, base_seed=seed)
    buf = io.StringIO()
    write_verilog(nl, buf)
    back = parse_verilog(buf.getvalue())
    a, b = compute_stats(nl), compute_stats(back)
    assert (a.n_pins, a.n_net_edges, a.n_cell_edges, a.n_endpoints) == \
           (b.n_pins, b.n_net_edges, b.n_cell_edges, b.n_endpoints)
