"""Tests for the netlist data structures."""

import pytest

from repro.netlist import IN, OUT, Netlist

from tests.conftest import make_toy_netlist


def test_toy_netlist_structure():
    nl = make_toy_netlist()
    assert len(nl.cells) == 3
    assert len(nl.nets) == 5
    assert len(nl.ports) == 3
    # pins: 2 PI + 1 PO + AND2(3) + OR2(3) + DFF(2)
    assert len(nl.pins) == 11


def test_endpoints_and_startpoints():
    nl = make_toy_netlist()
    endpoints = nl.endpoint_pins()
    startpoints = nl.startpoint_pins()
    reg = next(c for c in nl.cells.values() if c.name == "reg0")
    po = nl.ports["po0"]
    assert set(endpoints) == {reg.input_pins[0], po.pin}
    assert reg.output_pin in startpoints
    assert nl.ports["pi0"].pin in startpoints


def test_net_and_cell_edges():
    nl = make_toy_netlist()
    net_edges = list(nl.net_edges())
    cell_edges = list(nl.cell_edges())
    assert len(net_edges) == 6  # 5 nets, one with two sinks
    # DFF contributes no cell edges.
    assert len(cell_edges) == 4
    reg = next(c for c in nl.cells.values() if c.name == "reg0")
    assert all(op != reg.output_pin for _, op in cell_edges)


def test_connect_rejects_wrong_direction():
    nl = Netlist("t")
    g = nl.add_cell("INV_X1")
    net = nl.create_net(g.output_pin)
    with pytest.raises(ValueError):
        nl.connect(net.nid, g.output_pin)  # OUT pin as sink


def test_create_net_rejects_in_pin():
    nl = Netlist("t")
    g = nl.add_cell("INV_X1")
    with pytest.raises(ValueError):
        nl.create_net(g.input_pins[0])


def test_double_connect_rejected():
    nl = Netlist("t")
    a = nl.add_cell("INV_X1")
    b = nl.add_cell("INV_X1")
    net = nl.create_net(a.output_pin)
    nl.connect(net.nid, b.input_pins[0])
    with pytest.raises(ValueError):
        nl.connect(net.nid, b.input_pins[0])


def test_disconnect_and_remove_net():
    nl = make_toy_netlist()
    po = nl.ports["po0"]
    nl.disconnect(po.pin)
    assert nl.pins[po.pin].net is None
    nl.check()


def test_remove_cell_requires_unwired_pins():
    nl = make_toy_netlist()
    g0 = next(c for c in nl.cells.values() if c.name == "g0")
    with pytest.raises(ValueError):
        nl.remove_cell(g0.cid)


def test_change_cell_type_preserves_pins():
    nl = make_toy_netlist()
    g0 = next(c for c in nl.cells.values() if c.name == "g0")
    pins_before = list(g0.input_pins) + [g0.output_pin]
    nl.change_cell_type(g0.cid, "AND2_X8")
    assert nl.cells[g0.cid].type_name == "AND2_X8"
    assert list(g0.input_pins) + [g0.output_pin] == pins_before
    nl.check()


def test_change_cell_type_rejects_pin_count_change():
    nl = make_toy_netlist()
    g0 = next(c for c in nl.cells.values() if c.name == "g0")
    with pytest.raises(ValueError):
        nl.change_cell_type(g0.cid, "AND3_X1")


def test_clone_is_deep_and_id_preserving():
    nl = make_toy_netlist()
    other = nl.clone()
    assert set(other.pins) == set(nl.pins)
    assert set(other.nets) == set(nl.nets)
    g0 = next(c for c in nl.cells.values() if c.name == "g0")
    other.change_cell_type(g0.cid, "AND2_X8")
    assert nl.cells[g0.cid].type_name == "AND2_X1"  # original untouched
    # New objects in the clone get fresh, never-reused ids.
    new_cell = other.add_cell("INV_X1")
    assert new_cell.cid not in nl.cells


def test_fanout_of():
    nl = make_toy_netlist()
    g1 = next(c for c in nl.cells.values() if c.name == "g1")
    assert nl.fanout_of(g1.cid) == 2  # reg D + po0


def test_total_cell_area_positive():
    nl = make_toy_netlist()
    assert nl.total_cell_area() > 0


def test_duplicate_port_rejected():
    nl = Netlist("t")
    nl.add_port("p", IN)
    with pytest.raises(ValueError):
        nl.add_port("p", OUT)


def test_check_detects_broken_backref():
    nl = make_toy_netlist()
    net = next(iter(nl.nets.values()))
    nl.pins[net.sinks[0]].net = None  # corrupt
    with pytest.raises(ValueError):
        nl.check()
