"""Tests for the structural Verilog writer/parser."""

import io

import pytest

from repro.netlist import (
    compute_stats,
    generate_preset,
    parse_verilog,
    write_verilog,
)

from tests.conftest import make_toy_netlist


def roundtrip(nl):
    buf = io.StringIO()
    write_verilog(nl, buf)
    return parse_verilog(buf.getvalue()), buf.getvalue()


def test_toy_roundtrip_preserves_structure():
    nl = make_toy_netlist()
    back, text = roundtrip(nl)
    assert compute_stats(back).n_pins == compute_stats(nl).n_pins
    assert set(back.ports) == set(nl.ports)
    assert "module toy" in text
    assert "endmodule" in text


def test_roundtrip_preserves_connectivity_signature():
    nl = generate_preset("xgate", scale=0.2)
    back, _ = roundtrip(nl)
    s1, s2 = compute_stats(nl), compute_stats(back)
    assert (s1.n_pins, s1.n_net_edges, s1.n_cell_edges) == \
           (s2.n_pins, s2.n_net_edges, s2.n_cell_edges)
    assert (s1.n_endpoints, s1.max_fanout) == (s2.n_endpoints, s2.max_fanout)


def test_cell_types_preserved():
    nl = make_toy_netlist()
    back, _ = roundtrip(nl)
    types = sorted(c.type_name for c in nl.cells.values())
    back_types = sorted(c.type_name for c in back.cells.values())
    assert types == back_types


def test_multi_po_net_uses_assign():
    nl = make_toy_netlist()  # g1 drives both reg D and po0
    _, text = roundtrip(nl)
    assert "assign po0" in text


def test_parser_rejects_garbage():
    with pytest.raises(ValueError):
        parse_verilog("module m ( endmodule")


def test_parser_rejects_bad_pin():
    text = """
    module m (a, y);
    input a;
    output y;
    INV_X1 u0 (.Z(a), .Y(y));
    endmodule
    """
    with pytest.raises((ValueError, KeyError)):
        parse_verilog(text)


def test_parser_handles_comments():
    text = """
    // header comment
    module m (a, y);
    input a;  // the input
    output y;
    INV_X1 u0 (.A(a), .Y(y));
    endmodule
    """
    nl = parse_verilog(text)
    assert len(nl.cells) == 1
