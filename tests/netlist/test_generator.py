"""Tests for the synthetic design generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import (
    DESIGN_PRESETS,
    PAPER_DESIGNS,
    TEST_DESIGNS,
    TRAIN_DESIGNS,
    compute_stats,
    generate_netlist,
    generate_preset,
)
from repro.timing import build_timing_graph


def test_presets_cover_paper_benchmarks():
    expected = {"jpeg", "rocket", "smallboom", "steelcore", "xgate",
                "arm9", "chacha", "hwacha", "or1200", "sha3"}
    assert set(PAPER_DESIGNS) == expected
    assert set(DESIGN_PRESETS) == expected | {"large"}
    assert len(TRAIN_DESIGNS) == 5 and len(TEST_DESIGNS) == 5
    assert set(TRAIN_DESIGNS) == {"jpeg", "rocket", "smallboom",
                                  "steelcore", "xgate"}


def test_scale_tier_presets_stay_out_of_the_paper_protocol():
    """``split="bench"`` presets never leak into train/test/table runs."""
    spec = DESIGN_PRESETS["large"]
    assert spec.split == "bench"
    assert "large" not in PAPER_DESIGNS
    assert "large" not in TRAIN_DESIGNS and "large" not in TEST_DESIGNS


def test_generation_is_deterministic():
    a = generate_preset("xgate", scale=0.2)
    b = generate_preset("xgate", scale=0.2)
    assert compute_stats(a) == compute_stats(b)
    assert list(a.net_edges()) == list(b.net_edges())


def test_generation_differs_by_seed():
    a = generate_preset("xgate", base_seed=0, scale=0.2)
    b = generate_preset("xgate", base_seed=1, scale=0.2)
    assert list(a.net_edges()) != list(b.net_edges())


def test_generated_counts_match_spec():
    spec = DESIGN_PRESETS["steelcore"].scaled(0.3)
    nl = generate_netlist(spec)
    assert len(nl.sequential_cells()) == spec.n_regs
    assert len(nl.combinational_cells()) == spec.n_gates
    assert len(nl.primary_inputs()) == spec.n_pi
    assert len(nl.primary_outputs()) >= spec.n_po  # + dangling aux POs


def test_generated_netlist_is_acyclic_and_depth_bounded():
    spec = DESIGN_PRESETS["xgate"].scaled(0.3)
    nl = generate_netlist(spec)
    graph = build_timing_graph(nl)  # raises on cycles
    # Each logic level contributes ≤ 2 graph levels (net + cell).
    assert graph.n_levels <= 2 * spec.max_depth + 2


def test_every_gate_output_net_has_sinks():
    """Gate outputs never dangle (dangling drivers become aux POs);
    unused primary inputs / register outputs may legitimately dangle."""
    nl = generate_preset("xgate", scale=0.3)
    for net in nl.nets.values():
        drv = nl.pins[net.driver]
        if drv.cell is not None and not nl.cell_type(drv.cell).is_sequential:
            assert len(net.sinks) >= 1


def test_endpoint_cone_depths_vary():
    nl = generate_preset("steelcore", scale=0.5)
    graph = build_timing_graph(nl)
    levels = graph.level[graph.endpoints]
    assert levels.max() - levels.min() > 5


def test_scaled_spec_scales_down():
    spec = DESIGN_PRESETS["jpeg"]
    small = spec.scaled(0.1)
    assert small.n_gates < spec.n_gates
    assert small.n_regs < spec.n_regs
    assert small.name == spec.name


def test_scale_rejects_nonpositive():
    with pytest.raises(ValueError):
        DESIGN_PRESETS["jpeg"].scaled(0.0)


def test_unknown_preset_rejected():
    with pytest.raises(ValueError, match="unknown design"):
        generate_preset("nonexistent")


@settings(max_examples=10, deadline=None)
@given(st.sampled_from(sorted(DESIGN_PRESETS)),
       st.integers(min_value=0, max_value=3))
def test_generated_netlists_always_check(name, seed):
    nl = generate_preset(name, base_seed=seed, scale=0.05)
    nl.check()
    build_timing_graph(nl)  # acyclic
