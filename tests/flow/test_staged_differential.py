"""Differential battery: the staged flow must equal the seed monolith.

``run_flow`` was decomposed into the staged pipeline of
:mod:`repro.flow.stages`.  The refactor's contract is *bit-identity on
the default path*: same ``FlowConfig`` fingerprints, same dataset cache
paths, same STA arrays, same sample bytes.  This module pins all four,
per preset, against a frozen copy of the seed monolithic flow body —
any behavioral drift in the staged decomposition fails here loudly
instead of silently invalidating every cached artifact in the wild.
"""

import pickle

import numpy as np
import pytest

from repro.flow import FlowConfig, FlowResult, run_flow
from repro.ml.dataset import build_sample, sample_cache_path
from repro.netlist import DESIGN_PRESETS, DesignSpec
from repro.utils import StageTimer

#: Every paper preset ("large" is bench-only and 40x the size).
PAPER_DESIGNS = tuple(n for n, s in DESIGN_PRESETS.items()
                      if s.split != "bench")

#: Small scale so the full battery stays fast while still exercising
#: every preset's distinct topology mix.
_SCALE = 0.25

# The flow-config fingerprints every cached artifact in the wild was
# built under, frozen before the staged refactor (and before MMMC — see
# tests/flow/test_corner_differential.py for the original freeze).
_FROZEN_FINGERPRINTS = {
    (): "cdb8b81cfcee4c78",
    (("scale", 0.25), ("base_seed", 0)): "50e2c34be3065089",
    (("base_seed", 1),): "68e9e724f4b45bbb",
    (("scale", 0.25), ("base_seed", 0),
     ("with_opt", False)): "0a81ec2ba312ffcb",
}


def _reference_monolithic_flow(name: str, config: FlowConfig) -> FlowResult:
    """The seed ``run_flow_on_spec`` body, frozen verbatim.

    This is a copy of the pre-refactor monolith (commit history:
    "Add partition-aware streaming execution..."), kept here as the
    ground truth the staged pipeline is diffed against.  Do not
    "modernize" it — its whole value is that it does not change.
    """
    from repro.netlist import generate_netlist
    from repro.opt import TimingOptimizer
    from repro.placement import (
        Placement,
        build_die,
        compute_layout_maps,
        legalize,
        place,
    )
    from repro.route import route
    from repro.timing import PreRouteEstimator, build_timing_graph, run_sta

    spec = DESIGN_PRESETS[name].scaled(config.scale)
    timer = StageTimer(design=spec.name)

    netlist = generate_netlist(spec, config.base_seed)
    die = build_die(netlist, spec, config.base_seed)

    with timer.stage("place"):
        placement = place(netlist, die, config.placer)
        legalize(netlist, placement)

    input_maps = compute_layout_maps(netlist, placement,
                                     m=config.map_bins, n=config.map_bins)

    graph = build_timing_graph(netlist)
    unconstrained = run_sta(graph, PreRouteEstimator(netlist, placement),
                            clock_period=1.0)
    clock_period = spec.clock_frac * unconstrained.max_arrival
    pre_route_sta = run_sta(graph, PreRouteEstimator(netlist, placement),
                            clock_period)

    opt_netlist = netlist.clone()
    opt_placement = Placement(die=die, cell_xy=dict(placement.cell_xy))
    opt_report = None
    if config.with_opt:
        with timer.stage("opt"):
            optimizer = TimingOptimizer(opt_netlist, opt_placement,
                                        config.optimizer)
            opt_report = optimizer.run(clock_period)

    with timer.stage("route"):
        routing = route(opt_netlist, opt_placement, config.router)

    with timer.stage("sta"):
        signoff_graph = build_timing_graph(opt_netlist)
        signoff_sta = run_sta(signoff_graph, routing.lengths, clock_period)
        corner_signoff = {}
        for corner in config.corner_set():
            if corner.name == "base":
                corner_signoff["base"] = signoff_sta
            else:
                corner_signoff[corner.name] = run_sta(
                    signoff_graph, routing.lengths, clock_period,
                    corner=corner)

    return FlowResult(spec=spec, clock_period=clock_period,
                      input_netlist=netlist, input_placement=placement,
                      input_maps=input_maps, pre_route_sta=pre_route_sta,
                      opt_netlist=opt_netlist, opt_placement=opt_placement,
                      opt_report=opt_report, routing=routing,
                      signoff_sta=signoff_sta, timer=timer,
                      corner_signoff=corner_signoff)


def _normalized_sample_bytes(flow: FlowResult, seed: int = 0) -> bytes:
    """Sample pickle bytes with wall-clock fields zeroed.

    ``flow_times`` / ``preprocess_time`` are the only nondeterministic
    sample fields; everything else must match byte-for-byte.
    """
    sample = build_sample(flow, map_bins=32, seed=seed)
    sample.flow_times = {k: 0.0 for k in sorted(sample.flow_times)}
    sample.preprocess_time = 0.0
    return pickle.dumps(sample, protocol=pickle.HIGHEST_PROTOCOL)


# ----------------------------------------------------------------------
# Cache-key stability
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kwargs,expected",
                         [(dict(k), v)
                          for k, v in _FROZEN_FINGERPRINTS.items()])
def test_fingerprints_survive_staged_refactor(kwargs, expected):
    assert FlowConfig(**kwargs).fingerprint() == expected


def test_default_cache_path_has_no_scenario_tag(tmp_path):
    cfg = FlowConfig(scale=0.25, base_seed=0)
    plain = sample_cache_path(tmp_path, "xgate", cfg, 32, 0)
    explicit = sample_cache_path(tmp_path, "xgate", cfg, 32, 0, scenario="")
    assert plain == explicit
    assert "@" not in plain.name          # the pre-scenario filename, exactly
    swept = sample_cache_path(tmp_path, "xgate", cfg, 32, 0,
                              scenario="clock_frac0.7")
    assert swept != plain
    assert "@clock_frac0.7" in swept.name


def test_scenario_tag_composes_with_corner_tag(tmp_path):
    cfg = FlowConfig(scale=0.25, base_seed=0)
    both = sample_cache_path(tmp_path, "xgate", cfg, 32, 0,
                             corner="slow", scenario="clock_frac0.7+eco1")
    assert both.name.startswith("xgate@slow@clock_frac0.7+eco1_")


# ----------------------------------------------------------------------
# Flow-output identity, every preset
# ----------------------------------------------------------------------
@pytest.fixture(scope="module", params=PAPER_DESIGNS)
def flow_pair(request):
    cfg = FlowConfig(scale=_SCALE, base_seed=0)
    return (_reference_monolithic_flow(request.param, cfg),
            run_flow(request.param, cfg))


def test_staged_flow_matches_monolith(flow_pair):
    ref, staged = flow_pair
    assert staged.clock_period == ref.clock_period
    np.testing.assert_array_equal(staged.pre_route_sta.arrival,
                                  ref.pre_route_sta.arrival)
    np.testing.assert_array_equal(staged.pre_route_sta.required,
                                  ref.pre_route_sta.required)
    np.testing.assert_array_equal(staged.signoff_sta.arrival,
                                  ref.signoff_sta.arrival)
    np.testing.assert_array_equal(staged.signoff_sta.required,
                                  ref.signoff_sta.required)
    assert (staged.signoff_sta.endpoint_slack
            == ref.signoff_sta.endpoint_slack)
    assert staged.signoff_sta.wns == ref.signoff_sta.wns
    assert staged.signoff_sta.tns == ref.signoff_sta.tns


def test_staged_flow_shape_and_labels(flow_pair):
    ref, staged = flow_pair
    # Same structural invariants as the monolith's result.
    assert staged.spec == ref.spec
    assert staged.corner_names == ref.corner_names == ("base",)
    assert staged.corner_signoff["base"] is staged.signoff_sta
    assert staged.scenario == ""          # the default flow carries no tag
    assert staged.endpoint_labels() == ref.endpoint_labels()
    assert (sorted(staged.input_placement.cell_xy)
            == sorted(ref.input_placement.cell_xy))
    np.testing.assert_array_equal(staged.input_maps.stacked(),
                                  ref.input_maps.stacked())
    # The historic StageTimer stage set, exactly — sample.flow_times
    # keys are part of the sample contract.
    assert set(staged.timer.stages) == set(ref.timer.stages)


def test_sample_bytes_identical(flow_pair):
    ref, staged = flow_pair
    assert (_normalized_sample_bytes(staged)
            == _normalized_sample_bytes(ref))


# ----------------------------------------------------------------------
# Spot checks off the default config
# ----------------------------------------------------------------------
def test_no_opt_flow_matches_monolith():
    cfg = FlowConfig(scale=_SCALE, base_seed=0, with_opt=False)
    ref = _reference_monolithic_flow("xgate", cfg)
    staged = run_flow("xgate", cfg)
    assert staged.clock_period == ref.clock_period
    assert staged.opt_report is None and ref.opt_report is None
    np.testing.assert_array_equal(staged.signoff_sta.arrival,
                                  ref.signoff_sta.arrival)
    assert _normalized_sample_bytes(staged) == _normalized_sample_bytes(ref)


def test_reseeded_flow_matches_monolith():
    cfg = FlowConfig(scale=_SCALE, base_seed=3)
    ref = _reference_monolithic_flow("xgate", cfg)
    staged = run_flow("xgate", cfg)
    np.testing.assert_array_equal(staged.signoff_sta.arrival,
                                  ref.signoff_sta.arrival)
    assert _normalized_sample_bytes(staged) == _normalized_sample_bytes(ref)


def test_multi_corner_flow_matches_monolith():
    cfg = FlowConfig(scale=_SCALE, base_seed=0,
                     corners=("base", "fast", "slow"))
    ref = _reference_monolithic_flow("xgate", cfg)
    staged = run_flow("xgate", cfg)
    assert staged.corner_names == ref.corner_names
    assert staged.corner_signoff["base"] is staged.signoff_sta
    for name in ref.corner_names:
        np.testing.assert_array_equal(staged.signoff_at(name).arrival,
                                      ref.signoff_at(name).arrival)
