"""Differential battery: ``--corners base`` must equal the pre-MMMC path.

Three guarantees, each pinned hard:

* **Cache keys.**  ``FlowConfig.fingerprint()`` excludes ``corners``
  entirely, and the base corner's dataset cache file carries no corner
  tag — the exact hex fingerprints of the configurations every cached
  artifact in the wild was built under are asserted verbatim, so any
  accidental key change fails loudly instead of silently re-building.
* **Flow outputs.**  A base-only corner config produces the *same
  object* as the nominal sign-off STA; multi-corner configs add derated
  runs without perturbing it.
* **Samples.**  Corner views share every feature array with the base
  sample and differ only in identity + labels; the base view's labels
  are bit-identical to a corner-unaware build.
"""

import numpy as np
import pytest

from repro.flow import FlowConfig, run_flow
from repro.ml.dataset import (
    build_corner_samples,
    build_sample,
    sample_cache_path,
)

# The fingerprints of the flow configurations used throughout the test
# suite and benchmarks, frozen before MMMC landed.  If any of these
# change, every on-disk dataset cache in existence is invalidated —
# which is exactly the regression this test exists to catch.
_FROZEN_FINGERPRINTS = {
    (): "cdb8b81cfcee4c78",
    (("scale", 0.25), ("base_seed", 0)): "50e2c34be3065089",
    (("base_seed", 1),): "68e9e724f4b45bbb",
    (("scale", 0.25), ("base_seed", 0),
     ("with_opt", False)): "0a81ec2ba312ffcb",
}


@pytest.mark.parametrize("kwargs,expected",
                         [(dict(k), v)
                          for k, v in _FROZEN_FINGERPRINTS.items()])
def test_fingerprints_frozen(kwargs, expected):
    assert FlowConfig(**kwargs).fingerprint() == expected


def test_corners_excluded_from_fingerprint():
    base = FlowConfig(scale=0.25, base_seed=0)
    for corners in (("base",), ("fast", "typ", "slow"), ("slow",)):
        cfg = FlowConfig(scale=0.25, base_seed=0, corners=corners)
        assert cfg.fingerprint() == base.fingerprint()


def test_base_cache_path_has_no_corner_tag(tmp_path):
    cfg = FlowConfig(scale=0.25, base_seed=0)
    base = sample_cache_path(tmp_path, "xgate", cfg, 32, 0)
    explicit = sample_cache_path(tmp_path, "xgate", cfg, 32, 0,
                                 corner="base")
    assert base == explicit
    assert "@" not in base.name
    slow = sample_cache_path(tmp_path, "xgate", cfg, 32, 0, corner="slow")
    assert slow.name.startswith("xgate@slow_")
    assert slow != base


def test_base_only_flow_aliases_nominal_signoff(tiny_flow):
    # The suite-wide tiny_flow is built with the *default* config — its
    # corner_signoff must hold exactly the base alias, same object.
    assert tiny_flow.corner_names == ("base",)
    assert tiny_flow.signoff_at() is tiny_flow.signoff_sta
    assert tiny_flow.signoff_at("base") is tiny_flow.signoff_sta
    with pytest.raises(ValueError):
        tiny_flow.signoff_at("slow")


@pytest.fixture(scope="module")
def corner_flow():
    return run_flow("xgate", FlowConfig(
        scale=0.25, base_seed=0, corners=("base", "fast", "slow")))


def test_multi_corner_flow_keeps_base_identical(corner_flow, tiny_flow):
    assert corner_flow.corner_names == ("base", "fast", "slow")
    assert corner_flow.signoff_at("base") is corner_flow.signoff_sta
    # The physical flow is byte-identical to the corner-unaware run.
    np.testing.assert_array_equal(corner_flow.signoff_sta.arrival,
                                  tiny_flow.signoff_sta.arrival)
    assert corner_flow.endpoint_labels() == tiny_flow.endpoint_labels()
    # Derated corners bracket the base one.
    assert (corner_flow.signoff_at("slow").wns
            < corner_flow.signoff_sta.wns
            < corner_flow.signoff_at("fast").wns)


def test_corner_samples_share_arrays_and_differ_in_labels(corner_flow):
    samples = build_corner_samples(corner_flow, map_bins=32, seed=0)
    base, fast, slow = samples
    assert [s.corner for s in samples] == ["base", "fast", "slow"]
    assert [s.corner_index for s in samples] == [0, 1, 2]
    # Views: every feature array is shared by reference.
    for view in (fast, slow):
        assert view.x_cell is base.x_cell
        assert view.x_net is base.x_net
        assert view.layout_stack is base.layout_stack
        assert view.endpoint_pins is base.endpoint_pins
        assert view.plans is base.plans
    # Labels are per-corner and ordered slow > base > fast.
    assert np.all(slow.y > base.y)
    assert np.all(fast.y < base.y)


def test_base_corner_sample_bit_identical(corner_flow, tiny_flow):
    via_corners = build_corner_samples(corner_flow, map_bins=32, seed=0)[0]
    plain = build_sample(tiny_flow, map_bins=32, seed=0)
    np.testing.assert_array_equal(via_corners.y, plain.y)
    np.testing.assert_array_equal(via_corners.x_cell, plain.x_cell)
    np.testing.assert_array_equal(via_corners.x_net, plain.x_net)
    assert via_corners.corner == plain.corner == "base"
    assert via_corners.corner_index == plain.corner_index == 0
