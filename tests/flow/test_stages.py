"""Stage mechanics: key chaining, the artifact store, and reuse."""

import dataclasses
import pickle

import numpy as np
import pytest

from repro.flow import FlowConfig, StagedFlow, StageStore, stage_fingerprint
from repro.flow.stages import run_staged_flow
from repro.netlist import DESIGN_PRESETS


def _spec(**overrides):
    return dataclasses.replace(DESIGN_PRESETS["xgate"].scaled(0.25),
                               **overrides)


def _keys(config=None, **spec_overrides):
    return StagedFlow(_spec(**spec_overrides),
                      config or FlowConfig(scale=0.25)).stage_keys()


# ----------------------------------------------------------------------
# Key chaining: fingerprints track actual data dependence
# ----------------------------------------------------------------------
def test_fingerprint_is_deterministic_and_chained():
    a = stage_fingerprint("place", "p0", {"bins": 32})
    assert a == stage_fingerprint("place", "p0", {"bins": 32})
    assert len(a) == 16 and int(a, 16) >= 0
    # Any of (stage, parent, payload) changing changes the key.
    assert a != stage_fingerprint("route", "p0", {"bins": 32})
    assert a != stage_fingerprint("place", "p1", {"bins": 32})
    assert a != stage_fingerprint("place", "p0", {"bins": 64})


def test_clock_frac_forks_at_constrain():
    base, swept = _keys(), _keys(clock_frac=0.6)
    # Everything the clock cannot shape is shared...
    for stage in ("generate", "place", "constrain.unconstrained"):
        assert base[stage] == swept[stage]
    # ...and everything downstream of the constraint forks.
    for stage in ("constrain", "opt", "route", "signoff@base"):
        assert base[stage] != swept[stage]


def test_no_opt_sweep_shares_routing():
    cfg = FlowConfig(scale=0.25, with_opt=False)
    base = _keys(config=cfg)
    swept = _keys(config=cfg, clock_frac=0.6)
    # The no-opt "opt" stage is a pure clone: clock-independent, so a
    # sweep shares it and the routing, re-running only the STAs.
    assert base["opt"] == swept["opt"]
    assert base["route"] == swept["route"]
    assert base["constrain"] != swept["constrain"]
    assert base["signoff@base"] != swept["signoff@base"]


def test_base_seed_forks_at_generate():
    base = _keys()
    reseeded = _keys(config=FlowConfig(scale=0.25, base_seed=7))
    assert all(base[s] != reseeded[s] for s in base)


def test_corners_fork_only_signoff():
    base = _keys()
    mmmc = _keys(config=FlowConfig(scale=0.25,
                                   corners=("base", "fast", "slow")))
    for stage in ("generate", "place", "constrain", "opt", "route",
                  "signoff@base"):
        assert base[stage] == mmmc[stage]
    assert {"signoff@fast", "signoff@slow"} <= set(mmmc)


def test_run_populates_last_with_matching_keys():
    spec = _spec()
    flow = StagedFlow(spec, FlowConfig(scale=0.25))
    flow.run()
    keys = flow.stage_keys()
    for stage in ("generate", "place", "constrain", "opt", "route"):
        assert flow.last[stage].key == keys[stage]
    assert flow.last["signoff"]["base"].key == keys["signoff@base"]


# ----------------------------------------------------------------------
# StageStore: reuse arithmetic, disk layer, corruption tolerance
# ----------------------------------------------------------------------
def test_memory_store_reuse_counts():
    spec, cfg = _spec(), FlowConfig(scale=0.25)
    store = StageStore()
    first = run_staged_flow(spec, cfg, store=store)
    assert store.stats() == {"hits": 0, "disk_hits": 0,
                             "misses": 7, "entries": 7}
    second = run_staged_flow(spec, cfg, store=store)
    # A full re-run hits every stage (the constrain hit short-circuits
    # the unconstrained lookup, hence 6 rather than 7).
    assert store.hits == 6 and store.misses == 7
    # Reused artifacts are shared by reference, not copied.
    assert second.input_netlist is first.input_netlist
    assert second.signoff_sta is first.signoff_sta


def test_sweep_reuses_upstream_stages():
    cfg = FlowConfig(scale=0.25)
    store = StageStore()
    run_staged_flow(_spec(), cfg, store=store)
    run_staged_flow(_spec(clock_frac=0.6), cfg, store=store)
    # The sweep point re-derives constrain/opt/route/signoff (4 new
    # entries) but reuses generate + place + the unconstrained STA.
    assert store.hits == 3
    assert store.stats()["entries"] == 11


def test_disk_store_resumes_across_processes(tmp_path):
    spec, cfg = _spec(), FlowConfig(scale=0.25)
    first = run_staged_flow(spec, cfg, store=StageStore(tmp_path))
    assert list(tmp_path.glob("stage_*.pkl"))
    # A fresh store (fresh "process") resumes wholly from disk.
    store = StageStore(tmp_path)
    resumed = run_staged_flow(spec, cfg, store=store)
    assert store.misses == 0 and store.disk_hits == 6
    np.testing.assert_array_equal(resumed.signoff_sta.arrival,
                                  first.signoff_sta.arrival)


def test_corrupt_disk_artifact_is_a_miss(tmp_path):
    spec, cfg = _spec(), FlowConfig(scale=0.25)
    run_staged_flow(spec, cfg, store=StageStore(tmp_path))
    for p in tmp_path.glob("stage_*.pkl"):
        p.write_bytes(p.read_bytes()[:20])      # truncate: unpickle fails
    store = StageStore(tmp_path)
    flow = run_staged_flow(spec, cfg, store=store)
    assert store.disk_hits == 0 and store.misses == 7
    assert flow.signoff_sta.wns == flow.signoff_sta.wns  # rebuilt fine


def test_key_mismatch_is_discarded(tmp_path):
    store = StageStore(tmp_path)
    flow = StagedFlow(_spec(), FlowConfig(scale=0.25), store=store)
    gen = flow.generate()
    # File an artifact under a key it does not carry (e.g. a file copied
    # between stores): the read must warn, unlink, and miss.
    bogus = tmp_path / "stage_deadbeefdeadbeef.pkl"
    bogus.write_bytes(pickle.dumps(gen))
    fresh = StageStore(tmp_path)
    assert fresh.get("deadbeefdeadbeef") is None
    assert not bogus.exists()
    assert fresh.misses == 1


def test_put_rejects_mismatched_key(tmp_path):
    store = StageStore()
    flow = StagedFlow(_spec(), FlowConfig(scale=0.25), store=store)
    gen = flow.generate()
    with pytest.raises(ValueError):
        store.put("0000000000000000", gen)


def test_reuse_folds_duration_into_timer():
    spec, cfg = _spec(), FlowConfig(scale=0.25)
    store = StageStore()
    run_staged_flow(spec, cfg, store=store)
    flow = StagedFlow(spec, cfg, store=store)
    result = flow.run()
    # Every timed stage was reused, yet the timer still carries the
    # stages' recorded production cost (Table III stays meaningful).
    assert set(result.timer.stages) == {"place", "opt", "route", "sta"}
    assert all(v > 0.0 for v in result.timer.stages.values())
