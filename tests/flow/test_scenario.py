"""Scenario grammar, sweep collapse, ECO invariants, and the data path."""

import numpy as np
import pytest

from repro.flow import (
    FlowConfig,
    ScenarioSpec,
    StageStore,
    expand_scenarios,
    run_flow,
    run_scenario_flow,
    run_scenarios,
)
from repro.flow.scenario import parse_sweep
from repro.netlist import DESIGN_PRESETS

_CFG = FlowConfig(scale=0.25)


# ----------------------------------------------------------------------
# Grammar
# ----------------------------------------------------------------------
def test_default_scenario_identity():
    s = ScenarioSpec()
    assert s.is_default
    assert s.scenario_id == ""
    assert ScenarioSpec.parse(None) == s
    assert ScenarioSpec.parse("") == s


def test_parse_accepts_both_forms():
    human = ScenarioSpec.parse("clock_frac=0.7+eco=2")
    compact = ScenarioSpec.parse("clock_frac0.7+eco2")
    assert human == compact
    assert human.axes == (("clock_frac", 0.7),)
    assert human.eco_rounds == 2
    # The id round-trips through parse.
    assert ScenarioSpec.parse(human.scenario_id) == human


def test_axes_are_canonically_sorted():
    a = ScenarioSpec(axes=(("utilization", 0.8), ("clock_frac", 0.7)))
    b = ScenarioSpec(axes=(("clock_frac", 0.7), ("utilization", 0.8)))
    assert a == b
    assert a.scenario_id == "clock_frac0.7+utilization0.8"


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        ScenarioSpec.parse("not a scenario")
    with pytest.raises(ValueError):
        ScenarioSpec(axes=(("clock_frac", 0.6), ("clock_frac", 0.7)))
    with pytest.raises(ValueError):
        ScenarioSpec(eco_rounds=-1)


def test_parse_sweep():
    assert parse_sweep("clock_frac=0.6,0.7,0.8") == (
        "clock_frac", [0.6, 0.7, 0.8])
    for bad in ("clock_frac", "clock_frac=", "=0.5"):
        with pytest.raises(ValueError):
            parse_sweep(bad)


def test_expand_scenarios_cartesian_with_eco():
    out = expand_scenarios(["clock_frac=0.6,0.8"], eco_rounds=1)
    assert [s.scenario_id for s in out] == [
        "clock_frac0.6", "clock_frac0.6+eco1",
        "clock_frac0.8", "clock_frac0.8+eco1"]
    # No arguments: the single default scenario.
    assert expand_scenarios() == [ScenarioSpec()]
    # ECO alone applies to the default sweep point.
    assert [s.scenario_id for s in expand_scenarios(eco_rounds=2)] == [
        "", "eco1", "eco2"]


def test_unknown_or_non_numeric_axis_rejected():
    spec = DESIGN_PRESETS["xgate"].scaled(0.25)
    with pytest.raises(ValueError):
        ScenarioSpec(axes=(("no_such_field", 1.0),)).apply(spec)
    with pytest.raises(ValueError):
        ScenarioSpec(axes=(("name", 1.0),)).apply(spec)


# ----------------------------------------------------------------------
# Sweep collapse: a point at the preset default IS the default
# ----------------------------------------------------------------------
def test_sweep_point_at_default_collapses(tiny_flow):
    spec = DESIGN_PRESETS["xgate"].scaled(0.25)
    swept = ScenarioSpec(axes=(("clock_frac", spec.clock_frac),))
    assert swept.resolve(spec).is_default

    flow = run_scenario_flow("xgate", _CFG, scenario=swept)
    assert flow.scenario == ""
    assert flow.clock_period == tiny_flow.clock_period
    np.testing.assert_array_equal(flow.signoff_sta.arrival,
                                  tiny_flow.signoff_sta.arrival)


def test_off_default_sweep_point_shifts_clock(tiny_flow):
    flow = run_scenario_flow("xgate", _CFG, scenario="clock_frac=0.6")
    assert flow.scenario == "clock_frac0.6"
    # Same physical design, tighter constraint.
    assert flow.spec.clock_frac == 0.6
    assert flow.clock_period < tiny_flow.clock_period
    assert (sorted(flow.input_placement.cell_xy)
            == sorted(tiny_flow.input_placement.cell_xy))


# ----------------------------------------------------------------------
# ECO rounds
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def eco_chain():
    """The base flow plus two chained ECO rounds, one shared store."""
    scenarios = expand_scenarios(eco_rounds=2)
    flows = run_scenarios("xgate", _CFG, scenarios, store=StageStore())
    return dict(zip([s.scenario_id for s in scenarios], flows))


def test_eco_round_chains_from_previous_signoff(eco_chain):
    base, r1, r2 = eco_chain[""], eco_chain["eco1"], eco_chain["eco2"]
    assert [f.scenario for f in (base, r1, r2)] == ["", "eco1", "eco2"]
    # Round r's inputs are round r-1's optimized implementation...
    assert r1.input_netlist is base.opt_netlist
    assert r2.input_netlist is r1.opt_netlist
    # ...and its timing starting point is r-1's sign-off STA.
    assert r1.pre_route_sta is base.signoff_sta
    assert r2.pre_route_sta is r1.signoff_sta
    # The clock constraint never moves across rounds.
    assert base.clock_period == r1.clock_period == r2.clock_period


def test_eco_rounds_preserve_endpoint_pins(eco_chain):
    """The paper's restructure-tolerance anchor: endpoint pin ids
    survive every ECO round (the optimizer restructures logic cones,
    never the registers/ports that terminate them)."""
    base_eps = set(eco_chain[""].endpoint_labels())
    for rid in ("eco1", "eco2"):
        labels = eco_chain[rid].endpoint_labels()
        assert set(labels) == base_eps
        assert len(labels) == len(base_eps)


def test_eco_round_is_a_real_new_sample(eco_chain):
    base, r1 = eco_chain[""], eco_chain["eco1"]
    assert r1.signoff_sta is not base.signoff_sta
    # Re-optimization against the same constraint cannot hurt WNS much;
    # what matters here is the labels genuinely moved.
    assert eco_chain["eco1"].endpoint_labels() != base.endpoint_labels()


# ----------------------------------------------------------------------
# The data path: scenario-tagged samples through the cache
# ----------------------------------------------------------------------
def test_scenario_samples_build_and_cache(tmp_path):
    from repro.ml.dataset import load_or_build_samples

    scenarios = [ScenarioSpec(),
                 ScenarioSpec.parse("clock_frac0.6"),
                 ScenarioSpec.parse("eco1")]
    samples, status = load_or_build_samples(
        "xgate", _CFG, map_bins=32, cache_dir=tmp_path,
        scenarios=scenarios)
    assert status == "built"
    assert [s.scenario for s in samples] == ["", "clock_frac0.6", "eco1"]
    assert all(s.corner == "base" for s in samples)
    # Tagged cache files appeared next to the untagged default.
    names = sorted(p.name for p in tmp_path.glob("*.pkl"))
    assert sum("@clock_frac0.6" in n for n in names) == 1
    assert sum("@eco1" in n for n in names) == 1
    assert sum("@" not in n for n in names) == 1

    again, status = load_or_build_samples(
        "xgate", _CFG, map_bins=32, cache_dir=tmp_path,
        scenarios=scenarios)
    assert status == "cached"
    assert [s.scenario for s in again] == [s.scenario for s in samples]
    np.testing.assert_array_equal(again[1].y, samples[1].y)


def test_scenario_labels_differ_from_default(tmp_path):
    from repro.ml.dataset import load_or_build_samples

    samples, _ = load_or_build_samples(
        "xgate", _CFG, map_bins=32, cache_dir=tmp_path,
        scenarios=[ScenarioSpec(), ScenarioSpec.parse("clock_frac0.6")])
    base, swept = samples
    # A tighter clock shifts every label; features of the shared
    # placement match.
    assert not np.array_equal(base.y, swept.y)
    np.testing.assert_array_equal(base.x_cell, swept.x_cell)


# ----------------------------------------------------------------------
# Serving a scenario
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fitted_predictor(tiny_sample):
    from repro.core import ModelConfig, TimingPredictor, TrainerConfig

    predictor = TimingPredictor(model_config=ModelConfig(map_bins=32),
                                trainer_config=TrainerConfig(epochs=1))
    predictor.fit([tiny_sample])
    return predictor


def test_serve_session_carries_scenario(fitted_predictor):
    from repro.serve import SessionFactory

    factory = SessionFactory(acquire=lambda: fitted_predictor,
                             flow_config=_CFG,
                             scenario="clock_frac=0.6+eco=1")
    session = factory.open("xgate")
    assert session.scenario == "clock_frac0.6+eco1"
    wire = session.describe()
    assert wire["scenario"] == "clock_frac0.6+eco1"
    session.close()


def test_default_serve_wire_shape_unchanged(fitted_predictor, tiny_sample):
    from repro.flow import run_flow
    from repro.serve import DesignSession

    # Sessions mutate their flow, so never wrap the shared tiny_flow.
    session = DesignSession(run_flow("xgate", _CFG), fitted_predictor,
                            sample=tiny_sample)
    wire = session.describe()
    assert "scenario" not in wire       # byte-stable default shape
    session.close()
