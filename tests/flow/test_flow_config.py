"""Tests for flow configuration plumbing."""

from dataclasses import replace

import pytest

from repro.flow import FlowConfig, run_flow
from repro.opt import OptimizerConfig
from repro.route import RouterConfig


def test_flow_config_defaults():
    cfg = FlowConfig()
    assert cfg.with_opt
    assert cfg.scale is None
    assert cfg.map_bins == 64


def test_optimizer_config_reaches_optimizer():
    weak = FlowConfig(scale=0.25,
                      optimizer=OptimizerConfig(max_passes=1,
                                                endpoints_per_pass=5,
                                                rewrite_rate=0.0))
    strong = FlowConfig(scale=0.25)
    f_weak = run_flow("xgate", weak)
    f_strong = run_flow("xgate", strong)
    assert sum(f_weak.opt_report.moves.values()) < \
        sum(f_strong.opt_report.moves.values())


def test_router_config_reaches_router():
    loose = FlowConfig(scale=0.25,
                       router=RouterConfig(capacity_headroom=50.0))
    f = run_flow("xgate", loose)
    assert f.routing.overflow_fraction == 0.0


def test_map_bins_config():
    f = run_flow("xgate", FlowConfig(scale=0.25, map_bins=16))
    assert f.input_maps.shape == (16, 16)
