"""Tests for the end-to-end reference flow."""

import numpy as np
import pytest

from repro.flow import FlowConfig, run_flow


def test_flow_produces_all_artifacts(tiny_flow):
    f = tiny_flow
    assert f.clock_period > 0
    assert len(f.input_netlist.cells) > 0
    assert f.opt_report is not None
    assert f.signoff_sta.wns is not None
    assert f.routing.total_wirelength > 0
    for stage in ("place", "opt", "route", "sta"):
        assert f.timer.get(stage) > 0


def test_endpoint_labels_cover_all_endpoints(tiny_flow):
    labels = tiny_flow.endpoint_labels()
    assert set(labels) == set(tiny_flow.input_netlist.endpoint_pins())
    assert all(v > 0 for v in labels.values())


def test_flow_without_opt_skips_optimizer(tiny_flow_no_opt):
    f = tiny_flow_no_opt
    assert f.opt_report is None
    assert f.timer.get("opt") == 0.0
    # Without optimization the netlist is structurally unchanged.
    assert len(f.opt_netlist.cells) == len(f.input_netlist.cells)


def test_optimization_improves_signoff(tiny_flow, tiny_flow_no_opt):
    assert tiny_flow.signoff_sta.tns > tiny_flow_no_opt.signoff_sta.tns


def test_clock_period_below_unoptimized_arrival(tiny_flow):
    assert tiny_flow.clock_period < tiny_flow.pre_route_sta.max_arrival


def test_flow_is_deterministic():
    a = run_flow("xgate", FlowConfig(scale=0.2))
    b = run_flow("xgate", FlowConfig(scale=0.2))
    assert a.endpoint_labels() == b.endpoint_labels()
    assert a.clock_period == b.clock_period


def test_flow_unknown_design():
    with pytest.raises(ValueError):
        run_flow("bogus")


def test_input_side_is_preoptimization(tiny_flow):
    f = tiny_flow
    # The optimizer added cells; the input netlist must not see them.
    assert len(f.opt_netlist.cells) != len(f.input_netlist.cells)
    f.input_netlist.check()
