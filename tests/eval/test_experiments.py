"""Tests for the experiment runners (fast, scaled-down versions)."""

import numpy as np
import pytest

from repro.eval.experiments import (
    Table1Row,
    format_table1,
    format_table2,
    format_table3,
    run_table1,
    run_table2,
    run_table3,
)
from repro.flow import FlowConfig


def test_run_table1_scaled():
    rows = run_table1(["xgate"], FlowConfig(scale=0.25))
    assert len(rows) == 1
    row = rows[0]
    assert row.design == "xgate"
    assert row.n_pins > 0
    assert 0 <= row.net_replaced < 1
    assert row.d_tns >= 0
    text = format_table1(rows)
    assert "xgate" in text and "Δtns" in text


def test_run_table2_scaled(tiny_samples):
    result = run_table2(tiny_samples, tiny_samples, epochs=4,
                        baseline_epochs=4)
    for name in tiny_samples[0].name, tiny_samples[1].name:
        assert set(result.endpoint_r2[name]) == {
            "DAC19", "DAC22-he", "DAC22-guo", "our CNN-only",
            "our GNN-only", "our full"}
    avg = result.averages()
    assert all(np.isfinite(v) for v in avg.values())
    text = format_table2(result)
    assert "DAC22-guo" in text and "avg" in text


def test_run_table3(tiny_samples):
    from repro.core import ModelConfig, TimingPredictor, TrainerConfig
    predictor = TimingPredictor(
        model_config=ModelConfig(variant="gnn", hidden=8,
                                 regressor_hidden=16, map_bins=32),
        trainer_config=TrainerConfig(epochs=2))
    predictor.fit(tiny_samples)
    rows = run_table3(tiny_samples, predictor)
    assert len(rows) == 2
    for r in rows:
        assert r.model_total_s > 0
        assert r.flow_total_s > 0
        assert r.speedup == pytest.approx(
            r.flow_total_s / r.model_total_s)
    text = format_table3(rows)
    assert "speedup" in text
