"""Tests for evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.eval import format_table, mape, r2_score


def test_r2_perfect():
    y = np.array([1.0, 2.0, 3.0])
    assert r2_score(y, y) == 1.0


def test_r2_mean_predictor_is_zero():
    y = np.array([1.0, 2.0, 3.0])
    assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)


def test_r2_worse_than_mean_is_negative():
    y = np.array([1.0, 2.0, 3.0])
    assert r2_score(y, np.array([3.0, 2.0, 1.0])) < 0


def test_r2_constant_target():
    assert r2_score(np.ones(3), np.ones(3)) == 1.0
    assert r2_score(np.ones(3), np.zeros(3)) == 0.0


def test_r2_rejects_tiny_input():
    with pytest.raises(ValueError):
        r2_score(np.array([1.0]), np.array([1.0]))


@given(st.lists(st.floats(min_value=-100, max_value=100), min_size=3,
                max_size=30))
def test_r2_never_exceeds_one(values):
    y = np.asarray(values)
    pred = y + 1.0
    assert r2_score(y, pred) <= 1.0 + 1e-12


@given(st.lists(st.floats(min_value=-50, max_value=50), min_size=3,
                max_size=20),
       st.floats(min_value=0.1, max_value=10),
       st.floats(min_value=-5, max_value=5))
def test_r2_invariant_under_target_affine_transform(values, a, b):
    """R² of (a·y+b, a·p+b) equals R² of (y, p)."""
    from hypothesis import assume

    y = np.asarray(values)
    assume(y.std() > 1e-3)  # near-constant targets are numerically unstable
    p = y + np.sin(y)
    r1 = r2_score(y, p)
    r2 = r2_score(a * y + b, a * p + b)
    assert r1 == pytest.approx(r2, rel=1e-4, abs=1e-7)


def test_mape_basic():
    y = np.array([10.0, 20.0])
    p = np.array([11.0, 18.0])
    assert mape(y, p) == pytest.approx((0.1 + 0.1) / 2)


def test_mape_ignores_zero_targets():
    y = np.array([0.0, 10.0])
    p = np.array([5.0, 11.0])
    assert mape(y, p) == pytest.approx(0.1)


def test_format_table_alignment():
    out = format_table(["a", "bb"], [[1, 2.5], ["xyz", 3.0]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "2.5000" in out
    assert "xyz" in out
