"""Tests for the end-to-end GNN baseline (DAC'22-Guo)."""

import numpy as np
import pytest

from repro.baselines import AUX_TASKS, GuoBaseline, GuoConfig


@pytest.fixture(scope="module")
def fitted(tiny_samples):
    model = GuoBaseline(GuoConfig(epochs=20, hidden=16, head_hidden=16))
    model.fit(tiny_samples)
    return model


def test_aux_tasks_cover_paper_supervision():
    names = {n for n, _ in AUX_TASKS}
    assert names == {"arrival", "slew", "net_delay", "cell_delay"}


def test_endpoint_prediction_shape(fitted, tiny_samples):
    s = tiny_samples[0]
    pred = fitted.predict_endpoint_arrival(s)
    assert pred.shape == s.y.shape
    assert np.isfinite(pred).all()


def test_training_design_correlation(fitted, tiny_samples):
    s = tiny_samples[0]
    pred = fitted.predict_endpoint_arrival(s)
    assert np.corrcoef(pred, s.y)[0, 1] > 0.3


def test_local_r2_returns_pair(fitted, tiny_samples):
    net_r2, cell_r2 = fitted.local_r2(tiny_samples[0])
    assert -20 < net_r2 <= 1
    assert -20 < cell_r2 <= 1


def test_deterministic(tiny_samples):
    preds = []
    for _ in range(2):
        model = GuoBaseline(GuoConfig(epochs=4, hidden=8, head_hidden=8,
                                      seed=3))
        model.fit(tiny_samples)
        preds.append(model.predict_endpoint_arrival(tiny_samples[0]))
    np.testing.assert_allclose(preds[0], preds[1])
