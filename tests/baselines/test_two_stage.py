"""Tests for the two-stage baselines (DAC'19 / DAC'22-He)."""

import numpy as np
import pytest

from repro.baselines import TwoStageBaseline, TwoStageConfig


@pytest.fixture(scope="module")
def fitted(tiny_samples):
    model = TwoStageBaseline(TwoStageConfig(lookahead=False, epochs=40))
    model.fit(tiny_samples)
    return model


def test_config_names():
    assert TwoStageConfig(lookahead=False).name == "DAC19"
    assert TwoStageConfig(lookahead=True).name == "DAC22-he"


def test_predict_requires_fit(tiny_samples):
    with pytest.raises(ValueError):
        TwoStageBaseline().predict_stage_delays(tiny_samples[0])


def test_stage_delays_on_all_edges(fitted, tiny_samples):
    s = tiny_samples[0]
    by_sink = fitted.predict_stage_delays(s)
    assert by_sink.shape == (s.n_nodes,)
    # All stage sink nodes carry predictions.
    assert np.abs(by_sink[s.stage_sink_nodes]).sum() > 0


def test_endpoint_prediction_correlates(fitted, tiny_samples):
    s = tiny_samples[0]  # training design — should fit decently
    pred = fitted.predict_endpoint_arrival(s)
    assert pred.shape == s.y.shape
    assert np.corrcoef(pred, s.y)[0, 1] > 0.5


def test_local_r2_on_train_design_positive(fitted, tiny_samples):
    assert fitted.local_r2(tiny_samples[0]) > 0.2


def test_lookahead_features_help_locally(tiny_samples):
    basic = TwoStageBaseline(TwoStageConfig(lookahead=False, epochs=40))
    basic.fit(tiny_samples)
    look = TwoStageBaseline(TwoStageConfig(lookahead=True, epochs=40))
    look.fit(tiny_samples)
    s = tiny_samples[0]
    # Look-ahead RC features should not be worse on the training design.
    assert look.local_r2(s) >= basic.local_r2(s) - 0.1


def test_fit_is_deterministic(tiny_samples):
    preds = []
    for _ in range(2):
        model = TwoStageBaseline(TwoStageConfig(epochs=10, seed=5))
        model.fit(tiny_samples)
        preds.append(model.predict_endpoint_arrival(tiny_samples[0]))
    np.testing.assert_allclose(preds[0], preds[1])
