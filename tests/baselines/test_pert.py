"""Tests for the PERT traversal over stage delays."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import endpoint_arrival, pert_arrival
from repro.timing import NET_SINK


def test_pert_with_true_stage_delays_recovers_arrival(tiny_sample):
    """Feeding the exact pre-route stage delays must reproduce the
    pre-route arrival times (up to launch offsets at the sources).

    The stage delay of a net edge ending at sink ``v`` is
    ``arr[v] − max over the driving cell's input arrivals`` — the cell arc
    plus the wire arc, which is exactly what the two-stage baselines model.
    """
    s = tiny_sample
    arr_true = s.pre_route_arrival
    # Max input arrival per cell-out node ("the cell's launch basis").
    basis = arr_true.copy()  # for SOURCE drivers the basis is their arrival
    big = np.concatenate([arr_true, [-np.inf]])
    for plan in s.plans:
        if len(plan.cell_nodes):
            basis[plan.cell_nodes] = big[plan.cell_preds].max(axis=1)
    stage = np.zeros(s.n_nodes)
    for plan in s.plans:
        if len(plan.net_nodes):
            stage[plan.net_nodes] = (arr_true[plan.net_nodes]
                                     - basis[plan.net_drivers])
    arr = pert_arrival(s, stage)
    got = arr[s.endpoint_nodes]
    want = arr_true[s.endpoint_nodes]
    # Identical up to the flip-flop clk-to-q launch offsets (~15 ps).
    assert np.corrcoef(got, want)[0, 1] > 0.999
    assert np.abs(got - want).max() < 30.0


def test_pert_zero_stages_gives_zero(tiny_sample):
    arr = pert_arrival(tiny_sample, np.zeros(tiny_sample.n_nodes))
    assert np.isfinite(arr).all()
    np.testing.assert_allclose(arr[tiny_sample.endpoint_nodes], 0.0)


def test_endpoint_arrival_aligns_with_y(tiny_sample):
    out = endpoint_arrival(tiny_sample, np.zeros(tiny_sample.n_nodes))
    assert out.shape == tiny_sample.y.shape


@settings(max_examples=20, deadline=None)
@given(st.floats(min_value=0.0, max_value=10.0))
def test_pert_monotone_in_stage_delays(tiny_sample, bump):
    """Uniformly increasing stage delays never decreases any arrival."""
    s = tiny_sample
    base = np.abs(np.sin(np.arange(s.n_nodes)))  # arbitrary nonneg stages
    a0 = pert_arrival(s, base)
    a1 = pert_arrival(s, base + bump)
    assert (a1 >= a0 - 1e-9).all()
