"""Tests for the analytical Elmore baseline."""

import numpy as np

from repro.baselines import elmore_endpoint_arrival, elmore_endpoint_r2


def test_elmore_prediction_is_pre_route_arrival(tiny_sample):
    pred = elmore_endpoint_arrival(tiny_sample)
    np.testing.assert_array_equal(
        pred, tiny_sample.pre_route_arrival[tiny_sample.endpoint_nodes])


def test_elmore_r2_in_valid_range(tiny_sample):
    r2 = elmore_endpoint_r2(tiny_sample)
    assert -10 < r2 <= 1.0


def test_elmore_correlates_with_signoff(tiny_sample):
    pred = elmore_endpoint_arrival(tiny_sample)
    assert np.corrcoef(pred, tiny_sample.y)[0, 1] > 0.5
