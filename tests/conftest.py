"""Shared fixtures: tiny designs and flows so the suite stays fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flow import FlowConfig, run_flow
from repro.liberty import CellLibrary
from repro.ml import build_sample
from repro.netlist import DESIGN_PRESETS, IN, OUT, Netlist, generate_netlist
from repro.placement import build_die, legalize, place


@pytest.fixture(scope="session")
def library() -> CellLibrary:
    return CellLibrary.default()


def make_toy_netlist() -> Netlist:
    """A hand-built 4-gate circuit with one register and one output.

        pi0 ──┐
              ├─ AND2 g0 ──┐
        pi1 ──┘            ├─ OR2 g1 ── reg0 D
        reg0 Q ────────────┘
        g1 ── po0 (also)
    """
    nl = Netlist("toy")
    pi0 = nl.add_port("pi0", IN)
    pi1 = nl.add_port("pi1", IN)
    po0 = nl.add_port("po0", OUT)
    g0 = nl.add_cell("AND2_X1", "g0")
    g1 = nl.add_cell("OR2_X2", "g1")
    reg = nl.add_cell("DFF_X1", "reg0")

    n_pi0 = nl.create_net(pi0.pin)
    n_pi1 = nl.create_net(pi1.pin)
    n_q = nl.create_net(reg.output_pin)
    n_g0 = nl.create_net(g0.output_pin)
    n_g1 = nl.create_net(g1.output_pin)

    nl.connect(n_pi0.nid, g0.input_pins[0])
    nl.connect(n_pi1.nid, g0.input_pins[1])
    nl.connect(n_g0.nid, g1.input_pins[0])
    nl.connect(n_q.nid, g1.input_pins[1])
    nl.connect(n_g1.nid, reg.input_pins[0])
    nl.connect(n_g1.nid, po0.pin)
    nl.check()
    return nl


@pytest.fixture
def toy_netlist() -> Netlist:
    return make_toy_netlist()


@pytest.fixture(scope="session")
def tiny_spec():
    return DESIGN_PRESETS["xgate"].scaled(0.25)


@pytest.fixture(scope="session")
def tiny_netlist(tiny_spec) -> Netlist:
    return generate_netlist(tiny_spec)


@pytest.fixture(scope="session")
def tiny_placed(tiny_spec):
    """(netlist, placement) of a small legalized design."""
    nl = generate_netlist(tiny_spec)
    die = build_die(nl, tiny_spec)
    pl = place(nl, die)
    legalize(nl, pl)
    return nl, pl


@pytest.fixture(scope="session")
def tiny_flow():
    """A complete flow result on a scaled-down design (with optimization)."""
    return run_flow("xgate", FlowConfig(scale=0.25))


@pytest.fixture(scope="session")
def tiny_flow_no_opt():
    return run_flow("xgate", FlowConfig(scale=0.25, with_opt=False))


@pytest.fixture(scope="session")
def tiny_sample(tiny_flow):
    return build_sample(tiny_flow, map_bins=32)


@pytest.fixture(scope="session")
def tiny_samples():
    """Two small samples (train-ish and test-ish) for model tests."""
    s1 = build_sample(run_flow("xgate", FlowConfig(scale=0.25)), map_bins=32)
    s2 = build_sample(run_flow("steelcore", FlowConfig(scale=0.25)),
                      map_bins=32)
    return [s1, s2]


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
