"""Tests for sample building and the dataset cache."""

import numpy as np
import pytest

from repro.flow import FlowConfig
from repro.ml import build_dataset, build_level_plans, build_sample
from repro.timing import CELL_OUT, NET_SINK, build_timing_graph


def test_sample_basic_consistency(tiny_sample):
    s = tiny_sample
    assert s.n_nodes == len(s.pin_ids)
    assert len(s.y) == s.n_endpoints == len(s.endpoint_pins)
    assert s.masks.shape == (s.n_endpoints, (32 // 4) ** 2)
    assert s.layout_stack.shape[0] == 3
    assert s.preprocess_time > 0
    assert (s.y > 0).all()


def test_level_plans_cover_all_non_source_nodes(tiny_flow):
    graph = build_timing_graph(tiny_flow.input_netlist)
    plans = build_level_plans(graph)
    covered = set()
    for p in plans:
        covered.update(int(v) for v in p.net_nodes)
        covered.update(int(v) for v in p.cell_nodes)
    sources = {int(v) for v in np.where(graph.level == 0)[0]}
    assert covered == set(range(graph.n_nodes)) - sources


def test_level_plans_preds_are_shallower(tiny_flow):
    graph = build_timing_graph(tiny_flow.input_netlist)
    plans = build_level_plans(graph)
    for lvl, p in enumerate(plans, start=1):
        for drv in p.net_drivers:
            assert graph.level[drv] < lvl
        valid = p.cell_preds[p.cell_preds >= 0]
        if len(valid):
            assert (graph.level[valid] < lvl).all()
        # Padding is -1 only.
        assert set(np.unique(p.cell_preds[p.cell_preds < 0])) <= {-1}


def test_local_labels_only_on_surviving_edges(tiny_flow, tiny_sample):
    replaced_net = tiny_flow.opt_report.replaced_net_edges
    for edge in tiny_sample.local_net_delay:
        assert edge not in replaced_net
    replaced_cell = tiny_flow.opt_report.replaced_cell_edges
    for edge in tiny_sample.local_cell_delay:
        assert edge not in replaced_cell


def test_aux_labels_nan_pattern(tiny_sample):
    s = tiny_sample
    # Net-delay labels only on net-sink nodes; cell on cell-out nodes.
    net_labeled = np.isfinite(s.aux_net_delay)
    assert (s.kind[net_labeled] == NET_SINK).all()
    cell_labeled = np.isfinite(s.aux_cell_delay)
    assert (s.kind[cell_labeled] == CELL_OUT).all()
    # Some labels must be missing (restructuring) and some present.
    assert 0 < net_labeled.sum() < s.n_nodes
    assert np.isfinite(s.aux_arrival).sum() > 0


def test_endpoint_aux_arrival_equals_labels(tiny_sample):
    s = tiny_sample
    np.testing.assert_allclose(s.aux_arrival[s.endpoint_nodes], s.y)


def test_stage_features_aligned(tiny_sample):
    s = tiny_sample
    assert len(s.stage_features_basic) == len(s.stage_sink_nodes)
    assert len(s.stage_features_lookahead) == len(s.stage_sink_nodes)
    assert s.stage_features_lookahead.shape[1] > s.stage_features_basic.shape[1]
    for node in s.stage_label_by_sink:
        assert s.kind[node] == NET_SINK


def test_dataset_cache_roundtrip(tmp_path):
    cfg = FlowConfig(scale=0.15)
    first = build_dataset(["xgate"], flow_config=cfg, map_bins=32,
                          cache_dir=tmp_path)
    assert len(list(tmp_path.glob("*.pkl"))) == 1
    second = build_dataset(["xgate"], flow_config=cfg, map_bins=32,
                           cache_dir=tmp_path)
    np.testing.assert_allclose(first[0].y, second[0].y)
    assert first[0].name == second[0].name


def test_cache_key_encodes_full_flow_config(tmp_path):
    """Regression: the cache key must cover every FlowConfig field.

    The old filename encoded only (name, seed, scale, map_bins, version),
    so flipping ``with_opt`` or any optimizer knob silently served the
    previously cached samples — i.e. wrong labels.
    """
    from repro.opt import OptimizerConfig

    with_opt = build_dataset(["xgate"], flow_config=FlowConfig(scale=0.15),
                             map_bins=32, cache_dir=tmp_path)
    no_opt = build_dataset(["xgate"],
                           flow_config=FlowConfig(scale=0.15,
                                                  with_opt=False),
                           map_bins=32, cache_dir=tmp_path)
    # Different configs must build distinct cache entries...
    assert len(list(tmp_path.glob("*.pkl"))) == 2
    # ...and an unoptimized flow really has different sign-off labels.
    assert not np.allclose(with_opt[0].y, no_opt[0].y)

    # A sub-config change alone must also miss the cache.
    build_dataset(["xgate"],
                  flow_config=FlowConfig(
                      scale=0.15, optimizer=OptimizerConfig(max_passes=1)),
                  map_bins=32, cache_dir=tmp_path)
    assert len(list(tmp_path.glob("*.pkl"))) == 3


def test_corrupt_cache_recovers_by_rebuilding(tmp_path, caplog):
    """Regression: a truncated/corrupt cache pickle must warn and rebuild,
    not crash every subsequent run."""
    import logging
    import pickle

    cfg = FlowConfig(scale=0.15)
    first = build_dataset(["xgate"], flow_config=cfg, map_bins=32,
                          cache_dir=tmp_path)
    (cache_file,) = tmp_path.glob("*.pkl")
    cache_file.write_bytes(b"\x80\x04 this is not a pickle")

    with caplog.at_level(logging.WARNING, logger="repro.ml.dataset"):
        second = build_dataset(["xgate"], flow_config=cfg, map_bins=32,
                               cache_dir=tmp_path)
    assert any("corrupt" in r.message for r in caplog.records)
    np.testing.assert_array_equal(first[0].y, second[0].y)
    # The rebuild must have replaced the bad file with a loadable one.
    with open(cache_file, "rb") as fh:
        reloaded = pickle.load(fh)
    np.testing.assert_array_equal(reloaded.y, first[0].y)
