"""PackPlanCache: LRU behavior, release-on-teardown, disk layer."""

from __future__ import annotations

import gc
import weakref
from types import SimpleNamespace

import numpy as np
import pytest

from repro.ml.batch import PackedBatch
from repro.ml.plancache import (
    PLAN_CACHE,
    PackPlanCache,
    topology_fingerprint,
)


def _fake_sample(n_nodes: int = 8, seed: int = 0) -> SimpleNamespace:
    """A stub with exactly the topology attrs the cache reads."""
    rng = np.random.default_rng(seed)
    plan = SimpleNamespace(
        net_nodes=rng.integers(0, n_nodes, 4),
        net_drivers=rng.integers(0, n_nodes, 4),
        cell_nodes=rng.integers(0, n_nodes, 4),
        cell_preds=rng.integers(0, n_nodes, (4, 2)))
    return SimpleNamespace(
        n_nodes=n_nodes,
        level=rng.integers(0, 3, n_nodes),
        source_nodes=rng.integers(0, n_nodes, 2),
        endpoint_nodes=rng.integers(0, n_nodes, 3),
        endpoint_pins=rng.integers(0, 99, 3),
        plans=[plan])


def test_memo_hit_returns_same_topology_object():
    cache = PackPlanCache(capacity=4)
    s = _fake_sample()
    builds = []

    def build(samples):
        builds.append(len(samples))
        return {"n": len(samples)}

    t1 = cache.topology([s], build)
    t2 = cache.topology([s], build)
    assert t1 is t2
    assert builds == [1]
    assert cache.describe()["hits"] == 1


def test_lru_keeps_the_hot_key():
    cache = PackPlanCache(capacity=2)
    a, b, c = _fake_sample(seed=1), _fake_sample(seed=2), _fake_sample(seed=3)
    build = lambda samples: {"id": id(samples[0].plans)}  # noqa: E731

    ta = cache.topology([a], build)
    cache.topology([b], build)
    cache.topology([a], build)      # touch a: now the hot key
    cache.topology([c], build)      # evicts b (LRU), not a
    assert cache.topology([a], build) is ta
    assert cache.describe()["entries"] == 2
    tb2 = cache.topology([b], build)
    assert tb2 is not ta  # b was rebuilt after eviction


def test_release_makes_dropped_sample_arrays_collectable():
    """Regression for the pre-PR leak: the merge memo kept strong refs
    to every pack's plans forever, so a closed session's topology never
    became collectable."""
    cache = PackPlanCache(capacity=8)
    arr = np.arange(4096, dtype=np.float64)
    sample = SimpleNamespace(plans=[arr])
    ref = weakref.ref(arr)
    cache.topology([sample], lambda ss: {"ok": True})
    del arr
    gc.collect()
    assert ref() is not None, "cache entry must pin the keyed plans"

    released = cache.release(sample)
    assert released == 1
    del sample
    gc.collect()
    assert ref() is None, (
        "released sample's plan arrays must become collectable")


def test_without_release_the_entry_pins_until_clear():
    cache = PackPlanCache(capacity=8)
    arr = np.arange(128, dtype=np.float64)
    sample = SimpleNamespace(plans=[arr])
    ref = weakref.ref(arr)
    cache.topology([sample], lambda ss: {})
    del arr, sample
    gc.collect()
    assert ref() is not None  # entry still pins the plans list
    cache.clear()
    gc.collect()
    assert ref() is None


def test_release_drops_multi_sample_packs_too():
    cache = PackPlanCache(capacity=8)
    a, b = _fake_sample(seed=4), _fake_sample(seed=5)
    build = lambda samples: {"n": len(samples)}  # noqa: E731
    cache.topology([a], build)
    cache.topology([a, b], build)
    cache.topology([b], build)
    assert cache.release(a) == 2      # [a] and [a, b]
    assert cache.describe()["entries"] == 1


def test_fingerprint_is_content_based_and_memoized():
    a1, a2 = _fake_sample(seed=7), _fake_sample(seed=7)
    b = _fake_sample(seed=8)
    assert topology_fingerprint(a1) == topology_fingerprint(a2)
    assert topology_fingerprint(a1) != topology_fingerprint(b)
    assert a1._topo_fingerprint == topology_fingerprint(a1)


def test_disk_layer_warm_starts_a_fresh_cache(tmp_path):
    a, b = _fake_sample(seed=10), _fake_sample(seed=11)
    payload = {"merged": np.arange(5)}
    first = PackPlanCache(capacity=4, cache_dir=tmp_path)
    built = []

    def build(samples):
        built.append(1)
        return payload

    first.topology([a, b], build)
    assert built == [1]
    assert list(tmp_path.glob("plan_*.pkl"))

    # Same content, different process in spirit: new cache, new stubs.
    a2, b2 = _fake_sample(seed=10), _fake_sample(seed=11)
    second = PackPlanCache(capacity=4, cache_dir=tmp_path)

    def must_not_build(samples):  # pragma: no cover - failure path
        raise AssertionError("disk hit expected, build() called")

    topo = second.topology([a2, b2], must_not_build)
    np.testing.assert_array_equal(topo["merged"], payload["merged"])
    assert second.describe()["disk_hits"] == 1


def test_pack_of_one_skips_the_disk_layer(tmp_path):
    cache = PackPlanCache(capacity=4, cache_dir=tmp_path)
    cache.topology([_fake_sample(seed=12)], lambda ss: {})
    assert not list(tmp_path.glob("plan_*.pkl"))


def test_corrupt_disk_entry_degrades_to_rebuild(tmp_path):
    a, b = _fake_sample(seed=13), _fake_sample(seed=14)
    cache = PackPlanCache(capacity=4, cache_dir=tmp_path)
    cache.topology([a, b], lambda ss: {"v": 1})
    path = next(tmp_path.glob("plan_*.pkl"))
    path.write_bytes(b"not a pickle")

    fresh = PackPlanCache(capacity=4, cache_dir=tmp_path)
    rebuilt = []
    topo = fresh.topology([_fake_sample(seed=13), _fake_sample(seed=14)],
                          lambda ss: rebuilt.append(1) or {"v": 2})
    assert rebuilt == [1]
    assert topo == {"v": 2}
    # The corrupt file was replaced by a good copy on the rebuild.
    reloaded = PackPlanCache(capacity=4, cache_dir=tmp_path)
    assert reloaded.topology(
        [_fake_sample(seed=13), _fake_sample(seed=14)],
        lambda ss: pytest.fail("expected a disk hit")) == {"v": 2}


def test_packed_batch_pack_goes_through_the_global_cache(tiny_samples):
    PLAN_CACHE.clear()
    before = PLAN_CACHE.describe()
    b1 = PackedBatch.pack(tiny_samples)
    b2 = PackedBatch.pack(tiny_samples)
    after = PLAN_CACHE.describe()
    assert after["hits"] == before["hits"] + 1
    # Topology arrays are shared between repeat packs (the whole point)…
    assert b1.node_offsets is b2.node_offsets
    assert b1.plans is b2.plans
    # …while feature arrays are re-gathered per pack (what-if edits
    # mutate features in place and must stay visible).
    assert b1.x_cell is not b2.x_cell
    np.testing.assert_array_equal(b1.x_cell, b2.x_cell)
    for s in tiny_samples:
        PLAN_CACHE.release(s)
