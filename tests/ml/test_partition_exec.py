"""Differential battery: partitioned execution is fp64 bit-identical.

Every preset is built small and run through both paths — monolithic
whole-graph arrays vs. chunk-streamed featurization and GNN forward —
and the outputs are compared *bitwise* (``np.array_equal`` on fp64, no
tolerances).  The serve-level test proves the same through a live
session, and the subprocess test pins the ``large``-preset peak-RSS
ceiling the whole tentpole exists for.
"""

from __future__ import annotations

import copy
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core import ModelConfig, TimingPredictor, TrainerConfig
from repro.core.gnn import EndpointGNN
from repro.flow import FlowConfig, run_flow
from repro.ml import build_level_plans, node_features
from repro.ml.features import CELL_FEATURE_DIM, NET_FEATURE_DIM
from repro.netlist import DESIGN_PRESETS
from repro.netlist.generator import generate_netlist
from repro.nn import inference_mode
from repro.placement import PlacerConfig, build_die, place
from repro.serve import DesignSession, Edit
from repro.timing import PartitionConfig, build_stream_plan, build_timing_graph

PINS = 64          # small enough that every preset splits into many chunks
HIDDEN = 24


@pytest.fixture(scope="module", params=sorted(DESIGN_PRESETS))
def built(request):
    """(netlist, placement, graph) for one preset, scaled tiny."""
    spec = DESIGN_PRESETS[request.param].scaled(0.05)
    nl = generate_netlist(spec, 0)
    die = build_die(nl, spec, 0)
    placement = place(nl, die, PlacerConfig(n_iterations=2, seed=0))
    return nl, placement, build_timing_graph(nl)


def _gnn_sample(graph, x_cell, x_net):
    return SimpleNamespace(
        name="t", n_nodes=graph.n_nodes, level=graph.level,
        plans=build_level_plans(graph), x_cell=x_cell, x_net=x_net,
        endpoint_nodes=graph.endpoints,
        source_nodes=np.where(graph.level == 0)[0])


# ----------------------------------------------------------------------
# Featurization: chunked == monolithic, bit for bit, on every preset.
# ----------------------------------------------------------------------

def test_chunked_features_bit_identical(built):
    nl, placement, graph = built
    ref_cell, ref_net = node_features(nl, placement, graph)
    for partition in (PINS, PartitionConfig(memory_budget_mb=0.5),
                      10**9):
        x_cell, x_net = node_features(nl, placement, graph,
                                      partition=partition)
        assert np.array_equal(x_cell, ref_cell)
        assert np.array_equal(x_net, ref_net)


# ----------------------------------------------------------------------
# GNN forward: streamed == monolithic, bit for bit, on every preset.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("residual", [False, True])
def test_forward_stream_bit_identical(built, residual):
    nl, placement, graph = built
    x_cell, x_net = node_features(nl, placement, graph)
    sample = _gnn_sample(graph, x_cell, x_net)
    gnn = EndpointGNN(HIDDEN, CELL_FEATURE_DIM, NET_FEATURE_DIM,
                      np.random.default_rng(0), residual=residual)
    with inference_mode():
        ref = gnn.forward(sample, training=False)[sample.endpoint_nodes]
        for pins in (PINS, 10**9):       # many chunks / one chunk
            plan = build_stream_plan(sample, pins)
            got = gnn.forward_stream(sample, plan)
            assert got.dtype == np.float64
            assert np.array_equal(got, ref), \
                f"stream diverged at pins={pins} (residual={residual})"


def test_stream_plan_and_forward_are_deterministic(built):
    nl, placement, graph = built
    x_cell, x_net = node_features(nl, placement, graph)
    sample = _gnn_sample(graph, x_cell, x_net)
    a = build_stream_plan(sample, PINS)
    b = build_stream_plan(sample, PINS)
    assert len(a.chunks) == len(b.chunks)
    assert (a.max_rows, a.max_live) == (b.max_rows, b.max_live)
    for ca, cb in zip(a.chunks, b.chunks):
        assert (ca.n_halo, ca.n_nodes) == (cb.n_halo, cb.n_nodes)
        assert np.array_equal(ca.cell_order, cb.cell_order)
        assert np.array_equal(ca.net_order, cb.net_order)
        assert np.array_equal(ca.keep_new, cb.keep_new)
        assert np.array_equal(ca.live_order, cb.live_order)
    gnn = EndpointGNN(HIDDEN, CELL_FEATURE_DIM, NET_FEATURE_DIM,
                      np.random.default_rng(1), residual=False)
    with inference_mode():
        r1 = gnn.forward_stream(sample, a)
        r2 = gnn.forward_stream(sample, b)   # fresh plan, fresh arena
        r3 = gnn.forward_stream(sample, a)   # reused arena
    assert r1.tobytes() == r2.tobytes() == r3.tobytes()


# ----------------------------------------------------------------------
# Full predictor / serve session round trips.
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def exec_predictor(tiny_sample):
    predictor = TimingPredictor(
        model_config=ModelConfig(map_bins=32),
        trainer_config=TrainerConfig(epochs=2))
    predictor.fit([tiny_sample])
    return predictor


def test_predictor_partition_hint_is_bit_identical(exec_predictor,
                                                   tiny_sample):
    ref = exec_predictor.predict_array(tiny_sample)
    # A shallow copy keeps the shared fixture's partition stamp clean.
    clone = copy.copy(tiny_sample)
    exec_predictor.set_partition(PINS)
    try:
        assert np.array_equal(exec_predictor.predict_array(clone), ref)
        assert exec_predictor.predict(clone) == \
            exec_predictor.predict(tiny_sample)
    finally:
        exec_predictor.set_partition(None)


def test_partitioned_session_serves_identical_whatifs(exec_predictor):
    flow = run_flow("xgate", FlowConfig(scale=0.25, base_seed=0))
    plain = DesignSession(flow, exec_predictor, seed=0)
    part = DesignSession(copy.deepcopy(flow), exec_predictor, seed=0,
                         partition_pins=PINS)
    assert part.sample.partition_pins == PINS
    assert plain.predict() == part.predict()

    die = plain.placement.die
    cell = next(iter(plain.netlist.cells))
    edits = [Edit(op="move", cell=cell,
                  x=die.width * 0.3, y=die.height * 0.6)]

    def stable(body):
        return {k: v for k, v in body.items() if k != "latency_ms"}

    # Uncommitted what-if, then a committed one: the partitioned session
    # re-featurizes only the touched chunk yet must match bit for bit.
    assert stable(plain.whatif(edits, commit=False)) == \
        stable(part.whatif(edits, commit=False))
    assert stable(plain.whatif(edits, commit=True)) == \
        stable(part.whatif(edits, commit=True))
    for k in ("x_cell", "x_net"):
        assert np.array_equal(getattr(plain.sample, k),
                              getattr(part.sample, k))
    assert plain.predict() == part.predict()


# ----------------------------------------------------------------------
# The tentpole claim, in-suite: 'large' runs under a peak-RSS ceiling
# the monolithic path exceeds.  Subprocesses because ru_maxrss is a
# process-lifetime high-water mark (see benchmarks/bench_partition.py,
# whose child driver this reuses).
# ----------------------------------------------------------------------

def test_large_preset_peak_memory_ceiling():
    from benchmarks.bench_partition import (HIDDEN as BENCH_HIDDEN,
                                            _mem_available_kb, _run_child)

    if _mem_available_kb() < (1 << 21):  # 2 GB
        pytest.skip("not enough available RAM for the full-mode child")
    stream = _run_child("stream", None)
    full = _run_child("full", None)
    assert full["n_nodes"] >= 100_000
    assert stream["checksum"] == full["checksum"]
    ceiling_kb = (full["n_nodes"] + 1) * BENCH_HIDDEN * 8 // 2 // 1024
    assert stream["forward_delta_kb"] <= ceiling_kb
    assert full["forward_delta_kb"] > ceiling_kb
