"""Tests for node feature extraction."""

import numpy as np

from repro.ml import CELL_FEATURE_DIM, NET_FEATURE_DIM, node_features
from repro.timing import CELL_OUT, NET_SINK, build_timing_graph


def test_feature_shapes(tiny_placed):
    nl, pl = tiny_placed
    graph = build_timing_graph(nl)
    x_cell, x_net = node_features(nl, pl, graph)
    assert x_cell.shape == (graph.n_nodes, CELL_FEATURE_DIM)
    assert x_net.shape == (graph.n_nodes, NET_FEATURE_DIM)


def test_features_live_on_the_right_nodes(tiny_placed):
    nl, pl = tiny_placed
    graph = build_timing_graph(nl)
    x_cell, x_net = node_features(nl, pl, graph)
    cell_nodes = graph.kind == CELL_OUT
    net_nodes = graph.kind == NET_SINK
    assert np.abs(x_cell[~cell_nodes]).sum() == 0
    assert np.abs(x_net[~net_nodes]).sum() == 0
    # Every cell node carries exactly one one-hot gate type.
    onehot = x_cell[cell_nodes, 5:]
    np.testing.assert_array_equal(onehot.sum(axis=1), 1.0)


def test_features_in_sane_ranges(tiny_placed):
    nl, pl = tiny_placed
    graph = build_timing_graph(nl)
    x_cell, x_net = node_features(nl, pl, graph)
    assert x_cell.min() >= 0
    assert x_cell.max() < 30
    assert x_net.min() >= 0
    assert x_net.max() < 30


def test_net_distance_feature_matches_geometry(tiny_placed):
    nl, pl = tiny_placed
    graph = build_timing_graph(nl)
    _, x_net = node_features(nl, pl, graph)
    from repro.ml.features import DISTANCE_SCALE
    # Pick one net edge and check its sink node's distance feature.
    drv, snk = next(iter(nl.net_edges()))
    node = graph.node_of[snk]
    xd, yd = pl.pin_position(nl, drv)
    xs, ys = pl.pin_position(nl, snk)
    expect = (abs(xd - xs) + abs(yd - ys)) / DISTANCE_SCALE
    assert x_net[node, 0] == expect
