"""Tests for the packed-batch execution engine (repro.ml.batch).

The contract under test: packing is pure bookkeeping.  A packed forward
must agree with the per-design loop to floating-point round-off, in any
packing order, and the packed backward must produce the same parameter
gradients as summing per-design backwards — verified both differentially
and against numerical gradients.
"""

import numpy as np
import pytest

from repro.core import (
    ModelConfig,
    RestructureTolerantModel,
    TimingPredictor,
    Trainer,
    TrainerConfig,
)
from repro.ml import EndpointBatchSampler, PackedBatch


def _small_model(variant="full", seed=0):
    return RestructureTolerantModel(
        ModelConfig(variant=variant, hidden=8, layout_embed=8,
                    regressor_hidden=16, map_bins=32, seed=seed))


def _jitter(model, rng):
    """Break the residual branches' zero-init so gradients flow everywhere."""
    for p in model.parameters():
        p.data += rng.normal(0.0, 0.05, p.shape)


# ---------------------------------------------------------------------------
# pack structure


def test_pack_structure(tiny_samples):
    s1, s2 = tiny_samples
    batch = PackedBatch.pack([s1, s2])

    assert batch.n_samples == 2
    assert batch.n_nodes == s1.n_nodes + s2.n_nodes
    np.testing.assert_array_equal(batch.node_offsets,
                                  [0, s1.n_nodes, s1.n_nodes + s2.n_nodes])
    np.testing.assert_array_equal(batch.level,
                                  np.concatenate([s1.level, s2.level]))
    assert batch.x_cell.shape == (batch.n_nodes, s1.x_cell.shape[1])

    assert batch.n_endpoints == s1.n_endpoints + s2.n_endpoints
    np.testing.assert_array_equal(
        batch.endpoint_nodes,
        np.concatenate([s1.endpoint_nodes, s2.endpoint_nodes + s1.n_nodes]))
    np.testing.assert_array_equal(
        batch.endpoint_sample,
        np.concatenate([np.zeros(s1.n_endpoints, dtype=np.int64),
                        np.ones(s2.n_endpoints, dtype=np.int64)]))
    np.testing.assert_array_equal(batch.endpoints_per_sample,
                                  [s1.n_endpoints, s2.n_endpoints])
    np.testing.assert_array_equal(
        batch.y, np.concatenate([s1.y, s2.y]))

    assert batch.layout_stacks.shape == (2,) + s1.layout_stack.shape
    assert batch.masks.shape[0] == batch.n_endpoints
    assert len(batch.plans) == max(len(s1.plans), len(s2.plans))


def test_pack_merged_plans_remap_nodes(tiny_samples):
    s1, s2 = tiny_samples
    batch = PackedBatch.pack([s1, s2])
    for lvl, plan in enumerate(batch.plans):
        expect_cells = sum(
            len(s.plans[lvl].cell_nodes) for s in (s1, s2)
            if lvl < len(s.plans))
        assert len(plan.cell_nodes) == expect_cells
        # Real predecessor entries stay in range; -1 padding survives.
        if plan.cell_preds.size:
            real = plan.cell_preds[plan.cell_preds >= 0]
            if len(real):
                assert real.max() < batch.n_nodes
            assert plan.cell_preds.min() >= -1


def test_pack_of_one_reuses_arrays(tiny_sample):
    batch = PackedBatch.pack([tiny_sample])
    assert batch.x_cell is tiny_sample.x_cell
    assert batch.x_net is tiny_sample.x_net
    assert batch.level is tiny_sample.level
    assert batch.plans is tiny_sample.plans
    assert batch.endpoint_nodes is tiny_sample.endpoint_nodes
    assert batch.n_nodes == tiny_sample.n_nodes


def test_pack_empty_rejected():
    with pytest.raises(ValueError):
        PackedBatch.pack([])


def test_split_endpoint_array_roundtrip(tiny_samples):
    batch = PackedBatch.pack(tiny_samples)
    values = np.arange(batch.n_endpoints, dtype=float)
    parts = batch.split_endpoint_array(values)
    assert [len(p) for p in parts] == [s.n_endpoints for s in tiny_samples]
    np.testing.assert_array_equal(np.concatenate(parts), values)
    with pytest.raises(ValueError):
        batch.split_endpoint_array(values[:-1])


# ---------------------------------------------------------------------------
# fp-equivalence: packed == per-design, in any order


@pytest.mark.parametrize("variant", ["full", "gnn", "cnn"])
def test_packed_forward_equals_per_design(variant, tiny_samples, rng):
    model = _small_model(variant)
    _jitter(model, rng)

    singles = []
    for s in tiny_samples:
        singles.append(model.forward(s))
        model.drain_caches()

    batch = PackedBatch.pack(tiny_samples)
    packed = model.forward_batch(batch)
    model.drain_caches()

    for single, part in zip(singles, batch.split_endpoint_array(packed)):
        np.testing.assert_allclose(part, single, rtol=1e-9, atol=0.0)


def test_packing_order_invariance(tiny_samples, rng):
    model = _small_model()
    _jitter(model, rng)
    fwd = PackedBatch.pack(tiny_samples)
    rev = PackedBatch.pack(tiny_samples[::-1])
    p_fwd = fwd.split_endpoint_array(model.forward_batch(fwd))
    model.drain_caches()
    p_rev = rev.split_endpoint_array(model.forward_batch(rev))
    model.drain_caches()
    for a, b in zip(p_fwd, p_rev[::-1]):
        np.testing.assert_allclose(b, a, rtol=1e-9, atol=0.0)


def test_inference_forward_matches_training_forward(tiny_samples, rng):
    """The training=False fast path must be bit-identical, not just close."""
    model = _small_model()
    _jitter(model, rng)
    batch = PackedBatch.pack(tiny_samples)
    a = model.forward_batch(batch, training=True)
    model.drain_caches()
    b = model.forward_batch(batch, training=False)
    model.drain_caches()
    np.testing.assert_array_equal(a, b)


# ---------------------------------------------------------------------------
# gradients


def test_packed_gradients_equal_summed_per_design(tiny_samples, rng):
    """Packed backward == sum of per-design backwards, parameter by
    parameter (the loss gradient is split along the endpoint axis, so the
    two accumulation orders compute the same sums)."""
    model = _small_model()
    _jitter(model, rng)
    batch = PackedBatch.pack(tiny_samples)

    grad = rng.normal(size=batch.n_endpoints)

    model.zero_grad()
    model.backward_batch(_forward_grad(model, batch, grad))
    packed_grads = [p.grad.copy() for p in model.parameters()]

    model.zero_grad()
    for s, g in zip(tiny_samples, batch.split_endpoint_array(grad)):
        model.forward(s)
        model.backward(g)
    for packed_g, p in zip(packed_grads, model.parameters()):
        np.testing.assert_allclose(packed_g, p.grad, rtol=1e-7, atol=1e-10)


def _forward_grad(model, batch, grad):
    model.forward_batch(batch)
    return grad


def test_packed_backward_gradcheck(tiny_samples, rng):
    """Analytic packed gradients vs central differences, spot-checked on a
    few entries of GNN, CNN and regressor parameters (a full numerical
    sweep would run two forwards per scalar)."""
    model = _small_model()
    _jitter(model, rng)
    batch = PackedBatch.pack(tiny_samples)

    def loss():
        out = model.forward_batch(batch, training=False)
        return 0.5 * float((out * out).sum())

    pred = model.forward_batch(batch)
    model.zero_grad()
    model.backward_batch(pred.copy())

    checked = {
        "gnn.f_c1[0].weight": model.gnn.f_c1.layers[0].weight,
        "gnn.source_emb": model.gnn.source_emb,
        "cnn.conv0.weight": model.cnn.net.layers[0].weight,
        "layout_fc[0].weight": model.layout_fc.layers[0].weight,
        "regressor[0].weight": model.regressor.layers[0].weight,
    }
    eps = 1e-6
    for name, param in checked.items():
        flat = param.data.ravel()
        gflat = param.grad.ravel()
        idxs = np.linspace(0, flat.size - 1, num=min(4, flat.size),
                           dtype=int)
        for i in idxs:
            old = flat[i]
            flat[i] = old + eps
            plus = loss()
            flat[i] = old - eps
            minus = loss()
            flat[i] = old
            numeric = (plus - minus) / (2 * eps)
            np.testing.assert_allclose(
                gflat[i], numeric, rtol=1e-4, atol=1e-5,
                err_msg=f"{name}[{i}] analytic vs numerical")


# ---------------------------------------------------------------------------
# endpoint mini-batch sampler


def test_sampler_covers_every_endpoint_once():
    sampler = EndpointBatchSampler(103, batch_size=25)
    assert sampler.n_batches == 5
    rng = np.random.default_rng(7)
    batches = list(sampler.batches(rng))
    assert [len(b) for b in batches] == [25, 25, 25, 25, 3]
    seen = np.concatenate(batches)
    np.testing.assert_array_equal(np.sort(seen), np.arange(103))


def test_sampler_is_seed_deterministic_and_shuffled():
    sampler = EndpointBatchSampler(64, batch_size=16)
    a = np.concatenate(list(sampler.batches(np.random.default_rng(3))))
    b = np.concatenate(list(sampler.batches(np.random.default_rng(3))))
    c = np.concatenate(list(sampler.batches(np.random.default_rng(4))))
    np.testing.assert_array_equal(a, b)
    assert not np.array_equal(a, c)
    assert not np.array_equal(a, np.arange(64))  # actually shuffled


def test_sampler_validation():
    with pytest.raises(ValueError):
        EndpointBatchSampler(0)
    with pytest.raises(ValueError):
        EndpointBatchSampler(10, batch_size=0)


# ---------------------------------------------------------------------------
# trainer + predictor integration


def test_trainer_cross_design_minibatches(tiny_samples):
    model = _small_model()
    trainer = Trainer(model, TrainerConfig(epochs=3, endpoint_batch=64))
    losses = trainer.fit(tiny_samples)
    assert set(losses) == {(s.name, i) for i, s in enumerate(tiny_samples)}
    assert all(np.isfinite(v) for v in losses.values())
    assert len(trainer.history) == 3
    # Seeded training is reproducible.
    model2 = _small_model()
    trainer2 = Trainer(model2, TrainerConfig(epochs=3, endpoint_batch=64))
    trainer2.fit(tiny_samples)
    np.testing.assert_allclose(trainer2.history, trainer.history)


def test_predict_batch_matches_predict(tiny_samples):
    predictor = TimingPredictor(
        model_config=ModelConfig(hidden=8, layout_embed=8,
                                 regressor_hidden=16, map_bins=32),
        trainer_config=TrainerConfig(epochs=2))
    predictor.fit(tiny_samples)

    batched = predictor.predict_batch(tiny_samples)
    for s, got in zip(tiny_samples, batched):
        single = predictor.predict(s)
        assert set(got) == set(single)
        for pin, value in single.items():
            np.testing.assert_allclose(got[pin], value, rtol=1e-9)

    arrays = predictor.predict_batch_arrays(tiny_samples)
    for s, arr in zip(tiny_samples, arrays):
        assert arr.shape == (s.n_endpoints,)
        np.testing.assert_allclose(arr, predictor.predict_array(s),
                                   rtol=1e-9, atol=0.0)


# ---------------------------------------------------------------------------
# multi-corner packing: corners are just extra samples in the pack


def _corner_model(seed=0):
    return RestructureTolerantModel(
        ModelConfig(variant="full", hidden=8, layout_embed=8,
                    regressor_hidden=16, map_bins=32, seed=seed,
                    corner_names=("fast", "typ", "slow")))


def _corner_views(sample, names):
    return [sample.corner_view(name, idx, y=sample.y)
            for idx, name in enumerate(names)]


def test_multi_corner_packed_equals_per_corner_loop(tiny_samples, rng):
    """One packed forward over every (design, corner) pair must agree
    with the per-corner loop — the contract the serve path's all-corner
    what-if relies on."""
    model = _corner_model()
    _jitter(model, rng)
    names = ("fast", "typ", "slow")
    views = [v for s in tiny_samples for v in _corner_views(s, names)]

    singles = []
    for v in views:
        singles.append(
            PackedBatch.pack([v]).split_endpoint_array(
                model.forward_batch(PackedBatch.pack([v])))[0])
        model.drain_caches()

    batch = PackedBatch.pack(views)
    assert batch.corner_ids.tolist() == [0, 1, 2, 0, 1, 2]
    packed = batch.split_endpoint_array(model.forward_batch(batch))
    model.drain_caches()
    for single, part in zip(singles, packed):
        np.testing.assert_allclose(part, single, rtol=1e-9, atol=0.0)


def test_corner_embedding_conditions_the_output(tiny_sample, rng):
    """Same features, different corner id -> different predictions (the
    embedding rows are distinct), while a single-corner model has no
    embedding at all and is corner-blind."""
    model = _corner_model()
    _jitter(model, rng)
    views = _corner_views(tiny_sample, ("fast", "typ", "slow"))
    batch = PackedBatch.pack(views)
    parts = batch.split_endpoint_array(model.forward_batch(batch))
    model.drain_caches()
    assert not np.allclose(parts[0], parts[1])
    assert not np.allclose(parts[1], parts[2])

    base_model = _small_model()
    assert base_model.corner_embedding is None
    n_corner_params = len(model.parameters()) - len(base_model.parameters())
    assert n_corner_params == 1  # exactly the embedding table
