"""Parallel dataset builds: differential equality, fault tolerance, traces.

The central promises of :mod:`repro.ml.parallel` under test:

* serial and parallel builds produce element-wise identical samples,
* a failing or crashing worker costs one retry, not the batch,
* permanent failures surface in the :class:`BuildReport` (and as a
  ``RuntimeError`` from :func:`build_dataset`) without losing the other
  designs, and
* worker spans are merged back into the parent tracer so profiling a
  parallel run drops nothing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flow import FlowConfig
from repro.ml import build_dataset, build_dataset_report
from repro.obs import aggregate_trace, get_tracer

CFG = FlowConfig(scale=0.15)
DESIGNS = ["xgate", "steelcore"]
BINS = 32

ARRAY_FIELDS = [
    "kind", "level", "pin_ids", "source_nodes", "x_cell", "x_net",
    "endpoint_nodes", "endpoint_pins", "y", "layout_stack", "masks",
    "pre_route_arrival", "pre_route_slew", "aux_arrival", "aux_slew",
    "aux_net_delay", "aux_cell_delay", "stage_features_basic",
    "stage_features_lookahead", "stage_sink_nodes",
]
DICT_FIELDS = [
    "node_of", "local_net_delay", "local_cell_delay",
    "signoff_arrival_by_pin", "signoff_slew_by_pin", "stage_label_by_sink",
]


def assert_samples_equal(a, b) -> None:
    """Element-wise equality over every deterministic sample field."""
    assert a.name == b.name and a.split == b.split
    assert a.clock_period == b.clock_period
    assert a.n_nodes == b.n_nodes
    for name in ARRAY_FIELDS:
        np.testing.assert_array_equal(getattr(a, name), getattr(b, name),
                                      err_msg=name)
    for name in DICT_FIELDS:
        assert getattr(a, name) == getattr(b, name), name
    assert len(a.plans) == len(b.plans)
    for pa, pb in zip(a.plans, b.plans):
        np.testing.assert_array_equal(pa.net_nodes, pb.net_nodes)
        np.testing.assert_array_equal(pa.net_drivers, pb.net_drivers)
        np.testing.assert_array_equal(pa.cell_nodes, pb.cell_nodes)
        np.testing.assert_array_equal(pa.cell_preds, pb.cell_preds)


@pytest.fixture
def clean_tracer():
    tracer = get_tracer()
    tracer.reset()
    was_enabled = tracer.enabled
    yield tracer
    tracer.reset()
    if not was_enabled:
        tracer.disable()


def test_parallel_equals_serial_differential():
    """jobs=4 and jobs=None yield element-wise equal samples (2 presets)."""
    serial = build_dataset(DESIGNS, flow_config=CFG, map_bins=BINS)
    parallel = build_dataset(DESIGNS, flow_config=CFG, map_bins=BINS,
                             jobs=4)
    assert [s.name for s in parallel] == DESIGNS
    for a, b in zip(serial, parallel):
        assert_samples_equal(a, b)


def test_parallel_uses_and_fills_cache(tmp_path):
    first, rep1 = build_dataset_report(DESIGNS, flow_config=CFG,
                                       map_bins=BINS, cache_dir=tmp_path,
                                       jobs=2)
    assert [s.status for s in rep1.statuses] == ["built", "built"]
    assert len(list(tmp_path.glob("*.pkl"))) == 2
    assert not list(tmp_path.glob("*.tmp")), "atomic writes leave no temps"
    second, rep2 = build_dataset_report(DESIGNS, flow_config=CFG,
                                        map_bins=BINS, cache_dir=tmp_path,
                                        jobs=2)
    assert [s.status for s in rep2.statuses] == ["cached", "cached"]
    for a, b in zip(first, second):
        assert_samples_equal(a, b)


def test_worker_exception_is_retried_once():
    samples, report = build_dataset_report(
        DESIGNS, flow_config=CFG, map_bins=BINS, jobs=2,
        _fail_once={"xgate": "raise"})
    assert report.ok
    by_design = {s.design: s for s in report.statuses}
    assert by_design["xgate"].attempts == 2
    assert by_design["steelcore"].attempts == 1
    assert all(s is not None for s in samples)


def test_worker_crash_breaks_pool_but_not_batch():
    """A hard worker death (os._exit) is survived: pool is recreated and
    the design retried; the batch completes with all samples."""
    samples, report = build_dataset_report(
        DESIGNS, flow_config=CFG, map_bins=BINS, jobs=2,
        _fail_once={"steelcore": "crash"})
    assert report.ok, report.format()
    by_design = {s.design: s for s in report.statuses}
    assert by_design["steelcore"].attempts == 2
    assert all(s is not None for s in samples)


def test_permanent_failure_reported_not_fatal():
    samples, report = build_dataset_report(
        ["xgate", "definitely-not-a-design"], flow_config=CFG,
        map_bins=BINS, jobs=2)
    assert [s.design for s in report.failed] == ["definitely-not-a-design"]
    assert report.failed[0].attempts == 2
    assert "unknown design" in report.failed[0].error
    assert samples[0] is not None and samples[1] is None
    # The strict entry point refuses partial datasets.
    with pytest.raises(RuntimeError, match="definitely-not-a-design"):
        build_dataset(["xgate", "definitely-not-a-design"],
                      flow_config=CFG, map_bins=BINS, jobs=2)


def test_worker_spans_merged_into_parent_trace(clean_tracer):
    clean_tracer.enable()
    _, report = build_dataset_report(DESIGNS, flow_config=CFG,
                                     map_bins=BINS, jobs=2)
    assert report.merged_events > 0
    profile = aggregate_trace(clean_tracer.events())
    # Every flow stage of every design must survive the merge.
    for stage in ("flow.place", "flow.opt", "flow.route", "flow.sta",
                  "model.pre"):
        assert stage in profile.stages, stage
        for design in DESIGNS:
            assert profile.designs[design].get(stage, 0.0) > 0.0, \
                f"{design}/{stage} dropped in merge"
    rows = {r["design"]: r for r in profile.table3_rows()}
    assert set(DESIGNS) <= set(rows)
