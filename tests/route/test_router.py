"""Tests for the global router."""

import numpy as np
import pytest

from repro.netlist import DESIGN_PRESETS, generate_netlist
from repro.placement import build_die, legalize, place
from repro.route import RouterConfig, RoutingResult, route
from repro.timing import PreRouteEstimator


@pytest.fixture(scope="module")
def routed():
    spec = DESIGN_PRESETS["xgate"].scaled(0.4)
    nl = generate_netlist(spec)
    die = build_die(nl, spec)
    pl = place(nl, die)
    legalize(nl, pl)
    return nl, pl, route(nl, pl)


def test_every_connection_routed(routed):
    nl, pl, result = routed
    edges = set(nl.net_edges())
    assert set(result.lengths.lengths) == edges


def test_routed_length_at_least_near_manhattan(routed):
    nl, pl, result = routed
    pre = PreRouteEstimator(nl, pl)
    cfg = RouterConfig()
    for (drv, snk), routed_len in result.lengths.lengths.items():
        manhattan = pre.length(drv, snk)
        # Jitter may shrink slightly; detours only add.
        assert routed_len >= manhattan * (1.0 - cfg.jitter) - 1e-9


def test_total_wirelength_consistent(routed):
    _, _, result = routed
    assert result.total_wirelength == pytest.approx(
        sum(result.lengths.lengths.values()))
    assert result.total_detour >= 0


def test_usage_accounting(routed):
    nl, _, result = routed
    n_conns = sum(1 for _ in nl.net_edges())
    # Every connection claims one horizontal and one vertical run.
    assert result.h_usage.sum() >= n_conns
    assert result.v_usage.sum() >= n_conns


def test_congestion_map_shape_and_range(routed):
    _, _, result = routed
    cmap = result.congestion_map()
    assert cmap.shape == result.h_usage.shape
    assert (cmap >= 0).all()
    assert 0.0 <= result.overflow_fraction <= 1.0


def test_routing_deterministic(routed):
    nl, pl, result = routed
    again = route(nl, pl)
    assert again.lengths.lengths == result.lengths.lengths


def test_congested_config_produces_more_detour():
    spec = DESIGN_PRESETS["xgate"].scaled(0.4)
    nl = generate_netlist(spec)
    die = build_die(nl, spec)
    pl = place(nl, die)
    legalize(nl, pl)
    loose = route(nl, pl, RouterConfig(capacity_headroom=5.0))
    tight = route(nl, pl, RouterConfig(capacity_headroom=1.2))
    assert tight.total_detour > loose.total_detour
    assert tight.overflow_fraction >= loose.overflow_fraction
