"""Tests for MMMC corners (repro.timing.corners).

The load-bearing contracts:

* the base corner is a *true identity* — ``derate_library`` returns the
  same object and ``run_sta(corner="base")`` is bit-identical to the
  corner-unaware call (the differential guarantee every pre-MMMC cache
  and serve path relies on);
* derating is physically sensible — slow arrivals dominate base, base
  dominates fast, and non-delay quantities (caps, area) are untouched.
"""

import numpy as np
import pytest

from repro.liberty import CellLibrary
from repro.timing import (
    BASE_CORNER,
    STANDARD_CORNERS,
    Corner,
    CornerSet,
    PreRouteEstimator,
    build_timing_graph,
    derate_library,
    resolve_corner,
    run_sta,
)


# ---------------------------------------------------------------------------
# Corner / CornerSet


def test_corner_delay_factor():
    assert BASE_CORNER.delay_factor == 1.0
    assert STANDARD_CORNERS["typ"].delay_factor == 1.0
    assert STANDARD_CORNERS["fast"].delay_factor < 1.0
    assert STANDARD_CORNERS["slow"].delay_factor > 1.0
    c = Corner("c", voltage_scale=2.0, temp_scale=1.0)
    assert c.delay_factor == pytest.approx(0.25)


def test_corner_validation():
    with pytest.raises(ValueError):
        Corner("")
    with pytest.raises(ValueError):
        Corner("a,b")
    with pytest.raises(ValueError):
        Corner("c", voltage_scale=0.0)


def test_corner_set_parse_spec():
    cs = CornerSet.parse("fast,typ,slow")
    assert cs.names == ("fast", "typ", "slow")
    assert cs.primary.name == "fast"
    assert len(cs) == 3
    assert "typ" in cs and "base" not in cs
    assert cs.index("slow") == 2
    with pytest.raises(KeyError):
        cs.index("base")


def test_corner_set_parse_defaults_to_base():
    for spec in (None, "", []):
        cs = CornerSet.parse(spec)
        assert cs.names == ("base",)
        assert cs.is_base_only


def test_corner_set_rejects_unknown_and_duplicates():
    with pytest.raises(ValueError):
        CornerSet.parse("fast,warp")
    with pytest.raises(ValueError):
        CornerSet((BASE_CORNER, BASE_CORNER))


def test_resolve_corner():
    assert resolve_corner(None) is BASE_CORNER
    assert resolve_corner("slow") is STANDARD_CORNERS["slow"]
    assert resolve_corner(BASE_CORNER) is BASE_CORNER
    with pytest.raises(ValueError):
        resolve_corner("warp")


# ---------------------------------------------------------------------------
# Library derating


def test_identity_corners_return_same_library_object():
    lib = CellLibrary.default()
    assert derate_library(lib, None) is lib
    assert derate_library(lib, "base") is lib
    assert derate_library(lib, "typ") is lib  # factor exactly 1.0


def test_derated_library_is_cached():
    lib = CellLibrary.default()
    slow1 = derate_library(lib, "slow")
    slow2 = derate_library(lib, "slow")
    assert slow1 is not lib
    assert slow1 is slow2


def test_derate_scales_delay_not_cap():
    lib = CellLibrary.default()
    factor = STANDARD_CORNERS["slow"].delay_factor
    for name in lib.cell_names():
        base, slow = lib.cell(name), derate_library(lib, "slow").cell(name)
        assert slow.input_cap == base.input_cap
        assert slow.area == base.area
        assert slow.intrinsic_delay == pytest.approx(
            base.intrinsic_delay * factor)
        assert slow.setup_time == pytest.approx(base.setup_time * factor)
        if base.delay_table is not None:
            np.testing.assert_allclose(
                slow.delay_table.values, base.delay_table.values * factor)
            # index axes are untouched
            np.testing.assert_array_equal(
                slow.delay_table.load_axis, base.delay_table.load_axis)
            np.testing.assert_array_equal(
                slow.delay_table.slew_axis, base.delay_table.slew_axis)


# ---------------------------------------------------------------------------
# STA differential / monotonicity


def _sta_at(nl, pl, corner=None):
    return run_sta(build_timing_graph(nl), PreRouteEstimator(nl, pl),
                   clock_period=1000.0, corner=corner)


def test_base_corner_sta_bit_identical(tiny_placed):
    nl, pl = tiny_placed
    plain = _sta_at(nl, pl)
    base = _sta_at(nl, pl, corner="base")
    np.testing.assert_array_equal(plain.arrival, base.arrival)
    np.testing.assert_array_equal(plain.slew, base.slew)
    assert plain.endpoint_slack == base.endpoint_slack
    assert plain.wns == base.wns and plain.tns == base.tns


def test_corner_sta_monotonicity(tiny_placed):
    nl, pl = tiny_placed
    base = _sta_at(nl, pl)
    fast = _sta_at(nl, pl, corner="fast")
    slow = _sta_at(nl, pl, corner="slow")
    # Wire RC is not derated (corners scale the *cell library*), so
    # wire-only arrivals are equal across corners — hence >= / <= with
    # strict ordering demanded at the endpoints.
    finite = np.isfinite(base.arrival) & (base.arrival > 0.0)
    assert np.all(slow.arrival[finite] >= base.arrival[finite])
    assert np.all(fast.arrival[finite] <= base.arrival[finite])
    for pid, arr in base.endpoint_arrival.items():
        assert slow.endpoint_arrival[pid] > arr
        assert fast.endpoint_arrival[pid] < arr
    assert slow.wns < base.wns < fast.wns


# ---------------------------------------------------------------------------
# User-defined corners (the name:voltage_scale:temp_scale grammar)


@pytest.fixture(autouse=True)
def _clean_custom_registry():
    """Custom corners register into a process-global table; keep each
    test's registrations from leaking into the next."""
    from repro.timing import corners as mod

    saved = dict(mod._CUSTOM_CORNERS)
    yield
    mod._CUSTOM_CORNERS.clear()
    mod._CUSTOM_CORNERS.update(saved)


def test_parse_custom_corner_triple():
    cs = CornerSet.parse("fast,hotspot:0.92:1.3")
    assert cs.names == ("fast", "hotspot")
    hot = cs.corners[1]
    assert hot == Corner("hotspot", voltage_scale=0.92, temp_scale=1.3)
    # Parsing registered it: bare-name resolution now works everywhere.
    assert resolve_corner("hotspot") == hot
    assert hot.delay_factor == pytest.approx(1.3 / 0.92 ** 2)


def test_specs_round_trip():
    cs = CornerSet.parse(" typ , cold:1.05:0.8 ")
    assert cs.specs == ("typ", "cold:1.05:0.8")
    # What a FleetConfig ships to workers: re-parsing the rendered specs
    # in a fresh registry must rebuild the identical corner set.
    from repro.timing import corners as mod

    mod._CUSTOM_CORNERS.clear()
    again = CornerSet.parse(",".join(cs.specs))
    assert again.corners == cs.corners
    assert again.specs == cs.specs


def test_custom_corner_grammar_errors():
    for bad in ("a:1", "a:1:2:3", "a:x:1", "a:1:y", "::"):
        with pytest.raises(ValueError):
            CornerSet.parse(bad)


def test_standard_name_shadowing():
    slow = STANDARD_CORNERS["slow"]
    # Restating a standard corner with its own scales is a no-op alias...
    cs = CornerSet.parse(f"slow:{slow.voltage_scale}:{slow.temp_scale}")
    assert cs.corners[0] is slow
    # ...but different scales under a standard name are a hard error.
    with pytest.raises(ValueError, match="standard corner"):
        CornerSet.parse("slow:2.0:2.0")


def test_reregistration_conflicts_are_rejected():
    CornerSet.parse("burn:1.1:1.0")
    assert resolve_corner("burn").voltage_scale == 1.1
    # Idempotent re-parse is fine; changed scales are not.
    CornerSet.parse("burn:1.1:1.0")
    with pytest.raises(ValueError, match="already registered"):
        CornerSet.parse("burn:1.2:1.0")


def test_derate_library_applies_custom_corner():
    cs = CornerSet.parse("oven:0.9:1.25")
    corner = cs.corners[0]
    lib = CellLibrary.default()
    derated = derate_library(lib, "oven")
    name = lib.cell_names()[0]
    assert derated.cell(name).intrinsic_delay == pytest.approx(
        lib.cell(name).intrinsic_delay * corner.delay_factor)
