"""Tests for batched NLDM evaluation."""

import numpy as np
import pytest

from repro.liberty import CellLibrary
from repro.timing import BatchNLDM, batch_nldm_for


@pytest.fixture(scope="module")
def nldm():
    return BatchNLDM(CellLibrary.default())


def test_batch_matches_per_cell_tables(nldm):
    lib = CellLibrary.default()
    names = ["INV_X1", "NAND2_X4", "XOR2_X8", "DFF_X2"]
    slews = np.array([5.0, 12.0, 60.0, 140.0])
    loads = np.array([0.5, 3.0, 10.0, 50.0])
    type_ids = np.array([nldm.type_id(n) for n in names])
    delay, slew = nldm.lookup(type_ids, slews, loads)
    for k, nm in enumerate(names):
        cell = lib.cell(nm)
        assert delay[k] == pytest.approx(
            cell.delay_table.lookup(slews[k], loads[k]))
        assert slew[k] == pytest.approx(
            cell.slew_table.lookup(slews[k], loads[k]))


def test_clamped_extrapolation(nldm):
    tid = np.array([nldm.type_id("INV_X1")])
    d_low, _ = nldm.lookup(tid, np.array([-10.0]), np.array([-1.0]))
    d_min, _ = nldm.lookup(tid, np.array([2.0]), np.array([0.25]))
    assert d_low[0] == pytest.approx(d_min[0])


def test_cache_per_library():
    lib = CellLibrary.default()
    assert batch_nldm_for(lib) is batch_nldm_for(lib)


def test_delay_monotone_in_load(nldm):
    tid = np.full(5, nldm.type_id("NAND2_X1"))
    loads = np.array([0.5, 1.0, 4.0, 16.0, 60.0])
    delay, _ = nldm.lookup(tid, np.full(5, 10.0), loads)
    assert (np.diff(delay) > 0).all()
