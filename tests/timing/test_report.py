"""Tests for timing report generation."""

import pytest

from repro.timing import (
    PreRouteEstimator,
    build_timing_graph,
    report_path,
    report_summary,
    report_timing,
    run_sta,
)


@pytest.fixture(scope="module")
def sta_result(tiny_placed):
    nl, pl = tiny_placed
    g = build_timing_graph(nl)
    res = run_sta(g, PreRouteEstimator(nl, pl), clock_period=800.0)
    return nl, res


def test_report_path_structure(sta_result):
    nl, res = sta_result
    ep = min(res.endpoint_slack, key=res.endpoint_slack.get)
    rpt = report_path(res, ep)
    assert rpt.endpoint_pin == ep
    assert rpt.steps[0].arc == "launch"
    assert rpt.arrival == pytest.approx(rpt.steps[-1].arrival)
    assert rpt.slack == pytest.approx(rpt.required - rpt.arrival)
    # Increments sum to the arrival (launch step includes clk-to-q).
    total = sum(s.incr for s in rpt.steps)
    assert total == pytest.approx(rpt.arrival)
    # Arc types alternate between net and cell after launch.
    arcs = [s.arc for s in rpt.steps[1:]]
    assert set(arcs) <= {"net", "cell"}


def test_report_path_rejects_non_endpoint(sta_result):
    nl, res = sta_result
    startpoint = nl.startpoint_pins()[0]
    with pytest.raises(ValueError):
        report_path(res, startpoint)


def test_report_timing_text(sta_result):
    _, res = sta_result
    text = report_timing(res, n_paths=3)
    assert "WNS" in text and "TNS" in text
    assert text.count("Endpoint:") == 3


def test_report_timing_slack_filter(sta_result):
    _, res = sta_result
    text = report_timing(res, n_paths=100, slack_below=res.wns + 1e-6)
    assert text.count("Endpoint:") == 1


def test_report_summary_sorted(sta_result):
    _, res = sta_result
    lines = report_summary(res).splitlines()[1:]
    slacks = [float(line.split()[-1]) for line in lines]
    assert slacks == sorted(slacks)
    assert len(lines) == len(res.endpoint_slack)
