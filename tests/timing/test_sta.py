"""Tests for the STA engine."""

import numpy as np
import pytest

from repro.netlist import generate_preset, DESIGN_PRESETS, generate_netlist
from repro.placement import Placement, build_die, legalize, place
from repro.timing import (
    PreRouteEstimator,
    RoutedLengths,
    build_timing_graph,
    run_sta,
)
from repro.timing.sta import STAResult

from tests.conftest import make_toy_netlist


def toy_setup():
    nl = make_toy_netlist()
    from repro.placement import Die
    die = Die(width=20.0, height=20.0)
    for port in nl.ports.values():
        die.port_positions[port.pin] = (0.0, 0.0)
    pl = Placement(die=die)
    for cid in nl.cells:
        pl.set_position(cid, 10.0, 10.0)
    return nl, pl


def test_toy_arrival_hand_computed():
    nl, pl = toy_setup()
    g = build_timing_graph(nl)
    res = run_sta(g, PreRouteEstimator(nl, pl), clock_period=200.0)
    lib = nl.library
    g0 = next(c for c in nl.cells.values() if c.name == "g0")
    g1 = next(c for c in nl.cells.values() if c.name == "g1")
    reg = next(c for c in nl.cells.values() if c.name == "reg0")

    # The critical path into reg/D goes pi → g0 → g1 → D.
    node_d = g.node_of[reg.input_pins[0]]
    arr_d = res.arrival[node_d]
    assert arr_d > 0
    # Arrival at g1 input from g0 must be ≤ arrival at g1 output.
    assert (res.arrival[g.node_of[g1.input_pins[0]]]
            < res.arrival[g.node_of[g1.output_pin]])
    # Q launches at clk-to-q.
    q_node = g.node_of[reg.output_pin]
    assert res.arrival[q_node] == pytest.approx(
        lib.cell("DFF_X1").clk_to_q)


def test_arrival_monotone_along_edges():
    nl = generate_preset("xgate", scale=0.25)
    spec = DESIGN_PRESETS["xgate"].scaled(0.25)
    die = build_die(nl, spec)
    pl = place(nl, die)
    legalize(nl, pl)
    g = build_timing_graph(nl)
    res = run_sta(g, PreRouteEstimator(nl, pl), clock_period=1000.0)
    for src, dst in zip(g.net_edge_src, g.net_edge_dst):
        assert res.arrival[dst] >= res.arrival[src] - 1e-9
    for src, dst in zip(g.cell_edge_src, g.cell_edge_dst):
        assert res.arrival[dst] > res.arrival[src]


def test_slack_and_wns_tns():
    nl, pl = toy_setup()
    g = build_timing_graph(nl)
    res = run_sta(g, PreRouteEstimator(nl, pl), clock_period=10.0)
    assert res.wns == min(res.endpoint_slack.values())
    assert res.tns == sum(min(0.0, s) for s in res.endpoint_slack.values())
    assert res.wns < 0  # 10 ps clock is not meetable
    res2 = run_sta(g, PreRouteEstimator(nl, pl), clock_period=1e6)
    assert res2.wns > 0 and res2.tns == 0.0


def test_critical_path_is_connected_and_ends_at_endpoint():
    nl = generate_preset("xgate", scale=0.25)
    spec = DESIGN_PRESETS["xgate"].scaled(0.25)
    die = build_die(nl, spec)
    pl = place(nl, die)
    legalize(nl, pl)
    g = build_timing_graph(nl)
    res = run_sta(g, PreRouteEstimator(nl, pl), clock_period=1000.0)
    ep = max(res.endpoint_arrival, key=res.endpoint_arrival.get)
    path = res.critical_path(ep)
    assert path[-1] == ep
    assert g.level[g.node_of[path[0]]] == 0
    # Arrival increases monotonically along the path.
    arr = [res.arrival[g.node_of[p]] for p in path]
    assert all(a <= b + 1e-9 for a, b in zip(arr, arr[1:]))


def test_required_time_backward_consistency():
    nl = generate_preset("xgate", scale=0.25)
    spec = DESIGN_PRESETS["xgate"].scaled(0.25)
    die = build_die(nl, spec)
    pl = place(nl, die)
    legalize(nl, pl)
    g = build_timing_graph(nl)
    res = run_sta(g, PreRouteEstimator(nl, pl), clock_period=2000.0)
    # Worst node slack equals worst endpoint slack.
    reachable = np.isfinite(res.required)
    assert res.node_slack[reachable].min() == pytest.approx(res.wns, abs=1e-6)
    # Node slack on the critical path equals WNS everywhere.
    ep = min(res.endpoint_slack, key=res.endpoint_slack.get)
    for pid in res.critical_path(ep):
        node = g.node_of[pid]
        assert res.node_slack[node] <= res.wns + 1e-6


def test_routed_lengths_change_timing():
    nl = generate_preset("xgate", scale=0.25)
    spec = DESIGN_PRESETS["xgate"].scaled(0.25)
    die = build_die(nl, spec)
    pl = place(nl, die)
    legalize(nl, pl)
    g = build_timing_graph(nl)
    pre = PreRouteEstimator(nl, pl)
    res1 = run_sta(g, pre, clock_period=1000.0)
    routed = RoutedLengths()
    for drv, snk in nl.net_edges():
        routed.set_length(drv, snk, 2.0 * pre.length(drv, snk) + 5.0)
    res2 = run_sta(g, routed, clock_period=1000.0)
    assert res2.max_arrival > res1.max_arrival


def test_net_and_cell_edge_delays_reported():
    nl, pl = toy_setup()
    g = build_timing_graph(nl)
    res = run_sta(g, PreRouteEstimator(nl, pl), clock_period=100.0)
    assert len(res.net_edge_delay) == sum(1 for _ in nl.net_edges())
    assert len(res.cell_edge_delay) == sum(1 for _ in nl.cell_edges())
    assert all(d >= 0 for d in res.net_edge_delay.values())
    assert all(d > 0 for d in res.cell_edge_delay.values())


def test_sta_deterministic():
    nl = generate_preset("xgate", scale=0.2)
    spec = DESIGN_PRESETS["xgate"].scaled(0.2)
    die = build_die(nl, spec)
    pl = place(nl, die)
    legalize(nl, pl)
    g = build_timing_graph(nl)
    r1 = run_sta(g, PreRouteEstimator(nl, pl), clock_period=500.0)
    r2 = run_sta(g, PreRouteEstimator(nl, pl), clock_period=500.0)
    np.testing.assert_array_equal(r1.arrival, r2.arrival)


def test_tie_break_follows_true_max_arrival_arc():
    """Regression: the winner mask ``cand >= arrival[dst] - 1e-9`` could
    select several arcs per destination; the fancy-indexed slew/best_pred
    writes then followed whichever arc came last in edge-array order —
    possibly a near-tied arc that is NOT the true maximum.  The winner
    must be a deterministic per-destination argmax.
    """
    from repro.timing.constraints import TimingConstraints

    class ZeroWires:
        def length(self, src_pin: int, dst_pin: int) -> float:
            return 0.0

    nl = make_toy_netlist()
    g = build_timing_graph(nl)
    g0 = next(c for c in nl.cells.values() if c.name == "g0")
    out_node = g.node_of[g0.output_pin]

    # The two cell arcs into g0/out, in edge-array order (= the order the
    # old code's last-write-wins would resolve them in).
    arcs = [(int(s), int(d)) for s, d in zip(g.cell_edge_src, g.cell_edge_dst)
            if int(d) == out_node]
    assert len(arcs) == 2

    # Map each arc's source (a net-sink node) back to the driving PI port.
    driver_of = {int(d): int(s) for s, d
                 in zip(g.net_edge_src, g.net_edge_dst)}
    pi_name_of_arc = [
        nl.pins[int(g.pin_ids[driver_of[src]])].name for src, _ in arcs]

    # Zero wire delay → identical slews and NLDM arc delays, so arrivals
    # at g0's output are input_delay + d for both arcs.  The FIRST arc
    # gets the strictly larger input delay; the LAST arc lands within the
    # old 1e-9 tolerance but below the true max.
    constraints = TimingConstraints(clock_period=200.0, input_delays={
        pi_name_of_arc[0]: 1.0,
        pi_name_of_arc[1]: 1.0 - 5e-10,
    })
    res = run_sta(g, ZeroWires(), clock_period=200.0,
                  constraints=constraints)
    true_max_src = arcs[0][0]
    assert int(res.best_pred[out_node]) == true_max_src, \
        "best_pred must follow the true max-arrival arc, not edge order"
    # And the worst path through g0 traces back to that arc's PI.
    path_pins = res.critical_path(g0.output_pin)
    assert int(g.pin_ids[driver_of[true_max_src]]) in path_pins


def test_no_endpoints_reports_nan_not_valueerror():
    """Designs with no endpoints used to crash wns/max_arrival with a bare
    ``ValueError: min() arg is an empty sequence``; they now report NaN
    (and tns reports 0.0, there being no violations to sum)."""
    nl, pl = toy_setup()
    g = build_timing_graph(nl)
    res = run_sta(g, PreRouteEstimator(nl, pl), clock_period=100.0)
    empty = STAResult(
        graph=g,
        clock_period=100.0,
        arrival=res.arrival,
        slew=res.slew,
        required=res.required,
        load=res.load,
        best_pred=res.best_pred,
        endpoint_arrival={},
        endpoint_slack={},
    )
    assert np.isnan(empty.wns)
    assert np.isnan(empty.max_arrival)
    assert empty.tns == 0.0
