"""Tests for SDC-lite constraints and their effect on STA."""

import pytest

from repro.netlist import DESIGN_PRESETS, generate_netlist
from repro.placement import build_die, legalize, place
from repro.timing import (
    PreRouteEstimator,
    TimingConstraints,
    build_timing_graph,
    parse_sdc,
    run_sta,
)

SDC = """
# demo constraints
create_clock -period 800 -name core_clk
set_input_delay 25
set_input_delay 40 -port pi_m00_000
set_output_delay 30
"""


def test_parse_sdc_roundtrip():
    c = parse_sdc(SDC)
    assert c.clock_period == 800.0
    assert c.clock_name == "core_clk"
    assert c.input_delay("pi_m00_000") == 40.0
    assert c.input_delay("anything_else") == 25.0
    assert c.output_delay("po_0") == 30.0
    again = parse_sdc(c.to_sdc())
    assert again == c


def test_parse_sdc_requires_clock():
    with pytest.raises(ValueError, match="create_clock"):
        parse_sdc("set_input_delay 10\n")


def test_parse_sdc_rejects_unknown_command():
    with pytest.raises(ValueError, match="unsupported"):
        parse_sdc("create_clock -period 5\nset_false_path -from x\n")


def test_parse_sdc_rejects_bad_flag():
    with pytest.raises(ValueError):
        parse_sdc("create_clock -period 5 -waveform {0 2.5}\n")


def test_constraints_require_positive_period():
    with pytest.raises(ValueError):
        TimingConstraints(clock_period=0.0)


def test_input_delay_shifts_arrival():
    spec = DESIGN_PRESETS["xgate"].scaled(0.2)
    nl = generate_netlist(spec)
    die = build_die(nl, spec)
    pl = place(nl, die)
    legalize(nl, pl)
    g = build_timing_graph(nl)
    wires = PreRouteEstimator(nl, pl)
    base = run_sta(g, wires, clock_period=1000.0)
    shifted = run_sta(g, wires, clock_period=1000.0,
                      constraints=TimingConstraints(
                          clock_period=1000.0, input_delays={None: 100.0}))
    # Endpoints fed (directly or transitively) by primary inputs arrive
    # later; none arrives earlier.
    assert all(shifted.endpoint_arrival[p] >= base.endpoint_arrival[p] - 1e-9
               for p in base.endpoint_arrival)
    assert any(shifted.endpoint_arrival[p] > base.endpoint_arrival[p] + 50
               for p in base.endpoint_arrival)


def test_output_delay_tightens_po_slack():
    spec = DESIGN_PRESETS["xgate"].scaled(0.2)
    nl = generate_netlist(spec)
    die = build_die(nl, spec)
    pl = place(nl, die)
    legalize(nl, pl)
    g = build_timing_graph(nl)
    wires = PreRouteEstimator(nl, pl)
    base = run_sta(g, wires, clock_period=1000.0)
    tight = run_sta(g, wires, clock_period=1000.0,
                    constraints=TimingConstraints(
                        clock_period=1000.0, output_delays={None: 200.0}))
    po_pins = {p.pin for p in nl.primary_outputs()}
    for pid in po_pins:
        assert tight.endpoint_slack[pid] == pytest.approx(
            base.endpoint_slack[pid] - 200.0)
    # Register endpoints are unaffected by output delays.
    for pid in set(base.endpoint_slack) - po_pins:
        assert tight.endpoint_slack[pid] == pytest.approx(
            base.endpoint_slack[pid])
